//! The simulated shared-nothing cluster (Figure 1 / Figure 4).
//!
//! One process hosts a Cluster Controller (the query entry point — in this
//! reproduction, [`crate::Instance`]) and N Node Controllers, each managing
//! P storage partitions on its own directory subtree. Operator instances
//! run one thread per partition, so "nodes" are failure/locality domains
//! rather than processes; every data path (hash partitioning by primary
//! key, node-local secondary indexes, per-node transaction logs) follows
//! the paper's architecture.

use std::path::{Path, PathBuf};

/// Cluster layout and storage tuning.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Node Controllers in the simulated cluster.
    pub nodes: usize,
    /// Storage partitions per node (the paper's setup: 3 data disks per
    /// node → 30 partitions over 10 nodes).
    pub partitions_per_node: usize,
    /// Root directory for all node storage.
    pub base_dir: PathBuf,
    /// In-memory LSM component budget per index partition, in bytes.
    pub mem_component_budget: usize,
    /// Buffer cache capacity in pages (shared per instance).
    pub buffer_cache_pages: usize,
    /// Lock stripes in the shared buffer cache (clamped so small caches
    /// keep useful per-shard capacity).
    pub cache_shards: usize,
    /// Merge policy for all LSM indexes.
    pub merge_policy: asterix_storage::MergePolicy,
    /// fsync on commit (see `asterix_txn::wal::Durability`).
    pub fsync_commits: bool,
    /// Bound on frames buffered per exchange channel — the executor's
    /// backpressure knob (see DESIGN.md "Execution & storage tuning").
    pub frames_in_flight: usize,
    /// Disable the executor's pipeline-fusion pass (one thread and a
    /// channel per operator partition, as before fusion). For A/B runs and
    /// debugging; results are identical either way.
    pub disable_fusion: bool,
    /// Disable batch-at-a-time (frame-granular) evaluation in selections,
    /// projections and scans, forcing the per-tuple scalar path. For A/B
    /// runs and debugging; results are identical either way.
    pub disable_vectorization: bool,
    /// Disable runtime join filters: hash joins stop publishing build-side
    /// key filters and the compiler stops inserting probe-side pruning
    /// operators. For A/B runs and debugging; results are identical either
    /// way.
    pub disable_runtime_filters: bool,
    /// Disable columnar LSM components: flushes and merges write row-major
    /// components and scans never late-materialize. Columnar components
    /// written while the knob was off remain readable. For A/B runs and
    /// debugging; results are identical either way.
    pub disable_columnar: bool,
    /// Disable the compiled-plan cache: every query re-runs the full
    /// parse→translate→optimize→jobgen chain and `prepare` re-compiles on
    /// each execution. For A/B runs and debugging; results are identical
    /// either way.
    pub disable_plan_cache: bool,
    /// Compiled-plan cache capacity (entries, LRU-evicted). One entry per
    /// normalized query shape × session/options state.
    pub plan_cache_capacity: usize,
    /// Queries allowed to run at once; later arrivals queue (admission
    /// control — the workload manager's concurrency gate).
    pub max_concurrent_queries: usize,
    /// Queries allowed to wait for a slot before new arrivals are rejected
    /// outright.
    pub max_queued_queries: usize,
    /// How long a queued query waits for a slot before timing out.
    pub admission_timeout: std::time::Duration,
    /// Cluster-wide working-memory pool the workload manager grants
    /// per-query budgets from.
    pub query_mem_pool_bytes: usize,
    /// Working memory requested for each admitted query (clamped to the
    /// pool's headroom at grant time).
    pub per_query_mem_bytes: usize,
    /// Per-trace ring capacity (finished spans retained) for profiled
    /// queries. Tracing itself is per-query: `Instance::profile` traces,
    /// `Instance::query` does not.
    pub trace_capacity: usize,
    /// When set, a background sampler thread snapshots the instance
    /// metrics registry at this cadence, retaining per-interval deltas in
    /// a bounded in-memory ring (`Instance::metrics_timeseries_json`).
    /// `None` (the default) spawns no sampler.
    pub metrics_sample_interval: Option<std::time::Duration>,
}

impl ClusterConfig {
    /// A small local cluster: 2 nodes × 2 partitions.
    pub fn small(base_dir: impl Into<PathBuf>) -> ClusterConfig {
        ClusterConfig {
            nodes: 2,
            partitions_per_node: 2,
            base_dir: base_dir.into(),
            mem_component_budget: 4 << 20,
            buffer_cache_pages: 4096,
            cache_shards: 8,
            merge_policy: asterix_storage::MergePolicy::default(),
            fsync_commits: false,
            frames_in_flight: 8,
            disable_fusion: false,
            disable_vectorization: false,
            disable_runtime_filters: false,
            disable_columnar: false,
            disable_plan_cache: false,
            plan_cache_capacity: 64,
            max_concurrent_queries: 16,
            max_queued_queries: 64,
            admission_timeout: std::time::Duration::from_secs(10),
            query_mem_pool_bytes: 1 << 30,
            per_query_mem_bytes: 128 << 20,
            trace_capacity: asterix_obs::DEFAULT_TRACE_CAPACITY,
            metrics_sample_interval: None,
        }
    }

    /// Total storage partitions.
    pub fn partitions(&self) -> usize {
        (self.nodes * self.partitions_per_node).max(1)
    }

    /// Which node hosts a partition.
    pub fn node_of(&self, partition: usize) -> usize {
        partition / self.partitions_per_node.max(1)
    }

    /// Storage directory of one node.
    pub fn node_dir(&self, node: usize) -> PathBuf {
        self.base_dir.join(format!("node{node}"))
    }

    /// Transaction-log path of one node ("system data" disk in the paper's
    /// setup).
    pub fn node_log_path(&self, node: usize) -> PathBuf {
        self.node_dir(node).join("txn.log")
    }

    /// Directory of one index partition.
    pub fn index_dir(
        &self,
        partition: usize,
        dataverse: &str,
        dataset: &str,
        index: &str,
    ) -> PathBuf {
        self.node_dir(self.node_of(partition))
            .join(format!("p{partition}"))
            .join(dataverse)
            .join(dataset)
            .join(index)
    }

    /// The DDL replay log (persisted catalog).
    pub fn ddl_log_path(&self) -> PathBuf {
        self.base_dir.join("ddl.log")
    }
}

/// Summary of the simulated topology (for diagnostics and the README
/// architecture walkthrough).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    pub nodes: usize,
    pub partitions: usize,
}

/// Compute the topology of a config.
pub fn topology(cfg: &ClusterConfig) -> Topology {
    Topology { nodes: cfg.nodes, partitions: cfg.partitions() }
}

/// True if `path` belongs to the node directory layout (sanity checks in
/// drop/cleanup paths).
pub fn is_node_path(cfg: &ClusterConfig, path: &Path) -> bool {
    path.starts_with(&cfg.base_dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_to_node_mapping() {
        let cfg =
            ClusterConfig { nodes: 3, partitions_per_node: 2, ..ClusterConfig::small("/tmp/x") };
        assert_eq!(cfg.partitions(), 6);
        assert_eq!(cfg.node_of(0), 0);
        assert_eq!(cfg.node_of(1), 0);
        assert_eq!(cfg.node_of(2), 1);
        assert_eq!(cfg.node_of(5), 2);
    }

    #[test]
    fn paths_are_per_node() {
        let cfg = ClusterConfig::small("/tmp/base");
        let d = cfg.index_dir(3, "TinySocial", "MugshotUsers", "primary");
        assert!(d.starts_with("/tmp/base/node1/p3"), "{}", d.display());
        assert!(is_node_path(&cfg, &d));
        assert!(!is_node_path(&cfg, Path::new("/etc")));
    }
}
