//! # asterixdb — the full BDMS (Figure 1 / Figure 4)
//!
//! This crate assembles the substrates into the system the paper
//! describes: a simulated shared-nothing cluster (a Cluster Controller
//! plus Node Controllers hosting storage partitions), Datasets stored as
//! hash-partitioned LSM B+-trees with node-local secondary indexes,
//! record-level transactions with WAL + shadowing recovery, external
//! datasets, data feeds, metadata stored as queryable data, and an AQL
//! entry point ([`Instance::execute`]) that compiles statements through
//! Algebricks onto the Hyracks runtime.

pub mod cluster;
pub mod dataset;
pub mod error;
pub mod instance;
pub mod plancache;
pub mod profile;
pub mod provider;
pub mod session;
pub mod system;

pub use cluster::ClusterConfig;
pub use error::{AsterixError, Result};
pub use instance::{Instance, QueryOpts, StatementResult};
pub use plancache::PreparedQuery;
pub use profile::QueryProfile;
pub use session::Session;
pub use system::SystemSnapshot;

pub use asterix_rm::{AdmissionError, JobInfo, JobState};
