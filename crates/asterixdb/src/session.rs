//! Per-caller session state.
//!
//! The paper's AsterixDB is a service: every client talks to the Cluster
//! Controller over a connection with its *own* `use dataverse` / `set`
//! state. This module gives the reproduction the same shape — a [`Session`]
//! owns the current dataverse and similarity settings, and every statement
//! an [`crate::Instance`] executes runs *in* a session. The instance keeps
//! one built-in session behind the legacy `execute`/`query` API, so
//! embedding callers that never cared about sessions see no change; servers
//! (and concurrent in-process callers) create one session per
//! connection/thread with [`crate::Instance::new_session`], so a `USE` or
//! `SET` issued by one client can never leak into another's compilations.
//!
//! Plan-cache correctness falls out of the same structure: cache keys
//! already include the session dataverse and similarity settings, and the
//! compile path reads them from the session it was handed in one snapshot.

use asterix_metadata::METADATA_DATAVERSE;
use asterix_obs::Gauge;
use parking_lot::Mutex;

/// The mutable state one session carries between statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SessionState {
    /// Current dataverse (`use dataverse ...`), the namespace unqualified
    /// dataset/type/function names resolve against.
    pub dataverse: String,
    /// `set simfunction ...` — the similarity function `~=` lowers to.
    pub simfunction: String,
    /// `set simthreshold ...` — the matching threshold.
    pub simthreshold: String,
}

impl SessionState {
    fn fresh() -> SessionState {
        SessionState {
            dataverse: METADATA_DATAVERSE.to_string(),
            simfunction: "jaccard".into(),
            simthreshold: "0.5".into(),
        }
    }
}

/// One caller's session: current dataverse plus `set` parameters.
///
/// Create with [`crate::Instance::new_session`] and pass to the `*_in`
/// statement entry points (`execute_in`, `query_in`, `execute_prepared_in`,
/// ...). Sessions are `Send + Sync`; sharing one session between threads is
/// allowed but re-introduces the shared-`USE` semantics the per-session API
/// exists to avoid.
pub struct Session {
    state: Mutex<SessionState>,
    /// The instance's `sessions.active` gauge; decremented on drop so leaked
    /// sessions are observable. `None` for the instance's built-in session.
    active: Option<Gauge>,
}

impl Session {
    pub(crate) fn new(active: Option<Gauge>) -> Session {
        if let Some(g) = &active {
            g.add(1);
        }
        Session { state: Mutex::new(SessionState::fresh()), active }
    }

    /// The session's current dataverse.
    pub fn current_dataverse(&self) -> String {
        self.state.lock().dataverse.clone()
    }

    /// The session's similarity function and threshold (`set simfunction`,
    /// `set simthreshold`).
    pub fn similarity(&self) -> (String, String) {
        let s = self.state.lock();
        (s.simfunction.clone(), s.simthreshold.clone())
    }

    pub(crate) fn snapshot(&self) -> SessionState {
        self.state.lock().clone()
    }

    pub(crate) fn set_dataverse(&self, dv: String) {
        self.state.lock().dataverse = dv;
    }

    pub(crate) fn set_simfunction(&self, v: String) {
        self.state.lock().simfunction = v;
    }

    pub(crate) fn set_simthreshold(&self, v: String) {
        self.state.lock().simthreshold = v;
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if let Some(g) = &self.active {
            g.sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_sessions_start_at_metadata_defaults() {
        let s = Session::new(None);
        assert_eq!(s.current_dataverse(), METADATA_DATAVERSE);
        assert_eq!(s.similarity(), ("jaccard".to_string(), "0.5".to_string()));
    }

    #[test]
    fn gauge_tracks_session_lifetime() {
        let g = Gauge::new();
        let a = Session::new(Some(g.clone()));
        let b = Session::new(Some(g.clone()));
        assert_eq!(g.get(), 2);
        drop(a);
        assert_eq!(g.get(), 1);
        drop(b);
        assert_eq!(g.get(), 0);
        assert_eq!(g.peak(), 2);
    }

    #[test]
    fn state_changes_stay_in_their_session() {
        let a = Session::new(None);
        let b = Session::new(None);
        a.set_dataverse("One".into());
        b.set_dataverse("Two".into());
        a.set_simthreshold("0.9".into());
        assert_eq!(a.current_dataverse(), "One");
        assert_eq!(b.current_dataverse(), "Two");
        assert_eq!(b.similarity().1, "0.5");
    }
}
