//! Query lifecycle profiling: one [`QueryProfile`] per profiled query,
//! combining the compilation-phase spans (parse → translate → optimize →
//! jobgen → execute, collapsed to a single `plan_cache` bind on a
//! compiled-plan-cache hit) with the per-operator runtime profile of the
//! Hyracks job, plus the plan texts they reconcile against.

use asterix_adm::Value;
use asterix_hyracks::{JobProfile, OperatorProfile};
use asterix_obs::{json_escape, SpanRecord, TraceEvent};

/// The result of [`crate::Instance::profile`]: the query's rows plus a
/// full breakdown of where its time went.
#[derive(Clone, Debug)]
pub struct QueryProfile {
    /// Result rows, exactly as [`crate::Instance::query`] would return.
    pub rows: Vec<Value>,
    /// Lifecycle spans, in order. A plan-cache miss records `parse`,
    /// `translate`, `optimize`, `jobgen`, `plan_cache`, `execute`; a hit
    /// collapses the compile side to just `plan_cache` (the lookup plus
    /// parameter bind), and prepared executions have no `parse`. Look
    /// phases up by name with [`QueryProfile::phase`].
    pub phases: Vec<SpanRecord>,
    /// The optimized logical plan (EXPLAIN's first component).
    pub plan: String,
    /// The Figure 6-style job description with each operator line
    /// annotated with its runtime stats (extended EXPLAIN).
    pub job: String,
    /// Per-operator tuple/frame/byte counts and busy times. Operator ids
    /// are the ones job generation assigned, so entries map back to the
    /// plan nodes shown in `job`.
    pub operators: JobProfile,
    /// Process-unique ID of this query's trace.
    pub trace_id: u64,
    /// The query's finished spans, sorted by start time: a root `query`
    /// span; `rm.queue_wait` and the compile phases under it; per-thread
    /// pipeline spans under `execute` with operator/send-block/spill spans
    /// nested beneath; any LSM maintenance the query triggered
    /// synchronously.
    pub trace: Vec<TraceEvent>,
}

impl QueryProfile {
    /// Duration of one lifecycle phase, if it was recorded.
    pub fn phase(&self, name: &str) -> Option<&SpanRecord> {
        self.phases.iter().find(|s| s.name == name)
    }

    /// First operator whose name starts with `prefix` (e.g.
    /// `data-scan Mugshot.MugshotUsers`, `equi`, an index-NL join's
    /// `{dataset}.{index}` label).
    pub fn operator(&self, prefix: &str) -> Option<&OperatorProfile> {
        self.operators.find(prefix)
    }

    /// Total microseconds across the recorded phases.
    pub fn total_us(&self) -> u64 {
        self.phases.iter().map(|s| s.duration.as_micros() as u64).sum()
    }

    /// The trace's root span (the whole-query `query` span).
    pub fn trace_root(&self) -> Option<&TraceEvent> {
        self.trace.iter().find(|e| e.parent_id == 0)
    }

    /// Direct children of the span with ID `parent`, in start order.
    pub fn trace_children(&self, parent: u64) -> Vec<&TraceEvent> {
        self.trace.iter().filter(|e| e.parent_id == parent).collect()
    }

    /// Export the trace as Chrome trace-event JSON (the "JSON Array
    /// Format" with a `traceEvents` wrapper), loadable in
    /// `chrome://tracing` and Perfetto. Spans become complete (`ph:"X"`)
    /// events; the query's trace ID is the `pid` and each distinct
    /// thread/partition label gets a `tid` (named via `thread_name`
    /// metadata events). Span/parent IDs ride along in `args`.
    pub fn to_chrome_trace(&self) -> String {
        let mut labels: Vec<String> = Vec::new();
        let pid = self.trace_id;
        let mut events = String::new();
        for e in &self.trace {
            let label = if e.label.is_empty() { "cc" } else { e.label.as_str() };
            let tid = match labels.iter().position(|l| l == label) {
                Some(i) => i,
                None => {
                    labels.push(label.to_string());
                    labels.len() - 1
                }
            };
            if !events.is_empty() {
                events.push(',');
            }
            let cat = e.name.split(['.', ':']).next().unwrap_or("span");
            events.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":{pid},\"tid\":{tid},\"args\":{{\"span_id\":{},\"parent_id\":{}}}}}",
                json_escape(&e.name),
                json_escape(cat),
                e.start_us,
                e.duration_us,
                e.span_id,
                e.parent_id
            ));
        }
        for (tid, label) in labels.iter().enumerate() {
            events.push_str(&format!(
                ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json_escape(label)
            ));
        }
        format!("{{\"traceEvents\":[{events}]}}")
    }

    /// A human-readable report: phase timings, then the per-operator table.
    pub fn describe(&self) -> String {
        let mut out = String::from("query profile\n");
        for s in &self.phases {
            out.push_str(&format!(
                "  {:<10} {:>10.3}ms\n",
                s.name,
                s.duration.as_secs_f64() * 1000.0
            ));
        }
        out.push_str(&self.operators.describe());
        out
    }
}
