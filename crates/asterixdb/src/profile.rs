//! Query lifecycle profiling: one [`QueryProfile`] per profiled query,
//! combining the compilation-phase spans (parse → translate → optimize →
//! jobgen → execute) with the per-operator runtime profile of the Hyracks
//! job, plus the plan texts they reconcile against.

use asterix_adm::Value;
use asterix_hyracks::{JobProfile, OperatorProfile};
use asterix_obs::SpanRecord;

/// The result of [`crate::Instance::profile`]: the query's rows plus a
/// full breakdown of where its time went.
#[derive(Clone, Debug)]
pub struct QueryProfile {
    /// Result rows, exactly as [`crate::Instance::query`] would return.
    pub rows: Vec<Value>,
    /// Lifecycle spans, in order: `parse`, `translate`, `optimize`,
    /// `jobgen`, `execute`.
    pub phases: Vec<SpanRecord>,
    /// The optimized logical plan (EXPLAIN's first component).
    pub plan: String,
    /// The Figure 6-style job description with each operator line
    /// annotated with its runtime stats (extended EXPLAIN).
    pub job: String,
    /// Per-operator tuple/frame/byte counts and busy times. Operator ids
    /// are the ones job generation assigned, so entries map back to the
    /// plan nodes shown in `job`.
    pub operators: JobProfile,
}

impl QueryProfile {
    /// Duration of one lifecycle phase, if it was recorded.
    pub fn phase(&self, name: &str) -> Option<&SpanRecord> {
        self.phases.iter().find(|s| s.name == name)
    }

    /// First operator whose name starts with `prefix` (e.g.
    /// `data-scan Mugshot.MugshotUsers`, `equi`, an index-NL join's
    /// `{dataset}.{index}` label).
    pub fn operator(&self, prefix: &str) -> Option<&OperatorProfile> {
        self.operators.find(prefix)
    }

    /// Total microseconds across the recorded phases.
    pub fn total_us(&self) -> u64 {
        self.phases.iter().map(|s| s.duration.as_micros() as u64).sum()
    }

    /// A human-readable report: phase timings, then the per-operator table.
    pub fn describe(&self) -> String {
        let mut out = String::from("query profile\n");
        for s in &self.phases {
            out.push_str(&format!(
                "  {:<10} {:>10.3}ms\n",
                s.name,
                s.duration.as_secs_f64() * 1000.0
            ));
        }
        out.push_str(&self.operators.describe());
        out
    }
}
