//! The compiled-plan cache (prepared queries).
//!
//! Query compilation (parse → translate → optimize → jobgen) dominates
//! end-to-end latency for short queries. The cache stores the *optimized
//! logical plan* of each normalized query shape — literals lifted into
//! [`asterix_algebricks::expr::LogicalExpr::Param`] slots by
//! `asterix_aql::normalize` — keyed by everything that shapes the plan:
//! the literal-stripped AST fingerprint, the session's dataverse and
//! similarity settings, and the optimizer options (minus the per-execution
//! memory grant). A hit skips parse-to-optimize entirely and re-runs only
//! job generation with the execution's parameter vector bound into the
//! `EvalCtx`, so index bounds, ordkey predicate keys, and pushed scan
//! filters all resolve against the *current* constants and the *current*
//! storage state.
//!
//! Invalidation is epoch-based: every DDL bumps the instance's catalog
//! epoch; a hit whose entry was compiled under an older epoch is discarded
//! and recompiled. Eviction is LRU under
//! [`crate::ClusterConfig::plan_cache_capacity`].

use std::collections::HashMap;
use std::sync::Arc;

use asterix_adm::Value;
use asterix_algebricks::plan::LogicalOp;
use asterix_algebricks::rules::OptimizerOptions;
use asterix_obs::{Counter, Histogram, MetricsRegistry};
use parking_lot::Mutex;

/// Everything that must match for a cached plan to be reusable.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Literal-stripped AST fingerprint (`asterix_aql::normalize`).
    pub fingerprint: String,
    /// Session dataverse — dataset name resolution happens at translate
    /// time, so `use dataverse` changes the plan.
    pub dataverse: String,
    /// Session `simfunction`/`simthreshold` — the `~=` lowering bakes the
    /// threshold into the translated plan as a constant.
    pub simfunction: String,
    pub simthreshold: String,
    /// Canonical text of the plan-shaping optimizer options and A/B knobs
    /// (see [`options_key`]).
    pub options: String,
}

/// Canonical key text for the optimizer options, excluding the per-query
/// memory grant: the grant changes per execution and is applied at job
/// generation (which a cache hit re-runs anyway), not at plan shaping.
pub fn options_key(options: &OptimizerOptions) -> String {
    let mut o = options.clone();
    o.query_mem_budget = None;
    format!("{o:?}")
}

/// One cached entry: the optimized parameterized plan and the catalog
/// epoch it was compiled under.
#[derive(Clone)]
pub struct CachedPlan {
    pub plan: Arc<LogicalOp>,
    pub epoch: u64,
    /// Number of parameter slots the plan expects.
    pub nparams: usize,
}

/// Cache counters, adopted into the instance registry under
/// `compile.plan_cache.*` / `compile.cached_bind_us`.
#[derive(Clone, Default)]
pub struct PlanCacheStats {
    pub hits: Counter,
    pub misses: Counter,
    pub evictions: Counter,
    pub invalidations: Counter,
    /// Time spent binding parameters into a cached plan (the hit-path
    /// jobgen re-run).
    pub bind_us: Histogram,
}

impl PlanCacheStats {
    fn new() -> PlanCacheStats {
        PlanCacheStats { bind_us: Histogram::duration_us(), ..Default::default() }
    }

    pub fn register_into(&self, reg: &MetricsRegistry) {
        reg.register_counter("compile.plan_cache.hits", &self.hits);
        reg.register_counter("compile.plan_cache.misses", &self.misses);
        reg.register_counter("compile.plan_cache.evictions", &self.evictions);
        reg.register_counter("compile.plan_cache.invalidations", &self.invalidations);
        reg.register_histogram("compile.cached_bind_us", &self.bind_us);
    }
}

struct Entry {
    plan: CachedPlan,
    last_used: u64,
}

struct Inner {
    map: HashMap<PlanKey, Entry>,
    tick: u64,
}

/// LRU cache of optimized parameterized plans.
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<Inner>,
    pub stats: PlanCacheStats,
}

impl PlanCache {
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity,
            inner: Mutex::new(Inner { map: HashMap::new(), tick: 0 }),
            stats: PlanCacheStats::new(),
        }
    }

    /// Look up a plan. Counts a hit only when the entry exists *and* its
    /// epoch is current; a stale entry is dropped (invalidation + miss),
    /// and an absent key is a plain miss.
    pub fn lookup(&self, key: &PlanKey, current_epoch: u64) -> Option<CachedPlan> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(e) if e.plan.epoch == current_epoch => {
                e.last_used = tick;
                self.stats.hits.inc();
                Some(e.plan.clone())
            }
            Some(_) => {
                inner.map.remove(key);
                self.stats.invalidations.inc();
                self.stats.misses.inc();
                None
            }
            None => {
                self.stats.misses.inc();
                None
            }
        }
    }

    /// Insert (or refresh) an entry, LRU-evicting when over capacity.
    pub fn insert(&self, key: PlanKey, plan: CachedPlan) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some(victim) =
                inner.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
                self.stats.evictions.inc();
            }
        }
        inner.map.insert(key, Entry { plan, last_used: tick });
    }

    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry (tests / manual reset).
    pub fn clear(&self) {
        self.inner.lock().map.clear();
    }
}

/// A query prepared with [`crate::Instance::prepare`]: the normalized
/// (literal-stripped) AST plus the literals the normalizer lifted, which
/// double as the default parameter vector. Execute it with
/// [`crate::Instance::execute_prepared`], passing either the defaults or a
/// same-length vector of replacement constants.
#[derive(Clone)]
pub struct PreparedQuery {
    pub(crate) expr: Arc<asterix_aql::Expr>,
    pub(crate) fingerprint: String,
    pub(crate) default_params: Vec<Value>,
}

impl PreparedQuery {
    /// Number of parameter slots (and the length `execute_prepared`
    /// expects of its parameter vector).
    pub fn param_count(&self) -> usize {
        self.default_params.len()
    }

    /// The literals lifted from the original statement, in slot order.
    pub fn default_params(&self) -> &[Value] {
        &self.default_params
    }

    /// The canonical fingerprint of the normalized statement.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(fp: &str) -> PlanKey {
        PlanKey {
            fingerprint: fp.into(),
            dataverse: "Default".into(),
            simfunction: "jaccard".into(),
            simthreshold: "0.5f".into(),
            options: "opts".into(),
        }
    }

    fn plan(epoch: u64) -> CachedPlan {
        CachedPlan { plan: Arc::new(LogicalOp::EmptyTupleSource), epoch, nparams: 0 }
    }

    #[test]
    fn hit_miss_and_epoch_invalidation() {
        let c = PlanCache::new(4);
        assert!(c.lookup(&key("q1"), 0).is_none());
        c.insert(key("q1"), plan(0));
        assert!(c.lookup(&key("q1"), 0).is_some());
        // DDL moved the epoch: the entry must not be served.
        assert!(c.lookup(&key("q1"), 1).is_none());
        assert_eq!(c.stats.invalidations.get(), 1);
        assert_eq!(c.stats.hits.get(), 1);
        assert_eq!(c.stats.misses.get(), 2);
        assert!(c.is_empty());
    }

    #[test]
    fn lru_eviction_order() {
        let c = PlanCache::new(2);
        c.insert(key("a"), plan(0));
        c.insert(key("b"), plan(0));
        // Touch "a" so "b" is the LRU victim.
        assert!(c.lookup(&key("a"), 0).is_some());
        c.insert(key("c"), plan(0));
        assert_eq!(c.stats.evictions.get(), 1);
        assert!(c.lookup(&key("a"), 0).is_some());
        assert!(c.lookup(&key("b"), 0).is_none());
        assert!(c.lookup(&key("c"), 0).is_some());
    }

    #[test]
    fn zero_capacity_never_stores() {
        let c = PlanCache::new(0);
        c.insert(key("a"), plan(0));
        assert!(c.lookup(&key("a"), 0).is_none());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn options_key_ignores_memory_grant() {
        let a = OptimizerOptions::default();
        let b = OptimizerOptions { query_mem_budget: Some(64 << 20), ..Default::default() };
        assert_eq!(options_key(&a), options_key(&b));
        let c = OptimizerOptions { enable_index_access: false, ..Default::default() };
        assert_ne!(options_key(&a), options_key(&c));
    }
}
