//! Top-level error type aggregating every layer.

use std::fmt;

/// Any error surfaced by the BDMS.
#[derive(Debug)]
pub enum AsterixError {
    Adm(asterix_adm::AdmError),
    Storage(asterix_storage::StorageError),
    Txn(asterix_txn::TxnError),
    Hyracks(asterix_hyracks::HyracksError),
    Parse(String),
    Translate(String),
    Catalog(String),
    External(String),
    Feed(String),
    Io(std::io::Error),
    /// Semantic errors at execution time (duplicate key, missing pk, ...).
    Execution(String),
    /// The query was cancelled (explicitly or by its deadline) and unwound
    /// cooperatively.
    Cancelled,
    /// Admission control turned the query away (queue full) or its wait
    /// for a slot timed out.
    Admission(asterix_rm::AdmissionError),
}

impl fmt::Display for AsterixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsterixError::Adm(e) => write!(f, "{e}"),
            AsterixError::Storage(e) => write!(f, "{e}"),
            AsterixError::Txn(e) => write!(f, "{e}"),
            AsterixError::Hyracks(e) => write!(f, "{e}"),
            AsterixError::Parse(m) => write!(f, "{m}"),
            AsterixError::Translate(m) => write!(f, "{m}"),
            AsterixError::Catalog(m) => write!(f, "{m}"),
            AsterixError::External(m) => write!(f, "{m}"),
            AsterixError::Feed(m) => write!(f, "{m}"),
            AsterixError::Io(e) => write!(f, "io error: {e}"),
            AsterixError::Execution(m) => write!(f, "execution error: {m}"),
            AsterixError::Cancelled => write!(f, "query cancelled"),
            AsterixError::Admission(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AsterixError {}

impl From<asterix_adm::AdmError> for AsterixError {
    fn from(e: asterix_adm::AdmError) -> Self {
        AsterixError::Adm(e)
    }
}

impl From<asterix_storage::StorageError> for AsterixError {
    fn from(e: asterix_storage::StorageError) -> Self {
        AsterixError::Storage(e)
    }
}

impl From<asterix_txn::TxnError> for AsterixError {
    fn from(e: asterix_txn::TxnError) -> Self {
        AsterixError::Txn(e)
    }
}

impl From<asterix_hyracks::HyracksError> for AsterixError {
    fn from(e: asterix_hyracks::HyracksError) -> Self {
        match e {
            asterix_hyracks::HyracksError::Cancelled => AsterixError::Cancelled,
            other => AsterixError::Hyracks(other),
        }
    }
}

impl From<asterix_rm::AdmissionError> for AsterixError {
    fn from(e: asterix_rm::AdmissionError) -> Self {
        match e {
            asterix_rm::AdmissionError::Cancelled => AsterixError::Cancelled,
            other => AsterixError::Admission(other),
        }
    }
}

impl From<std::io::Error> for AsterixError {
    fn from(e: std::io::Error) -> Self {
        AsterixError::Io(e)
    }
}

impl From<asterix_metadata::CatalogError> for AsterixError {
    fn from(e: asterix_metadata::CatalogError) -> Self {
        AsterixError::Catalog(e.0)
    }
}

impl From<asterix_external::ExternalError> for AsterixError {
    fn from(e: asterix_external::ExternalError) -> Self {
        AsterixError::External(e.to_string())
    }
}

impl From<asterix_feeds::FeedError> for AsterixError {
    fn from(e: asterix_feeds::FeedError) -> Self {
        AsterixError::Feed(e.to_string())
    }
}

impl From<asterix_aql::parser::ParseError> for AsterixError {
    fn from(e: asterix_aql::parser::ParseError) -> Self {
        AsterixError::Parse(e.to_string())
    }
}

impl From<asterix_aql::translate::TranslateError> for AsterixError {
    fn from(e: asterix_aql::translate::TranslateError) -> Self {
        AsterixError::Translate(e.to_string())
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, AsterixError>;
