//! The instance's [`MetadataProvider`] — the bridge from the Algebricks
//! compiler/interpreter to real storage — and its [`AqlCatalog`] for the
//! translator.

use std::collections::HashMap;
use std::sync::Arc;

use asterix_adm::value::Rectangle;
use asterix_adm::Value;
use asterix_algebricks::metadata::{
    IndexInfo, IndexKind, KeyBound, MetadataProvider, RawScan, ScanProjection,
};
use asterix_aql::translate::{AqlCatalog, FunctionDef};
use asterix_hyracks::ops::{RawSourceFn, SourceFn};
use asterix_hyracks::HyracksError;
use asterix_metadata::{Catalog, DatasetKind, IndexKindMeta, METADATA_DATAVERSE};
use asterix_storage::btree::ValueBound;
use asterix_storage::inverted::Tokenizer;
use parking_lot::RwLock;

use crate::dataset::{DatasetRuntime, SecondaryPartition};
use crate::error::AsterixError;

fn op_err(e: impl std::fmt::Display) -> HyracksError {
    HyracksError::Operator(e.to_string())
}

/// The executor's comparison kinds map one-to-one onto storage's.
fn cmp_kind_to_op(k: asterix_hyracks::ops::CmpKind) -> asterix_storage::CmpOp {
    use asterix_hyracks::ops::CmpKind as K;
    use asterix_storage::CmpOp as O;
    match k {
        K::Eq => O::Eq,
        K::Neq => O::Neq,
        K::Lt => O::Lt,
        K::Le => O::Le,
        K::Gt => O::Gt,
        K::Ge => O::Ge,
    }
}

/// A live system-view generator: called at scan time to materialize the
/// current records of a `Metadata.*` pseudo-dataset (`ActiveJobs`,
/// `Metrics`).
pub type SystemDatasetFn = Arc<dyn Fn() -> Vec<Value> + Send + Sync>;

/// Shared mutable instance state referenced by providers, feeds, and the
/// instance itself.
pub struct Shared {
    pub catalog: RwLock<Catalog>,
    pub datasets: RwLock<HashMap<String, Arc<DatasetRuntime>>>,
    /// Cached external dataset contents (read-only and static, §2.3).
    pub external_cache: RwLock<HashMap<String, Arc<Vec<Value>>>>,
    pub partitions: usize,
    /// Partitions per simulated node (locality domains).
    pub partitions_per_node: usize,
    /// Live system views under the `Metadata` dataverse, keyed by bare
    /// dataset name. Unlike catalog-backed metadata datasets these
    /// regenerate on every scan, so a query sees the instance's state *as
    /// of that scan* (running jobs, current metric values).
    pub system_datasets: RwLock<HashMap<String, SystemDatasetFn>>,
    /// Catalog epoch: bumped by every DDL statement. Cached compiled plans
    /// record the epoch they were built under and are invalidated when it
    /// moves, so a plan never reads a dropped or recreated dataset.
    pub epoch: std::sync::atomic::AtomicU64,
}

impl Shared {
    /// Advance the catalog epoch (call after any DDL that changes what a
    /// compiled plan could observe: datasets, indexes, types, functions,
    /// feeds, dataverses).
    pub fn bump_epoch(&self) {
        self.epoch.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    }

    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(std::sync::atomic::Ordering::SeqCst)
    }
    pub fn dataset(&self, qualified: &str) -> Option<Arc<DatasetRuntime>> {
        self.datasets.read().get(qualified).cloned()
    }

    /// Read (and cache) an external dataset's records.
    pub fn external_records(&self, qualified: &str) -> crate::Result<Arc<Vec<Value>>> {
        if let Some(c) = self.external_cache.read().get(qualified) {
            return Ok(Arc::clone(c));
        }
        let (dv, name) = qualified
            .split_once('.')
            .ok_or_else(|| AsterixError::Catalog(format!("bad dataset name {qualified}")))?;
        let catalog = self.catalog.read();
        let meta = catalog
            .dataset(dv, name)
            .ok_or_else(|| AsterixError::Catalog(format!("unknown dataset {qualified}")))?;
        let DatasetKind::External { adaptor, properties } = &meta.kind else {
            return Err(AsterixError::Catalog(format!("{qualified} is not external")));
        };
        let dataverse = catalog
            .dataverse(dv)
            .ok_or_else(|| AsterixError::Catalog(format!("unknown dataverse {dv}")))?;
        let ty = dataverse
            .types
            .get(&meta.type_name)
            .ok_or_else(|| AsterixError::Catalog(format!("unknown type {}", meta.type_name)))?;
        let resolved = dataverse.types.resolve(ty)?;
        let rt = resolved
            .as_record()
            .ok_or_else(|| AsterixError::Catalog("external type must be a record".into()))?;
        let records = asterix_external::read_external(adaptor, properties, rt, &dataverse.types)?;
        let arc = Arc::new(records);
        self.external_cache.write().insert(qualified.to_string(), Arc::clone(&arc));
        Ok(arc)
    }

    /// Register a live system view queryable as `Metadata.{name}`.
    pub fn register_system_dataset(&self, name: &str, f: SystemDatasetFn) {
        self.system_datasets.write().insert(name.to_string(), f);
    }

    fn metadata_records(&self, qualified: &str) -> Option<Vec<Value>> {
        let (dv, name) = qualified.split_once('.')?;
        if dv != METADATA_DATAVERSE {
            return None;
        }
        if let Some(f) = self.system_datasets.read().get(name) {
            return Some(f());
        }
        self.catalog.read().metadata_dataset_records(name)
    }
}

/// The provider handed to the compiler/interpreter.
pub struct InstanceProvider {
    pub shared: Arc<Shared>,
}

fn to_value_bound(b: KeyBound) -> ValueBound {
    match b {
        KeyBound::Unbounded => ValueBound::Unbounded,
        KeyBound::Inclusive(v) => ValueBound::Included(vec![v]),
        KeyBound::Exclusive(v) => ValueBound::Excluded(vec![v]),
    }
}

impl InstanceProvider {
    fn runtime(&self, dataset: &str) -> asterix_hyracks::Result<Arc<DatasetRuntime>> {
        self.shared.dataset(dataset).ok_or_else(|| op_err(format!("unknown dataset {dataset}")))
    }

    /// Records of non-stored datasets (metadata / external), if applicable.
    fn virtual_records(&self, dataset: &str) -> Option<asterix_hyracks::Result<Arc<Vec<Value>>>> {
        if let Some(records) = self.shared.metadata_records(dataset) {
            return Some(Ok(Arc::new(records)));
        }
        let is_external = {
            let catalog = self.shared.catalog.read();
            dataset.split_once('.').is_some_and(|(dv, n)| {
                catalog
                    .dataset(dv, n)
                    .is_some_and(|m| matches!(m.kind, DatasetKind::External { .. }))
            })
        };
        if is_external {
            return Some(self.shared.external_records(dataset).map_err(op_err));
        }
        None
    }

    fn coerce_bounds(
        &self,
        ds: &Arc<DatasetRuntime>,
        index: Option<&str>,
        b: KeyBound,
    ) -> KeyBound {
        match (index, b) {
            (None, KeyBound::Inclusive(v)) => {
                KeyBound::Inclusive(ds.coerce_pk(&[v]).pop().unwrap())
            }
            (None, KeyBound::Exclusive(v)) => {
                KeyBound::Exclusive(ds.coerce_pk(&[v]).pop().unwrap())
            }
            (Some(ix), KeyBound::Inclusive(v)) => {
                let meta = ds.secondary(ix).map(|s| s.meta.clone());
                match meta {
                    Some(m) => KeyBound::Inclusive(ds.coerce_secondary_key(&m, &v)),
                    None => KeyBound::Inclusive(v),
                }
            }
            (Some(ix), KeyBound::Exclusive(v)) => {
                let meta = ds.secondary(ix).map(|s| s.meta.clone());
                match meta {
                    Some(m) => KeyBound::Exclusive(ds.coerce_secondary_key(&m, &v)),
                    None => KeyBound::Exclusive(v),
                }
            }
            (_, KeyBound::Unbounded) => KeyBound::Unbounded,
        }
    }
}

impl MetadataProvider for InstanceProvider {
    fn partitions(&self) -> usize {
        self.shared.partitions
    }

    fn partitions_per_node(&self) -> usize {
        self.shared.partitions_per_node
    }

    fn catalog_epoch(&self) -> u64 {
        self.shared.current_epoch()
    }

    fn dataset_exists(&self, dataset: &str) -> bool {
        self.shared.dataset(dataset).is_some()
            || self.shared.metadata_records(dataset).is_some()
            || {
                let catalog = self.shared.catalog.read();
                dataset.split_once('.').is_some_and(|(dv, n)| catalog.dataset(dv, n).is_some())
            }
    }

    fn primary_key_fields(&self, dataset: &str) -> Vec<String> {
        self.shared.dataset(dataset).map(|d| d.meta.primary_key.clone()).unwrap_or_default()
    }

    fn indexes(&self, dataset: &str) -> Vec<IndexInfo> {
        let Some(ds) = self.shared.dataset(dataset) else { return Vec::new() };
        let secs = ds.secondaries.read().clone();
        secs.iter()
            .map(|s| IndexInfo {
                name: s.meta.name.clone(),
                kind: match &s.meta.kind {
                    IndexKindMeta::BTree => IndexKind::BTree,
                    IndexKindMeta::RTree => IndexKind::RTree,
                    IndexKindMeta::Keyword => IndexKind::Keyword,
                    IndexKindMeta::NGram(k) => IndexKind::NGram(*k),
                },
                fields: s.meta.fields.clone(),
            })
            .collect()
    }

    fn scan_source(&self, dataset: &str) -> asterix_hyracks::Result<SourceFn> {
        if let Some(records) = self.virtual_records(dataset) {
            let records = records?;
            // Virtual datasets are spread round-robin across partitions so
            // downstream operators still parallelize.
            return Ok(Arc::new(move |partition, nparts, emit| {
                for (i, r) in records.iter().enumerate() {
                    if i % nparts == partition {
                        emit(vec![r.clone()])?;
                    }
                }
                Ok(())
            }));
        }
        let ds = self.runtime(dataset)?;
        Ok(Arc::new(move |partition, _nparts, emit| {
            let records = ds.scan_partition(partition).map_err(op_err)?;
            for r in records {
                emit(vec![r])?;
            }
            Ok(())
        }))
    }

    fn raw_scan_source(
        &self,
        dataset: &str,
        projection: Option<&ScanProjection>,
    ) -> asterix_hyracks::Result<Option<RawScan>> {
        // Only stored datasets serve serialized tuples; metadata/external
        // datasets (and unknown names, which must error through
        // `scan_source`) take the decoded fallback path.
        let Some(ds) = self.shared.dataset(dataset) else { return Ok(None) };
        // Projecting scan: the compiler proved the query only touches
        // these fields, so columnar components late-materialize just
        // those columns (and decide the pushed filter on raw column
        // bytes). Declined when the columnar knob is off.
        if let Some(proj) = projection {
            if ds.columnar_scans_enabled() {
                let storage_proj = asterix_storage::Projection {
                    fields: proj.fields.clone(),
                    filter: proj.filter.as_ref().map(|f| asterix_storage::ColumnFilter {
                        field: f.field.clone(),
                        op: cmp_kind_to_op(f.op),
                        key: f.key.clone(),
                    }),
                };
                let source: RawSourceFn = Arc::new(move |partition, _nparts, emit| {
                    let mut emit_err: Option<HyracksError> = None;
                    ds.scan_partition_projected(partition, &storage_proj, &mut |bytes| match emit(
                        bytes,
                    ) {
                        Ok(()) => true,
                        Err(e) => {
                            emit_err = Some(e);
                            false
                        }
                    })
                    .map_err(op_err)?;
                    match emit_err {
                        Some(e) => Err(e),
                        None => Ok(()),
                    }
                });
                return Ok(Some(RawScan { source, projected: true }));
            }
        }
        let source: RawSourceFn = Arc::new(move |partition, _nparts, emit| {
            let mut emit_err: Option<HyracksError> = None;
            ds.scan_partition_raw(partition, &mut |bytes| match emit(bytes) {
                Ok(()) => true,
                Err(e) => {
                    emit_err = Some(e);
                    false
                }
            })
            .map_err(op_err)?;
            match emit_err {
                Some(e) => Err(e),
                None => Ok(()),
            }
        });
        Ok(Some(RawScan { source, projected: false }))
    }

    fn primary_range_source(
        &self,
        dataset: &str,
        lo: KeyBound,
        hi: KeyBound,
    ) -> asterix_hyracks::Result<SourceFn> {
        let ds = self.runtime(dataset)?;
        let lo = to_value_bound(self.coerce_bounds(&ds, None, lo));
        let hi = to_value_bound(self.coerce_bounds(&ds, None, hi));
        Ok(Arc::new(move |partition, _nparts, emit| {
            let rows = ds.primary[partition].range(&lo, &hi).map_err(op_err)?;
            for (_, bytes) in rows {
                let v = asterix_adm::serde::decode_typed(&ds.registry, &bytes, &ds.datatype)
                    .map_err(op_err)?;
                emit(vec![v])?;
            }
            Ok(())
        }))
    }

    fn btree_search_source(
        &self,
        dataset: &str,
        index: &str,
        lo: KeyBound,
        hi: KeyBound,
    ) -> asterix_hyracks::Result<SourceFn> {
        let ds = self.runtime(dataset)?;
        let ix = ds.secondary(index).ok_or_else(|| op_err(format!("unknown index {index}")))?;
        let lo = to_value_bound(self.coerce_bounds(&ds, Some(index), lo));
        let hi = to_value_bound(self.coerce_bounds(&ds, Some(index), hi));
        Ok(Arc::new(move |partition, _nparts, emit| {
            let SecondaryPartition::BTree(t) = &ix.partitions[partition] else {
                return Err(op_err(format!("{} is not a btree index", ix.meta.name)));
            };
            let mut err = None;
            t.range_with(&lo, &hi, |full_key, _| {
                let (_, pk) = t.split_key(full_key);
                match emit(pk.to_vec()) {
                    Ok(()) => true,
                    Err(e) => {
                        err = Some(e);
                        false
                    }
                }
            })
            .map_err(op_err)?;
            match err {
                Some(e) => Err(e),
                None => Ok(()),
            }
        }))
    }

    fn rtree_search_source(
        &self,
        dataset: &str,
        index: &str,
        query: Rectangle,
    ) -> asterix_hyracks::Result<SourceFn> {
        let ds = self.runtime(dataset)?;
        let ix = ds.secondary(index).ok_or_else(|| op_err(format!("unknown index {index}")))?;
        Ok(Arc::new(move |partition, _nparts, emit| {
            let SecondaryPartition::RTree(t) = &ix.partitions[partition] else {
                return Err(op_err(format!("{} is not an rtree index", ix.meta.name)));
            };
            for pk in t.search(&query).map_err(op_err)? {
                emit(pk)?;
            }
            Ok(())
        }))
    }

    fn inverted_search_source(
        &self,
        dataset: &str,
        index: &str,
        tokens: Vec<String>,
        threshold: usize,
    ) -> asterix_hyracks::Result<SourceFn> {
        let ds = self.runtime(dataset)?;
        let ix = ds.secondary(index).ok_or_else(|| op_err(format!("unknown index {index}")))?;
        Ok(Arc::new(move |partition, _nparts, emit| {
            let SecondaryPartition::Inverted(t) = &ix.partitions[partition] else {
                return Err(op_err(format!("{} is not an inverted index", ix.meta.name)));
            };
            for pk in t.t_occurrence(&tokens, threshold).map_err(op_err)? {
                emit(pk)?;
            }
            Ok(())
        }))
    }

    fn primary_lookup(
        &self,
        dataset: &str,
    ) -> asterix_hyracks::Result<
        Arc<dyn Fn(usize, &[Value]) -> asterix_hyracks::Result<Option<Value>> + Send + Sync>,
    > {
        let ds = self.runtime(dataset)?;
        Ok(Arc::new(move |partition, pk| ds.get_in_partition(partition, pk).map_err(op_err)))
    }

    fn scan_all(&self, dataset: &str) -> asterix_hyracks::Result<Vec<Value>> {
        if let Some(records) = self.virtual_records(dataset) {
            return Ok(records?.as_ref().clone());
        }
        let ds = self.runtime(dataset)?;
        let mut out = Vec::new();
        for p in 0..ds.partitions() {
            out.extend(ds.scan_partition(p).map_err(op_err)?);
        }
        Ok(out)
    }

    fn lookup_pk(&self, dataset: &str, pk: &[Value]) -> asterix_hyracks::Result<Option<Value>> {
        let ds = self.runtime(dataset)?;
        ds.get(pk).map_err(op_err)
    }

    fn primary_range_all(
        &self,
        dataset: &str,
        lo: KeyBound,
        hi: KeyBound,
    ) -> asterix_hyracks::Result<Vec<Value>> {
        let src = self.primary_range_source(dataset, lo, hi)?;
        let nparts = self.partitions();
        let mut out = Vec::new();
        for p in 0..nparts {
            src(p, nparts, &mut |mut t| {
                out.push(t.pop().unwrap());
                Ok(())
            })?;
        }
        Ok(out)
    }

    fn btree_search_all(
        &self,
        dataset: &str,
        index: &str,
        lo: KeyBound,
        hi: KeyBound,
    ) -> asterix_hyracks::Result<Vec<Vec<Value>>> {
        let src = self.btree_search_source(dataset, index, lo, hi)?;
        let nparts = self.partitions();
        let mut out = Vec::new();
        for p in 0..nparts {
            src(p, nparts, &mut |pk| {
                out.push(pk);
                Ok(())
            })?;
        }
        Ok(out)
    }

    fn rtree_search_all(
        &self,
        dataset: &str,
        index: &str,
        query: &Rectangle,
    ) -> asterix_hyracks::Result<Vec<Vec<Value>>> {
        let src = self.rtree_search_source(dataset, index, *query)?;
        let nparts = self.partitions();
        let mut out = Vec::new();
        for p in 0..nparts {
            src(p, nparts, &mut |pk| {
                out.push(pk);
                Ok(())
            })?;
        }
        Ok(out)
    }

    fn inverted_search_all(
        &self,
        dataset: &str,
        index: &str,
        tokens: &[String],
        threshold: usize,
    ) -> asterix_hyracks::Result<Vec<Vec<Value>>> {
        let src = self.inverted_search_source(dataset, index, tokens.to_vec(), threshold)?;
        let nparts = self.partitions();
        let mut out = Vec::new();
        for p in 0..nparts {
            src(p, nparts, &mut |pk| {
                out.push(pk);
                Ok(())
            })?;
        }
        Ok(out)
    }
}

/// The translator-facing catalog: resolves names against the session's
/// current dataverse and looks up UDFs (re-parsed from stored source).
pub struct SessionCatalog {
    pub shared: Arc<Shared>,
    pub current_dataverse: String,
}

impl AqlCatalog for SessionCatalog {
    fn resolve_dataset(&self, name: &str) -> Option<String> {
        let catalog = self.shared.catalog.read();
        if let Some(q) = catalog.resolve_dataset(&self.current_dataverse, name) {
            return Some(q);
        }
        // Metadata virtual datasets (catalog-backed and live system views).
        if let Some((dv, n)) = name.split_once('.') {
            if dv == METADATA_DATAVERSE
                && (self.shared.system_datasets.read().contains_key(n)
                    || catalog.metadata_dataset_records(n).is_some())
            {
                return Some(name.to_string());
            }
        }
        None
    }

    fn function(&self, name: &str, arity: usize) -> Option<FunctionDef> {
        let catalog = self.shared.catalog.read();
        let dv = catalog.dataverse(&self.current_dataverse)?;
        let f = dv.functions.get(name)?;
        if f.params.len() != arity {
            return None;
        }
        // The stored source is the whole `create function` statement;
        // re-parse it and pull out the body.
        let stmts = asterix_aql::parser::parse_statements(&f.body_src).ok()?;
        match stmts.into_iter().next()? {
            asterix_aql::ast::Statement::CreateFunction { body, params, .. } => {
                Some(FunctionDef { params, body })
            }
            _ => None,
        }
    }
}

/// Find the tokenizer of an inverted index (used by fuzzy-search helpers).
pub fn tokenizer_of(ds: &DatasetRuntime, index: &str) -> Option<Tokenizer> {
    ds.secondary(index).map(|s| match &s.meta.kind {
        IndexKindMeta::Keyword => Tokenizer::Keyword,
        IndexKindMeta::NGram(k) => Tokenizer::NGram(*k),
        _ => Tokenizer::Keyword,
    })
}
