//! Live system views: the record builders behind the queryable
//! `Metadata.ActiveJobs` / `Metadata.Metrics` pseudo-datasets and the
//! [`SystemSnapshot`] returned by `Instance::system_snapshot`.
//!
//! Both views regenerate on every scan, so ordinary AQL over them observes
//! the instance's state as of that scan — running jobs with live tuple
//! progress, current metric values — with no storage involved.

use asterix_adm::{Record, Value};
use asterix_obs::{json_escape, MetricValue};
use asterix_rm::JobInfo;

/// One records-view of `Metadata.ActiveJobs`: queued/running/cancelling
/// queries with their memory grants and live tuple progress.
pub fn active_jobs_records(jobs: &[JobInfo]) -> Vec<Value> {
    jobs.iter()
        .map(|j| {
            Value::record(Record::from_fields([
                ("JobId", Value::Int64(j.id as i64)),
                ("State", Value::string(j.state.name())),
                ("Description", Value::string(&j.description)),
                ("MemGrantedBytes", Value::Int64(j.mem_granted as i64)),
                ("Tuples", Value::Int64(j.tuples as i64)),
                ("TraceId", Value::Int64(j.trace_id as i64)),
            ]))
        })
        .collect()
}

/// One records-view of `Metadata.Metrics`: every registered metric as a
/// record (histograms carry count/sum/max plus interpolated quantiles).
pub fn metrics_records(snapshot: &[(String, MetricValue)]) -> Vec<Value> {
    snapshot
        .iter()
        .map(|(name, v)| {
            let mut fields = vec![("Name", Value::string(name))];
            match v {
                MetricValue::Counter(n) => {
                    fields.push(("Kind", Value::string("counter")));
                    fields.push(("Value", Value::Int64(*n as i64)));
                }
                MetricValue::Gauge { value, peak } => {
                    fields.push(("Kind", Value::string("gauge")));
                    fields.push(("Value", Value::Int64(*value)));
                    fields.push(("Peak", Value::Int64(*peak)));
                }
                MetricValue::Histogram { count, sum, max, p50, p95, p99, .. } => {
                    fields.push(("Kind", Value::string("histogram")));
                    fields.push(("Count", Value::Int64(*count as i64)));
                    fields.push(("Sum", Value::Int64(*sum as i64)));
                    fields.push(("Max", Value::Int64(*max as i64)));
                    fields.push(("P50", Value::Int64(*p50 as i64)));
                    fields.push(("P95", Value::Int64(*p95 as i64)));
                    fields.push(("P99", Value::Int64(*p99 as i64)));
                }
            }
            Value::record(Record::from_fields(fields))
        })
        .collect()
}

/// A point-in-time view of the whole instance: the workload manager's jobs
/// table plus a full metrics snapshot, stamped with the observability
/// clock.
#[derive(Clone, Debug)]
pub struct SystemSnapshot {
    /// Microseconds since the process observability epoch.
    pub ts_us: u64,
    /// Queued/running/cancelling queries (see [`JobInfo`]).
    pub jobs: Vec<JobInfo>,
    /// Every registered metric's current value.
    pub metrics: Vec<(String, MetricValue)>,
}

impl SystemSnapshot {
    /// JSON rendering: `{"ts_us":…,"jobs":[…],"metrics":{…}}` (histogram
    /// buckets elided; quantiles retained).
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"ts_us\":{},\"jobs\":[", self.ts_us);
        for (i, j) in self.jobs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":{},\"state\":\"{}\",\"description\":\"{}\",\"mem_granted\":{},\
                 \"tuples\":{},\"trace_id\":{}}}",
                j.id,
                json_escape(j.state.name()),
                json_escape(&j.description),
                j.mem_granted,
                j.tuples,
                j.trace_id
            ));
        }
        out.push_str("],\"metrics\":{");
        for (i, (name, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":", json_escape(name)));
            match v {
                MetricValue::Counter(n) => out.push_str(&n.to_string()),
                MetricValue::Gauge { value, peak } => {
                    out.push_str(&format!("{{\"value\":{value},\"peak\":{peak}}}"));
                }
                MetricValue::Histogram { count, sum, max, p50, p95, p99, .. } => {
                    out.push_str(&format!(
                        "{{\"count\":{count},\"sum\":{sum},\"max\":{max},\
                         \"p50\":{p50},\"p95\":{p95},\"p99\":{p99}}}"
                    ));
                }
            }
        }
        out.push_str("}}");
        out
    }
}
