//! Dataset-runtime behaviors below the AQL surface: partition routing,
//! key coercion, index backfill, storage accounting, and direct storage
//! reads.

use std::sync::Arc;

use asterix_adm::Value;
use asterixdb::{ClusterConfig, Instance};

fn setup() -> (Arc<Instance>, tempfile::TempDir) {
    let dir = tempfile::TempDir::new().unwrap();
    let instance = Instance::open(ClusterConfig::small(dir.path())).unwrap();
    instance
        .execute(
            r#"
        create dataverse U;
        use dataverse U;
        create type T as open { id: int32, v: int64, text: string };
        create dataset D(T) primary key id;
    "#,
        )
        .unwrap();
    (instance, dir)
}

#[test]
fn hash_partitioning_spreads_and_routes_records() {
    let (instance, _d) = setup();
    let ds = instance.dataset("D").unwrap();
    for i in 0..200i64 {
        ds.insert(
            &asterix_adm::parse::parse_value(&format!(
                "{{ \"id\": {i}, \"v\": {i}, \"text\": \"x\" }}"
            ))
            .unwrap(),
        )
        .unwrap();
    }
    // All partitions hold data, the counts sum, and point reads route to
    // the partition that owns the key.
    let mut total = 0;
    let mut nonempty = 0;
    for p in 0..ds.partitions() {
        let n = ds.scan_partition(p).unwrap().len();
        total += n;
        if n > 0 {
            nonempty += 1;
        }
    }
    assert_eq!(total, 200);
    assert_eq!(nonempty, ds.partitions(), "every partition owns a share");
    for i in [0i64, 13, 77, 199] {
        let pk = vec![Value::Int64(i)];
        let p = ds.partition_of(&ds.coerce_pk(&pk));
        assert!(ds.get_in_partition(p, &pk).unwrap().is_some());
        // The same key is absent from every other partition.
        for q in 0..ds.partitions() {
            if q != p {
                assert!(ds.get_in_partition(q, &pk).unwrap().is_none());
            }
        }
    }
}

#[test]
fn pk_coercion_matches_declared_width() {
    let (instance, _d) = setup();
    let ds = instance.dataset("D").unwrap();
    ds.insert(
        &asterix_adm::parse::parse_value("{ \"id\": 7, \"v\": 1, \"text\": \"a\" }").unwrap(),
    )
    .unwrap();
    // The declared pk type is int32; an int64 probe must still hit.
    assert!(ds.get(&[Value::Int64(7)]).unwrap().is_some());
    assert!(ds.get(&[Value::Int32(7)]).unwrap().is_some());
    assert!(ds.get(&[Value::Int64(8)]).unwrap().is_none());
}

#[test]
fn index_backfill_covers_existing_records() {
    let (instance, _d) = setup();
    let ds = instance.dataset("D").unwrap();
    for i in 0..50i64 {
        ds.insert(
            &asterix_adm::parse::parse_value(&format!(
                "{{ \"id\": {i}, \"v\": {}, \"text\": \"t\" }}",
                i % 5
            ))
            .unwrap(),
        )
        .unwrap();
    }
    // Create the index *after* the data exists: backfill must cover it.
    instance.execute("use dataverse U; create index vIdx on D(v);").unwrap();
    let rows = instance.query("for $d in dataset D where $d.v = 2 return $d.id;").unwrap();
    assert_eq!(rows.len(), 10);
    let (plan, _) = instance.explain("for $d in dataset D where $d.v = 2 return $d.id;").unwrap();
    assert!(plan.contains("vIdx"), "{plan}");
}

#[test]
fn deletes_clean_secondary_indexes() {
    let (instance, _d) = setup();
    instance.execute("use dataverse U; create index vIdx on D(v);").unwrap();
    let ds = instance.dataset("D").unwrap();
    for i in 0..20i64 {
        ds.insert(
            &asterix_adm::parse::parse_value(&format!(
                "{{ \"id\": {i}, \"v\": 1, \"text\": \"t\" }}"
            ))
            .unwrap(),
        )
        .unwrap();
    }
    for i in 0..10i64 {
        assert!(ds.delete_by_pk(&[Value::Int64(i)]).unwrap());
    }
    // Deleting a missing key reports false, not an error.
    assert!(!ds.delete_by_pk(&[Value::Int64(999)]).unwrap());
    let rows = instance.query("for $d in dataset D where $d.v = 1 return $d.id;").unwrap();
    assert_eq!(rows.len(), 10, "index must not return deleted records");
}

#[test]
fn storage_accounting_grows_and_flushes() {
    let (instance, _d) = setup();
    let ds = instance.dataset("D").unwrap();
    let before = ds.size_bytes();
    for i in 0..500i64 {
        ds.insert(
            &asterix_adm::parse::parse_value(&format!(
                "{{ \"id\": {i}, \"v\": {i}, \"text\": \"payload payload payload\" }}"
            ))
            .unwrap(),
        )
        .unwrap();
    }
    let in_memory = ds.size_bytes();
    assert!(in_memory > before);
    ds.flush_all().unwrap();
    let on_disk = ds.size_bytes();
    assert!(on_disk > 0);
    assert_eq!(ds.count().unwrap(), 500);
}

#[test]
fn validation_rejects_wrong_types_on_insert_path() {
    let (instance, _d) = setup();
    let ds = instance.dataset("D").unwrap();
    // v declared int64; a string is rejected.
    let bad =
        asterix_adm::parse::parse_value("{ \"id\": 1, \"v\": \"nope\", \"text\": \"x\" }").unwrap();
    assert!(ds.insert(&bad).is_err());
    // Missing pk rejected.
    let no_pk = asterix_adm::parse::parse_value("{ \"v\": 4, \"text\": \"x\" }").unwrap();
    assert!(ds.insert(&no_pk).is_err());
    assert_eq!(ds.count().unwrap(), 0);
}
