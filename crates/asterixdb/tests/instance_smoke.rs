//! End-to-end smoke tests for the full BDMS stack: DDL → DML → queries →
//! indexes → recovery → feeds.

use std::sync::Arc;

use asterix_adm::Value;
use asterixdb::{ClusterConfig, Instance};

fn open_instance(dir: &std::path::Path) -> Arc<Instance> {
    Instance::open(ClusterConfig::small(dir)).unwrap()
}

const DDL: &str = r#"
    drop dataverse Test if exists;
    create dataverse Test;
    use dataverse Test;
    create type UserType as open {
        id: int32,
        name: string,
        age: int32
    };
    create dataset Users(UserType) primary key id;
"#;

fn seed(instance: &Instance, n: i64) {
    for i in 0..n {
        instance
            .execute(&format!(
                "insert into dataset Users ({{ \"id\": {i}, \"name\": \"user{i}\", \"age\": {} }});",
                20 + (i % 50)
            ))
            .unwrap();
    }
}

#[test]
fn ddl_insert_query_roundtrip() {
    let dir = tempfile::TempDir::new().unwrap();
    let instance = open_instance(dir.path());
    instance.execute(DDL).unwrap();
    seed(&instance, 25);

    let rows = instance.query("for $u in dataset Users where $u.age >= 40 return $u.name").unwrap();
    // ages cycle 20..69; >= 40 for i%50 >= 20 → i in 20..25 → 5 users.
    assert_eq!(rows.len(), 5);

    // Order by + limit.
    let rows =
        instance.query("for $u in dataset Users order by $u.id desc limit 3 return $u.id").unwrap();
    assert_eq!(rows, vec![Value::Int32(24), Value::Int32(23), Value::Int32(22)]);

    // 1+1 is a valid AQL query.
    let rows = instance.query("1+1;").unwrap();
    assert_eq!(rows, vec![Value::Int64(2)]);
}

#[test]
fn secondary_index_and_explain() {
    let dir = tempfile::TempDir::new().unwrap();
    let instance = open_instance(dir.path());
    instance.execute(DDL).unwrap();
    seed(&instance, 50);
    instance.execute("create index ageIdx on Users(age);").unwrap();

    let (plan, job) =
        instance.explain("for $u in dataset Users where $u.age = 33 return $u;").unwrap();
    assert!(plan.contains("btree-search Test.Users.ageIdx"), "{plan}");
    // Figure 6 shape in the job: secondary search, sort, primary lookup,
    // post-validation select.
    assert!(job.contains("btree-search Test.Users.ageIdx"), "{job}");
    assert!(job.contains("sort $pk"), "{job}");
    assert!(job.contains("btree-search Test.Users (primary)"), "{job}");
    assert!(job.contains("select post-validate"), "{job}");

    let rows = instance.query("for $u in dataset Users where $u.age = 33 return $u.id").unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0], Value::Int32(13));

    // Same result with index access disabled (scan path).
    instance.optimizer_options.write().enable_index_access = false;
    let rows2 = instance.query("for $u in dataset Users where $u.age = 33 return $u.id").unwrap();
    assert_eq!(rows, rows2);
}

#[test]
fn delete_and_metadata_datasets() {
    let dir = tempfile::TempDir::new().unwrap();
    let instance = open_instance(dir.path());
    instance.execute(DDL).unwrap();
    seed(&instance, 10);

    let results = instance.execute("delete $u from dataset Users where $u.id >= 7;").unwrap();
    assert_eq!(results[0].count(), 3);
    let rows = instance.query("for $u in dataset Users return $u.id").unwrap();
    assert_eq!(rows.len(), 7);

    // Query 1: metadata is data.
    let ds = instance.query("for $ds in dataset Metadata.Dataset return $ds;").unwrap();
    assert_eq!(ds.len(), 1);
    assert_eq!(ds[0].field("DatasetName"), Value::string("Users"));
    let ix = instance.query("for $ix in dataset Metadata.Index return $ix;").unwrap();
    assert_eq!(ix.len(), 1); // just the primary index
}

#[test]
fn crash_recovery_restores_unflushed_records() {
    let dir = tempfile::TempDir::new().unwrap();
    {
        let instance = open_instance(dir.path());
        instance.execute(DDL).unwrap();
        seed(&instance, 30);
        // Drop without flushing: in-memory LSM components vanish, the WAL
        // survives.
    }
    {
        let instance = open_instance(dir.path());
        instance.execute("use dataverse Test;").unwrap();
        let rows = instance.query("for $u in dataset Users return $u.id").unwrap();
        assert_eq!(rows.len(), 30, "recovery must replay committed inserts");
        // And the data is still writable/consistent.
        instance
            .execute("insert into dataset Users ({ \"id\": 100, \"name\": \"x\", \"age\": 1 });")
            .unwrap();
        let rows = instance.query("for $u in dataset Users return $u").unwrap();
        assert_eq!(rows.len(), 31);
    }
}

#[test]
fn duplicate_key_rejected() {
    let dir = tempfile::TempDir::new().unwrap();
    let instance = open_instance(dir.path());
    instance.execute(DDL).unwrap();
    instance
        .execute("insert into dataset Users ({ \"id\": 1, \"name\": \"a\", \"age\": 5 });")
        .unwrap();
    let err = instance
        .execute("insert into dataset Users ({ \"id\": 1, \"name\": \"b\", \"age\": 6 });")
        .unwrap_err();
    assert!(err.to_string().contains("duplicate"), "{err}");
}

#[test]
fn closed_type_validation_on_insert() {
    let dir = tempfile::TempDir::new().unwrap();
    let instance = open_instance(dir.path());
    instance
        .execute(
            r#"
        create dataverse C;
        use dataverse C;
        create type T as closed { id: int32, note: string? };
        create dataset D(T) primary key id;
    "#,
        )
        .unwrap();
    // Extra field rejected by the closed type.
    let err =
        instance.execute("insert into dataset D ({ \"id\": 1, \"extra\": true });").unwrap_err();
    assert!(err.to_string().contains("extra"), "{err}");
    // Optional field may be absent.
    instance.execute("insert into dataset D ({ \"id\": 1 });").unwrap();
    assert_eq!(instance.query("for $d in dataset D return $d").unwrap().len(), 1);
}

#[test]
fn hash_join_and_group_by_through_aql() {
    let dir = tempfile::TempDir::new().unwrap();
    let instance = open_instance(dir.path());
    instance.execute(DDL).unwrap();
    instance
        .execute(
            r#"
        use dataverse Test;
        create type MsgType as open { mid: int32, author: int32, message: string };
        create dataset Msgs(MsgType) primary key mid;
    "#,
        )
        .unwrap();
    seed(&instance, 10);
    for m in 0..30 {
        instance
            .execute(&format!(
                "insert into dataset Msgs ({{ \"mid\": {m}, \"author\": {}, \"message\": \"m{m}\" }});",
                m % 10
            ))
            .unwrap();
    }
    // Equijoin (Query 3 shape) — must compile to a hash join.
    let (plan, _) = instance
        .explain(
            r#"for $u in dataset Users
               for $m in dataset Msgs
               where $m.author = $u.id
               return { "uname": $u.name, "message": $m.message };"#,
        )
        .unwrap();
    assert!(plan.contains("hash-join"), "{plan}");
    let rows = instance
        .query(
            r#"for $u in dataset Users
               for $m in dataset Msgs
               where $m.author = $u.id
               return { "uname": $u.name, "message": $m.message };"#,
        )
        .unwrap();
    assert_eq!(rows.len(), 30);

    // Grouped aggregation (Query 11 shape).
    let rows = instance
        .query(
            r#"for $m in dataset Msgs
               group by $aid := $m.author with $m
               let $cnt := count($m)
               order by $cnt desc, $aid asc
               limit 3
               return { "author": $aid, "cnt": $cnt };"#,
        )
        .unwrap();
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0].field("cnt"), Value::Int64(3));

    // Nested subquery (Query 4 shape: left outer semantics via nesting).
    let rows = instance
        .query(
            r#"for $u in dataset Users
               where $u.id < 2
               return { "name": $u.name,
                        "msgs": for $m in dataset Msgs
                                where $m.author = $u.id
                                return $m.message };"#,
        )
        .unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].field("msgs").as_list().unwrap().len(), 3);
}

#[test]
fn feed_ingestion_via_socket_adaptor() {
    let dir = tempfile::TempDir::new().unwrap();
    let instance = open_instance(dir.path());
    instance.execute(DDL).unwrap();
    instance
        .execute(
            r#"
        use dataverse Test;
        create feed userfeed using socket_adaptor
            (("sockets"="127.0.0.1:10001"), ("format"="adm"));
        connect feed userfeed to dataset Users;
    "#,
        )
        .unwrap();
    let endpoint = instance.feed_endpoint("userfeed").unwrap();
    for i in 0..20 {
        endpoint
            .send_text(format!("{{ \"id\": {i}, \"name\": \"feed{i}\", \"age\": {} }}", 30 + i))
            .unwrap();
    }
    assert!(instance.feed_wait_stored("userfeed", 20, std::time::Duration::from_secs(5)));
    instance.execute("disconnect feed userfeed from dataset Users;").unwrap();
    let rows = instance.query("for $u in dataset Users return $u").unwrap();
    assert_eq!(rows.len(), 20);
}

#[test]
fn external_dataset_query() {
    let dir = tempfile::TempDir::new().unwrap();
    let log_path = dir.path().join("access.log");
    std::fs::write(
        &log_path,
        "12.34.56.78|2013-12-22T12:13:32-0800|Nicholas|GET|/|200|2279\n\
         12.34.56.78|2013-12-22T12:13:33-0800|Nicholas|GET|/list|200|5299\n\
         99.88.77.66|2013-12-23T01:00:00-0800|Ada|GET|/|404|100\n",
    )
    .unwrap();
    let instance = open_instance(&dir.path().join("db"));
    instance
        .execute(&format!(
            r#"
        create dataverse Logs;
        use dataverse Logs;
        create type AccessLogType as closed {{
            ip: string, time: string, user: string, verb: string,
            path: string, stat: int32, size: int32
        }};
        create external dataset AccessLog(AccessLogType)
            using localfs
            (("path"="localhost://{}"),
             ("format"="delimited-text"),
             ("delimiter"="|"));
    "#,
            log_path.display()
        ))
        .unwrap();
    let rows =
        instance.query("for $l in dataset AccessLog where $l.stat = 200 return $l.user").unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0], Value::string("Nicholas"));
}
