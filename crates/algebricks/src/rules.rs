//! The rewrite rules (§4.2, §5.1).
//!
//! The paper is explicit that AsterixDB has no cost-based optimizer —
//! instead "a set of fairly sophisticated but safe rules [...] determine
//! the general shape of a physical query plan":
//!
//! * "(a) AsterixDB always chooses to use index-based access for selections
//!   if an index is available" — [`introduce_index_access`];
//! * "(b) it always chooses parallel hash-joins over other join techniques
//!   for equijoins" — [`extract_equijoins`], unless an `indexnl` hint
//!   overrides it (Query 14);
//! * constant folding, conjunction splitting, and select pushdown keep the
//!   plans normalized so the two rules above can fire;
//! * limits are deliberately **not** pushed into sorts (§5.3.2 calls this
//!   out as future work); `OptimizerOptions::push_limit_into_sort` enables
//!   it anyway for the ablation benchmark.

use std::sync::Arc;

use asterix_adm::functions::FunctionContext;
use asterix_adm::Value;

use crate::expr::{eval, CompareOp, EvalCtx, LogicalExpr, QuantKind, VarId};
use crate::metadata::{IndexKind, MetadataProvider};
use crate::plan::{IndexSearchSpec, JoinKind, LogicalOp};

/// Optimizer switches. Defaults match the paper's behavior; the non-default
/// settings exist for the "without index" runs of Table 3 and the
/// limit-pushdown ablation.
#[derive(Debug, Clone)]
pub struct OptimizerOptions {
    /// Rule (a): use index access paths for selections when available.
    pub enable_index_access: bool,
    /// Rule (b): turn equijoins into hash joins.
    pub enable_hash_join: bool,
    /// Fuse `limit` into an upstream `order` as a top-K (ablation; the
    /// paper's system does not do this).
    pub push_limit_into_sort: bool,
    /// Avoid materializing group variables that are only aggregated:
    /// `group by ... with $m` + `count($m)` computes the count directly
    /// instead of listifying the group first. This is the improvement the
    /// §5.2 pilots drove into AsterixDB's second release; off = the
    /// first-release behavior (ablation).
    pub fuse_group_aggregates: bool,
    /// Publish a runtime filter from each hash join's build side and prune
    /// probe tuples against it before the probe exchange (inner joins
    /// only). Needs a filter factory on the executor to take effect; with
    /// none injected the probe-side consult passes everything through.
    pub enable_runtime_filters: bool,
    /// Total working memory granted to this query by the workload manager.
    /// Job generation divides it across the plan's memory-hungry operators
    /// (sort, hash group, hash join); `None` keeps each operator's built-in
    /// default budget.
    pub query_mem_budget: Option<usize>,
}

impl Default for OptimizerOptions {
    fn default() -> Self {
        OptimizerOptions {
            enable_index_access: true,
            enable_hash_join: true,
            push_limit_into_sort: false,
            fuse_group_aggregates: true,
            enable_runtime_filters: true,
            query_mem_budget: None,
        }
    }
}

/// Run the full rule pipeline.
pub fn optimize(
    plan: LogicalOp,
    provider: &Arc<dyn MetadataProvider>,
    fn_ctx: &FunctionContext,
    options: &OptimizerOptions,
) -> LogicalOp {
    let ctx = EvalCtx::new(Arc::clone(provider), fn_ctx.clone());
    let mut plan = fold_constants(plan, &ctx);
    if options.fuse_group_aggregates {
        plan = fuse_group_aggregates(plan);
    }
    plan = split_conjunctions(plan);
    for _ in 0..8 {
        plan = push_selects_down(plan);
    }
    if options.enable_hash_join {
        plan = extract_equijoins(plan, provider);
    }
    if options.enable_index_access {
        // Merge select cascades so a single access-path decision sees every
        // conjunct (both bounds of a range land in one index search).
        plan = coalesce_selects(plan);
        plan = introduce_index_access(plan, provider, fn_ctx);
    }
    // Recurse into subplans carried by expressions.
    plan = optimize_subplans(plan, provider, fn_ctx, options);
    plan
}

// ---------------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------------

fn fold_expr(e: LogicalExpr, ctx: &EvalCtx) -> LogicalExpr {
    // Fold children first.
    let e = map_expr_children(e, &mut |c| fold_expr(c, ctx));
    if !matches!(e, LogicalExpr::Const(_)) && e.is_foldable_const() {
        if let Ok(v) = eval(&e, &std::collections::HashMap::new(), ctx) {
            return LogicalExpr::Const(v);
        }
    }
    e
}

/// Apply `f` to each direct child expression.
fn map_expr_children(
    e: LogicalExpr,
    f: &mut impl FnMut(LogicalExpr) -> LogicalExpr,
) -> LogicalExpr {
    match e {
        LogicalExpr::FieldAccess(b, n) => LogicalExpr::FieldAccess(Box::new(f(*b)), n),
        LogicalExpr::IndexAccess(a, b) => {
            LogicalExpr::IndexAccess(Box::new(f(*a)), Box::new(f(*b)))
        }
        LogicalExpr::Call(n, args) => LogicalExpr::Call(n, args.into_iter().map(f).collect()),
        LogicalExpr::Arith(op, a, b) => LogicalExpr::Arith(op, Box::new(f(*a)), Box::new(f(*b))),
        LogicalExpr::Neg(a) => LogicalExpr::Neg(Box::new(f(*a))),
        LogicalExpr::Compare(op, a, b) => {
            LogicalExpr::Compare(op, Box::new(f(*a)), Box::new(f(*b)))
        }
        LogicalExpr::And(es) => LogicalExpr::And(es.into_iter().map(f).collect()),
        LogicalExpr::Or(es) => LogicalExpr::Or(es.into_iter().map(f).collect()),
        LogicalExpr::Not(a) => LogicalExpr::Not(Box::new(f(*a))),
        LogicalExpr::RecordCtor(fs) => {
            LogicalExpr::RecordCtor(fs.into_iter().map(|(n, e)| (n, f(e))).collect())
        }
        LogicalExpr::ListCtor { ordered, items } => {
            LogicalExpr::ListCtor { ordered, items: items.into_iter().map(f).collect() }
        }
        LogicalExpr::Quantified { kind, var, collection, predicate } => LogicalExpr::Quantified {
            kind,
            var,
            collection: Box::new(f(*collection)),
            predicate: Box::new(f(*predicate)),
        },
        LogicalExpr::IfThenElse(c, t, e2) => {
            LogicalExpr::IfThenElse(Box::new(f(*c)), Box::new(f(*t)), Box::new(f(*e2)))
        }
        leaf @ (LogicalExpr::Const(_)
        | LogicalExpr::Var(_)
        | LogicalExpr::Subquery(_)
        | LogicalExpr::Param(_)) => leaf,
    }
}

fn map_op_exprs(op: LogicalOp, f: &mut impl FnMut(LogicalExpr) -> LogicalExpr) -> LogicalOp {
    match op {
        LogicalOp::Assign { input, var, expr } => LogicalOp::Assign { input, var, expr: f(expr) },
        LogicalOp::Select { input, condition } => {
            LogicalOp::Select { input, condition: f(condition) }
        }
        LogicalOp::Unnest { input, var, expr, positional, outer } => {
            LogicalOp::Unnest { input, var, expr: f(expr), positional, outer }
        }
        LogicalOp::Join { left, right, condition, kind, index_nl_hint } => {
            LogicalOp::Join { left, right, condition: f(condition), kind, index_nl_hint }
        }
        LogicalOp::HashJoin { left, right, left_keys, right_keys, residual, kind } => {
            LogicalOp::HashJoin {
                left,
                right,
                left_keys: left_keys.into_iter().map(&mut *f).collect(),
                right_keys: right_keys.into_iter().map(&mut *f).collect(),
                residual: residual.map(&mut *f),
                kind,
            }
        }
        LogicalOp::IndexNlJoin { left, dataset, index, probe, var, kind } => {
            LogicalOp::IndexNlJoin { left, dataset, index, probe: f(probe), var, kind }
        }
        LogicalOp::GroupBy { input, keys, aggs } => LogicalOp::GroupBy {
            input,
            keys: keys.into_iter().map(|(v, e)| (v, f(e))).collect(),
            aggs: aggs
                .into_iter()
                .map(|mut a| {
                    a.input = f(a.input);
                    a
                })
                .collect(),
        },
        LogicalOp::Aggregate { input, aggs } => LogicalOp::Aggregate {
            input,
            aggs: aggs
                .into_iter()
                .map(|mut a| {
                    a.input = f(a.input);
                    a
                })
                .collect(),
        },
        LogicalOp::Order { input, keys } => LogicalOp::Order {
            input,
            keys: keys
                .into_iter()
                .map(|mut k| {
                    k.expr = f(k.expr);
                    k
                })
                .collect(),
        },
        LogicalOp::Distinct { input, exprs } => {
            LogicalOp::Distinct { input, exprs: exprs.into_iter().map(&mut *f).collect() }
        }
        LogicalOp::Emit { input, expr } => LogicalOp::Emit { input, expr: f(expr) },
        LogicalOp::IndexSearch { dataset, index, var, spec, postcondition } => {
            LogicalOp::IndexSearch {
                dataset,
                index,
                var,
                spec,
                postcondition: postcondition.map(&mut *f),
            }
        }
        other => other,
    }
}

/// Evaluate variable-free, clock-free expressions at compile time.
pub fn fold_constants(plan: LogicalOp, ctx: &EvalCtx) -> LogicalOp {
    plan.transform_up(&mut |op| map_op_exprs(op, &mut |e| fold_expr(e, ctx)))
}

// ---------------------------------------------------------------------------
// Conjunction splitting and select pushdown
// ---------------------------------------------------------------------------

fn conjuncts_of(e: LogicalExpr, out: &mut Vec<LogicalExpr>) {
    match e {
        LogicalExpr::And(es) => {
            for x in es {
                conjuncts_of(x, out);
            }
        }
        other => out.push(other),
    }
}

/// `Select(a AND b)` → `Select(a) over Select(b)`.
pub fn split_conjunctions(plan: LogicalOp) -> LogicalOp {
    plan.transform_up(&mut |op| {
        if let LogicalOp::Select { input, condition } = op {
            let mut cs = Vec::new();
            conjuncts_of(condition, &mut cs);
            let mut cur = *input;
            for c in cs {
                cur = LogicalOp::Select { input: Box::new(cur), condition: c };
            }
            cur
        } else {
            op
        }
    })
}

/// `Select(a) over Select(b)` → `Select(a AND b)` (inverse of
/// [`split_conjunctions`], used right before access-path selection).
pub fn coalesce_selects(plan: LogicalOp) -> LogicalOp {
    plan.transform_up(&mut |op| {
        if let LogicalOp::Select { input, condition } = op {
            if let LogicalOp::Select { input: inner, condition: c2 } = *input {
                return LogicalOp::Select { input: inner, condition: and2(c2, condition) };
            }
            return LogicalOp::Select { input, condition };
        }
        op
    })
}

fn vars_subset(vars: &[VarId], bound: &[VarId]) -> bool {
    vars.iter().all(|v| bound.contains(v))
}

/// Push selects through joins (to the branch that binds their variables)
/// and below order/distinct.
pub fn push_selects_down(plan: LogicalOp) -> LogicalOp {
    plan.transform_up(&mut |op| {
        let LogicalOp::Select { input, condition } = op else { return op };
        match *input {
            LogicalOp::Join { left, right, condition: jcond, kind, index_nl_hint } => {
                let mut vars = Vec::new();
                condition.free_vars(&mut vars);
                let lb = left.bound_vars();
                let rb = right.bound_vars();
                if vars_subset(&vars, &lb) {
                    LogicalOp::Join {
                        left: Box::new(LogicalOp::Select { input: left, condition }),
                        right,
                        condition: jcond,
                        kind,
                        index_nl_hint,
                    }
                } else if vars_subset(&vars, &rb) && kind == JoinKind::Inner {
                    LogicalOp::Join {
                        left,
                        right: Box::new(LogicalOp::Select { input: right, condition }),
                        condition: jcond,
                        kind,
                        index_nl_hint,
                    }
                } else if kind == JoinKind::Inner {
                    // Fold into the join condition so equijoin extraction
                    // can see it.
                    LogicalOp::Join {
                        left,
                        right,
                        condition: and2(jcond, condition),
                        kind,
                        index_nl_hint,
                    }
                } else {
                    LogicalOp::Select {
                        input: Box::new(LogicalOp::Join {
                            left,
                            right,
                            condition: jcond,
                            kind,
                            index_nl_hint,
                        }),
                        condition,
                    }
                }
            }
            LogicalOp::Order { input: oin, keys } => LogicalOp::Order {
                input: Box::new(LogicalOp::Select { input: oin, condition }),
                keys,
            },
            LogicalOp::Assign { input: ain, var, expr } => {
                let mut vars = Vec::new();
                condition.free_vars(&mut vars);
                if vars.contains(&var) {
                    LogicalOp::Select {
                        input: Box::new(LogicalOp::Assign { input: ain, var, expr }),
                        condition,
                    }
                } else {
                    LogicalOp::Assign {
                        input: Box::new(LogicalOp::Select { input: ain, condition }),
                        var,
                        expr,
                    }
                }
            }
            other => LogicalOp::Select { input: Box::new(other), condition },
        }
    })
}

fn and2(a: LogicalExpr, b: LogicalExpr) -> LogicalExpr {
    match a {
        LogicalExpr::Const(Value::Boolean(true)) => b,
        LogicalExpr::And(mut es) => {
            es.push(b);
            LogicalExpr::And(es)
        }
        other => LogicalExpr::And(vec![other, b]),
    }
}

// ---------------------------------------------------------------------------
// Equijoin extraction ("always hash-join equijoins")
// ---------------------------------------------------------------------------

/// Find equality conjuncts splitting cleanly across a join and convert the
/// cartesian `Join` into a `HashJoin`; honors the `indexnl` hint by
/// producing an `IndexNlJoin` when the inner side is a bare scan of a
/// dataset with a B-tree index on the join field.
pub fn extract_equijoins(plan: LogicalOp, provider: &Arc<dyn MetadataProvider>) -> LogicalOp {
    plan.transform_up(&mut |op| {
        let LogicalOp::Join { left, right, condition, kind, index_nl_hint } = op else {
            return op;
        };
        let mut cs = Vec::new();
        conjuncts_of(condition, &mut cs);
        let lb = left.bound_vars();
        let rb = right.bound_vars();
        let mut left_keys = Vec::new();
        let mut right_keys = Vec::new();
        let mut residual = Vec::new();
        for c in cs {
            if let LogicalExpr::Compare(CompareOp::Eq, a, b) = &c {
                let mut av = Vec::new();
                let mut bv = Vec::new();
                a.free_vars(&mut av);
                b.free_vars(&mut bv);
                if !av.is_empty()
                    && !bv.is_empty()
                    && vars_subset(&av, &lb)
                    && vars_subset(&bv, &rb)
                {
                    left_keys.push((**a).clone());
                    right_keys.push((**b).clone());
                    continue;
                }
                if !av.is_empty()
                    && !bv.is_empty()
                    && vars_subset(&av, &rb)
                    && vars_subset(&bv, &lb)
                {
                    left_keys.push((**b).clone());
                    right_keys.push((**a).clone());
                    continue;
                }
            }
            residual.push(c);
        }
        if left_keys.is_empty() {
            // Not an equijoin: keep as nested-loop join.
            let condition = residual
                .into_iter()
                .reduce(and2)
                .unwrap_or(LogicalExpr::Const(Value::Boolean(true)));
            return LogicalOp::Join { left, right, condition, kind, index_nl_hint };
        }
        let residual = residual.into_iter().reduce(and2);

        // `indexnl` hint: if the right side is a bare dataset scan and the
        // right key is a B-tree-indexed field of it, use the index.
        if index_nl_hint && left_keys.len() == 1 {
            if let LogicalOp::DataSourceScan { dataset, var } = right.as_ref() {
                if let Some(field) = field_of(&right_keys[0], *var) {
                    if let Some(ix) = find_btree_index(provider, dataset, &field) {
                        let mut out = LogicalOp::IndexNlJoin {
                            left,
                            dataset: dataset.clone(),
                            index: ix,
                            probe: left_keys.into_iter().next().unwrap(),
                            var: *var,
                            kind,
                        };
                        if let Some(r) = residual {
                            out = LogicalOp::Select { input: Box::new(out), condition: r };
                        }
                        return out;
                    }
                }
            }
        }
        LogicalOp::HashJoin { left, right, left_keys, right_keys, residual, kind }
    })
}

/// If `e` is `field-access chain over Var(var)`, return the dotted path.
fn field_of(e: &LogicalExpr, var: VarId) -> Option<String> {
    match e {
        LogicalExpr::FieldAccess(base, name) => match base.as_ref() {
            LogicalExpr::Var(v) if *v == var => Some(name.clone()),
            inner @ LogicalExpr::FieldAccess(..) => {
                field_of(inner, var).map(|p| format!("{p}.{name}"))
            }
            _ => None,
        },
        _ => None,
    }
}

fn find_btree_index(
    provider: &Arc<dyn MetadataProvider>,
    dataset: &str,
    field: &str,
) -> Option<String> {
    provider
        .indexes(dataset)
        .into_iter()
        .find(|i| i.kind == IndexKind::BTree && i.fields.first().is_some_and(|f| f == field))
        .map(|i| i.name)
}

// ---------------------------------------------------------------------------
// Index access-path introduction (Figure 6's shape)
// ---------------------------------------------------------------------------

struct RangeAcc {
    lo: Option<(LogicalExpr, bool)>,
    hi: Option<(LogicalExpr, bool)>,
    used: Vec<LogicalExpr>,
}

/// Replace `Select* over DataSourceScan` with an `IndexSearch` when one of
/// the select conditions is sargable against the primary key or a secondary
/// index. The consumed conditions become the search's postcondition — the
/// §4.4 post-validation select that Figure 6 shows above the primary-index
/// search.
pub fn introduce_index_access(
    plan: LogicalOp,
    provider: &Arc<dyn MetadataProvider>,
    _fn_ctx: &FunctionContext,
) -> LogicalOp {
    plan.transform_up(&mut |op| try_index_access(op, provider))
}

fn try_index_access(op: LogicalOp, provider: &Arc<dyn MetadataProvider>) -> LogicalOp {
    // Gather the select cascade above a scan.
    let mut conditions: Vec<LogicalExpr> = Vec::new();
    let mut cur = &op;
    loop {
        match cur {
            LogicalOp::Select { input, condition } => {
                conjuncts_of(condition.clone(), &mut conditions);
                cur = input;
            }
            LogicalOp::DataSourceScan { dataset, var } => {
                if conditions.is_empty() {
                    return op;
                }
                let dataset = dataset.clone();
                let var = *var;
                if let Some(new_op) = build_access_path(&dataset, var, &conditions, provider) {
                    return new_op;
                }
                return op;
            }
            _ => return op,
        }
    }
}

fn build_access_path(
    dataset: &str,
    var: VarId,
    conditions: &[LogicalExpr],
    provider: &Arc<dyn MetadataProvider>,
) -> Option<LogicalOp> {
    let pk_fields = provider.primary_key_fields(dataset);
    let indexes = provider.indexes(dataset);

    // 1. Primary-key ranges (record lookup / pk range scan).
    if let Some(pk) = pk_fields.first() {
        if let Some(acc) = collect_range(conditions, var, pk) {
            return Some(finish_search(
                dataset,
                "",
                var,
                IndexSearchSpec::PrimaryRange { lo: acc.lo, hi: acc.hi },
                conditions,
                &acc.used,
            ));
        }
    }

    // 2. Secondary B-tree ranges.
    for ix in indexes.iter().filter(|i| i.kind == IndexKind::BTree) {
        let Some(field) = ix.fields.first() else { continue };
        if let Some(acc) = collect_range(conditions, var, field) {
            return Some(finish_search(
                dataset,
                &ix.name,
                var,
                IndexSearchSpec::BTreeRange { lo: acc.lo, hi: acc.hi },
                conditions,
                &acc.used,
            ));
        }
    }

    // 3. R-tree spatial predicates.
    for ix in indexes.iter().filter(|i| i.kind == IndexKind::RTree) {
        let Some(field) = ix.fields.first() else { continue };
        for c in conditions {
            if let Some(query) = spatial_query_of(c, var, field) {
                return Some(finish_search(
                    dataset,
                    &ix.name,
                    var,
                    IndexSearchSpec::RTree { query },
                    conditions,
                    std::slice::from_ref(c),
                ));
            }
        }
    }

    // 4. N-gram fuzzy predicates: edit-distance-check(field, needle, k) or
    //    contains-style checks produced by the fuzzy-eq lowering.
    for ix in indexes.iter() {
        let IndexKind::NGram(_) = ix.kind else { continue };
        let Some(field) = ix.fields.first() else { continue };
        for c in conditions {
            if let Some((needle, ed)) = fuzzy_pred_of(c, var, field) {
                return Some(finish_search(
                    dataset,
                    &ix.name,
                    var,
                    IndexSearchSpec::InvertedFuzzy { needle, edit_distance: ed },
                    conditions,
                    std::slice::from_ref(c),
                ));
            }
        }
    }

    // 5. Keyword indexes: `some $w in word-tokens(field) satisfies $w = S`.
    for ix in indexes.iter().filter(|i| i.kind == IndexKind::Keyword) {
        let Some(field) = ix.fields.first() else { continue };
        for c in conditions {
            if let Some(needle) = keyword_pred_of(c, var, field) {
                return Some(finish_search(
                    dataset,
                    &ix.name,
                    var,
                    IndexSearchSpec::InvertedConjunctive { needle },
                    conditions,
                    std::slice::from_ref(c),
                ));
            }
        }
    }

    None
}

/// Build the IndexSearch and re-apply unused conditions as selects above.
fn finish_search(
    dataset: &str,
    index: &str,
    var: VarId,
    spec: IndexSearchSpec,
    all_conditions: &[LogicalExpr],
    used: &[LogicalExpr],
) -> LogicalOp {
    let post = used.iter().cloned().reduce(and2);
    let mut out = LogicalOp::IndexSearch {
        dataset: dataset.to_string(),
        index: index.to_string(),
        var,
        spec,
        postcondition: post,
    };
    for c in all_conditions {
        let consumed = used.iter().any(|u| expr_eq_shallow(u, c));
        if !consumed {
            out = LogicalOp::Select { input: Box::new(out), condition: c.clone() };
        }
    }
    out
}

/// Structural equality good enough to match conditions we cloned ourselves.
fn expr_eq_shallow(a: &LogicalExpr, b: &LogicalExpr) -> bool {
    format!("{a:?}") == format!("{b:?}")
}

/// Collect range bounds on `var.field` from comparison conditions whose
/// other side does not depend on `var`.
fn collect_range(conditions: &[LogicalExpr], var: VarId, field: &str) -> Option<RangeAcc> {
    let mut acc = RangeAcc { lo: None, hi: None, used: Vec::new() };
    for c in conditions {
        let LogicalExpr::Compare(op, a, b) = c else { continue };
        // Normalize to field CMP bound.
        let (cmp, bound) = if field_of(a, var).as_deref() == Some(field) {
            let mut bv = Vec::new();
            b.free_vars(&mut bv);
            if bv.contains(&var) {
                continue;
            }
            (*op, (**b).clone())
        } else if field_of(b, var).as_deref() == Some(field) {
            let mut av = Vec::new();
            a.free_vars(&mut av);
            if av.contains(&var) {
                continue;
            }
            let flipped = match op {
                CompareOp::Lt => CompareOp::Gt,
                CompareOp::Le => CompareOp::Ge,
                CompareOp::Gt => CompareOp::Lt,
                CompareOp::Ge => CompareOp::Le,
                other => *other,
            };
            (flipped, (**a).clone())
        } else {
            continue;
        };
        match cmp {
            CompareOp::Eq => {
                acc.lo = Some((bound.clone(), true));
                acc.hi = Some((bound, true));
                acc.used.push(c.clone());
            }
            CompareOp::Ge if acc.lo.is_none() => {
                acc.lo = Some((bound, true));
                acc.used.push(c.clone());
            }
            CompareOp::Gt if acc.lo.is_none() => {
                acc.lo = Some((bound, false));
                acc.used.push(c.clone());
            }
            CompareOp::Le if acc.hi.is_none() => {
                acc.hi = Some((bound, true));
                acc.used.push(c.clone());
            }
            CompareOp::Lt if acc.hi.is_none() => {
                acc.hi = Some((bound, false));
                acc.used.push(c.clone());
            }
            _ => {}
        }
        if acc.lo.is_some() && acc.hi.is_some() {
            break;
        }
    }
    if acc.used.is_empty() {
        None
    } else {
        Some(acc)
    }
}

/// Match `spatial-intersect($v.field, Q)` (either side) or
/// `spatial-distance($v.field, P) <= r`, returning the window expression.
fn spatial_query_of(c: &LogicalExpr, var: VarId, field: &str) -> Option<LogicalExpr> {
    match c {
        LogicalExpr::Call(name, args) if name == "spatial-intersect" && args.len() == 2 => {
            if field_of(&args[0], var).as_deref() == Some(field) {
                Some(args[1].clone())
            } else if field_of(&args[1], var).as_deref() == Some(field) {
                Some(args[0].clone())
            } else {
                None
            }
        }
        LogicalExpr::Compare(CompareOp::Le | CompareOp::Lt, a, b) => {
            let LogicalExpr::Call(name, args) = a.as_ref() else { return None };
            if name != "spatial-distance" || args.len() != 2 {
                return None;
            }
            let center = if field_of(&args[0], var).as_deref() == Some(field) {
                args[1].clone()
            } else if field_of(&args[1], var).as_deref() == Some(field) {
                args[0].clone()
            } else {
                return None;
            };
            let mut bv = Vec::new();
            b.free_vars(&mut bv);
            if bv.contains(&var) {
                return None;
            }
            // Window = circle(center, r); its MBR is used by the R-tree and
            // the original distance predicate is re-checked as the
            // postcondition.
            Some(LogicalExpr::call("create-circle", vec![center, (**b).clone()]))
        }
        _ => None,
    }
}

/// Match `~=` / `edit-distance-check(field, needle, k)[0]`-shaped fuzzy
/// predicates produced by the AQL fuzzy lowering, returning (needle, ed).
fn fuzzy_pred_of(c: &LogicalExpr, var: VarId, field: &str) -> Option<(LogicalExpr, usize)> {
    if let LogicalExpr::Call(name, args) = c {
        if name == "edit-distance-ok" && args.len() == 3 {
            // Internal marker emitted by the translator for `~=` under
            // edit-distance semantics: edit-distance-ok(a, b, k).
            let (fa, fb) = (field_of(&args[0], var), field_of(&args[1], var));
            let ed = match &args[2] {
                LogicalExpr::Const(v) => v.as_i64()? as usize,
                _ => return None,
            };
            if fa.as_deref() == Some(field) {
                let mut bv = Vec::new();
                args[1].free_vars(&mut bv);
                if !bv.contains(&var) {
                    return Some((args[1].clone(), ed));
                }
            }
            if fb.as_deref() == Some(field) {
                let mut av = Vec::new();
                args[0].free_vars(&mut av);
                if !av.contains(&var) {
                    return Some((args[0].clone(), ed));
                }
            }
        }
    }
    None
}

/// Match `some $w in word-tokens($v.field) satisfies $w = <needle>` — the
/// Query 6 shape — where needle is var-independent.
fn keyword_pred_of(c: &LogicalExpr, var: VarId, field: &str) -> Option<LogicalExpr> {
    let LogicalExpr::Quantified { kind: QuantKind::Some, var: w, collection, predicate } = c else {
        return None;
    };
    let LogicalExpr::Call(fname, fargs) = collection.as_ref() else { return None };
    if fname != "word-tokens" || fargs.len() != 1 {
        return None;
    }
    if field_of(&fargs[0], var).as_deref() != Some(field) {
        return None;
    }
    let LogicalExpr::Compare(CompareOp::Eq, a, b) = predicate.as_ref() else { return None };
    let needle = match (a.as_ref(), b.as_ref()) {
        (LogicalExpr::Var(v), other) if *v == *w => other.clone(),
        (other, LogicalExpr::Var(v)) if *v == *w => other.clone(),
        _ => return None,
    };
    let mut nv = Vec::new();
    needle.free_vars(&mut nv);
    if nv.contains(&var) || nv.contains(w) {
        return None;
    }
    Some(needle)
}

// ---------------------------------------------------------------------------
// Group-materialization avoidance (§5.2 lesson)
// ---------------------------------------------------------------------------

/// Rewrite `Assign(v, agg(Var(g)))` over `GroupBy{.., Listify g := e}` into
/// a direct aggregate in the GroupBy, dropping the Listify when it has no
/// other uses. This avoids materializing group member lists that exist
/// only to be counted/summed — the §5.2 materialization lesson.
pub fn fuse_group_aggregates(plan: LogicalOp) -> LogicalOp {
    use crate::plan::{AggCall, AggFunc};
    use std::collections::HashMap;

    // Pass 1: listify vars and their member-input expressions.
    let mut listify: HashMap<VarId, LogicalExpr> = HashMap::new();
    fn walk(op: &LogicalOp, f: &mut impl FnMut(&LogicalOp)) {
        f(op);
        for i in op.inputs() {
            walk(i, f);
        }
    }
    walk(&plan, &mut |op| {
        if let LogicalOp::GroupBy { aggs, .. } = op {
            for a in aggs {
                if a.func == AggFunc::Listify {
                    listify.insert(a.var, a.input.clone());
                }
            }
        }
    });
    if listify.is_empty() {
        return plan;
    }

    // Pass 2: classify every use of each listify var. A use is *fusable*
    // when it is exactly `Assign(v, <agg>(Var(g)))`; anything else blocks
    // fusion for that var.
    let mut blocked: std::collections::HashSet<VarId> = Default::default();
    // (assign var, agg func, sql, listify var)
    let mut fusable: Vec<(VarId, AggFunc, bool, VarId)> = Vec::new();
    walk(&plan, &mut |op| {
        let note_expr = |e: &LogicalExpr, blocked: &mut std::collections::HashSet<VarId>| {
            let mut vars = Vec::new();
            e.free_vars(&mut vars);
            for v in vars {
                if listify.contains_key(&v) {
                    blocked.insert(v);
                }
            }
        };
        match op {
            LogicalOp::Assign { var, expr, .. } => {
                if let LogicalExpr::Call(name, args) = expr {
                    if args.len() == 1 {
                        if let (Some((func, sql)), LogicalExpr::Var(g)) =
                            (AggFunc::from_name(name), &args[0])
                        {
                            if listify.contains_key(g) {
                                fusable.push((*var, func, sql, *g));
                                return;
                            }
                        }
                    }
                }
                note_expr(expr, &mut blocked);
            }
            LogicalOp::GroupBy { keys, aggs, .. } => {
                // The defining GroupBy's own Listify inputs don't count as
                // uses; key exprs and other agg inputs do.
                for (_, e) in keys {
                    note_expr(e, &mut blocked);
                }
                for a in aggs {
                    if a.func != AggFunc::Listify {
                        note_expr(&a.input, &mut blocked);
                    }
                }
            }
            other => {
                // Every expression of every other operator is a general use.
                let mut vars = Vec::new();
                other.free_vars(&mut vars);
                // free_vars excludes vars bound in the subtree; listify vars
                // are bound below, so inspect expressions directly instead.
                let mut exprs: Vec<&LogicalExpr> = Vec::new();
                match other {
                    LogicalOp::Select { condition, .. } => exprs.push(condition),
                    LogicalOp::Unnest { expr, .. } | LogicalOp::Emit { expr, .. } => {
                        exprs.push(expr)
                    }
                    LogicalOp::Join { condition, .. } => exprs.push(condition),
                    LogicalOp::HashJoin { left_keys, right_keys, residual, .. } => {
                        exprs.extend(left_keys.iter());
                        exprs.extend(right_keys.iter());
                        if let Some(r) = residual {
                            exprs.push(r);
                        }
                    }
                    LogicalOp::IndexNlJoin { probe, .. } => exprs.push(probe),
                    LogicalOp::Aggregate { aggs, .. } => {
                        exprs.extend(aggs.iter().map(|a| &a.input))
                    }
                    LogicalOp::Order { keys, .. } => exprs.extend(keys.iter().map(|k| &k.expr)),
                    LogicalOp::Distinct { exprs: es, .. } => exprs.extend(es.iter()),
                    LogicalOp::IndexSearch { postcondition, .. } => {
                        if let Some(p) = postcondition {
                            exprs.push(p);
                        }
                    }
                    _ => {}
                }
                for e in exprs {
                    note_expr(e, &mut blocked);
                }
            }
        }
    });

    let fusable: Vec<_> = fusable.into_iter().filter(|(_, _, _, g)| !blocked.contains(g)).collect();
    if fusable.is_empty() {
        return plan;
    }
    let fused_assigns: std::collections::HashSet<VarId> =
        fusable.iter().map(|(v, _, _, _)| *v).collect();
    let dead_listifies: std::collections::HashSet<VarId> =
        fusable.iter().map(|(_, _, _, g)| *g).collect();

    // Pass 3: rebuild — drop the fused Assigns, extend GroupBys, remove
    // dead Listify aggregates.
    plan.transform_up(&mut |op| match op {
        LogicalOp::Assign { input, var, expr } => {
            if fused_assigns.contains(&var) {
                *input // the aggregate is now computed by the GroupBy
            } else {
                LogicalOp::Assign { input, var, expr }
            }
        }
        LogicalOp::GroupBy { input, keys, mut aggs } => {
            let my_listifies: Vec<VarId> =
                aggs.iter().filter(|a| a.func == AggFunc::Listify).map(|a| a.var).collect();
            for (v, func, sql, g) in &fusable {
                if my_listifies.contains(g) {
                    let member = listify.get(g).cloned().unwrap();
                    aggs.push(AggCall { var: *v, func: *func, sql: *sql, input: member });
                }
            }
            aggs.retain(|a| !(a.func == AggFunc::Listify && dead_listifies.contains(&a.var)));
            LogicalOp::GroupBy { input, keys, aggs }
        }
        other => other,
    })
}

// ---------------------------------------------------------------------------
// Subplan recursion
// ---------------------------------------------------------------------------

fn optimize_subplans(
    plan: LogicalOp,
    provider: &Arc<dyn MetadataProvider>,
    fn_ctx: &FunctionContext,
    options: &OptimizerOptions,
) -> LogicalOp {
    plan.transform_up(&mut |op| {
        map_op_exprs(op, &mut |e| optimize_expr_subplans(e, provider, fn_ctx, options))
    })
}

fn optimize_expr_subplans(
    e: LogicalExpr,
    provider: &Arc<dyn MetadataProvider>,
    fn_ctx: &FunctionContext,
    options: &OptimizerOptions,
) -> LogicalExpr {
    let e = map_expr_children(e, &mut |c| optimize_expr_subplans(c, provider, fn_ctx, options));
    if let LogicalExpr::Subquery(plan) = e {
        let optimized = optimize((*plan).clone(), provider, fn_ctx, options);
        LogicalExpr::Subquery(Arc::new(optimized))
    } else {
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::tests_support::VecProvider;
    use crate::metadata::IndexInfo;
    use crate::plan::build::*;

    struct IndexedProvider {
        inner: VecProvider,
        ixs: Vec<IndexInfo>,
    }

    impl MetadataProvider for IndexedProvider {
        fn partitions(&self) -> usize {
            self.inner.partitions()
        }
        fn dataset_exists(&self, d: &str) -> bool {
            self.inner.dataset_exists(d)
        }
        fn primary_key_fields(&self, d: &str) -> Vec<String> {
            self.inner.primary_key_fields(d)
        }
        fn indexes(&self, _d: &str) -> Vec<IndexInfo> {
            self.ixs.clone()
        }
        fn scan_source(&self, d: &str) -> asterix_hyracks::Result<asterix_hyracks::ops::SourceFn> {
            self.inner.scan_source(d)
        }
        fn primary_range_source(
            &self,
            d: &str,
            lo: crate::metadata::KeyBound,
            hi: crate::metadata::KeyBound,
        ) -> asterix_hyracks::Result<asterix_hyracks::ops::SourceFn> {
            self.inner.primary_range_source(d, lo, hi)
        }
        fn btree_search_source(
            &self,
            d: &str,
            i: &str,
            lo: crate::metadata::KeyBound,
            hi: crate::metadata::KeyBound,
        ) -> asterix_hyracks::Result<asterix_hyracks::ops::SourceFn> {
            self.inner.btree_search_source(d, i, lo, hi)
        }
        fn rtree_search_source(
            &self,
            d: &str,
            i: &str,
            q: asterix_adm::value::Rectangle,
        ) -> asterix_hyracks::Result<asterix_hyracks::ops::SourceFn> {
            self.inner.rtree_search_source(d, i, q)
        }
        fn inverted_search_source(
            &self,
            d: &str,
            i: &str,
            t: Vec<String>,
            th: usize,
        ) -> asterix_hyracks::Result<asterix_hyracks::ops::SourceFn> {
            self.inner.inverted_search_source(d, i, t, th)
        }
        fn primary_lookup(
            &self,
            d: &str,
        ) -> asterix_hyracks::Result<
            Arc<dyn Fn(usize, &[Value]) -> asterix_hyracks::Result<Option<Value>> + Send + Sync>,
        > {
            self.inner.primary_lookup(d)
        }
        fn scan_all(&self, d: &str) -> asterix_hyracks::Result<Vec<Value>> {
            self.inner.scan_all(d)
        }
        fn lookup_pk(&self, d: &str, pk: &[Value]) -> asterix_hyracks::Result<Option<Value>> {
            self.inner.lookup_pk(d, pk)
        }
        fn primary_range_all(
            &self,
            d: &str,
            lo: crate::metadata::KeyBound,
            hi: crate::metadata::KeyBound,
        ) -> asterix_hyracks::Result<Vec<Value>> {
            self.inner.primary_range_all(d, lo, hi)
        }
        fn btree_search_all(
            &self,
            d: &str,
            i: &str,
            lo: crate::metadata::KeyBound,
            hi: crate::metadata::KeyBound,
        ) -> asterix_hyracks::Result<Vec<Vec<Value>>> {
            self.inner.btree_search_all(d, i, lo, hi)
        }
        fn rtree_search_all(
            &self,
            d: &str,
            i: &str,
            q: &asterix_adm::value::Rectangle,
        ) -> asterix_hyracks::Result<Vec<Vec<Value>>> {
            self.inner.rtree_search_all(d, i, q)
        }
        fn inverted_search_all(
            &self,
            d: &str,
            i: &str,
            t: &[String],
            th: usize,
        ) -> asterix_hyracks::Result<Vec<Vec<Value>>> {
            self.inner.inverted_search_all(d, i, t, th)
        }
    }

    fn provider_with_index(kind: IndexKind, field: &str) -> Arc<dyn MetadataProvider> {
        let mut inner = VecProvider::new(2);
        inner.add("DS", "id", vec![]);
        Arc::new(IndexedProvider {
            inner,
            ixs: vec![IndexInfo { name: "ix".into(), kind, fields: vec![field.into()] }],
        })
    }

    fn fctx() -> FunctionContext {
        FunctionContext::default()
    }

    fn eq(a: LogicalExpr, b: LogicalExpr) -> LogicalExpr {
        LogicalExpr::Compare(CompareOp::Eq, Box::new(a), Box::new(b))
    }

    #[test]
    fn group_aggregate_fusion() {
        use crate::plan::{AggCall, AggFunc};
        // group by $k with $m; let $cnt := count($m) — Query 11's shape.
        let group = LogicalOp::GroupBy {
            input: Box::new(scan("DS", 0)),
            keys: vec![(1, LogicalExpr::field(var(0), "author"))],
            aggs: vec![AggCall { var: 2, func: AggFunc::Listify, sql: false, input: var(0) }],
        };
        let plan = emit(
            LogicalOp::Assign {
                input: Box::new(group),
                var: 3,
                expr: LogicalExpr::call("count", vec![var(2)]),
            },
            var(3),
        );
        let fused = fuse_group_aggregates(plan.clone());
        fn find_group(op: &LogicalOp) -> Option<&LogicalOp> {
            if matches!(op, LogicalOp::GroupBy { .. }) {
                return Some(op);
            }
            op.inputs().into_iter().find_map(find_group)
        }
        let LogicalOp::GroupBy { aggs, .. } = find_group(&fused).unwrap() else { panic!() };
        assert_eq!(aggs.len(), 1, "listify replaced by count");
        assert_eq!(aggs[0].func, AggFunc::Count);
        assert_eq!(aggs[0].var, 3);
        // The assign is gone.
        assert!(!fused.pretty().contains("assign $v3"), "{}", fused.pretty());

        // A plan that also returns the group list must NOT fuse away the
        // listify.
        let group2 = LogicalOp::GroupBy {
            input: Box::new(scan("DS", 0)),
            keys: vec![(1, LogicalExpr::field(var(0), "author"))],
            aggs: vec![AggCall { var: 2, func: AggFunc::Listify, sql: false, input: var(0) }],
        };
        let plan2 = emit(
            LogicalOp::Assign {
                input: Box::new(group2),
                var: 3,
                expr: LogicalExpr::call("count", vec![var(2)]),
            },
            LogicalExpr::RecordCtor(vec![
                ("cnt".into(), var(3)),
                ("members".into(), var(2)), // general use of the group list
            ]),
        );
        let fused2 = fuse_group_aggregates(plan2);
        let LogicalOp::GroupBy { aggs, .. } = find_group(&fused2).unwrap() else { panic!() };
        assert!(
            aggs.iter().any(|a| a.func == AggFunc::Listify),
            "listify with other uses must survive"
        );
    }

    #[test]
    fn constant_folding() {
        let provider = provider_with_index(IndexKind::BTree, "ts");
        let plan = emit(
            LogicalOp::EmptyTupleSource,
            LogicalExpr::Arith('+', Box::new(lit(Value::Int64(1))), Box::new(lit(Value::Int64(1)))),
        );
        let out = optimize(plan, &provider, &fctx(), &OptimizerOptions::default());
        match out {
            LogicalOp::Emit { expr: LogicalExpr::Const(Value::Int64(2)), .. } => {}
            other => panic!("not folded: {other:?}"),
        }
    }

    #[test]
    fn equijoin_becomes_hash_join() {
        let provider = provider_with_index(IndexKind::BTree, "ts");
        let plan = emit(
            cross(
                scan("DS", 0),
                scan("DS", 1),
                eq(LogicalExpr::field(var(0), "id"), LogicalExpr::field(var(1), "author")),
            ),
            var(0),
        );
        let out = optimize(plan, &provider, &fctx(), &OptimizerOptions::default());
        assert!(out.pretty().contains("hash-join"), "{}", out.pretty());
    }

    #[test]
    fn non_equijoin_stays_nested_loop() {
        let provider = provider_with_index(IndexKind::BTree, "ts");
        let plan = emit(
            cross(
                scan("DS", 0),
                scan("DS", 1),
                LogicalExpr::Compare(
                    CompareOp::Lt,
                    Box::new(LogicalExpr::field(var(0), "id")),
                    Box::new(LogicalExpr::field(var(1), "id")),
                ),
            ),
            var(0),
        );
        let out = optimize(plan, &provider, &fctx(), &OptimizerOptions::default());
        assert!(out.pretty().contains("join (Inner)"), "{}", out.pretty());
        assert!(!out.pretty().contains("hash-join"), "{}", out.pretty());
    }

    #[test]
    fn range_scan_uses_btree_index() {
        let provider = provider_with_index(IndexKind::BTree, "ts");
        // where $v.ts >= 10 and $v.ts <= 20
        let plan = emit(
            select(
                select(
                    scan("DS", 0),
                    LogicalExpr::Compare(
                        CompareOp::Ge,
                        Box::new(LogicalExpr::field(var(0), "ts")),
                        Box::new(lit(Value::Int64(10))),
                    ),
                ),
                LogicalExpr::Compare(
                    CompareOp::Le,
                    Box::new(LogicalExpr::field(var(0), "ts")),
                    Box::new(lit(Value::Int64(20))),
                ),
            ),
            var(0),
        );
        let out = optimize(plan, &provider, &fctx(), &OptimizerOptions::default());
        let p = out.pretty();
        assert!(p.contains("btree-search DS.ix"), "{p}");
        assert!(!p.contains("data-scan"), "{p}");
    }

    #[test]
    fn pk_equality_uses_primary_index() {
        let provider = provider_with_index(IndexKind::BTree, "ts");
        let plan = emit(
            select(scan("DS", 0), eq(LogicalExpr::field(var(0), "id"), lit(Value::Int64(7)))),
            var(0),
        );
        let out = optimize(plan, &provider, &fctx(), &OptimizerOptions::default());
        assert!(out.pretty().contains("btree-search DS (primary)"), "{}", out.pretty());
    }

    #[test]
    fn index_access_can_be_disabled() {
        let provider = provider_with_index(IndexKind::BTree, "ts");
        let plan = emit(
            select(scan("DS", 0), eq(LogicalExpr::field(var(0), "ts"), lit(Value::Int64(7)))),
            var(0),
        );
        let opts = OptimizerOptions { enable_index_access: false, ..Default::default() };
        let out = optimize(plan, &provider, &fctx(), &opts);
        assert!(out.pretty().contains("data-scan"), "{}", out.pretty());
    }

    #[test]
    fn indexnl_hint_uses_index_join() {
        let provider = provider_with_index(IndexKind::BTree, "author");
        let plan = emit(
            LogicalOp::Join {
                left: Box::new(scan("DS", 0)),
                right: Box::new(scan("DS", 1)),
                condition: eq(
                    LogicalExpr::field(var(0), "id"),
                    LogicalExpr::field(var(1), "author"),
                ),
                kind: JoinKind::Inner,
                index_nl_hint: true,
            },
            var(0),
        );
        let out = optimize(plan, &provider, &fctx(), &OptimizerOptions::default());
        assert!(out.pretty().contains("index-nl-join DS.ix"), "{}", out.pretty());
    }

    #[test]
    fn spatial_predicate_uses_rtree() {
        let provider = provider_with_index(IndexKind::RTree, "loc");
        let q = asterix_adm::parse::parse_value("rectangle(\"0,0 5,5\")").unwrap();
        let plan = emit(
            select(
                scan("DS", 0),
                LogicalExpr::call(
                    "spatial-intersect",
                    vec![LogicalExpr::field(var(0), "loc"), lit(q)],
                ),
            ),
            var(0),
        );
        let out = optimize(plan, &provider, &fctx(), &OptimizerOptions::default());
        assert!(out.pretty().contains("rtree-search DS.ix"), "{}", out.pretty());
    }

    #[test]
    fn selects_push_through_joins() {
        let provider = provider_with_index(IndexKind::BTree, "ts");
        // select on left var above a cross join should sink into the left
        // branch (and then become an index search).
        let plan = emit(
            select(
                cross(
                    scan("DS", 0),
                    scan("DS", 1),
                    eq(LogicalExpr::field(var(0), "id"), LogicalExpr::field(var(1), "author")),
                ),
                eq(LogicalExpr::field(var(0), "ts"), lit(Value::Int64(3))),
            ),
            var(0),
        );
        let out = optimize(plan, &provider, &fctx(), &OptimizerOptions::default());
        let p = out.pretty();
        assert!(p.contains("hash-join"), "{p}");
        assert!(p.contains("btree-search DS.ix"), "{p}");
    }
}
