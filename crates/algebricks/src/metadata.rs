//! The metadata/provider interface between the compiler and the storage
//! layer — what AsterixDB calls the metadata provider: dataset existence,
//! partitioning, available indexes, and runtime data-access callbacks.

use std::sync::Arc;

use asterix_adm::value::Rectangle;
use asterix_adm::Value;

use asterix_hyracks::ops::{CmpKind, RawSourceFn, SourceFn};
use asterix_hyracks::Result;

/// Secondary index kinds (§2.2: btree is the default; rtree, keyword and
/// ngram(k) are explicit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexKind {
    BTree,
    RTree,
    Keyword,
    NGram(usize),
}

/// Descriptor of a secondary index.
#[derive(Debug, Clone)]
pub struct IndexInfo {
    pub name: String,
    pub kind: IndexKind,
    /// Indexed field paths (dot-separated for nested fields).
    pub fields: Vec<String>,
}

/// A key bound for B-tree searches.
#[derive(Debug, Clone)]
pub enum KeyBound {
    Unbounded,
    Inclusive(Value),
    Exclusive(Value),
}

/// A pushed-down `field <op> constant` scan pre-filter. `key` is the
/// order-preserving `ordkey` encoding of the constant, so a columnar
/// source can decide most rows by memcmp on one column's bytes before
/// assembling anything. The filter is conservative: it only drops rows
/// the comparison *definitely* rejects; the select above re-applies the
/// full predicate to whatever comes through.
#[derive(Debug, Clone)]
pub struct ScanFilter {
    pub field: String,
    pub op: CmpKind,
    pub key: Vec<u8>,
}

/// What a data scan actually needs to produce: the top-level fields the
/// query accesses (every use of the scan variable is `$v.field`), plus an
/// optional pre-filter. Handed to [`MetadataProvider::raw_scan_source`]
/// so columnar storage can late-materialize just those columns.
#[derive(Debug, Clone)]
pub struct ScanProjection {
    /// Field names in deterministic (sorted) order.
    pub fields: Vec<String>,
    pub filter: Option<ScanFilter>,
}

/// A serialized scan source plus whether it honors the requested
/// projection. A provider may decline the projection — the dataset has no
/// columnar components, or the `disable_columnar` knob is on — and serve
/// full rows instead; the compiler labels the scan accordingly.
pub struct RawScan {
    pub source: RawSourceFn,
    pub projected: bool,
}

/// Everything the compiler and interpreter need from the system catalog
/// and storage.
pub trait MetadataProvider: Send + Sync {
    /// Number of storage partitions per dataset (degree of parallelism for
    /// scans — "the number of partitions that is used to store the
    /// Dataset", §4.1).
    fn partitions(&self) -> usize;

    /// Partitions hosted per simulated node (locality domains for the
    /// locality-aware connector). Defaults to one partition per node.
    fn partitions_per_node(&self) -> usize {
        1
    }

    /// Monotonic catalog version, bumped by every DDL statement. Cached
    /// compiled plans record the epoch they were built under and are
    /// discarded when it moves (see DESIGN.md "Plan cache & prepared
    /// queries"). Providers without DDL can keep the constant default.
    fn catalog_epoch(&self) -> u64 {
        0
    }

    /// Does the dataset exist (dataverse-qualified name)?
    fn dataset_exists(&self, dataset: &str) -> bool;

    /// Primary-key field names of a dataset.
    fn primary_key_fields(&self, dataset: &str) -> Vec<String>;

    /// Secondary indexes of a dataset.
    fn indexes(&self, dataset: &str) -> Vec<IndexInfo>;

    // -- compiled-path sources (per-partition, run inside operators) -------

    /// Full scan source: emits one single-column tuple per record of the
    /// caller's partition.
    fn scan_source(&self, dataset: &str) -> Result<SourceFn>;

    /// Serialized scan source: emits the offset-prefixed tuple encoding
    /// directly, so the scan feeds the byte-frame exchange without
    /// materializing a `Value` per record. When the compiler knows the
    /// query touches only specific fields it passes a `projection`;
    /// providers backed by columnar components can then read just those
    /// columns and late-materialize (see DESIGN.md "Columnar storage").
    /// Providers that can serve bytes return `Some`; the default `None`
    /// makes the compiler fall back to `scan_source`.
    fn raw_scan_source(
        &self,
        _dataset: &str,
        _projection: Option<&ScanProjection>,
    ) -> Result<Option<RawScan>> {
        Ok(None)
    }

    /// Primary-index range source: emits one single-column record tuple per
    /// match in the caller's partition.
    fn primary_range_source(&self, dataset: &str, lo: KeyBound, hi: KeyBound) -> Result<SourceFn>;

    /// Secondary B-tree search: emits one tuple per matching entry, columns
    /// = primary-key fields (§2.2: "The result of a secondary key lookup is
    /// a set of primary keys").
    fn btree_search_source(
        &self,
        dataset: &str,
        index: &str,
        lo: KeyBound,
        hi: KeyBound,
    ) -> Result<SourceFn>;

    /// R-tree search: emits primary-key tuples for entries intersecting
    /// the query rectangle.
    fn rtree_search_source(&self, dataset: &str, index: &str, query: Rectangle)
        -> Result<SourceFn>;

    /// Inverted-index search: primary keys matching at least `threshold`
    /// of `tokens`.
    fn inverted_search_source(
        &self,
        dataset: &str,
        index: &str,
        tokens: Vec<String>,
        threshold: usize,
    ) -> Result<SourceFn>;

    /// Partition-local primary-index point lookup: `(partition, pk fields)
    /// → record`.
    #[allow(clippy::type_complexity)]
    fn primary_lookup(
        &self,
        dataset: &str,
    ) -> Result<Arc<dyn Fn(usize, &[Value]) -> Result<Option<Value>> + Send + Sync>>;

    // -- interpreter-path access (whole dataset, partition-transparent) ----

    /// All records (interpreter / correlated subplans).
    fn scan_all(&self, dataset: &str) -> Result<Vec<Value>>;

    /// Point lookup by primary key across partitions.
    fn lookup_pk(&self, dataset: &str, pk: &[Value]) -> Result<Option<Value>>;

    /// Cross-partition primary-index range scan returning records.
    fn primary_range_all(&self, dataset: &str, lo: KeyBound, hi: KeyBound) -> Result<Vec<Value>>;

    /// Cross-partition secondary B-tree search returning primary keys.
    fn btree_search_all(
        &self,
        dataset: &str,
        index: &str,
        lo: KeyBound,
        hi: KeyBound,
    ) -> Result<Vec<Vec<Value>>>;

    /// Cross-partition R-tree search returning primary keys.
    fn rtree_search_all(
        &self,
        dataset: &str,
        index: &str,
        query: &Rectangle,
    ) -> Result<Vec<Vec<Value>>>;

    /// Cross-partition inverted search returning primary keys.
    fn inverted_search_all(
        &self,
        dataset: &str,
        index: &str,
        tokens: &[String],
        threshold: usize,
    ) -> Result<Vec<Vec<Value>>>;
}

/// Test support: a provider with no datasets.
pub mod tests_support {
    use super::*;

    /// Provider exposing nothing; used by expression-level tests.
    pub struct EmptyProvider;

    impl MetadataProvider for EmptyProvider {
        fn partitions(&self) -> usize {
            1
        }

        fn dataset_exists(&self, _dataset: &str) -> bool {
            false
        }

        fn primary_key_fields(&self, _dataset: &str) -> Vec<String> {
            Vec::new()
        }

        fn indexes(&self, _dataset: &str) -> Vec<IndexInfo> {
            Vec::new()
        }

        fn scan_source(&self, dataset: &str) -> Result<SourceFn> {
            Err(asterix_hyracks::HyracksError::Operator(format!("unknown dataset {dataset}")))
        }

        fn primary_range_source(
            &self,
            dataset: &str,
            _lo: KeyBound,
            _hi: KeyBound,
        ) -> Result<SourceFn> {
            Err(asterix_hyracks::HyracksError::Operator(format!("unknown dataset {dataset}")))
        }

        fn primary_range_all(
            &self,
            dataset: &str,
            _lo: KeyBound,
            _hi: KeyBound,
        ) -> Result<Vec<Value>> {
            Err(asterix_hyracks::HyracksError::Operator(format!("unknown dataset {dataset}")))
        }

        fn btree_search_source(
            &self,
            dataset: &str,
            _index: &str,
            _lo: KeyBound,
            _hi: KeyBound,
        ) -> Result<SourceFn> {
            Err(asterix_hyracks::HyracksError::Operator(format!("unknown dataset {dataset}")))
        }

        fn rtree_search_source(
            &self,
            dataset: &str,
            _index: &str,
            _query: Rectangle,
        ) -> Result<SourceFn> {
            Err(asterix_hyracks::HyracksError::Operator(format!("unknown dataset {dataset}")))
        }

        fn inverted_search_source(
            &self,
            dataset: &str,
            _index: &str,
            _tokens: Vec<String>,
            _threshold: usize,
        ) -> Result<SourceFn> {
            Err(asterix_hyracks::HyracksError::Operator(format!("unknown dataset {dataset}")))
        }

        fn primary_lookup(
            &self,
            dataset: &str,
        ) -> Result<Arc<dyn Fn(usize, &[Value]) -> Result<Option<Value>> + Send + Sync>> {
            Err(asterix_hyracks::HyracksError::Operator(format!("unknown dataset {dataset}")))
        }

        fn scan_all(&self, dataset: &str) -> Result<Vec<Value>> {
            Err(asterix_hyracks::HyracksError::Operator(format!("unknown dataset {dataset}")))
        }

        fn lookup_pk(&self, dataset: &str, _pk: &[Value]) -> Result<Option<Value>> {
            Err(asterix_hyracks::HyracksError::Operator(format!("unknown dataset {dataset}")))
        }

        fn btree_search_all(
            &self,
            dataset: &str,
            _index: &str,
            _lo: KeyBound,
            _hi: KeyBound,
        ) -> Result<Vec<Vec<Value>>> {
            Err(asterix_hyracks::HyracksError::Operator(format!("unknown dataset {dataset}")))
        }

        fn rtree_search_all(
            &self,
            dataset: &str,
            _index: &str,
            _query: &Rectangle,
        ) -> Result<Vec<Vec<Value>>> {
            Err(asterix_hyracks::HyracksError::Operator(format!("unknown dataset {dataset}")))
        }

        fn inverted_search_all(
            &self,
            dataset: &str,
            _index: &str,
            _tokens: &[String],
            _threshold: usize,
        ) -> Result<Vec<Vec<Value>>> {
            Err(asterix_hyracks::HyracksError::Operator(format!("unknown dataset {dataset}")))
        }
    }

    /// A simple in-memory provider for compiler tests: named datasets as
    /// vectors of records, hash-partitioned on demand, no indexes.
    pub struct VecProvider {
        pub datasets: std::collections::HashMap<String, Vec<Value>>,
        pub pk_fields: std::collections::HashMap<String, Vec<String>>,
        pub nparts: usize,
    }

    impl VecProvider {
        pub fn new(nparts: usize) -> VecProvider {
            VecProvider { datasets: Default::default(), pk_fields: Default::default(), nparts }
        }

        pub fn add(&mut self, name: &str, pk: &str, records: Vec<Value>) {
            self.datasets.insert(name.to_string(), records);
            self.pk_fields.insert(name.to_string(), vec![pk.to_string()]);
        }
    }

    impl MetadataProvider for VecProvider {
        fn partitions(&self) -> usize {
            self.nparts
        }

        fn dataset_exists(&self, dataset: &str) -> bool {
            self.datasets.contains_key(dataset)
        }

        fn primary_key_fields(&self, dataset: &str) -> Vec<String> {
            self.pk_fields.get(dataset).cloned().unwrap_or_default()
        }

        fn indexes(&self, _dataset: &str) -> Vec<IndexInfo> {
            Vec::new()
        }

        fn scan_source(&self, dataset: &str) -> Result<SourceFn> {
            let records = self.datasets.get(dataset).cloned().ok_or_else(|| {
                asterix_hyracks::HyracksError::Operator(format!("unknown dataset {dataset}"))
            })?;
            let pk_fields = self.primary_key_fields(dataset);
            Ok(Arc::new(move |partition, nparts, emit| {
                for r in &records {
                    // Hash-partition by primary key, as real datasets are.
                    let h = pk_fields.first().map(|f| r.field(f).stable_hash()).unwrap_or(0);
                    if (h % nparts as u64) as usize == partition {
                        emit(vec![r.clone()])?;
                    }
                }
                Ok(())
            }))
        }

        fn primary_range_source(
            &self,
            dataset: &str,
            lo: KeyBound,
            hi: KeyBound,
        ) -> Result<SourceFn> {
            let records = self.primary_range_all(dataset, lo, hi)?;
            let pk_fields = self.primary_key_fields(dataset);
            Ok(Arc::new(move |partition, nparts, emit| {
                for r in &records {
                    let h = pk_fields.first().map(|f| r.field(f).stable_hash()).unwrap_or(0);
                    if (h % nparts as u64) as usize == partition {
                        emit(vec![r.clone()])?;
                    }
                }
                Ok(())
            }))
        }

        fn primary_range_all(
            &self,
            dataset: &str,
            lo: KeyBound,
            hi: KeyBound,
        ) -> Result<Vec<Value>> {
            let pk = self.primary_key_fields(dataset).first().cloned().unwrap_or_default();
            Ok(self
                .scan_all(dataset)?
                .into_iter()
                .filter(|r| {
                    let k = r.field(&pk);
                    let lo_ok = match &lo {
                        KeyBound::Unbounded => true,
                        KeyBound::Inclusive(v) => k.total_cmp(v).is_ge(),
                        KeyBound::Exclusive(v) => k.total_cmp(v).is_gt(),
                    };
                    let hi_ok = match &hi {
                        KeyBound::Unbounded => true,
                        KeyBound::Inclusive(v) => k.total_cmp(v).is_le(),
                        KeyBound::Exclusive(v) => k.total_cmp(v).is_lt(),
                    };
                    lo_ok && hi_ok
                })
                .collect())
        }

        fn btree_search_source(
            &self,
            _d: &str,
            _i: &str,
            _lo: KeyBound,
            _hi: KeyBound,
        ) -> Result<SourceFn> {
            Err(asterix_hyracks::HyracksError::Operator("no indexes".into()))
        }

        fn rtree_search_source(&self, _d: &str, _i: &str, _q: Rectangle) -> Result<SourceFn> {
            Err(asterix_hyracks::HyracksError::Operator("no indexes".into()))
        }

        fn inverted_search_source(
            &self,
            _d: &str,
            _i: &str,
            _t: Vec<String>,
            _th: usize,
        ) -> Result<SourceFn> {
            Err(asterix_hyracks::HyracksError::Operator("no indexes".into()))
        }

        fn primary_lookup(
            &self,
            dataset: &str,
        ) -> Result<Arc<dyn Fn(usize, &[Value]) -> Result<Option<Value>> + Send + Sync>> {
            let records = self.datasets.get(dataset).cloned().unwrap_or_default();
            let pk_fields = self.primary_key_fields(dataset);
            Ok(Arc::new(move |_partition, pk| {
                Ok(records
                    .iter()
                    .find(|r| {
                        pk_fields.iter().zip(pk).all(|(f, v)| r.field(f).total_cmp(v).is_eq())
                    })
                    .cloned())
            }))
        }

        fn scan_all(&self, dataset: &str) -> Result<Vec<Value>> {
            self.datasets.get(dataset).cloned().ok_or_else(|| {
                asterix_hyracks::HyracksError::Operator(format!("unknown dataset {dataset}"))
            })
        }

        fn lookup_pk(&self, dataset: &str, pk: &[Value]) -> Result<Option<Value>> {
            let f = self.primary_lookup(dataset)?;
            f(0, pk)
        }

        fn btree_search_all(
            &self,
            _d: &str,
            _i: &str,
            _lo: KeyBound,
            _hi: KeyBound,
        ) -> Result<Vec<Vec<Value>>> {
            Err(asterix_hyracks::HyracksError::Operator("no indexes".into()))
        }

        fn rtree_search_all(&self, _d: &str, _i: &str, _q: &Rectangle) -> Result<Vec<Vec<Value>>> {
            Err(asterix_hyracks::HyracksError::Operator("no indexes".into()))
        }

        fn inverted_search_all(
            &self,
            _d: &str,
            _i: &str,
            _t: &[String],
            _th: usize,
        ) -> Result<Vec<Vec<Value>>> {
            Err(asterix_hyracks::HyracksError::Operator("no indexes".into()))
        }
    }
}
