//! Physical plan / Hyracks job generation (§4.2: "code generation
//! translates the resulting physical query plan into a corresponding
//! Hyracks Job").
//!
//! The generator walks the optimized logical plan bottom-up, tracking the
//! tuple **schema** (which variable lives in which column) and the
//! **partitioning property** of each operator's output, inserting exchange
//! connectors only where partitioning must change — "the optimizer keeps
//! track of data partitioning and only moves data as changes in parallelism
//! or partitioning require" (§5.1).

use std::sync::Arc;

use asterix_adm::functions::FunctionContext;
use asterix_adm::Value;
use parking_lot::Mutex;

use asterix_hyracks::connector::ConnectorKind;
use asterix_hyracks::frame::Tuple;
use asterix_hyracks::job::{JobSpec, OperatorId};
use asterix_hyracks::ops::{
    sort_comparator, AggKind, AggSpec, AssignOp, CmpKind, DistinctOp, GroupMode, HashGroupOp,
    HybridHashJoinOp, IndexNestedLoopJoinOp, JoinType, LimitOp, MapOp, NestedLoopJoinOp, OrdPred,
    PartitionMapOp, ProjectOp, RuntimeFilterProbeOp, ScalarAggOp, SelectOp, SinkOp, SortKey,
    SortOp, SourceOp,
};
use asterix_hyracks::{HyracksError, Result};

use crate::expr::{eval, truthy, CompareOp, EvalCtx, LogicalExpr, TupleResolver, VarId};
use crate::metadata::{KeyBound, MetadataProvider, ScanFilter, ScanProjection};
use crate::plan::{AggFunc, IndexSearchSpec, JoinKind, LogicalOp, SortSpec};
use crate::rules::OptimizerOptions;

/// How an operator's output is spread across partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Part {
    /// One instance per storage partition.
    Distributed,
    /// A single instance (post-merge / global operators).
    Single,
}

/// A compiled query: the Hyracks job plus the handle its results arrive in.
pub struct CompiledQuery {
    pub job: JobSpec,
    /// Result rows: single-column tuples holding the emitted values.
    pub collector: Arc<Mutex<Vec<Tuple>>>,
    /// Cluster topology for the executor (locality-aware routing).
    pub partitions_per_node: usize,
}

impl CompiledQuery {
    /// Execute and return the emitted values in arrival order.
    pub fn run(self) -> Result<Vec<Value>> {
        let cfg = asterix_hyracks::executor::ExecutorConfig {
            partitions_per_node: self.partitions_per_node,
            ..Default::default()
        };
        let stats = Arc::new(asterix_hyracks::ExchangeStats::new());
        self.run_with(&cfg, &stats)
    }

    /// Execute with explicit executor settings, accumulating exchange
    /// counters into `stats` (the instance keeps one handle across queries
    /// so the bench harness can report frames/tuples/stall totals).
    pub fn run_with(
        self,
        cfg: &asterix_hyracks::executor::ExecutorConfig,
        stats: &Arc<asterix_hyracks::ExchangeStats>,
    ) -> Result<Vec<Value>> {
        let cfg = asterix_hyracks::executor::ExecutorConfig {
            partitions_per_node: self.partitions_per_node,
            ..cfg.clone()
        };
        asterix_hyracks::executor::run_job_with_stats(&self.job, &cfg, stats)?;
        // The job spec's sink operator also holds the collector Arc, so
        // take the rows out under the lock.
        let rows = std::mem::take(&mut *self.collector.lock());
        Ok(rows.into_iter().map(|mut t| t.pop().unwrap_or(Value::Missing)).collect())
    }

    /// Like [`CompiledQuery::run_with`], but meters every operator port and
    /// times every partition, returning the per-operator [`JobProfile`]
    /// alongside the results. Operator ids in the profile are the ids this
    /// compilation assigned, so rows map back to plan nodes.
    pub fn run_profiled_with(
        &self,
        cfg: &asterix_hyracks::executor::ExecutorConfig,
        stats: &Arc<asterix_hyracks::ExchangeStats>,
    ) -> Result<(Vec<Value>, asterix_hyracks::JobProfile)> {
        let cfg = asterix_hyracks::executor::ExecutorConfig {
            partitions_per_node: self.partitions_per_node,
            ..cfg.clone()
        };
        let profile = asterix_hyracks::executor::run_job_profiled(&self.job, &cfg, stats)?;
        let rows = std::mem::take(&mut *self.collector.lock());
        let values = rows.into_iter().map(|mut t| t.pop().unwrap_or(Value::Missing)).collect();
        Ok((values, profile))
    }

    /// The Figure 6-style description of the job.
    pub fn describe(&self) -> String {
        self.job.describe()
    }

    /// The job description with each operator line annotated with runtime
    /// stats from a profiled run of this same query shape.
    pub fn describe_profiled(&self, profile: &asterix_hyracks::JobProfile) -> String {
        self.job.describe_annotated(&|op| profile.annotation(op))
    }
}

struct Gen {
    job: JobSpec,
    ctx: Arc<EvalCtx>,
    nparts: usize,
    options: OptimizerOptions,
    /// Per-operator slice of the query's memory grant: the workload
    /// manager's total divided across the plan's memory-hungry operators.
    /// `None` leaves every operator on its built-in default.
    per_op_mem: Option<usize>,
    /// How each data-scan variable is used across the whole plan — drives
    /// projecting (late-materializing) scans over columnar storage.
    scan_uses: std::collections::HashMap<VarId, VarUse>,
}

/// How a data-scan variable is consumed by the rest of the plan.
#[derive(Debug, Clone)]
enum VarUse {
    /// Every use is a direct `$v.field` access: the scan only needs to
    /// materialize these top-level fields.
    Fields(std::collections::BTreeSet<String>),
    /// The whole record escapes somewhere (returned, compared, passed to
    /// a function, unnested…): the scan must produce full rows.
    Escaped,
}

/// Compute, for every `DataSourceScan` variable in the plan, whether the
/// query only ever touches specific top-level fields of it. Walks every
/// expression of every operator, recursing into correlated subplans
/// (whose own scans are interpreted, not compiled — only *outer* variable
/// references matter there). Conservative by construction: any use that
/// is not a literal `$v.field` marks the variable escaped.
fn analyze_scan_uses(plan: &LogicalOp) -> std::collections::HashMap<VarId, VarUse> {
    fn collect_scans(op: &LogicalOp, map: &mut std::collections::HashMap<VarId, VarUse>) {
        if let LogicalOp::DataSourceScan { var, .. } = op {
            map.insert(*var, VarUse::Fields(Default::default()));
        }
        for child in op.inputs() {
            collect_scans(child, map);
        }
    }
    fn note_expr(e: &LogicalExpr, map: &mut std::collections::HashMap<VarId, VarUse>) {
        match e {
            LogicalExpr::Const(_) | LogicalExpr::Param(_) => {}
            LogicalExpr::Var(v) => {
                if let Some(u) = map.get_mut(v) {
                    *u = VarUse::Escaped;
                }
            }
            LogicalExpr::FieldAccess(base, name) => {
                if let LogicalExpr::Var(v) = base.as_ref() {
                    if let Some(VarUse::Fields(fields)) = map.get_mut(v) {
                        fields.insert(name.clone());
                    }
                } else {
                    note_expr(base, map);
                }
            }
            LogicalExpr::IndexAccess(a, b) | LogicalExpr::Arith(_, a, b) => {
                note_expr(a, map);
                note_expr(b, map);
            }
            LogicalExpr::Compare(_, a, b) => {
                note_expr(a, map);
                note_expr(b, map);
            }
            LogicalExpr::Neg(a) | LogicalExpr::Not(a) => note_expr(a, map),
            LogicalExpr::Call(_, args) => args.iter().for_each(|a| note_expr(a, map)),
            LogicalExpr::And(es) | LogicalExpr::Or(es) => es.iter().for_each(|a| note_expr(a, map)),
            LogicalExpr::RecordCtor(fields) => fields.iter().for_each(|(_, a)| note_expr(a, map)),
            LogicalExpr::ListCtor { items, .. } => items.iter().for_each(|a| note_expr(a, map)),
            LogicalExpr::Quantified { collection, predicate, .. } => {
                note_expr(collection, map);
                note_expr(predicate, map);
            }
            LogicalExpr::IfThenElse(c, t, f) => {
                note_expr(c, map);
                note_expr(t, map);
                note_expr(f, map);
            }
            LogicalExpr::Subquery(plan) => note_op(plan, map),
        }
    }
    fn note_op(op: &LogicalOp, map: &mut std::collections::HashMap<VarId, VarUse>) {
        match op {
            LogicalOp::EmptyTupleSource | LogicalOp::DataSourceScan { .. } => {}
            LogicalOp::IndexSearch { spec, postcondition, .. } => {
                note_spec(spec, map);
                if let Some(p) = postcondition {
                    note_expr(p, map);
                }
            }
            LogicalOp::Assign { expr, .. } => note_expr(expr, map),
            LogicalOp::Select { condition, .. } => note_expr(condition, map),
            LogicalOp::Unnest { expr, .. } => note_expr(expr, map),
            LogicalOp::Join { condition, .. } => note_expr(condition, map),
            LogicalOp::HashJoin { left_keys, right_keys, residual, .. } => {
                left_keys.iter().chain(right_keys).for_each(|e| note_expr(e, map));
                if let Some(r) = residual {
                    note_expr(r, map);
                }
            }
            LogicalOp::IndexNlJoin { probe, .. } => note_expr(probe, map),
            LogicalOp::GroupBy { keys, aggs, .. } => {
                keys.iter().for_each(|(_, e)| note_expr(e, map));
                aggs.iter().for_each(|a| note_expr(&a.input, map));
            }
            LogicalOp::Aggregate { aggs, .. } => aggs.iter().for_each(|a| note_expr(&a.input, map)),
            LogicalOp::Order { keys, .. } => keys.iter().for_each(|k| note_expr(&k.expr, map)),
            LogicalOp::Limit { .. } => {}
            LogicalOp::Distinct { exprs, .. } => exprs.iter().for_each(|e| note_expr(e, map)),
            LogicalOp::Emit { expr, .. } => note_expr(expr, map),
        }
        for child in op.inputs() {
            note_op(child, map);
        }
    }
    fn note_spec(
        spec: &crate::plan::IndexSearchSpec,
        map: &mut std::collections::HashMap<VarId, VarUse>,
    ) {
        use crate::plan::IndexSearchSpec as S;
        let mut bound = |b: &Option<(LogicalExpr, bool)>| {
            if let Some((e, _)) = b {
                note_expr(e, map);
            }
        };
        match spec {
            S::PrimaryRange { lo, hi } | S::BTreeRange { lo, hi } => {
                bound(lo);
                bound(hi);
            }
            S::RTree { query } => note_expr(query, map),
            S::InvertedConjunctive { needle } => note_expr(needle, map),
            S::InvertedFuzzy { needle, .. } => note_expr(needle, map),
        }
    }
    let mut map = std::collections::HashMap::new();
    collect_scans(plan, &mut map);
    note_op(plan, &mut map);
    map
}

/// Floor for a single operator's slice of the query grant: dividing a small
/// grant across a big plan must not produce unusable budgets.
const MIN_OP_MEM: usize = 1 << 20;

/// Count the plan nodes that become memory-hungry physical operators
/// (sorts, hash-group tables, hybrid hash joins), so a query-wide memory
/// grant can be divided among them. GroupBy counts twice (local partial +
/// global final table) and secondary-index searches carry the hidden `$pk`
/// sort of the Figure 6 access path.
fn memory_hungry_ops(op: &LogicalOp) -> usize {
    match op {
        LogicalOp::EmptyTupleSource | LogicalOp::DataSourceScan { .. } => 0,
        LogicalOp::IndexSearch { spec, .. } => {
            usize::from(!matches!(spec, IndexSearchSpec::PrimaryRange { .. }))
        }
        LogicalOp::Assign { input, .. }
        | LogicalOp::Select { input, .. }
        | LogicalOp::Unnest { input, .. }
        | LogicalOp::Limit { input, .. }
        | LogicalOp::Distinct { input, .. }
        | LogicalOp::Aggregate { input, .. }
        | LogicalOp::Emit { input, .. } => memory_hungry_ops(input),
        LogicalOp::Join { left, right, .. } => memory_hungry_ops(left) + memory_hungry_ops(right),
        LogicalOp::HashJoin { left, right, .. } => {
            1 + memory_hungry_ops(left) + memory_hungry_ops(right)
        }
        LogicalOp::IndexNlJoin { left, .. } => memory_hungry_ops(left),
        LogicalOp::GroupBy { input, .. } => 2 + memory_hungry_ops(input),
        LogicalOp::Order { input, .. } => 1 + memory_hungry_ops(input),
    }
}

/// Compile an optimized logical plan into a Hyracks job.
pub fn compile(
    plan: &LogicalOp,
    provider: Arc<dyn MetadataProvider>,
    fn_ctx: FunctionContext,
    options: &OptimizerOptions,
) -> Result<CompiledQuery> {
    compile_with_params(plan, provider, fn_ctx, options, Vec::new())
}

/// Compile with bind-time values for the plan's [`LogicalExpr::Param`]
/// slots. This is the plan cache's re-instantiation path: the optimized
/// plan is compiled once per execution, so every constant the generated
/// operators capture (ordkey predicate keys, index search bounds, pushed
/// scan filters) is derived from the *current* parameter vector.
pub fn compile_with_params(
    plan: &LogicalOp,
    provider: Arc<dyn MetadataProvider>,
    fn_ctx: FunctionContext,
    options: &OptimizerOptions,
    params: Vec<asterix_adm::Value>,
) -> Result<CompiledQuery> {
    let nparts = provider.partitions().max(1);
    let per_op_mem = options
        .query_mem_budget
        .map(|total| (total / memory_hungry_ops(plan).max(1)).max(MIN_OP_MEM));
    let mut gen = Gen {
        job: JobSpec::new(),
        ctx: Arc::new(EvalCtx::with_params(provider, fn_ctx, params)),
        nparts,
        options: options.clone(),
        per_op_mem,
        scan_uses: analyze_scan_uses(plan),
    };
    let LogicalOp::Emit { input, expr } = plan else {
        return Err(HyracksError::InvalidJob("top-level plan must end in emit".into()));
    };
    let (op, schema, part) = gen.build(input)?;
    // Final emit: compute the output value, project it, sink at 1 partition.
    let emit_eval = gen.make_eval(expr, &schema)?;
    let width = schema.len();
    let emit_op = match Gen::referenced_cols(&[expr], &schema) {
        Some(fields) => AssignOp::with_fields("emit", vec![emit_eval], fields),
        None => AssignOp::new("emit", vec![emit_eval]),
    };
    let assign = gen.job.add(gen.parts(part), Arc::new(emit_op));
    gen.job.connect(ConnectorKind::OneToOne, op, assign);
    let project = gen.job.add(gen.parts(part), Arc::new(ProjectOp { fields: vec![width] }));
    gen.job.connect(ConnectorKind::OneToOne, assign, project);
    let collector = Arc::new(Mutex::new(Vec::new()));
    let sink = gen.job.add(1, Arc::new(SinkOp::new(Arc::clone(&collector))));
    match part {
        Part::Single => gen.job.connect(ConnectorKind::OneToOne, project, sink),
        Part::Distributed => gen.job.connect(ConnectorKind::MToNReplicating, project, sink),
    }
    let partitions_per_node = gen.ctx.provider.partitions_per_node();
    Ok(CompiledQuery { job: gen.job, collector, partitions_per_node })
}

impl Gen {
    /// A sort operator carrying this query's per-operator memory slice.
    fn sort_op(&self, label: &str, keys: Vec<SortKey>) -> SortOp {
        let op = SortOp::new(label, keys);
        match self.per_op_mem {
            Some(b) => op.with_budget(b),
            None => op,
        }
    }

    /// A hash-group operator carrying this query's per-operator slice.
    fn group_op(
        &self,
        label: &str,
        keys: Vec<usize>,
        aggs: Vec<AggSpec>,
        mode: GroupMode,
    ) -> HashGroupOp {
        let op = HashGroupOp::new(label, keys, aggs, mode);
        match self.per_op_mem {
            Some(b) => op.with_budget(b),
            None => op,
        }
    }

    fn parts(&self, p: Part) -> usize {
        match p {
            Part::Distributed => self.nparts,
            Part::Single => 1,
        }
    }

    /// Column map for a schema: VarId → column index.
    fn columns_of(schema: &[VarId]) -> Vec<Option<usize>> {
        let max = schema.iter().copied().max().unwrap_or(0);
        let mut cols = vec![None; max + 1];
        for (i, v) in schema.iter().enumerate() {
            cols[*v] = Some(i);
        }
        cols
    }

    /// The input columns a set of expressions actually read — handed to
    /// Select/Assign so they decode only those positions instead of the
    /// whole tuple. `None` (decode everything) when any free variable is
    /// not a column of this schema, e.g. an assign expression referencing
    /// a column appended earlier in the same operator.
    fn referenced_cols(exprs: &[&LogicalExpr], schema: &[VarId]) -> Option<Vec<usize>> {
        let cols = Self::columns_of(schema);
        let mut vars: Vec<VarId> = Vec::new();
        for e in exprs {
            e.free_vars(&mut vars);
        }
        let mut out = Vec::with_capacity(vars.len());
        for v in vars {
            out.push(cols.get(v).copied().flatten()?);
        }
        out.sort_unstable();
        out.dedup();
        Some(out)
    }

    fn select_op(&self, label: &str, expr: &LogicalExpr, schema: &[VarId]) -> Result<SelectOp> {
        let pred = self.make_pred(expr, schema)?;
        let mut sel = match Self::referenced_cols(&[expr], schema) {
            Some(fields) => SelectOp::with_fields(label, pred, fields),
            None => SelectOp::new(label, pred),
        };
        if let Some(ord) = self.ordkey_pred(expr, schema) {
            sel = sel.with_ordkey(ord);
        }
        Ok(sel)
    }

    /// Classify `expr` as an ordkey-decidable comparison: `$v <op> C` or
    /// `$v.field <op> C` (either operand order) where the other side folds
    /// to a known constant. The select then decides most tuples by memcmp
    /// on encoded comparison keys; anything the transcoder refuses (unknown
    /// fields, non-scalars, numerics at the exactness bound) falls back to
    /// the decoding predicate, so classification never changes results.
    fn ordkey_pred(&self, expr: &LogicalExpr, schema: &[VarId]) -> Option<OrdPred> {
        let LogicalExpr::Compare(op, lhs, rhs) = expr else { return None };
        let op = match op {
            CompareOp::Eq => CmpKind::Eq,
            CompareOp::Neq => CmpKind::Neq,
            CompareOp::Lt => CmpKind::Lt,
            CompareOp::Le => CmpKind::Le,
            CompareOp::Gt => CmpKind::Gt,
            CompareOp::Ge => CmpKind::Ge,
            CompareOp::FuzzyEq => return None,
        };
        let cols = Self::columns_of(schema);
        // A comparand the fast path can address: a column, or one encoded
        // record field of a column.
        let target = |e: &LogicalExpr| -> Option<(usize, Option<String>)> {
            match e {
                LogicalExpr::Var(v) => Some((cols.get(*v).copied().flatten()?, None)),
                LogicalExpr::FieldAccess(base, name) => match base.as_ref() {
                    LogicalExpr::Var(v) => {
                        Some((cols.get(*v).copied().flatten()?, Some(name.clone())))
                    }
                    _ => None,
                },
                _ => None,
            }
        };
        let is_const = |e: &LogicalExpr| {
            let mut vars = Vec::new();
            e.free_vars(&mut vars);
            vars.is_empty()
        };
        // `C <op> $v` mirrors to `$v <flipped op> C`.
        let flip = |op: CmpKind| match op {
            CmpKind::Lt => CmpKind::Gt,
            CmpKind::Le => CmpKind::Ge,
            CmpKind::Gt => CmpKind::Lt,
            CmpKind::Ge => CmpKind::Le,
            eq => eq,
        };
        let ((col, path), cexpr, op) = if let Some(t) = target(lhs) {
            if !is_const(rhs) {
                return None;
            }
            (t, rhs, op)
        } else if let Some(t) = target(rhs) {
            if !is_const(lhs) {
                return None;
            }
            (t, lhs, flip(op))
        } else {
            return None;
        };
        let c = self.const_value(cexpr).ok()?;
        // NULL/MISSING comparands make the whole comparison unknown; the
        // key encoding cannot express that, so leave them to the decoder.
        if c.is_unknown() {
            return None;
        }
        Some(OrdPred { col, path, op, key: asterix_adm::ordkey::encode_value(&c) })
    }

    fn make_eval(
        &self,
        expr: &LogicalExpr,
        schema: &[VarId],
    ) -> Result<asterix_hyracks::ops::EvalFn> {
        let cols = Self::columns_of(schema);
        let expr = expr.clone();
        let ctx = Arc::clone(&self.ctx);
        Ok(Arc::new(move |t: &Tuple| {
            let r = TupleResolver { columns: &cols, tuple: t };
            eval(&expr, &r, &ctx).map_err(HyracksError::from)
        }))
    }

    fn make_pred(
        &self,
        expr: &LogicalExpr,
        schema: &[VarId],
    ) -> Result<asterix_hyracks::ops::PredFn> {
        let cols = Self::columns_of(schema);
        let expr = expr.clone();
        let ctx = Arc::clone(&self.ctx);
        Ok(Arc::new(move |t: &Tuple| {
            let r = TupleResolver { columns: &cols, tuple: t };
            Ok(truthy(&eval(&expr, &r, &ctx).map_err(HyracksError::from)?))
        }))
    }

    /// Evaluate a compile-time constant expression (index bounds at the top
    /// level must fold to constants; correlated bounds only occur in
    /// subplans, which the interpreter handles).
    fn const_value(&self, expr: &LogicalExpr) -> Result<Value> {
        let empty: std::collections::HashMap<VarId, Value> = Default::default();
        eval(expr, &empty, &self.ctx).map_err(HyracksError::from)
    }

    fn key_bound(&self, b: &Option<(LogicalExpr, bool)>) -> Result<KeyBound> {
        Ok(match b {
            None => KeyBound::Unbounded,
            Some((e, true)) => KeyBound::Inclusive(self.const_value(e)?),
            Some((e, false)) => KeyBound::Exclusive(self.const_value(e)?),
        })
    }

    /// Append computed expression columns; returns (op, new schema) where
    /// the new columns are bound to the given variables.
    fn append_columns(
        &mut self,
        input: OperatorId,
        schema: &[VarId],
        part: Part,
        label: &str,
        exprs: &[(VarId, LogicalExpr)],
    ) -> Result<(OperatorId, Vec<VarId>)> {
        let evals: Result<Vec<_>> = exprs.iter().map(|(_, e)| self.make_eval(e, schema)).collect();
        let erefs: Vec<&LogicalExpr> = exprs.iter().map(|(_, e)| e).collect();
        let assign = match Self::referenced_cols(&erefs, schema) {
            Some(fields) => AssignOp::with_fields(label, evals?, fields),
            None => AssignOp::new(label, evals?),
        };
        let op = self.job.add(self.parts(part), Arc::new(assign));
        self.job.connect(ConnectorKind::OneToOne, input, op);
        let mut new_schema = schema.to_vec();
        new_schema.extend(exprs.iter().map(|(v, _)| *v));
        Ok((op, new_schema))
    }

    /// The projection a scan of `var` may run with: `Some` only when every
    /// use of the variable across the plan is a direct field access.
    fn scan_projection(&self, var: VarId, filter: Option<ScanFilter>) -> Option<ScanProjection> {
        match self.scan_uses.get(&var) {
            Some(VarUse::Fields(fields)) => {
                Some(ScanProjection { fields: fields.iter().cloned().collect(), filter })
            }
            _ => None,
        }
    }

    /// Classify a select condition over the scan variable as a pushable
    /// single-column pre-filter: an ordkey-decidable `$v.field <op> C`
    /// comparison (for conjunctions, the first such conjunct — dropping
    /// rows one conjunct definitely rejects is always safe).
    fn scan_filter(&self, condition: &LogicalExpr, var: VarId) -> Option<ScanFilter> {
        let schema = [var];
        let cand = |e: &LogicalExpr| -> Option<ScanFilter> {
            let p = self.ordkey_pred(e, &schema)?;
            let field = p.path?;
            (p.col == 0).then(|| ScanFilter { field, op: p.op, key: p.key })
        };
        match condition {
            LogicalExpr::And(cs) => cs.iter().find_map(cand),
            e => cand(e),
        }
    }

    /// Build a data-scan source. Prefers the serialized scan: storage
    /// hands encoded tuple bytes straight into the byte-frame exchange.
    /// When the plan only touches specific fields of the scan variable,
    /// the provider is offered a projection so columnar components can
    /// read just those columns and late-materialize.
    fn build_scan(
        &mut self,
        dataset: &str,
        var: VarId,
        filter: Option<ScanFilter>,
    ) -> Result<(OperatorId, Vec<VarId>, Part)> {
        let proj = self.scan_projection(var, filter);
        let op: Arc<SourceOp> = match self.ctx.provider.raw_scan_source(dataset, proj.as_ref())? {
            Some(raw) => {
                let label = match &proj {
                    Some(p) if raw.projected => {
                        format!("data-scan {dataset} [cols: {}]", p.fields.join(","))
                    }
                    _ => format!("data-scan {dataset}"),
                };
                Arc::new(SourceOp::from_raw_fn(label, raw.source))
            }
            None => {
                let src = self.ctx.provider.scan_source(dataset)?;
                Arc::new(SourceOp::from_fn(format!("data-scan {dataset}"), src))
            }
        };
        let id = self.job.add(self.nparts, op);
        Ok((id, vec![var], Part::Distributed))
    }

    fn build(&mut self, op: &LogicalOp) -> Result<(OperatorId, Vec<VarId>, Part)> {
        match op {
            LogicalOp::EmptyTupleSource => {
                let id = self.job.add(
                    1,
                    Arc::new(SourceOp::new("empty-tuple-source", |_, _, emit| emit(Vec::new()))),
                );
                Ok((id, Vec::new(), Part::Single))
            }
            LogicalOp::DataSourceScan { dataset, var } => self.build_scan(dataset, *var, None),
            LogicalOp::IndexSearch { dataset, index, var, spec, postcondition } => {
                self.build_index_search(dataset, index, *var, spec, postcondition.as_ref())
            }
            LogicalOp::Assign { input, var, expr } => {
                let (in_op, schema, part) = self.build(input)?;
                let (op, schema) = self.append_columns(
                    in_op,
                    &schema,
                    part,
                    &format!("$v{var}"),
                    &[(*var, expr.clone())],
                )?;
                Ok((op, schema, part))
            }
            LogicalOp::Select { input, condition } => {
                // A select directly over a data scan pushes its
                // ordkey-decidable comparison into the scan: a columnar
                // source then decides most rows on one column's bytes
                // before assembling anything. The select stays in the plan
                // — the pushed filter only drops definite rejects.
                let (in_op, schema, part) = match input.as_ref() {
                    LogicalOp::DataSourceScan { dataset, var } => {
                        let filter = self.scan_filter(condition, *var);
                        self.build_scan(dataset, *var, filter)?
                    }
                    _ => self.build(input)?,
                };
                let sel = self.select_op("filter", condition, &schema)?;
                let id = self.job.add(self.parts(part), Arc::new(sel));
                self.job.connect(ConnectorKind::OneToOne, in_op, id);
                Ok((id, schema, part))
            }
            LogicalOp::Unnest { input, var, expr, positional, outer } => {
                let (in_op, schema, part) = self.build(input)?;
                let e = self.make_eval(expr, &schema)?;
                let mut unnest = if *outer {
                    asterix_hyracks::ops::UnnestOp::outer(format!("$v{var}"), e)
                } else {
                    asterix_hyracks::ops::UnnestOp::new(format!("$v{var}"), e)
                };
                if positional.is_some() {
                    unnest = unnest.with_position();
                }
                let id = self.job.add(self.parts(part), Arc::new(unnest));
                self.job.connect(ConnectorKind::OneToOne, in_op, id);
                let mut new_schema = schema;
                new_schema.push(*var);
                if let Some(p) = positional {
                    new_schema.push(*p);
                }
                Ok((id, new_schema, part))
            }
            LogicalOp::HashJoin { left, right, left_keys, right_keys, residual, kind } => {
                if *kind == JoinKind::LeftOuter && residual.is_some() {
                    // Residual predicates cannot be applied above an outer
                    // join without corrupting padding; fall back to NL join.
                    return self.build_nl_join(
                        left,
                        right,
                        &rebuild_condition(left_keys, right_keys, residual),
                        *kind,
                    );
                }
                let (l_op, l_schema, l_part) = self.build(left)?;
                let (r_op, r_schema, r_part) = self.build(right)?;
                // Compute key columns on both sides.
                let l_key_vars: Vec<VarId> =
                    (0..left_keys.len()).map(|i| fresh_var(&l_schema, &r_schema, i)).collect();
                let r_key_vars: Vec<VarId> = (0..right_keys.len())
                    .map(|i| fresh_var(&l_schema, &r_schema, i + left_keys.len()))
                    .collect();
                let kexprs: Vec<(VarId, LogicalExpr)> =
                    l_key_vars.iter().zip(left_keys).map(|(v, e)| (*v, e.clone())).collect();
                let (l_keyed, l_schema) =
                    self.append_columns(l_op, &l_schema, l_part, "join-key", &kexprs)?;
                let kexprs: Vec<(VarId, LogicalExpr)> =
                    r_key_vars.iter().zip(right_keys).map(|(v, e)| (*v, e.clone())).collect();
                let (r_keyed, r_schema) =
                    self.append_columns(r_op, &r_schema, r_part, "join-key", &kexprs)?;
                let l_key_cols: Vec<usize> =
                    (l_schema.len() - left_keys.len()..l_schema.len()).collect();
                let r_key_cols: Vec<usize> =
                    (r_schema.len() - right_keys.len()..r_schema.len()).collect();
                // Build = right, probe = left (so LeftOuter = ProbeOuter).
                let jt = match kind {
                    JoinKind::Inner => JoinType::Inner,
                    JoinKind::LeftOuter => JoinType::ProbeOuter,
                };
                let mut hh =
                    HybridHashJoinOp::new("equi", r_key_cols.clone(), l_key_cols.clone(), jt);
                if let Some(b) = self.per_op_mem {
                    hh = hh.with_budget(b);
                }
                // Runtime join filter (inner joins only: an outer probe must
                // emit non-matching tuples, so pruning them would corrupt
                // results). The build side publishes its key hashes when the
                // build finishes; a probe-side consult drops non-matching
                // tuples *before* the probe exchange ships them.
                let mut probe_src = l_keyed;
                if self.options.enable_runtime_filters && jt == JoinType::Inner {
                    let fid = self.job.alloc_runtime_filter();
                    hh = hh.with_runtime_filter(fid);
                    let probe = self.job.add(
                        self.parts(l_part),
                        Arc::new(RuntimeFilterProbeOp {
                            filter_id: fid,
                            key_cols: l_key_cols.clone(),
                            join_nparts: self.nparts,
                        }),
                    );
                    self.job.connect(ConnectorKind::OneToOne, l_keyed, probe);
                    probe_src = probe;
                }
                let join = self.job.add(self.nparts, Arc::new(hh));
                self.job.connect(
                    ConnectorKind::MToNPartitioning { fields: r_key_cols },
                    r_keyed,
                    join,
                );
                self.job.connect(
                    ConnectorKind::MToNPartitioning { fields: l_key_cols },
                    probe_src,
                    join,
                );
                // Output = build(right) ++ probe(left).
                let mut schema = r_schema;
                schema.extend(l_schema);
                let mut out = join;
                if let Some(resid) = residual {
                    let sel_op = self.select_op("residual", resid, &schema)?;
                    let sel = self.job.add(self.nparts, Arc::new(sel_op));
                    self.job.connect(ConnectorKind::OneToOne, join, sel);
                    out = sel;
                }
                Ok((out, schema, Part::Distributed))
            }
            LogicalOp::Join { left, right, condition, kind, .. } => {
                self.build_nl_join(left, right, condition, *kind)
            }
            LogicalOp::IndexNlJoin { left, dataset, index, probe, var, kind } => {
                let (l_op, l_schema, part) = self.build(left)?;
                let probe_eval = self.make_eval(probe, &l_schema)?;
                let provider = Arc::clone(&self.ctx.provider);
                let (dataset_c, index_c) = (dataset.clone(), index.clone());
                let jt = match kind {
                    JoinKind::Inner => JoinType::Inner,
                    JoinKind::LeftOuter => JoinType::ProbeOuter,
                };
                let join = self.job.add(
                    self.parts(part),
                    Arc::new(IndexNestedLoopJoinOp::new(
                        format!("{dataset}.{index}"),
                        move |t: &Tuple| {
                            let key = probe_eval(t)?;
                            if key.is_unknown() {
                                return Ok(vec![]);
                            }
                            let pks = provider.btree_search_all(
                                &dataset_c,
                                &index_c,
                                KeyBound::Inclusive(key.clone()),
                                KeyBound::Inclusive(key),
                            )?;
                            let mut out = Vec::with_capacity(pks.len());
                            for pk in pks {
                                if let Some(r) = provider.lookup_pk(&dataset_c, &pk)? {
                                    out.push(vec![r]);
                                }
                            }
                            Ok(out)
                        },
                        jt,
                        1,
                    )),
                );
                self.job.connect(ConnectorKind::OneToOne, l_op, join);
                let mut schema = l_schema;
                schema.push(*var);
                Ok((join, schema, part))
            }
            LogicalOp::GroupBy { input, keys, aggs } => {
                let (in_op, schema, part) = self.build(input)?;
                // Materialize key and agg-input expressions as columns.
                let mut new_cols: Vec<(VarId, LogicalExpr)> = Vec::new();
                for (v, e) in keys {
                    new_cols.push((*v, e.clone()));
                }
                let agg_in_vars: Vec<VarId> = aggs
                    .iter()
                    .enumerate()
                    .map(|(i, _)| 1_000_000 + i) // synthetic column vars
                    .collect();
                for (v, a) in agg_in_vars.iter().zip(aggs) {
                    new_cols.push((*v, a.input.clone()));
                }
                let (keyed, keyed_schema) =
                    self.append_columns(in_op, &schema, part, "group-input", &new_cols)?;
                let nkeys = keys.len();
                let base = keyed_schema.len() - new_cols.len();
                let key_cols: Vec<usize> = (base..base + nkeys).collect();
                let specs: Vec<AggSpec> = aggs
                    .iter()
                    .enumerate()
                    .map(|(i, a)| AggSpec {
                        kind: agg_kind(a.func),
                        field: base + nkeys + i,
                        sql: a.sql,
                    })
                    .collect();
                // Local partial aggregation.
                let local = self.job.add(
                    self.parts(part),
                    Arc::new(self.group_op(
                        "local",
                        key_cols.clone(),
                        specs.clone(),
                        GroupMode::Partial,
                    )),
                );
                self.job.connect(ConnectorKind::OneToOne, keyed, local);
                // Partial output schema: keys 0..nkeys, partial fields after.
                let final_specs: Vec<AggSpec> =
                    specs.iter().map(|s| AggSpec { kind: s.kind, field: 0, sql: s.sql }).collect();
                let global = self.job.add(
                    self.nparts,
                    Arc::new(self.group_op(
                        "global",
                        (0..nkeys).collect(),
                        final_specs,
                        GroupMode::Final,
                    )),
                );
                self.job.connect(
                    ConnectorKind::MToNPartitioning { fields: (0..nkeys).collect() },
                    local,
                    global,
                );
                let mut out_schema: Vec<VarId> = keys.iter().map(|(v, _)| *v).collect();
                out_schema.extend(aggs.iter().map(|a| a.var));
                Ok((global, out_schema, Part::Distributed))
            }
            LogicalOp::Aggregate { input, aggs } => {
                let (in_op, schema, part) = self.build(input)?;
                let agg_in_vars: Vec<VarId> =
                    aggs.iter().enumerate().map(|(i, _)| 1_000_000 + i).collect();
                let new_cols: Vec<(VarId, LogicalExpr)> =
                    agg_in_vars.iter().zip(aggs).map(|(v, a)| (*v, a.input.clone())).collect();
                let (keyed, keyed_schema) =
                    self.append_columns(in_op, &schema, part, "agg-input", &new_cols)?;
                let base = keyed_schema.len() - aggs.len();
                let specs: Vec<AggSpec> = aggs
                    .iter()
                    .enumerate()
                    .map(|(i, a)| AggSpec { kind: agg_kind(a.func), field: base + i, sql: a.sql })
                    .collect();
                // Figure 6: local aggregate per partition, n:1 replicating
                // connector, single global aggregate.
                let local = self.job.add(
                    self.parts(part),
                    Arc::new(ScalarAggOp::new("local", specs.clone(), GroupMode::Partial)),
                );
                self.job.connect(ConnectorKind::OneToOne, keyed, local);
                let final_specs: Vec<AggSpec> =
                    specs.iter().map(|s| AggSpec { kind: s.kind, field: 0, sql: s.sql }).collect();
                let global = self
                    .job
                    .add(1, Arc::new(ScalarAggOp::new("global", final_specs, GroupMode::Final)));
                self.job.connect(ConnectorKind::MToNReplicating, local, global);
                let out_schema: Vec<VarId> = aggs.iter().map(|a| a.var).collect();
                Ok((global, out_schema, Part::Single))
            }
            LogicalOp::Order { input, keys } => {
                let (op, schema, part) = self.build_order(input, keys, None)?;
                Ok((op, schema, part))
            }
            LogicalOp::Limit { input, count, offset } => {
                if self.options.push_limit_into_sort {
                    if let LogicalOp::Order { input: oin, keys } = input.as_ref() {
                        // Ablation: top-K — each partition sorts and keeps
                        // only count+offset tuples before the merge.
                        let (op, schema, part) =
                            self.build_order(oin, keys, Some(*count + *offset))?;
                        let lim = self.job.add(
                            self.parts(part),
                            Arc::new(LimitOp { limit: *count, offset: *offset }),
                        );
                        self.job.connect(ConnectorKind::OneToOne, op, lim);
                        return Ok((lim, schema, part));
                    }
                }
                let (in_op, schema, part) = self.build(input)?;
                // A global limit needs a single stream.
                let (stream, spart) = self.to_single(in_op, part);
                let lim = self.job.add(1, Arc::new(LimitOp { limit: *count, offset: *offset }));
                self.job.connect(ConnectorKind::OneToOne, stream, lim);
                Ok((lim, schema, spart))
            }
            LogicalOp::Distinct { input, exprs } => {
                let (in_op, schema, part) = self.build(input)?;
                let vars: Vec<VarId> =
                    exprs.iter().enumerate().map(|(i, _)| 2_000_000 + i).collect();
                let cols: Vec<(VarId, LogicalExpr)> =
                    vars.iter().zip(exprs).map(|(v, e)| (*v, e.clone())).collect();
                let (keyed, keyed_schema) =
                    self.append_columns(in_op, &schema, part, "distinct-key", &cols)?;
                let base = keyed_schema.len() - exprs.len();
                let key_cols: Vec<usize> = (base..keyed_schema.len()).collect();
                let distinct =
                    self.job.add(self.nparts, Arc::new(DistinctOp { keys: key_cols.clone() }));
                self.job.connect(
                    ConnectorKind::MToNPartitioning { fields: key_cols },
                    keyed,
                    distinct,
                );
                Ok((distinct, keyed_schema, Part::Distributed))
            }
            LogicalOp::Emit { .. } => Err(HyracksError::InvalidJob("nested emit in plan".into())),
        }
    }

    /// Sort: per-partition external sort, then a partitioning-merging
    /// exchange into a single ordered stream. `per_part_limit` (top-K
    /// ablation) truncates each partition's run before the merge.
    fn build_order(
        &mut self,
        input: &LogicalOp,
        keys: &[SortSpec],
        per_part_limit: Option<usize>,
    ) -> Result<(OperatorId, Vec<VarId>, Part)> {
        let (in_op, schema, part) = self.build(input)?;
        let vars: Vec<VarId> = keys.iter().enumerate().map(|(i, _)| 3_000_000 + i).collect();
        let cols: Vec<(VarId, LogicalExpr)> =
            vars.iter().zip(keys).map(|(v, k)| (*v, k.expr.clone())).collect();
        let (keyed, keyed_schema) = self.append_columns(in_op, &schema, part, "sort-key", &cols)?;
        let base = keyed_schema.len() - keys.len();
        let sort_keys: Vec<SortKey> =
            keys.iter().enumerate().map(|(i, k)| SortKey::field(base + i, k.descending)).collect();
        let sort =
            self.job.add(self.parts(part), Arc::new(self.sort_op("order-by", sort_keys.clone())));
        self.job.connect(ConnectorKind::OneToOne, keyed, sort);
        let mut tail = sort;
        if let Some(k) = per_part_limit {
            let lim = self.job.add(self.parts(part), Arc::new(LimitOp { limit: k, offset: 0 }));
            self.job.connect(ConnectorKind::OneToOne, sort, lim);
            tail = lim;
        }
        if self.parts(part) == 1 {
            return Ok((tail, keyed_schema, Part::Single));
        }
        let merge = self.job.add(1, Arc::new(MapOp::new("merge", |t| Ok(vec![t.clone()]))));
        self.job.connect(
            ConnectorKind::MToNPartitioningMerging {
                fields: vec![],
                comparator: sort_comparator(&sort_keys),
            },
            tail,
            merge,
        );
        Ok((merge, keyed_schema, Part::Single))
    }

    fn to_single(&mut self, op: OperatorId, part: Part) -> (OperatorId, Part) {
        match part {
            Part::Single => (op, Part::Single),
            Part::Distributed => {
                let pass = self.job.add(1, Arc::new(MapOp::new("gather", |t| Ok(vec![t.clone()]))));
                self.job.connect(ConnectorKind::MToNReplicating, op, pass);
                (pass, Part::Single)
            }
        }
    }

    fn build_nl_join(
        &mut self,
        left: &LogicalOp,
        right: &LogicalOp,
        condition: &LogicalExpr,
        kind: JoinKind,
    ) -> Result<(OperatorId, Vec<VarId>, Part)> {
        let (l_op, l_schema, l_part) = self.build(left)?;
        let (r_op, r_schema, _) = self.build(right)?;
        // Build = right (replicated to every probe partition), probe =
        // left. The join runs at the probe side's parallelism so the probe
        // connector stays 1:1 (no duplication).
        let mut combined = r_schema.clone();
        combined.extend(l_schema.iter().copied());
        let cols = Self::columns_of(&combined);
        let cond = condition.clone();
        let ctx = Arc::clone(&self.ctx);
        let r_width = r_schema.len();
        let jt = match kind {
            JoinKind::Inner => JoinType::Inner,
            JoinKind::LeftOuter => JoinType::ProbeOuter,
        };
        let join = self.job.add(
            self.parts(l_part),
            Arc::new(NestedLoopJoinOp::new(
                "theta",
                move |b: &Tuple, p: &Tuple| {
                    let mut row = Vec::with_capacity(r_width + p.len());
                    row.extend(b.iter().cloned());
                    row.extend(p.iter().cloned());
                    let r = TupleResolver { columns: &cols, tuple: &row };
                    Ok(truthy(&eval(&cond, &r, &ctx).map_err(HyracksError::from)?))
                },
                jt,
            )),
        );
        self.job.connect(ConnectorKind::MToNReplicating, r_op, join);
        self.job.connect(ConnectorKind::OneToOne, l_op, join);
        Ok((join, combined, l_part))
    }

    /// The Figure 6 access-path shape: secondary search → sort(pk) →
    /// primary lookup → post-validation select.
    fn build_index_search(
        &mut self,
        dataset: &str,
        index: &str,
        var: VarId,
        spec: &IndexSearchSpec,
        postcondition: Option<&LogicalExpr>,
    ) -> Result<(OperatorId, Vec<VarId>, Part)> {
        let provider = Arc::clone(&self.ctx.provider);
        let tail: OperatorId = match spec {
            IndexSearchSpec::PrimaryRange { lo, hi } => {
                let src = provider.primary_range_source(
                    dataset,
                    self.key_bound(lo)?,
                    self.key_bound(hi)?,
                )?;
                self.job.add(
                    self.nparts,
                    Arc::new(SourceOp::from_fn(format!("btree-search {dataset} (primary)"), src)),
                )
            }
            IndexSearchSpec::BTreeRange { lo, hi } => {
                let src = provider.btree_search_source(
                    dataset,
                    index,
                    self.key_bound(lo)?,
                    self.key_bound(hi)?,
                )?;
                self.secondary_then_primary(dataset, index, src)?
            }
            IndexSearchSpec::RTree { query } => {
                let q = self.const_value(query)?;
                let rect = asterix_adm::spatial::mbr(&q).map_err(HyracksError::from)?;
                let src = provider.rtree_search_source(dataset, index, rect)?;
                self.secondary_then_primary(dataset, index, src)?
            }
            IndexSearchSpec::InvertedConjunctive { needle } => {
                let v = self.const_value(needle)?;
                let tokens = tokens_for(&provider, dataset, index, &v)?;
                let n = tokens.len().max(1);
                let src = provider.inverted_search_source(dataset, index, tokens, n)?;
                self.secondary_then_primary(dataset, index, src)?
            }
            IndexSearchSpec::InvertedFuzzy { needle, edit_distance } => {
                let v = self.const_value(needle)?;
                let s = v.as_str().ok_or_else(|| {
                    HyracksError::Operator("fuzzy needle must be a string".into())
                })?;
                let k = gram_len_of(&provider, dataset, index)?;
                let grams = asterix_adm::strings::gram_tokens(s, k);
                let lower = grams.len().saturating_sub(k * edit_distance);
                if lower == 0 {
                    // Degenerate bound: scan; postcondition still verifies.
                    let src = provider.scan_source(dataset)?;
                    self.job.add(
                        self.nparts,
                        Arc::new(SourceOp::from_fn(format!("data-scan {dataset}"), src)),
                    )
                } else {
                    let src = provider.inverted_search_source(dataset, index, grams, lower)?;
                    self.secondary_then_primary(dataset, index, src)?
                }
            }
        };
        let schema = vec![var];
        let mut out = tail;
        if let Some(post) = postcondition {
            let sel_op = self.select_op("post-validate", post, &schema)?;
            let sel = self.job.add(self.nparts, Arc::new(sel_op));
            self.job.connect(ConnectorKind::OneToOne, out, sel);
            out = sel;
        }
        Ok((out, schema, Part::Distributed))
    }

    /// secondary search (pk tuples) → sort pk → primary-index lookup.
    fn secondary_then_primary(
        &mut self,
        dataset: &str,
        index: &str,
        src: asterix_hyracks::ops::SourceFn,
    ) -> Result<OperatorId> {
        let search = self.job.add(
            self.nparts,
            Arc::new(SourceOp::from_fn(format!("btree-search {dataset}.{index}"), src)),
        );
        // Sort primary keys "to improve the access pattern on the primary
        // index" (Figure 6 discussion).
        let sort = self
            .job
            .add(self.nparts, Arc::new(self.sort_op("$pk", vec![SortKey::field(0, false)])));
        self.job.connect(ConnectorKind::OneToOne, search, sort);
        let lookup_fn = self.ctx.provider.primary_lookup(dataset)?;
        let lookup = self.job.add(
            self.nparts,
            Arc::new(PartitionMapOp::new(
                format!("btree-search {dataset} (primary)"),
                move |partition, pk: &Tuple| {
                    Ok(match lookup_fn(partition, pk)? {
                        Some(r) => vec![vec![r]],
                        None => vec![],
                    })
                },
            )),
        );
        self.job.connect(ConnectorKind::OneToOne, sort, lookup);
        Ok(lookup)
    }
}

fn rebuild_condition(
    left_keys: &[LogicalExpr],
    right_keys: &[LogicalExpr],
    residual: &Option<LogicalExpr>,
) -> LogicalExpr {
    let mut conjuncts: Vec<LogicalExpr> = left_keys
        .iter()
        .zip(right_keys)
        .map(|(l, r)| {
            LogicalExpr::Compare(
                crate::expr::CompareOp::Eq,
                Box::new(l.clone()),
                Box::new(r.clone()),
            )
        })
        .collect();
    if let Some(r) = residual {
        conjuncts.push(r.clone());
    }
    if conjuncts.len() == 1 {
        conjuncts.pop().unwrap()
    } else {
        LogicalExpr::And(conjuncts)
    }
}

fn fresh_var(l: &[VarId], r: &[VarId], i: usize) -> VarId {
    let max = l.iter().chain(r).copied().max().unwrap_or(0);
    4_000_000 + max + i + 1
}

fn agg_kind(f: AggFunc) -> AggKind {
    match f {
        AggFunc::Count => AggKind::Count,
        AggFunc::Sum => AggKind::Sum,
        AggFunc::Min => AggKind::Min,
        AggFunc::Max => AggKind::Max,
        AggFunc::Avg => AggKind::Avg,
        AggFunc::Listify => AggKind::Listify,
    }
}

fn tokens_for(
    provider: &Arc<dyn MetadataProvider>,
    dataset: &str,
    index: &str,
    v: &Value,
) -> Result<Vec<String>> {
    use crate::metadata::IndexKind;
    let kind = provider
        .indexes(dataset)
        .into_iter()
        .find(|i| i.name == index)
        .map(|i| i.kind)
        .ok_or_else(|| HyracksError::Operator(format!("unknown index {index}")))?;
    match (kind, v) {
        (IndexKind::Keyword, Value::String(s)) => Ok(asterix_adm::strings::word_tokens(s)),
        (IndexKind::Keyword, v) if v.as_list().is_some() => Ok(v
            .as_list()
            .unwrap()
            .iter()
            .filter_map(|x| x.as_str().map(|s| s.to_lowercase()))
            .collect()),
        (IndexKind::NGram(k), Value::String(s)) => Ok(asterix_adm::strings::gram_tokens(s, k)),
        _ => Err(HyracksError::Operator("cannot tokenize needle".into())),
    }
}

fn gram_len_of(provider: &Arc<dyn MetadataProvider>, dataset: &str, index: &str) -> Result<usize> {
    use crate::metadata::IndexKind;
    match provider.indexes(dataset).into_iter().find(|i| i.name == index).map(|i| i.kind) {
        Some(IndexKind::NGram(k)) => Ok(k),
        _ => Err(HyracksError::Operator(format!("{index} is not an ngram index"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CompareOp;
    use crate::metadata::tests_support::VecProvider;
    use crate::plan::build::*;
    use crate::plan::AggCall;
    use crate::rules::optimize;

    fn users(n: i64) -> Vec<Value> {
        (0..n)
            .map(|i| {
                asterix_adm::parse::parse_value(&format!(
                    r#"{{ "id": {i}, "grp": {}, "score": {} }}"#,
                    i % 7,
                    i * 3
                ))
                .unwrap()
            })
            .collect()
    }

    fn provider(n: i64) -> Arc<dyn MetadataProvider> {
        let mut p = VecProvider::new(4);
        p.add("U", "id", users(n));
        p.add(
            "M",
            "mid",
            (0..n * 2)
                .map(|m| {
                    asterix_adm::parse::parse_value(&format!(
                        r#"{{ "mid": {m}, "author": {} }}"#,
                        m % n.max(1)
                    ))
                    .unwrap()
                })
                .collect(),
        );
        Arc::new(p)
    }

    fn run_both(plan: LogicalOp, prov: Arc<dyn MetadataProvider>) -> (Vec<Value>, Vec<Value>) {
        let fctx = FunctionContext::default();
        let optimized = optimize(plan, &prov, &fctx, &OptimizerOptions::default());
        // Interpreter path.
        let ictx = EvalCtx::new(Arc::clone(&prov), fctx.clone());
        let interp =
            crate::interp::eval_subplan(&optimized, &std::collections::HashMap::new(), &ictx)
                .unwrap();
        // Compiled path.
        let compiled = compile(&optimized, prov, fctx, &OptimizerOptions::default()).unwrap();
        let exec = compiled.run().unwrap();
        (interp, exec)
    }

    fn sort_vals(mut v: Vec<Value>) -> Vec<Value> {
        v.sort_by(|a, b| a.total_cmp(b));
        v
    }

    #[test]
    fn compiled_matches_interpreter_on_filter() {
        let plan = emit(
            select(
                scan("U", 0),
                LogicalExpr::Compare(
                    CompareOp::Lt,
                    Box::new(LogicalExpr::field(var(0), "id")),
                    Box::new(lit(Value::Int64(10))),
                ),
            ),
            LogicalExpr::field(var(0), "id"),
        );
        let (i, c) = run_both(plan, provider(50));
        assert_eq!(i.len(), 10);
        assert_eq!(sort_vals(i), sort_vals(c));
    }

    #[test]
    fn compiled_matches_interpreter_on_join() {
        let plan = emit(
            cross(
                scan("U", 0),
                scan("M", 1),
                LogicalExpr::Compare(
                    CompareOp::Eq,
                    Box::new(LogicalExpr::field(var(0), "id")),
                    Box::new(LogicalExpr::field(var(1), "author")),
                ),
            ),
            LogicalExpr::field(var(1), "mid"),
        );
        let (i, c) = run_both(plan, provider(20));
        assert_eq!(i.len(), 40); // every message joins its author
        assert_eq!(sort_vals(i), sort_vals(c));
    }

    #[test]
    fn compiled_matches_interpreter_on_group_by() {
        let plan = emit(
            LogicalOp::GroupBy {
                input: Box::new(scan("U", 0)),
                keys: vec![(1, LogicalExpr::field(var(0), "grp"))],
                aggs: vec![
                    AggCall { var: 2, func: AggFunc::Count, sql: false, input: var(0) },
                    AggCall {
                        var: 3,
                        func: AggFunc::Avg,
                        sql: false,
                        input: LogicalExpr::field(var(0), "score"),
                    },
                ],
            },
            LogicalExpr::RecordCtor(vec![
                ("g".into(), var(1)),
                ("n".into(), var(2)),
                ("avg".into(), var(3)),
            ]),
        );
        let (i, c) = run_both(plan, provider(70));
        assert_eq!(i.len(), 7);
        assert_eq!(sort_vals(i), sort_vals(c));
    }

    #[test]
    fn order_and_limit_preserved_globally() {
        let plan = emit(
            LogicalOp::Limit {
                input: Box::new(LogicalOp::Order {
                    input: Box::new(scan("U", 0)),
                    keys: vec![SortSpec {
                        expr: LogicalExpr::field(var(0), "id"),
                        descending: true,
                    }],
                }),
                count: 5,
                offset: 0,
            },
            LogicalExpr::field(var(0), "id"),
        );
        let (i, c) = run_both(plan, provider(100));
        // Order matters here — compare directly.
        assert_eq!(i, c);
        assert_eq!(c, (95..100).rev().map(Value::Int64).collect::<Vec<_>>());
    }

    #[test]
    fn scalar_aggregate_single_result() {
        let plan = emit(
            LogicalOp::Aggregate {
                input: Box::new(scan("U", 0)),
                aggs: vec![AggCall {
                    var: 1,
                    func: AggFunc::Avg,
                    sql: false,
                    input: LogicalExpr::field(var(0), "score"),
                }],
            },
            var(1),
        );
        let (i, c) = run_both(plan, provider(10));
        assert_eq!(i.len(), 1);
        assert_eq!(i, c);
        // avg of 3*(0..9) = 13.5
        assert_eq!(c[0], Value::Double(13.5));
    }

    #[test]
    fn figure6_plan_description_shape() {
        // A scalar aggregate plan must show the local/global split with an
        // n:1 replicating connector, as in Figure 6.
        let prov = provider(10);
        let fctx = FunctionContext::default();
        let plan = emit(
            LogicalOp::Aggregate {
                input: Box::new(scan("U", 0)),
                aggs: vec![AggCall {
                    var: 1,
                    func: AggFunc::Avg,
                    sql: false,
                    input: LogicalExpr::field(var(0), "score"),
                }],
            },
            var(1),
        );
        let optimized = optimize(plan, &prov, &fctx, &OptimizerOptions::default());
        let compiled = compile(&optimized, prov, fctx, &OptimizerOptions::default()).unwrap();
        let d = compiled.describe();
        assert!(d.contains("aggregate local"), "{d}");
        assert!(d.contains("aggregate global"), "{d}");
        assert!(d.contains("4:1 replicating"), "{d}");
    }

    #[test]
    fn nested_loop_join_for_non_equi() {
        let plan = emit(
            cross(
                scan("U", 0),
                scan("U", 1),
                LogicalExpr::And(vec![
                    LogicalExpr::Compare(
                        CompareOp::Lt,
                        Box::new(LogicalExpr::field(var(0), "id")),
                        Box::new(LogicalExpr::field(var(1), "id")),
                    ),
                    LogicalExpr::Compare(
                        CompareOp::Lt,
                        Box::new(LogicalExpr::field(var(1), "id")),
                        Box::new(lit(Value::Int64(4))),
                    ),
                ]),
            ),
            LogicalExpr::field(var(1), "id"),
        );
        let (i, c) = run_both(plan, provider(10));
        // pairs (a,b) with a<b<4: b=1 (1), b=2 (2), b=3 (3) → 6 rows.
        assert_eq!(i.len(), 6);
        assert_eq!(sort_vals(i), sort_vals(c));
    }

    #[test]
    fn memory_hungry_count_drives_budget_division() {
        // order-by over group-by: 1 sort + 2 hash-group tables.
        let plan = emit(
            LogicalOp::Order {
                input: Box::new(LogicalOp::GroupBy {
                    input: Box::new(scan("U", 0)),
                    keys: vec![(1, LogicalExpr::field(var(0), "grp"))],
                    aggs: vec![AggCall { var: 2, func: AggFunc::Count, sql: false, input: var(0) }],
                }),
                keys: vec![SortSpec { expr: var(1), descending: false }],
            },
            var(1),
        );
        assert_eq!(memory_hungry_ops(&plan), 3);

        // A compiled query under a tight grant still returns the same rows
        // as the unbudgeted plan (the grant only caps working memory).
        let prov = provider(70);
        let fctx = FunctionContext::default();
        let options = OptimizerOptions { query_mem_budget: Some(6 << 20), ..Default::default() };
        let optimized = optimize(plan, &prov, &fctx, &options);
        let compiled = compile(&optimized, prov, fctx, &options).unwrap();
        let out = compiled.run().unwrap();
        assert_eq!(out, (0..7).map(Value::Int64).collect::<Vec<_>>());
    }

    #[test]
    fn distinct_dedups_globally() {
        let plan = emit(
            LogicalOp::Distinct {
                input: Box::new(scan("U", 0)),
                exprs: vec![LogicalExpr::field(var(0), "grp")],
            },
            LogicalExpr::field(var(0), "grp"),
        );
        let (i, c) = run_both(plan, provider(70));
        assert_eq!(i.len(), 7);
        assert_eq!(c.len(), 7);
        assert_eq!(sort_vals(i), sort_vals(c));
    }
}
