//! # asterix-algebricks — the algebra layer (§4.2)
//!
//! Algebricks is the data-model-neutral algebraic compiler sitting between
//! the query language (AQL here; Hivesterix/VXQuery in the paper's stack)
//! and the Hyracks runtime. An incoming query arrives as a
//! [`plan::LogicalOp`] tree over [`expr::LogicalExpr`] expressions; rewrite
//! rules ([`rules`]) normalize it — select pushdown, equijoin extraction
//! (the paper's "always hash-join equijoins" safe rule), index-access-path
//! introduction (with Figure 6's sort + primary-lookup + post-validation
//! shape), hint handling — and [`jobgen`] lowers the result into a Hyracks
//! job with partitioned parallelism, inserting exchanges
//! (partition/replicate/merge connectors) exactly where partitioning
//! properties change.
//!
//! The same logical plan can also be evaluated by the tuple-at-a-time
//! [`interp`]reter, which is how correlated subqueries (nested FLWORs)
//! execute inside expressions, and which doubles as a differential-testing
//! oracle for the compiled path.

pub mod expr;
pub mod interp;
pub mod jobgen;
pub mod metadata;
pub mod plan;
pub mod rules;

pub use expr::{CompareOp, LogicalExpr, QuantKind, VarId};
pub use jobgen::{compile, CompiledQuery};
pub use metadata::{
    IndexInfo, IndexKind, KeyBound, MetadataProvider, RawScan, ScanFilter, ScanProjection,
};
pub use plan::{AggCall, AggFunc, JoinKind, LogicalOp, SortSpec};
pub use rules::optimize;
