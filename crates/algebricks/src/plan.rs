//! The logical operator algebra.
//!
//! Plans are single-rooted trees; each operator produces a stream of
//! variable bindings. This mirrors Algebricks' logical operators (assign,
//! select, unnest, join, group-by, order, limit, distinct, datasource-scan)
//! plus the access-path operators that the index-introduction rules insert.

use asterix_adm::Value;

use crate::expr::{LogicalExpr, VarId};

/// Join kinds. AQL surfaces inner joins and (through nested plans /
/// outer-unnest) left-outer semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    /// Left-outer: unmatched left tuples survive with right vars null.
    LeftOuter,
}

/// Aggregate function in a group-by / scalar aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
    /// Materialize group members as an ordered list (AQL `with $var`).
    Listify,
}

impl AggFunc {
    /// Map AQL function names (count/sum/... and sql-* variants) to
    /// (function, sql-semantics flag).
    pub fn from_name(name: &str) -> Option<(AggFunc, bool)> {
        Some(match name {
            "count" => (AggFunc::Count, false),
            "sum" => (AggFunc::Sum, false),
            "min" => (AggFunc::Min, false),
            "max" => (AggFunc::Max, false),
            "avg" => (AggFunc::Avg, false),
            "sql-count" => (AggFunc::Count, true),
            "sql-sum" => (AggFunc::Sum, true),
            "sql-min" => (AggFunc::Min, true),
            "sql-max" => (AggFunc::Max, true),
            "sql-avg" => (AggFunc::Avg, true),
            _ => return None,
        })
    }
}

/// One aggregate computation: `var := func(input-expr)`.
#[derive(Debug, Clone)]
pub struct AggCall {
    pub var: VarId,
    pub func: AggFunc,
    pub sql: bool,
    pub input: LogicalExpr,
}

/// One sort key.
#[derive(Debug, Clone)]
pub struct SortSpec {
    pub expr: LogicalExpr,
    pub descending: bool,
}

/// Index search specifications inserted by the access-path rules.
///
/// Bounds and probes are expressions rather than constants so the same
/// plan shape works both for top-level queries (bounds fold to constants)
/// and for correlated subplans, where a bound may reference an outer
/// variable (e.g. Query 4's `author-id = $user.id` becomes a per-outer-
/// tuple B-tree probe). The `bool` on each bound is "inclusive".
#[derive(Debug, Clone)]
pub enum IndexSearchSpec {
    /// Range over the dataset's *primary* B+-tree (record lookups and
    /// primary-key ranges; `index` is ignored).
    PrimaryRange { lo: Option<(LogicalExpr, bool)>, hi: Option<(LogicalExpr, bool)> },
    /// Range over a secondary B-tree.
    BTreeRange { lo: Option<(LogicalExpr, bool)>, hi: Option<(LogicalExpr, bool)> },
    /// R-tree intersection; `query` evaluates to a spatial value whose MBR
    /// is the search window.
    RTree { query: LogicalExpr },
    /// Keyword index: records whose indexed value contains all tokens of
    /// `needle` (a string or bag of strings).
    InvertedConjunctive { needle: LogicalExpr },
    /// N-gram index: records whose indexed string is within
    /// `edit_distance` of `needle` (candidates; the postcondition
    /// verifies).
    InvertedFuzzy { needle: LogicalExpr, edit_distance: usize },
}

/// A logical operator. `input` boxes form the tree.
#[derive(Debug, Clone)]
pub enum LogicalOp {
    /// Produces exactly one empty binding (the leaf under constant-only
    /// plans, e.g. the `1+1` query).
    EmptyTupleSource,
    /// Full dataset scan binding each record to `var`.
    DataSourceScan { dataset: String, var: VarId },
    /// Secondary-index search followed by primary lookup, producing the
    /// record in `var`. Carries Figure 6's full shape: the generated job
    /// sorts primary keys before the primary-index search, and
    /// `postcondition` re-checks the predicate on the fetched record (the
    /// §4.4 consistency validation select).
    IndexSearch {
        dataset: String,
        index: String,
        var: VarId,
        spec: IndexSearchSpec,
        /// Residual predicate re-applied to the record (post-validation).
        postcondition: Option<LogicalExpr>,
    },
    /// Bind `var` to `expr` for each input tuple.
    Assign { input: Box<LogicalOp>, var: VarId, expr: LogicalExpr },
    /// Keep tuples where `condition` is true.
    Select { input: Box<LogicalOp>, condition: LogicalExpr },
    /// Iterate `expr` (a collection), binding each item to `var`
    /// (`for $x in <expr>`); `positional` binds the 1-based position
    /// (`at $p`). Outer unnests keep empty collections with missing.
    Unnest {
        input: Box<LogicalOp>,
        var: VarId,
        expr: LogicalExpr,
        positional: Option<VarId>,
        outer: bool,
    },
    /// Cartesian product with an optional residual condition — produced by
    /// the translator for adjacent `for` clauses; the equijoin-extraction
    /// rule turns it into `HashJoin` when it finds equality predicates.
    Join {
        left: Box<LogicalOp>,
        right: Box<LogicalOp>,
        condition: LogicalExpr,
        kind: JoinKind,
        /// `/*+ indexnl */` hint from the query (Query 14).
        index_nl_hint: bool,
    },
    /// Equi-join on extracted key expressions (physical: hybrid hash).
    HashJoin {
        left: Box<LogicalOp>,
        right: Box<LogicalOp>,
        left_keys: Vec<LogicalExpr>,
        right_keys: Vec<LogicalExpr>,
        residual: Option<LogicalExpr>,
        kind: JoinKind,
    },
    /// Index nested-loop join: for each left tuple, search `dataset` via
    /// `index` with key `probe` and bind matching records to `var`.
    IndexNlJoin {
        left: Box<LogicalOp>,
        dataset: String,
        index: String,
        probe: LogicalExpr,
        var: VarId,
        kind: JoinKind,
    },
    /// Grouping: evaluates `keys` (each bound to a fresh var) and
    /// aggregates over the group.
    GroupBy { input: Box<LogicalOp>, keys: Vec<(VarId, LogicalExpr)>, aggs: Vec<AggCall> },
    /// Scalar aggregation over the whole input (no keys).
    Aggregate { input: Box<LogicalOp>, aggs: Vec<AggCall> },
    /// Sort.
    Order { input: Box<LogicalOp>, keys: Vec<SortSpec> },
    /// Limit/offset. `pushed_into_sort` marks the ablation variant where
    /// the limit is fused into the upstream sort as a top-K (the paper
    /// notes AsterixDB does *not* do this yet; see EXPERIMENTS.md).
    Limit { input: Box<LogicalOp>, count: usize, offset: usize },
    /// Duplicate elimination on the given expressions.
    Distinct { input: Box<LogicalOp>, exprs: Vec<LogicalExpr> },
    /// Final projection: the value each result row yields.
    Emit { input: Box<LogicalOp>, expr: LogicalExpr },
}

impl LogicalOp {
    /// Children accessors for generic traversal.
    pub fn inputs(&self) -> Vec<&LogicalOp> {
        match self {
            LogicalOp::EmptyTupleSource
            | LogicalOp::DataSourceScan { .. }
            | LogicalOp::IndexSearch { .. } => vec![],
            LogicalOp::Assign { input, .. }
            | LogicalOp::Select { input, .. }
            | LogicalOp::Unnest { input, .. }
            | LogicalOp::GroupBy { input, .. }
            | LogicalOp::Aggregate { input, .. }
            | LogicalOp::Order { input, .. }
            | LogicalOp::Limit { input, .. }
            | LogicalOp::Distinct { input, .. }
            | LogicalOp::Emit { input, .. }
            | LogicalOp::IndexNlJoin { left: input, .. } => vec![input],
            LogicalOp::Join { left, right, .. } | LogicalOp::HashJoin { left, right, .. } => {
                vec![left, right]
            }
        }
    }

    /// Variables introduced by this operator alone.
    pub fn introduced_vars(&self) -> Vec<VarId> {
        match self {
            LogicalOp::DataSourceScan { var, .. } | LogicalOp::IndexSearch { var, .. } => {
                vec![*var]
            }
            LogicalOp::Assign { var, .. } => vec![*var],
            LogicalOp::Unnest { var, positional, .. } => {
                let mut v = vec![*var];
                if let Some(p) = positional {
                    v.push(*p);
                }
                v
            }
            LogicalOp::IndexNlJoin { var, .. } => vec![*var],
            LogicalOp::GroupBy { keys, aggs, .. } => {
                let mut v: Vec<VarId> = keys.iter().map(|(k, _)| *k).collect();
                v.extend(aggs.iter().map(|a| a.var));
                v
            }
            LogicalOp::Aggregate { aggs, .. } => aggs.iter().map(|a| a.var).collect(),
            _ => vec![],
        }
    }

    /// All variables bound anywhere in this subtree.
    pub fn bound_vars(&self) -> Vec<VarId> {
        let mut out = self.introduced_vars();
        for i in self.inputs() {
            out.extend(i.bound_vars());
        }
        out
    }

    /// Variables this subtree references but does not bind.
    pub fn free_vars(&self, out: &mut Vec<VarId>) {
        let mut referenced = Vec::new();
        self.collect_expr_vars(&mut referenced);
        let bound = self.bound_vars();
        for v in referenced {
            if !bound.contains(&v) && !out.contains(&v) {
                out.push(v);
            }
        }
    }

    fn collect_expr_vars(&self, out: &mut Vec<VarId>) {
        match self {
            LogicalOp::Assign { expr, .. }
            | LogicalOp::Unnest { expr, .. }
            | LogicalOp::Emit { expr, .. } => expr.free_vars(out),
            LogicalOp::Select { condition, .. } => condition.free_vars(out),
            LogicalOp::Join { condition, .. } => condition.free_vars(out),
            LogicalOp::HashJoin { left_keys, right_keys, residual, .. } => {
                for e in left_keys.iter().chain(right_keys) {
                    e.free_vars(out);
                }
                if let Some(r) = residual {
                    r.free_vars(out);
                }
            }
            LogicalOp::IndexNlJoin { probe, .. } => probe.free_vars(out),
            LogicalOp::GroupBy { keys, aggs, .. } => {
                for (_, e) in keys {
                    e.free_vars(out);
                }
                for a in aggs {
                    a.input.free_vars(out);
                }
            }
            LogicalOp::Aggregate { aggs, .. } => {
                for a in aggs {
                    a.input.free_vars(out);
                }
            }
            LogicalOp::Order { keys, .. } => {
                for k in keys {
                    k.expr.free_vars(out);
                }
            }
            LogicalOp::Distinct { exprs, .. } => {
                for e in exprs {
                    e.free_vars(out);
                }
            }
            LogicalOp::IndexSearch { postcondition, .. } => {
                if let Some(p) = postcondition {
                    p.free_vars(out);
                }
            }
            _ => {}
        }
        for i in self.inputs() {
            i.collect_expr_vars(out);
        }
    }

    /// Operator name for plan printing.
    pub fn op_name(&self) -> String {
        match self {
            LogicalOp::EmptyTupleSource => "empty-tuple-source".into(),
            LogicalOp::DataSourceScan { dataset, .. } => format!("data-scan {dataset}"),
            LogicalOp::IndexSearch { dataset, index, spec, .. } => {
                let kind = match spec {
                    IndexSearchSpec::PrimaryRange { .. } => {
                        return format!("btree-search {dataset} (primary)")
                    }
                    IndexSearchSpec::BTreeRange { .. } => "btree",
                    IndexSearchSpec::RTree { .. } => "rtree",
                    IndexSearchSpec::InvertedConjunctive { .. } => "keyword",
                    IndexSearchSpec::InvertedFuzzy { .. } => "ngram-fuzzy",
                };
                format!("{kind}-search {dataset}.{index}")
            }
            LogicalOp::Assign { var, .. } => format!("assign $v{var}"),
            LogicalOp::Select { .. } => "select".into(),
            LogicalOp::Unnest { var, outer, .. } => {
                if *outer {
                    format!("outer-unnest $v{var}")
                } else {
                    format!("unnest $v{var}")
                }
            }
            LogicalOp::Join { kind, .. } => format!("join ({kind:?})"),
            LogicalOp::HashJoin { kind, .. } => format!("hash-join ({kind:?})"),
            LogicalOp::IndexNlJoin { dataset, index, .. } => {
                format!("index-nl-join {dataset}.{index}")
            }
            LogicalOp::GroupBy { keys, .. } => format!("group-by ({} keys)", keys.len()),
            LogicalOp::Aggregate { .. } => "aggregate".into(),
            LogicalOp::Order { .. } => "order".into(),
            LogicalOp::Limit { count, offset, .. } => format!("limit {count} offset {offset}"),
            LogicalOp::Distinct { .. } => "distinct".into(),
            LogicalOp::Emit { .. } => "emit".into(),
        }
    }

    /// Indented plan rendering (EXPLAIN-style).
    pub fn pretty(&self) -> String {
        fn walk(op: &LogicalOp, depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&op.op_name());
            out.push('\n');
            for i in op.inputs() {
                walk(i, depth + 1, out);
            }
        }
        let mut s = String::new();
        walk(self, 0, &mut s);
        s
    }

    /// Rewrite helper: apply `f` bottom-up to every operator in the tree.
    pub fn transform_up(self, f: &mut impl FnMut(LogicalOp) -> LogicalOp) -> LogicalOp {
        let with_new_children = match self {
            LogicalOp::Assign { input, var, expr } => {
                LogicalOp::Assign { input: Box::new(input.transform_up(f)), var, expr }
            }
            LogicalOp::Select { input, condition } => {
                LogicalOp::Select { input: Box::new(input.transform_up(f)), condition }
            }
            LogicalOp::Unnest { input, var, expr, positional, outer } => LogicalOp::Unnest {
                input: Box::new(input.transform_up(f)),
                var,
                expr,
                positional,
                outer,
            },
            LogicalOp::Join { left, right, condition, kind, index_nl_hint } => LogicalOp::Join {
                left: Box::new(left.transform_up(f)),
                right: Box::new(right.transform_up(f)),
                condition,
                kind,
                index_nl_hint,
            },
            LogicalOp::HashJoin { left, right, left_keys, right_keys, residual, kind } => {
                LogicalOp::HashJoin {
                    left: Box::new(left.transform_up(f)),
                    right: Box::new(right.transform_up(f)),
                    left_keys,
                    right_keys,
                    residual,
                    kind,
                }
            }
            LogicalOp::IndexNlJoin { left, dataset, index, probe, var, kind } => {
                LogicalOp::IndexNlJoin {
                    left: Box::new(left.transform_up(f)),
                    dataset,
                    index,
                    probe,
                    var,
                    kind,
                }
            }
            LogicalOp::GroupBy { input, keys, aggs } => {
                LogicalOp::GroupBy { input: Box::new(input.transform_up(f)), keys, aggs }
            }
            LogicalOp::Aggregate { input, aggs } => {
                LogicalOp::Aggregate { input: Box::new(input.transform_up(f)), aggs }
            }
            LogicalOp::Order { input, keys } => {
                LogicalOp::Order { input: Box::new(input.transform_up(f)), keys }
            }
            LogicalOp::Limit { input, count, offset } => {
                LogicalOp::Limit { input: Box::new(input.transform_up(f)), count, offset }
            }
            LogicalOp::Distinct { input, exprs } => {
                LogicalOp::Distinct { input: Box::new(input.transform_up(f)), exprs }
            }
            LogicalOp::Emit { input, expr } => {
                LogicalOp::Emit { input: Box::new(input.transform_up(f)), expr }
            }
            leaf => leaf,
        };
        f(with_new_children)
    }
}

/// Helpers for building plans in tests and the translator.
pub mod build {
    use super::*;

    pub fn scan(dataset: &str, var: VarId) -> LogicalOp {
        LogicalOp::DataSourceScan { dataset: dataset.into(), var }
    }

    pub fn select(input: LogicalOp, condition: LogicalExpr) -> LogicalOp {
        LogicalOp::Select { input: Box::new(input), condition }
    }

    pub fn assign(input: LogicalOp, var: VarId, expr: LogicalExpr) -> LogicalOp {
        LogicalOp::Assign { input: Box::new(input), var, expr }
    }

    pub fn emit(input: LogicalOp, expr: LogicalExpr) -> LogicalOp {
        LogicalOp::Emit { input: Box::new(input), expr }
    }

    pub fn cross(left: LogicalOp, right: LogicalOp, condition: LogicalExpr) -> LogicalOp {
        LogicalOp::Join {
            left: Box::new(left),
            right: Box::new(right),
            condition,
            kind: JoinKind::Inner,
            index_nl_hint: false,
        }
    }

    pub fn var(v: VarId) -> LogicalExpr {
        LogicalExpr::Var(v)
    }

    pub fn lit(v: Value) -> LogicalExpr {
        LogicalExpr::Const(v)
    }
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;
    use crate::expr::CompareOp;

    #[test]
    fn bound_and_free_vars() {
        let plan = emit(
            select(
                scan("ds", 0),
                LogicalExpr::Compare(
                    CompareOp::Eq,
                    Box::new(LogicalExpr::field(var(0), "id")),
                    Box::new(var(9)), // free (outer) variable
                ),
            ),
            var(0),
        );
        assert_eq!(plan.bound_vars(), vec![0]);
        let mut free = Vec::new();
        plan.free_vars(&mut free);
        assert_eq!(free, vec![9]);
    }

    #[test]
    fn pretty_prints_tree() {
        let plan = emit(select(scan("ds", 0), lit(Value::Boolean(true))), var(0));
        let p = plan.pretty();
        assert!(p.contains("emit"), "{p}");
        assert!(p.contains("  select"), "{p}");
        assert!(p.contains("    data-scan ds"), "{p}");
    }

    #[test]
    fn transform_up_visits_all() {
        let plan = emit(select(scan("ds", 0), lit(Value::Boolean(true))), var(0));
        let mut n = 0;
        let _ = plan.transform_up(&mut |op| {
            n += 1;
            op
        });
        assert_eq!(n, 3);
    }
}
