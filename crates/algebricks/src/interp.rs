//! Tuple-at-a-time interpreter for logical plans.
//!
//! Two roles:
//! 1. Evaluate **correlated subplans** (nested FLWORs) inside expressions —
//!    each evaluation sees the outer tuple's bindings, and index access
//!    paths introduced by the optimizer work with outer-variable bounds.
//! 2. Serve as a **differential-testing oracle** for the compiled
//!    (Hyracks) path: integration tests run both and compare.

use std::collections::HashMap;

use asterix_adm::value::Rectangle;
use asterix_adm::{AdmError, Value};

use crate::expr::{eval, truthy, EvalCtx, VarId, VarResolver};
use crate::metadata::{IndexKind, KeyBound};
use crate::plan::{AggCall, AggFunc, IndexSearchSpec, JoinKind, LogicalOp};

/// A row of variable bindings.
pub type Env = HashMap<VarId, Value>;

struct ChainResolver<'a> {
    env: &'a Env,
    outer: &'a dyn VarResolver,
}

impl VarResolver for ChainResolver<'_> {
    fn get(&self, var: VarId) -> Option<Value> {
        self.env.get(&var).cloned().or_else(|| self.outer.get(var))
    }
}

fn adm_err(msg: impl std::fmt::Display) -> AdmError {
    AdmError::InvalidArgument(msg.to_string())
}

/// Evaluate a subplan under outer bindings; the plan's root must be `Emit`,
/// and the result is the ordered list of emitted values.
pub fn eval_subplan(
    plan: &LogicalOp,
    outer: &dyn VarResolver,
    ctx: &EvalCtx,
) -> asterix_adm::Result<Vec<Value>> {
    match plan {
        LogicalOp::Emit { input, expr } => {
            let rows = eval_rows(input, outer, ctx)?;
            let mut out = Vec::with_capacity(rows.len());
            for env in rows {
                let r = ChainResolver { env: &env, outer };
                out.push(eval(expr, &r, ctx)?);
            }
            Ok(out)
        }
        other => Err(adm_err(format!("subplan root must be emit, found {}", other.op_name()))),
    }
}

/// Evaluate a plan subtree into binding rows.
pub fn eval_rows(
    op: &LogicalOp,
    outer: &dyn VarResolver,
    ctx: &EvalCtx,
) -> asterix_adm::Result<Vec<Env>> {
    match op {
        LogicalOp::EmptyTupleSource => Ok(vec![Env::new()]),
        LogicalOp::DataSourceScan { dataset, var } => {
            let records = ctx.provider.scan_all(dataset).map_err(adm_err)?;
            Ok(records
                .into_iter()
                .map(|r| {
                    let mut env = Env::new();
                    env.insert(*var, r);
                    env
                })
                .collect())
        }
        LogicalOp::IndexSearch { dataset, index, var, spec, postcondition } => {
            let records = index_search_records(dataset, index, spec, outer, ctx)?;
            let mut out = Vec::with_capacity(records.len());
            for r in records {
                let mut env = Env::new();
                env.insert(*var, r);
                if let Some(post) = postcondition {
                    let resolver = ChainResolver { env: &env, outer };
                    if !truthy(&eval(post, &resolver, ctx)?) {
                        continue;
                    }
                }
                out.push(env);
            }
            Ok(out)
        }
        LogicalOp::Assign { input, var, expr } => {
            let rows = eval_rows(input, outer, ctx)?;
            let mut out = Vec::with_capacity(rows.len());
            for mut env in rows {
                let v = {
                    let r = ChainResolver { env: &env, outer };
                    eval(expr, &r, ctx)?
                };
                env.insert(*var, v);
                out.push(env);
            }
            Ok(out)
        }
        LogicalOp::Select { input, condition } => {
            let rows = eval_rows(input, outer, ctx)?;
            let mut out = Vec::new();
            for env in rows {
                let keep = {
                    let r = ChainResolver { env: &env, outer };
                    truthy(&eval(condition, &r, ctx)?)
                };
                if keep {
                    out.push(env);
                }
            }
            Ok(out)
        }
        LogicalOp::Unnest { input, var, expr, positional, outer: is_outer } => {
            let rows = eval_rows(input, outer, ctx)?;
            let mut out = Vec::new();
            for env in rows {
                let coll = {
                    let r = ChainResolver { env: &env, outer };
                    eval(expr, &r, ctx)?
                };
                match coll.as_list() {
                    Some(items) if !items.is_empty() => {
                        for (i, item) in items.iter().enumerate() {
                            let mut e = env.clone();
                            e.insert(*var, item.clone());
                            if let Some(p) = positional {
                                e.insert(*p, Value::Int64(i as i64 + 1));
                            }
                            out.push(e);
                        }
                    }
                    _ if *is_outer => {
                        let mut e = env.clone();
                        e.insert(*var, Value::Missing);
                        if let Some(p) = positional {
                            e.insert(*p, Value::Missing);
                        }
                        out.push(e);
                    }
                    _ => {}
                }
            }
            Ok(out)
        }
        LogicalOp::Join { left, right, condition, kind, .. } => {
            let lrows = eval_rows(left, outer, ctx)?;
            let rrows = eval_rows(right, outer, ctx)?;
            let right_vars: Vec<VarId> = right.bound_vars();
            let mut out = Vec::new();
            for l in &lrows {
                let mut matched = false;
                for r in &rrows {
                    let mut env = l.clone();
                    env.extend(r.iter().map(|(k, v)| (*k, v.clone())));
                    let keep = {
                        let res = ChainResolver { env: &env, outer };
                        truthy(&eval(condition, &res, ctx)?)
                    };
                    if keep {
                        matched = true;
                        out.push(env);
                    }
                }
                if !matched && *kind == JoinKind::LeftOuter {
                    let mut env = l.clone();
                    for v in &right_vars {
                        env.insert(*v, Value::Null);
                    }
                    out.push(env);
                }
            }
            Ok(out)
        }
        LogicalOp::HashJoin { left, right, left_keys, right_keys, residual, kind } => {
            let lrows = eval_rows(left, outer, ctx)?;
            let rrows = eval_rows(right, outer, ctx)?;
            let right_vars: Vec<VarId> = right.bound_vars();
            // Hash the right side.
            let mut table: HashMap<u64, Vec<(Vec<Value>, &Env)>> = HashMap::new();
            for r in &rrows {
                let res = ChainResolver { env: r, outer };
                let mut keys = Vec::with_capacity(right_keys.len());
                let mut unknown = false;
                for k in right_keys {
                    let v = eval(k, &res, ctx)?;
                    if v.is_unknown() {
                        unknown = true;
                        break;
                    }
                    keys.push(v);
                }
                if unknown {
                    continue;
                }
                let h = combined_hash(&keys);
                table.entry(h).or_default().push((keys, r));
            }
            let mut out = Vec::new();
            for l in &lrows {
                let res = ChainResolver { env: l, outer };
                let mut keys = Vec::with_capacity(left_keys.len());
                let mut unknown = false;
                for k in left_keys {
                    let v = eval(k, &res, ctx)?;
                    if v.is_unknown() {
                        unknown = true;
                        break;
                    }
                    keys.push(v);
                }
                let mut matched = false;
                if !unknown {
                    if let Some(cands) = table.get(&combined_hash(&keys)) {
                        for (rkeys, r) in cands {
                            if rkeys.len() == keys.len()
                                && rkeys.iter().zip(&keys).all(|(a, b)| a.total_cmp(b).is_eq())
                            {
                                let mut env = l.clone();
                                env.extend(r.iter().map(|(k, v)| (*k, v.clone())));
                                let keep = match residual {
                                    None => true,
                                    Some(resid) => {
                                        let res2 = ChainResolver { env: &env, outer };
                                        truthy(&eval(resid, &res2, ctx)?)
                                    }
                                };
                                if keep {
                                    matched = true;
                                    out.push(env);
                                }
                            }
                        }
                    }
                }
                if !matched && *kind == JoinKind::LeftOuter {
                    let mut env = l.clone();
                    for v in &right_vars {
                        env.insert(*v, Value::Null);
                    }
                    out.push(env);
                }
            }
            Ok(out)
        }
        LogicalOp::IndexNlJoin { left, dataset, index, probe, var, kind } => {
            let lrows = eval_rows(left, outer, ctx)?;
            let mut out = Vec::new();
            for l in lrows {
                let key = {
                    let res = ChainResolver { env: &l, outer };
                    eval(probe, &res, ctx)?
                };
                let matches: Vec<Value> = if key.is_unknown() {
                    Vec::new()
                } else {
                    let pks = ctx
                        .provider
                        .btree_search_all(
                            dataset,
                            index,
                            KeyBound::Inclusive(key.clone()),
                            KeyBound::Inclusive(key),
                        )
                        .map_err(adm_err)?;
                    let mut recs = Vec::with_capacity(pks.len());
                    for pk in pks {
                        if let Some(r) = ctx.provider.lookup_pk(dataset, &pk).map_err(adm_err)? {
                            recs.push(r);
                        }
                    }
                    recs
                };
                if matches.is_empty() && *kind == JoinKind::LeftOuter {
                    let mut env = l.clone();
                    env.insert(*var, Value::Null);
                    out.push(env);
                } else {
                    for m in matches {
                        let mut env = l.clone();
                        env.insert(*var, m);
                        out.push(env);
                    }
                }
            }
            Ok(out)
        }
        LogicalOp::GroupBy { input, keys, aggs } => {
            let rows = eval_rows(input, outer, ctx)?;
            // Group rows by evaluated keys.
            let mut order: Vec<Vec<Value>> = Vec::new();
            let mut groups: Vec<Vec<Env>> = Vec::new();
            for env in rows {
                let res = ChainResolver { env: &env, outer };
                let mut kv = Vec::with_capacity(keys.len());
                for (_, ke) in keys {
                    kv.push(eval(ke, &res, ctx)?);
                }
                let idx = order.iter().position(|o| {
                    o.len() == kv.len() && o.iter().zip(&kv).all(|(a, b)| a.total_cmp(b).is_eq())
                });
                match idx {
                    Some(i) => groups[i].push(env),
                    None => {
                        order.push(kv);
                        groups.push(vec![env]);
                    }
                }
            }
            let mut out = Vec::with_capacity(groups.len());
            for (kv, members) in order.into_iter().zip(groups) {
                let mut env = Env::new();
                for ((kvar, _), v) in keys.iter().zip(kv) {
                    env.insert(*kvar, v);
                }
                for agg in aggs {
                    let v = eval_agg(agg, &members, outer, ctx)?;
                    env.insert(agg.var, v);
                }
                out.push(env);
            }
            Ok(out)
        }
        LogicalOp::Aggregate { input, aggs } => {
            let rows = eval_rows(input, outer, ctx)?;
            let mut env = Env::new();
            for agg in aggs {
                let v = eval_agg(agg, &rows, outer, ctx)?;
                env.insert(agg.var, v);
            }
            Ok(vec![env])
        }
        LogicalOp::Order { input, keys } => {
            let rows = eval_rows(input, outer, ctx)?;
            let mut keyed: Vec<(Vec<Value>, Env)> = Vec::with_capacity(rows.len());
            for env in rows {
                let res = ChainResolver { env: &env, outer };
                let mut kv = Vec::with_capacity(keys.len());
                for k in keys {
                    kv.push(eval(&k.expr, &res, ctx)?);
                }
                keyed.push((kv, env));
            }
            keyed.sort_by(|(a, _), (b, _)| {
                for (i, k) in keys.iter().enumerate() {
                    let ord = a[i].total_cmp(&b[i]);
                    let ord = if k.descending { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(keyed.into_iter().map(|(_, e)| e).collect())
        }
        LogicalOp::Limit { input, count, offset } => {
            let rows = eval_rows(input, outer, ctx)?;
            Ok(rows.into_iter().skip(*offset).take(*count).collect())
        }
        LogicalOp::Distinct { input, exprs } => {
            let rows = eval_rows(input, outer, ctx)?;
            let mut seen: Vec<Vec<Value>> = Vec::new();
            let mut out = Vec::new();
            for env in rows {
                let res = ChainResolver { env: &env, outer };
                let mut kv = Vec::with_capacity(exprs.len());
                for e in exprs {
                    kv.push(eval(e, &res, ctx)?);
                }
                let dup =
                    seen.iter().any(|o| o.iter().zip(&kv).all(|(a, b)| a.total_cmp(b).is_eq()));
                if !dup {
                    seen.push(kv);
                    out.push(env);
                }
            }
            Ok(out)
        }
        LogicalOp::Emit { .. } => Err(adm_err("emit cannot be nested below another operator")),
    }
}

fn combined_hash(keys: &[Value]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for k in keys {
        h ^= k.stable_hash();
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Resolve an index search spec into matching records.
pub fn index_search_records(
    dataset: &str,
    index: &str,
    spec: &IndexSearchSpec,
    outer: &dyn VarResolver,
    ctx: &EvalCtx,
) -> asterix_adm::Result<Vec<Value>> {
    let bound = |b: &Option<(crate::expr::LogicalExpr, bool)>| -> asterix_adm::Result<KeyBound> {
        Ok(match b {
            None => KeyBound::Unbounded,
            Some((e, inclusive)) => {
                let v = eval(e, outer, ctx)?;
                if *inclusive {
                    KeyBound::Inclusive(v)
                } else {
                    KeyBound::Exclusive(v)
                }
            }
        })
    };
    match spec {
        IndexSearchSpec::PrimaryRange { lo, hi } => {
            ctx.provider.primary_range_all(dataset, bound(lo)?, bound(hi)?).map_err(adm_err)
        }
        IndexSearchSpec::BTreeRange { lo, hi } => {
            let pks = ctx
                .provider
                .btree_search_all(dataset, index, bound(lo)?, bound(hi)?)
                .map_err(adm_err)?;
            fetch_records(dataset, pks, ctx)
        }
        IndexSearchSpec::RTree { query } => {
            let q = eval(query, outer, ctx)?;
            let rect: Rectangle = asterix_adm::spatial::mbr(&q)?;
            let pks = ctx.provider.rtree_search_all(dataset, index, &rect).map_err(adm_err)?;
            fetch_records(dataset, pks, ctx)
        }
        IndexSearchSpec::InvertedConjunctive { needle } => {
            let v = eval(needle, outer, ctx)?;
            let tokens = tokenize_for(ctx, dataset, index, &v)?;
            let n = tokens.len();
            let pks = ctx
                .provider
                .inverted_search_all(dataset, index, &tokens, n.max(1))
                .map_err(adm_err)?;
            fetch_records(dataset, pks, ctx)
        }
        IndexSearchSpec::InvertedFuzzy { needle, edit_distance } => {
            let v = eval(needle, outer, ctx)?;
            let s = v.as_str().ok_or_else(|| adm_err("fuzzy search needle must be a string"))?;
            let k = gram_len(ctx, dataset, index)?;
            let grams = asterix_adm::strings::gram_tokens(s, k);
            let lower = grams.len().saturating_sub(k * edit_distance);
            if lower == 0 {
                // Degenerate threshold: fall back to scanning everything;
                // the postcondition filter does the exact check.
                return ctx.provider.scan_all(dataset).map_err(adm_err);
            }
            let pks =
                ctx.provider.inverted_search_all(dataset, index, &grams, lower).map_err(adm_err)?;
            fetch_records(dataset, pks, ctx)
        }
    }
}

fn fetch_records(
    dataset: &str,
    mut pks: Vec<Vec<Value>>,
    ctx: &EvalCtx,
) -> asterix_adm::Result<Vec<Value>> {
    // Sort primary keys before the primary lookups — the same access-
    // pattern optimization Figure 6 shows.
    pks.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            let c = x.total_cmp(y);
            if c != std::cmp::Ordering::Equal {
                return c;
            }
        }
        a.len().cmp(&b.len())
    });
    pks.dedup_by(|a, b| {
        a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.total_cmp(y).is_eq())
    });
    let mut out = Vec::with_capacity(pks.len());
    for pk in pks {
        if let Some(r) = ctx.provider.lookup_pk(dataset, &pk).map_err(adm_err)? {
            out.push(r);
        }
    }
    Ok(out)
}

fn tokenize_for(
    ctx: &EvalCtx,
    dataset: &str,
    index: &str,
    v: &Value,
) -> asterix_adm::Result<Vec<String>> {
    let kind = ctx
        .provider
        .indexes(dataset)
        .into_iter()
        .find(|i| i.name == index)
        .map(|i| i.kind)
        .ok_or_else(|| adm_err(format!("unknown index {index}")))?;
    match (kind, v) {
        (IndexKind::Keyword, Value::String(s)) => Ok(asterix_adm::strings::word_tokens(s)),
        (IndexKind::Keyword, v) if v.as_list().is_some() => Ok(v
            .as_list()
            .unwrap()
            .iter()
            .filter_map(|x| x.as_str().map(|s| s.to_lowercase()))
            .collect()),
        (IndexKind::NGram(k), Value::String(s)) => Ok(asterix_adm::strings::gram_tokens(s, k)),
        _ => Err(adm_err("cannot tokenize needle for this index")),
    }
}

fn gram_len(ctx: &EvalCtx, dataset: &str, index: &str) -> asterix_adm::Result<usize> {
    match ctx.provider.indexes(dataset).into_iter().find(|i| i.name == index).map(|i| i.kind) {
        Some(IndexKind::NGram(k)) => Ok(k),
        _ => Err(adm_err(format!("{index} is not an ngram index"))),
    }
}

fn eval_agg(
    agg: &AggCall,
    members: &[Env],
    outer: &dyn VarResolver,
    ctx: &EvalCtx,
) -> asterix_adm::Result<Value> {
    let mut values = Vec::with_capacity(members.len());
    for env in members {
        let res = ChainResolver { env, outer };
        values.push(eval(&agg.input, &res, ctx)?);
    }
    let list = Value::ordered_list(values);
    if agg.func == AggFunc::Listify {
        return Ok(list);
    }
    let name = match (agg.func, agg.sql) {
        (AggFunc::Count, false) => "count",
        (AggFunc::Sum, false) => "sum",
        (AggFunc::Min, false) => "min",
        (AggFunc::Max, false) => "max",
        (AggFunc::Avg, false) => "avg",
        (AggFunc::Count, true) => "sql-count",
        (AggFunc::Sum, true) => "sql-sum",
        (AggFunc::Min, true) => "sql-min",
        (AggFunc::Max, true) => "sql-max",
        (AggFunc::Avg, true) => "sql-avg",
        (AggFunc::Listify, _) => unreachable!(),
    };
    asterix_adm::functions::eval(name, &[list], &ctx.fn_ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CompareOp, LogicalExpr};
    use crate::metadata::tests_support::VecProvider;
    use crate::plan::build::*;
    use asterix_adm::functions::FunctionContext;
    use std::sync::Arc;

    fn users() -> Vec<Value> {
        (0..10i64)
            .map(|i| {
                asterix_adm::parse::parse_value(&format!(
                    r#"{{ "id": {i}, "name": "u{i}", "age": {} }}"#,
                    20 + i
                ))
                .unwrap()
            })
            .collect()
    }

    fn ctx_with_users() -> EvalCtx {
        let mut p = VecProvider::new(2);
        p.add("Users", "id", users());
        EvalCtx::new(Arc::new(p), FunctionContext::default())
    }

    fn run(plan: &LogicalOp, ctx: &EvalCtx) -> Vec<Value> {
        eval_subplan(plan, &Env::new(), ctx).unwrap()
    }

    #[test]
    fn scan_select_emit() {
        let ctx = ctx_with_users();
        let plan = emit(
            select(
                scan("Users", 0),
                LogicalExpr::Compare(
                    CompareOp::Ge,
                    Box::new(LogicalExpr::field(var(0), "age")),
                    Box::new(lit(Value::Int64(27))),
                ),
            ),
            LogicalExpr::field(var(0), "name"),
        );
        let out = run(&plan, &ctx);
        assert_eq!(out.len(), 3); // ages 27, 28, 29
    }

    #[test]
    fn correlated_subquery_sees_outer() {
        let ctx = ctx_with_users();
        // Outer binds var 9 = 5; subplan: users with id < $9.
        let sub = emit(
            select(
                scan("Users", 0),
                LogicalExpr::Compare(
                    CompareOp::Lt,
                    Box::new(LogicalExpr::field(var(0), "id")),
                    Box::new(var(9)),
                ),
            ),
            LogicalExpr::field(var(0), "id"),
        );
        let mut outer = Env::new();
        outer.insert(9, Value::Int64(5));
        let out = eval_subplan(&sub, &outer, &ctx).unwrap();
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn group_by_and_aggregates() {
        let ctx = ctx_with_users();
        // Group by id % 2, count.
        let plan = emit(
            LogicalOp::GroupBy {
                input: Box::new(scan("Users", 0)),
                keys: vec![(
                    1,
                    LogicalExpr::Arith(
                        '%',
                        Box::new(LogicalExpr::field(var(0), "id")),
                        Box::new(lit(Value::Int64(2))),
                    ),
                )],
                aggs: vec![AggCall { var: 2, func: AggFunc::Count, sql: false, input: var(0) }],
            },
            LogicalExpr::RecordCtor(vec![("k".into(), var(1)), ("n".into(), var(2))]),
        );
        let mut out = run(&plan, &ctx);
        out.sort_by(|a, b| a.field("k").total_cmp(&b.field("k")));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].field("n"), Value::Int64(5));
    }

    #[test]
    fn order_limit() {
        let ctx = ctx_with_users();
        let plan = emit(
            LogicalOp::Limit {
                input: Box::new(LogicalOp::Order {
                    input: Box::new(scan("Users", 0)),
                    keys: vec![crate::plan::SortSpec {
                        expr: LogicalExpr::field(var(0), "id"),
                        descending: true,
                    }],
                }),
                count: 3,
                offset: 0,
            },
            LogicalExpr::field(var(0), "id"),
        );
        let out = run(&plan, &ctx);
        assert_eq!(out, vec![Value::Int64(9), Value::Int64(8), Value::Int64(7)]);
    }

    #[test]
    fn hash_join_inner_and_outer() {
        let mut p = VecProvider::new(1);
        p.add("Users", "id", users());
        p.add(
            "Msgs",
            "mid",
            (0..6i64)
                .map(|m| {
                    asterix_adm::parse::parse_value(&format!(
                        r#"{{ "mid": {m}, "author": {} }}"#,
                        m % 3
                    ))
                    .unwrap()
                })
                .collect(),
        );
        let ctx = EvalCtx::new(Arc::new(p), FunctionContext::default());
        let join = LogicalOp::HashJoin {
            left: Box::new(scan("Users", 0)),
            right: Box::new(scan("Msgs", 1)),
            left_keys: vec![LogicalExpr::field(var(0), "id")],
            right_keys: vec![LogicalExpr::field(var(1), "author")],
            residual: None,
            kind: JoinKind::Inner,
        };
        let plan = emit(join.clone(), LogicalExpr::field(var(1), "mid"));
        let out = run(&plan, &ctx);
        assert_eq!(out.len(), 6);

        let outer_join = LogicalOp::HashJoin {
            left: Box::new(scan("Users", 0)),
            right: Box::new(scan("Msgs", 1)),
            left_keys: vec![LogicalExpr::field(var(0), "id")],
            right_keys: vec![LogicalExpr::field(var(1), "author")],
            residual: None,
            kind: JoinKind::LeftOuter,
        };
        let plan = emit(outer_join, LogicalExpr::field(var(0), "id"));
        let out = run(&plan, &ctx);
        // 6 matches + 7 unmatched users (ids 3..9).
        assert_eq!(out.len(), 13);
    }

    #[test]
    fn unnest_inner_and_outer() {
        let mut p = VecProvider::new(1);
        p.add(
            "D",
            "id",
            vec![
                asterix_adm::parse::parse_value(r#"{ "id": 1, "xs": [10, 20] }"#).unwrap(),
                asterix_adm::parse::parse_value(r#"{ "id": 2, "xs": [] }"#).unwrap(),
            ],
        );
        let ctx = EvalCtx::new(Arc::new(p), FunctionContext::default());
        let inner = emit(
            LogicalOp::Unnest {
                input: Box::new(scan("D", 0)),
                var: 1,
                expr: LogicalExpr::field(var(0), "xs"),
                positional: None,
                outer: false,
            },
            var(1),
        );
        assert_eq!(run(&inner, &ctx).len(), 2);
        let outer_plan = emit(
            LogicalOp::Unnest {
                input: Box::new(scan("D", 0)),
                var: 1,
                expr: LogicalExpr::field(var(0), "xs"),
                positional: Some(2),
                outer: true,
            },
            var(1),
        );
        let out = run(&outer_plan, &ctx);
        assert_eq!(out.len(), 3); // 2 items + 1 empty row with missing
        assert!(out.iter().any(|v| v.is_missing()));
    }

    #[test]
    fn distinct_rows() {
        let ctx = ctx_with_users();
        let plan = emit(
            LogicalOp::Distinct {
                input: Box::new(scan("Users", 0)),
                exprs: vec![LogicalExpr::Arith(
                    '%',
                    Box::new(LogicalExpr::field(var(0), "id")),
                    Box::new(lit(Value::Int64(3))),
                )],
            },
            lit(Value::Boolean(true)),
        );
        assert_eq!(run(&plan, &ctx).len(), 3);
    }
}
