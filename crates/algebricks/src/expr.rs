//! Logical expressions and their evaluator.
//!
//! Expressions are shared by the interpreter and the compiled path (which
//! wraps them in closures over runtime tuples). Evaluation needs a
//! [`VarResolver`] for variable bindings and an [`EvalCtx`] carrying the
//! statement clock, fuzzy-match session settings, and the metadata provider
//! (for correlated subqueries).

use std::sync::Arc;

use asterix_adm::functions::{self, FunctionContext};
use asterix_adm::{AdmError, Value};

use crate::metadata::MetadataProvider;
use crate::plan::LogicalOp;

/// A compiler-assigned variable id (`$user` → some VarId).
pub type VarId = usize;

/// Comparison operators, including the fuzzy `~=` of Queries 6/13.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    FuzzyEq,
}

/// Quantifier kinds (Query 7/8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantKind {
    Some,
    Every,
}

/// A logical expression.
#[derive(Debug, Clone)]
pub enum LogicalExpr {
    Const(Value),
    Var(VarId),
    /// `$x.field` — missing-propagating field access.
    FieldAccess(Box<LogicalExpr>, String),
    /// `$x[i]` — list indexing (0-based, as in AQL).
    IndexAccess(Box<LogicalExpr>, Box<LogicalExpr>),
    /// Builtin function call.
    Call(String, Vec<LogicalExpr>),
    /// `+ - * / %`.
    Arith(char, Box<LogicalExpr>, Box<LogicalExpr>),
    /// Unary minus.
    Neg(Box<LogicalExpr>),
    Compare(CompareOp, Box<LogicalExpr>, Box<LogicalExpr>),
    And(Vec<LogicalExpr>),
    Or(Vec<LogicalExpr>),
    Not(Box<LogicalExpr>),
    /// `{ "name": expr, ... }` — record constructor.
    RecordCtor(Vec<(String, LogicalExpr)>),
    /// `[ ... ]` / `{{ ... }}`.
    ListCtor {
        ordered: bool,
        items: Vec<LogicalExpr>,
    },
    /// `some/every $v in <coll> satisfies <pred>`.
    Quantified {
        kind: QuantKind,
        var: VarId,
        collection: Box<LogicalExpr>,
        predicate: Box<LogicalExpr>,
    },
    /// `if (c) then a else b` (used by some rewrites; AQL surface syntax
    /// does not expose it in this subset but the algebra supports it).
    IfThenElse(Box<LogicalExpr>, Box<LogicalExpr>, Box<LogicalExpr>),
    /// A correlated subplan (nested FLWOR). Evaluates to the ordered list
    /// of its emitted values under the outer bindings.
    Subquery(Arc<LogicalOp>),
    /// A parameter slot filled at bind time from [`EvalCtx::params`].
    /// Produced by AQL statement normalization (literal lifting) — never by
    /// the parser — so cached plans can be re-instantiated with different
    /// constants.
    Param(usize),
}

impl LogicalExpr {
    pub fn call(name: impl Into<String>, args: Vec<LogicalExpr>) -> LogicalExpr {
        LogicalExpr::Call(name.into(), args)
    }

    pub fn field(base: LogicalExpr, name: impl Into<String>) -> LogicalExpr {
        LogicalExpr::FieldAccess(Box::new(base), name.into())
    }

    /// Collect every variable referenced by this expression (free
    /// variables; quantifier/subplan-bound variables are excluded).
    pub fn free_vars(&self, out: &mut Vec<VarId>) {
        match self {
            // Params bind to per-execution constants, not tuple variables,
            // so they are variable-free for plan analysis (ordkey
            // classification, projection inference).
            LogicalExpr::Const(_) | LogicalExpr::Param(_) => {}
            LogicalExpr::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            LogicalExpr::FieldAccess(e, _) | LogicalExpr::Neg(e) | LogicalExpr::Not(e) => {
                e.free_vars(out)
            }
            LogicalExpr::IndexAccess(a, b) | LogicalExpr::Arith(_, a, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
            LogicalExpr::Compare(_, a, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
            LogicalExpr::Call(_, args) => {
                for a in args {
                    a.free_vars(out);
                }
            }
            LogicalExpr::And(es) | LogicalExpr::Or(es) => {
                for e in es {
                    e.free_vars(out);
                }
            }
            LogicalExpr::RecordCtor(fields) => {
                for (_, e) in fields {
                    e.free_vars(out);
                }
            }
            LogicalExpr::ListCtor { items, .. } => {
                for e in items {
                    e.free_vars(out);
                }
            }
            LogicalExpr::Quantified { var, collection, predicate, .. } => {
                collection.free_vars(out);
                let mut inner = Vec::new();
                predicate.free_vars(&mut inner);
                for v in inner {
                    if v != *var && !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
            LogicalExpr::IfThenElse(c, t, e) => {
                c.free_vars(out);
                t.free_vars(out);
                e.free_vars(out);
            }
            LogicalExpr::Subquery(plan) => {
                let mut inner = Vec::new();
                plan.free_vars(&mut inner);
                let bound = plan.bound_vars();
                for v in inner {
                    if !bound.contains(&v) && !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
        }
    }

    /// True when the expression references no variables and no clock- or
    /// data-dependent function (safe to constant-fold).
    pub fn is_foldable_const(&self) -> bool {
        match self {
            LogicalExpr::Const(_) => true,
            // A param's value is unknown until bind time: folding it into
            // the cached plan would freeze one execution's constant.
            LogicalExpr::Var(_) | LogicalExpr::Subquery(_) | LogicalExpr::Param(_) => false,
            LogicalExpr::Call(name, args) => {
                !matches!(name.as_str(), "current-datetime" | "current-date" | "current-time")
                    && args.iter().all(|a| a.is_foldable_const())
            }
            LogicalExpr::FieldAccess(e, _) | LogicalExpr::Neg(e) | LogicalExpr::Not(e) => {
                e.is_foldable_const()
            }
            LogicalExpr::IndexAccess(a, b)
            | LogicalExpr::Arith(_, a, b)
            | LogicalExpr::Compare(_, a, b) => a.is_foldable_const() && b.is_foldable_const(),
            LogicalExpr::And(es) | LogicalExpr::Or(es) => es.iter().all(|e| e.is_foldable_const()),
            LogicalExpr::RecordCtor(fs) => fs.iter().all(|(_, e)| e.is_foldable_const()),
            LogicalExpr::ListCtor { items, .. } => items.iter().all(|e| e.is_foldable_const()),
            LogicalExpr::Quantified { collection, predicate, .. } => {
                collection.is_foldable_const() && predicate.is_foldable_const()
            }
            LogicalExpr::IfThenElse(c, t, e) => {
                c.is_foldable_const() && t.is_foldable_const() && e.is_foldable_const()
            }
        }
    }
}

/// Variable resolution during evaluation.
pub trait VarResolver {
    fn get(&self, var: VarId) -> Option<Value>;
}

/// Resolver over a hash map (interpreter bindings).
impl VarResolver for std::collections::HashMap<VarId, Value> {
    fn get(&self, var: VarId) -> Option<Value> {
        std::collections::HashMap::get(self, &var).cloned()
    }
}

/// Resolver layering one binding over another resolver (quantifiers,
/// subplans).
pub struct Overlay<'a> {
    pub base: &'a dyn VarResolver,
    pub var: VarId,
    pub value: Value,
}

impl VarResolver for Overlay<'_> {
    fn get(&self, var: VarId) -> Option<Value> {
        if var == self.var {
            Some(self.value.clone())
        } else {
            self.base.get(var)
        }
    }
}

/// Resolver over a runtime tuple plus a VarId → column map (compiled path).
pub struct TupleResolver<'a> {
    pub columns: &'a [Option<usize>],
    pub tuple: &'a [Value],
}

impl VarResolver for TupleResolver<'_> {
    fn get(&self, var: VarId) -> Option<Value> {
        self.columns.get(var).copied().flatten().and_then(|i| self.tuple.get(i).cloned())
    }
}

/// Evaluation context shared by interpreter and compiled closures.
pub struct EvalCtx {
    pub provider: Arc<dyn MetadataProvider>,
    pub fn_ctx: FunctionContext,
    /// Bind-time values for [`LogicalExpr::Param`] slots (empty for
    /// non-parameterized plans).
    pub params: Vec<Value>,
}

impl EvalCtx {
    pub fn new(provider: Arc<dyn MetadataProvider>, fn_ctx: FunctionContext) -> EvalCtx {
        EvalCtx { provider, fn_ctx, params: Vec::new() }
    }

    pub fn with_params(
        provider: Arc<dyn MetadataProvider>,
        fn_ctx: FunctionContext,
        params: Vec<Value>,
    ) -> EvalCtx {
        EvalCtx { provider, fn_ctx, params }
    }
}

/// Evaluate an expression to a value.
pub fn eval(
    expr: &LogicalExpr,
    vars: &dyn VarResolver,
    ctx: &EvalCtx,
) -> asterix_adm::Result<Value> {
    match expr {
        LogicalExpr::Const(v) => Ok(v.clone()),
        LogicalExpr::Param(i) => ctx.params.get(*i).cloned().ok_or_else(|| {
            asterix_adm::AdmError::InvalidArgument(format!("unbound parameter ${i}"))
        }),
        LogicalExpr::Var(v) => Ok(vars.get(*v).unwrap_or(Value::Missing)),
        LogicalExpr::FieldAccess(base, name) => Ok(eval(base, vars, ctx)?.field(name)),
        LogicalExpr::IndexAccess(base, idx) => {
            let b = eval(base, vars, ctx)?;
            let i = eval(idx, vars, ctx)?;
            match (b.as_list(), i.as_i64()) {
                (Some(items), Some(i)) if i >= 0 && (i as usize) < items.len() => {
                    Ok(items[i as usize].clone())
                }
                _ => Ok(Value::Missing),
            }
        }
        LogicalExpr::Call(name, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(a, vars, ctx)?);
            }
            functions::eval(name, &vals, &ctx.fn_ctx)
        }
        LogicalExpr::Arith(op, a, b) => {
            functions::arith(*op, &eval(a, vars, ctx)?, &eval(b, vars, ctx)?)
        }
        LogicalExpr::Neg(e) => functions::neg(&eval(e, vars, ctx)?),
        LogicalExpr::Compare(op, a, b) => {
            let va = eval(a, vars, ctx)?;
            let vb = eval(b, vars, ctx)?;
            compare(*op, &va, &vb, &ctx.fn_ctx)
        }
        LogicalExpr::And(es) => {
            let mut saw_unknown = false;
            for e in es {
                match eval(e, vars, ctx)? {
                    Value::Boolean(false) => return Ok(Value::Boolean(false)),
                    Value::Boolean(true) => {}
                    v if v.is_unknown() => saw_unknown = true,
                    other => {
                        return Err(AdmError::InvalidArgument(format!(
                            "and over {}",
                            other.type_name()
                        )))
                    }
                }
            }
            Ok(if saw_unknown { Value::Null } else { Value::Boolean(true) })
        }
        LogicalExpr::Or(es) => {
            let mut saw_unknown = false;
            for e in es {
                match eval(e, vars, ctx)? {
                    Value::Boolean(true) => return Ok(Value::Boolean(true)),
                    Value::Boolean(false) => {}
                    v if v.is_unknown() => saw_unknown = true,
                    other => {
                        return Err(AdmError::InvalidArgument(format!(
                            "or over {}",
                            other.type_name()
                        )))
                    }
                }
            }
            Ok(if saw_unknown { Value::Null } else { Value::Boolean(false) })
        }
        LogicalExpr::Not(e) => match eval(e, vars, ctx)? {
            Value::Boolean(b) => Ok(Value::Boolean(!b)),
            v if v.is_unknown() => Ok(Value::Null),
            other => Err(AdmError::InvalidArgument(format!("not over {}", other.type_name()))),
        },
        LogicalExpr::RecordCtor(fields) => {
            let mut out = Vec::with_capacity(fields.len());
            for (name, e) in fields {
                out.push((name.clone(), eval(e, vars, ctx)?));
            }
            Ok(functions::build_record(out))
        }
        LogicalExpr::ListCtor { ordered, items } => {
            let mut out = Vec::with_capacity(items.len());
            for e in items {
                out.push(eval(e, vars, ctx)?);
            }
            Ok(functions::build_list(out, *ordered))
        }
        LogicalExpr::Quantified { kind, var, collection, predicate } => {
            let coll = eval(collection, vars, ctx)?;
            let Some(items) = coll.as_list() else {
                // Quantification over non-collections / unknowns: `some`
                // finds nothing, `every` is vacuously true.
                return Ok(Value::Boolean(*kind == QuantKind::Every));
            };
            for item in items {
                let overlay = Overlay { base: vars, var: *var, value: item.clone() };
                let p = eval(predicate, &overlay, ctx)?;
                match (kind, p) {
                    (QuantKind::Some, Value::Boolean(true)) => return Ok(Value::Boolean(true)),
                    (QuantKind::Every, Value::Boolean(true)) => {}
                    (QuantKind::Every, _) => return Ok(Value::Boolean(false)),
                    (QuantKind::Some, _) => {}
                }
            }
            Ok(Value::Boolean(*kind == QuantKind::Every))
        }
        LogicalExpr::IfThenElse(c, t, e) => match eval(c, vars, ctx)? {
            Value::Boolean(true) => eval(t, vars, ctx),
            _ => eval(e, vars, ctx),
        },
        LogicalExpr::Subquery(plan) => {
            let rows = crate::interp::eval_subplan(plan, vars, ctx)?;
            Ok(Value::ordered_list(rows))
        }
    }
}

/// Evaluate a comparison with AQL semantics (unknown operands → null).
pub fn compare(
    op: CompareOp,
    a: &Value,
    b: &Value,
    fn_ctx: &FunctionContext,
) -> asterix_adm::Result<Value> {
    if op == CompareOp::FuzzyEq {
        return Ok(Value::Boolean(asterix_adm::similarity::fuzzy_eq(
            a,
            b,
            &fn_ctx.simfunction,
            &fn_ctx.simthreshold,
        )?));
    }
    if a.is_unknown() || b.is_unknown() {
        return Ok(Value::Null);
    }
    let ord = a.total_cmp(b);
    Ok(Value::Boolean(match op {
        CompareOp::Eq => ord.is_eq(),
        CompareOp::Neq => !ord.is_eq(),
        CompareOp::Lt => ord.is_lt(),
        CompareOp::Le => ord.is_le(),
        CompareOp::Gt => ord.is_gt(),
        CompareOp::Ge => ord.is_ge(),
        CompareOp::FuzzyEq => unreachable!(),
    }))
}

/// Truthiness at a select boundary: unknown collapses to false.
pub fn truthy(v: &Value) -> bool {
    matches!(v, Value::Boolean(true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::tests_support::EmptyProvider;
    use std::collections::HashMap;

    fn ctx() -> EvalCtx {
        EvalCtx::new(Arc::new(EmptyProvider), FunctionContext::default())
    }

    fn ev(e: &LogicalExpr) -> Value {
        eval(e, &HashMap::new(), &ctx()).unwrap()
    }

    #[test]
    fn arithmetic_and_compare() {
        let e = LogicalExpr::Arith(
            '+',
            Box::new(LogicalExpr::Const(Value::Int64(1))),
            Box::new(LogicalExpr::Const(Value::Int64(1))),
        );
        assert_eq!(ev(&e), Value::Int64(2)); // "1+1 is a valid AQL query"
        let c = LogicalExpr::Compare(
            CompareOp::Lt,
            Box::new(e),
            Box::new(LogicalExpr::Const(Value::Int64(5))),
        );
        assert_eq!(ev(&c), Value::Boolean(true));
    }

    #[test]
    fn three_valued_logic() {
        let unknown = LogicalExpr::Compare(
            CompareOp::Eq,
            Box::new(LogicalExpr::Const(Value::Null)),
            Box::new(LogicalExpr::Const(Value::Int64(1))),
        );
        assert_eq!(ev(&unknown), Value::Null);
        // false AND unknown = false; true AND unknown = unknown.
        let f = LogicalExpr::Const(Value::Boolean(false));
        let t = LogicalExpr::Const(Value::Boolean(true));
        assert_eq!(ev(&LogicalExpr::And(vec![f, unknown.clone()])), Value::Boolean(false));
        assert_eq!(ev(&LogicalExpr::And(vec![t.clone(), unknown.clone()])), Value::Null);
        // true OR unknown = true; false OR unknown = unknown.
        assert_eq!(ev(&LogicalExpr::Or(vec![t, unknown.clone()])), Value::Boolean(true));
        assert_eq!(
            ev(&LogicalExpr::Or(vec![LogicalExpr::Const(Value::Boolean(false)), unknown])),
            Value::Null
        );
    }

    #[test]
    fn field_and_index_access() {
        let rec = asterix_adm::parse::parse_value(r#"{ "a": { "b": [10, 20] } }"#).unwrap();
        let e = LogicalExpr::IndexAccess(
            Box::new(LogicalExpr::field(LogicalExpr::field(LogicalExpr::Const(rec), "a"), "b")),
            Box::new(LogicalExpr::Const(Value::Int64(1))),
        );
        assert_eq!(ev(&e), Value::Int64(20));
    }

    #[test]
    fn quantifiers() {
        let coll = LogicalExpr::Const(Value::ordered_list(vec![
            Value::Int64(1),
            Value::Int64(2),
            Value::Int64(3),
        ]));
        let some_gt2 = LogicalExpr::Quantified {
            kind: QuantKind::Some,
            var: 99,
            collection: Box::new(coll.clone()),
            predicate: Box::new(LogicalExpr::Compare(
                CompareOp::Gt,
                Box::new(LogicalExpr::Var(99)),
                Box::new(LogicalExpr::Const(Value::Int64(2))),
            )),
        };
        assert_eq!(ev(&some_gt2), Value::Boolean(true));
        let every_gt2 = LogicalExpr::Quantified {
            kind: QuantKind::Every,
            var: 99,
            collection: Box::new(coll),
            predicate: Box::new(LogicalExpr::Compare(
                CompareOp::Gt,
                Box::new(LogicalExpr::Var(99)),
                Box::new(LogicalExpr::Const(Value::Int64(2))),
            )),
        };
        assert_eq!(ev(&every_gt2), Value::Boolean(false));
        // every over empty collection is vacuously true.
        let empty = LogicalExpr::Quantified {
            kind: QuantKind::Every,
            var: 1,
            collection: Box::new(LogicalExpr::Const(Value::ordered_list(vec![]))),
            predicate: Box::new(LogicalExpr::Const(Value::Boolean(false))),
        };
        assert_eq!(ev(&empty), Value::Boolean(true));
    }

    #[test]
    fn record_ctor_drops_missing() {
        let e = LogicalExpr::RecordCtor(vec![
            ("a".into(), LogicalExpr::Const(Value::Int64(1))),
            ("b".into(), LogicalExpr::Const(Value::Missing)),
        ]);
        let v = ev(&e);
        assert_eq!(v.as_record().unwrap().len(), 1);
    }

    #[test]
    fn free_vars_exclude_bound() {
        let q = LogicalExpr::Quantified {
            kind: QuantKind::Some,
            var: 5,
            collection: Box::new(LogicalExpr::Var(3)),
            predicate: Box::new(LogicalExpr::Compare(
                CompareOp::Eq,
                Box::new(LogicalExpr::Var(5)),
                Box::new(LogicalExpr::Var(7)),
            )),
        };
        let mut vars = Vec::new();
        q.free_vars(&mut vars);
        vars.sort_unstable();
        assert_eq!(vars, vec![3, 7]);
    }

    #[test]
    fn foldability() {
        assert!(LogicalExpr::call("string-length", vec![LogicalExpr::Const(Value::string("abc"))])
            .is_foldable_const());
        assert!(!LogicalExpr::call("current-datetime", vec![]).is_foldable_const());
        assert!(!LogicalExpr::Var(0).is_foldable_const());
    }
}
