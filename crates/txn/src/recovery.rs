//! Crash recovery (§4.4).
//!
//! The storage layer already garbage-collects disk components without a
//! validity marker when an index reopens (shadowing). What remains is to
//! selectively replay committed operations that were only in in-memory
//! components at crash time: every `Update` whose transaction committed and
//! whose LSN is newer than its index's last `Flush` watermark.
//!
//! Replay is idempotent — inserts are upserts and deletes are antimatter —
//! so replaying an operation that actually made it into a flushed component
//! is harmless, which lets the flush watermark be conservative.

use std::collections::{HashMap, HashSet};
use std::path::Path;

use crate::wal::{LogManager, LogRecord, Lsn, TxnId};
use crate::Result;

/// Where replayed operations are applied (implemented by the dataset layer,
/// which routes them into the right LSM index).
pub trait RecoveryTarget {
    /// Apply a logical insert to (dataset, index).
    fn replay_insert(&mut self, dataset: u32, index: u32, key: &[u8], value: &[u8]) -> Result<()>;
    /// Apply a logical delete to (dataset, index). `value` carries the
    /// logical payload for indexes whose delete needs it (e.g. secondary
    /// indexes log `[field value, pk...]` rather than a storage key).
    fn replay_delete(&mut self, dataset: u32, index: u32, key: &[u8], value: &[u8]) -> Result<()>;
}

/// Counters describing what recovery did.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecoveryStats {
    pub records_scanned: usize,
    pub committed_txns: usize,
    pub replayed_inserts: usize,
    pub replayed_deletes: usize,
    pub skipped_flushed: usize,
    pub skipped_uncommitted: usize,
}

/// Run crash recovery from the log at `path` into `target`.
pub fn recover(path: &Path, target: &mut dyn RecoveryTarget) -> Result<RecoveryStats> {
    let mut stats = RecoveryStats::default();
    if !path.exists() {
        return Ok(stats);
    }
    let records = LogManager::read_all_records(path)?;
    stats.records_scanned = records.len();

    // Pass 1: committed transactions and per-index flush watermarks.
    let mut committed: HashSet<TxnId> = HashSet::new();
    let mut aborted: HashSet<TxnId> = HashSet::new();
    let mut watermark: HashMap<(u32, u32), Lsn> = HashMap::new();
    for (_, rec) in &records {
        match rec {
            LogRecord::Commit { txn } => {
                committed.insert(*txn);
            }
            LogRecord::Abort { txn } => {
                aborted.insert(*txn);
            }
            LogRecord::Flush { dataset, index, durable_lsn } => {
                let w = watermark.entry((*dataset, *index)).or_insert(0);
                *w = (*w).max(*durable_lsn);
            }
            LogRecord::Update { .. } => {}
        }
    }
    stats.committed_txns = committed.len();

    // Pass 2: selective redo in log order.
    for (lsn, rec) in &records {
        if let LogRecord::Update { txn, dataset, index, is_delete, key, value } = rec {
            if !committed.contains(txn) || aborted.contains(txn) {
                stats.skipped_uncommitted += 1;
                continue;
            }
            if *lsn <= watermark.get(&(*dataset, *index)).copied().unwrap_or(0) {
                stats.skipped_flushed += 1;
                continue;
            }
            if *is_delete {
                target.replay_delete(*dataset, *index, key, value)?;
                stats.replayed_deletes += 1;
            } else {
                target.replay_insert(*dataset, *index, key, value)?;
                stats.replayed_inserts += 1;
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::Durability;
    use tempfile::TempDir;

    #[derive(Default)]
    struct MemTarget {
        state: HashMap<(u32, u32), HashMap<Vec<u8>, Vec<u8>>>,
    }

    impl RecoveryTarget for MemTarget {
        fn replay_insert(
            &mut self,
            dataset: u32,
            index: u32,
            key: &[u8],
            value: &[u8],
        ) -> Result<()> {
            self.state.entry((dataset, index)).or_default().insert(key.to_vec(), value.to_vec());
            Ok(())
        }

        fn replay_delete(
            &mut self,
            dataset: u32,
            index: u32,
            key: &[u8],
            _value: &[u8],
        ) -> Result<()> {
            self.state.entry((dataset, index)).or_default().remove(key);
            Ok(())
        }
    }

    fn update(txn: TxnId, k: u8, delete: bool) -> LogRecord {
        LogRecord::Update {
            txn,
            dataset: 1,
            index: 0,
            is_delete: delete,
            key: vec![k],
            value: vec![k, k],
        }
    }

    #[test]
    fn replays_committed_only() {
        let dir = TempDir::new().unwrap();
        let path = dir.path().join("wal.log");
        let log = LogManager::open(&path, Durability::Buffer).unwrap();
        let t1 = log.begin();
        log.append(&update(t1, 1, false)).unwrap();
        log.commit(t1).unwrap();
        let t2 = log.begin();
        log.append(&update(t2, 2, false)).unwrap();
        // t2 never commits (crash).
        log.force().unwrap();

        let mut target = MemTarget::default();
        let stats = recover(&path, &mut target).unwrap();
        assert_eq!(stats.replayed_inserts, 1);
        assert_eq!(stats.skipped_uncommitted, 1);
        assert!(target.state[&(1, 0)].contains_key(&vec![1]));
        assert!(!target.state[&(1, 0)].contains_key(&vec![2]));
    }

    #[test]
    fn flush_watermark_skips_durable_ops() {
        let dir = TempDir::new().unwrap();
        let path = dir.path().join("wal.log");
        let log = LogManager::open(&path, Durability::Buffer).unwrap();
        let t1 = log.begin();
        let lsn1 = log.append(&update(t1, 1, false)).unwrap();
        log.commit(t1).unwrap();
        log.append(&LogRecord::Flush { dataset: 1, index: 0, durable_lsn: lsn1 }).unwrap();
        let t2 = log.begin();
        log.append(&update(t2, 2, false)).unwrap();
        log.commit(t2).unwrap();
        log.force().unwrap();

        let mut target = MemTarget::default();
        let stats = recover(&path, &mut target).unwrap();
        assert_eq!(stats.skipped_flushed, 1);
        assert_eq!(stats.replayed_inserts, 1);
        assert!(!target.state[&(1, 0)].contains_key(&vec![1]));
        assert!(target.state[&(1, 0)].contains_key(&vec![2]));
    }

    #[test]
    fn deletes_replay_as_deletes() {
        let dir = TempDir::new().unwrap();
        let path = dir.path().join("wal.log");
        let log = LogManager::open(&path, Durability::Buffer).unwrap();
        let t1 = log.begin();
        log.append(&update(t1, 1, false)).unwrap();
        log.commit(t1).unwrap();
        let t2 = log.begin();
        log.append(&update(t2, 1, true)).unwrap();
        log.commit(t2).unwrap();
        log.force().unwrap();

        let mut target = MemTarget::default();
        let stats = recover(&path, &mut target).unwrap();
        assert_eq!(stats.replayed_deletes, 1);
        assert!(target.state[&(1, 0)].is_empty());
    }

    #[test]
    fn aborted_txns_are_not_replayed() {
        let dir = TempDir::new().unwrap();
        let path = dir.path().join("wal.log");
        let log = LogManager::open(&path, Durability::Buffer).unwrap();
        let t1 = log.begin();
        log.append(&update(t1, 9, false)).unwrap();
        log.append(&LogRecord::Abort { txn: t1 }).unwrap();
        log.force().unwrap();
        let mut target = MemTarget::default();
        let stats = recover(&path, &mut target).unwrap();
        assert_eq!(stats.replayed_inserts, 0);
    }

    #[test]
    fn missing_log_is_clean_start() {
        let dir = TempDir::new().unwrap();
        let mut target = MemTarget::default();
        let stats = recover(&dir.path().join("nope.log"), &mut target).unwrap();
        assert_eq!(stats, RecoveryStats::default());
    }

    #[test]
    fn multi_index_watermarks_are_independent() {
        let dir = TempDir::new().unwrap();
        let path = dir.path().join("wal.log");
        let log = LogManager::open(&path, Durability::Buffer).unwrap();
        let t = log.begin();
        let l1 = log
            .append(&LogRecord::Update {
                txn: t,
                dataset: 1,
                index: 0,
                is_delete: false,
                key: vec![1],
                value: vec![1],
            })
            .unwrap();
        log.append(&LogRecord::Update {
            txn: t,
            dataset: 1,
            index: 1,
            is_delete: false,
            key: vec![1],
            value: vec![],
        })
        .unwrap();
        log.commit(t).unwrap();
        // Only the primary (index 0) flushed.
        log.append(&LogRecord::Flush { dataset: 1, index: 0, durable_lsn: l1 }).unwrap();
        log.force().unwrap();
        let mut target = MemTarget::default();
        let stats = recover(&path, &mut target).unwrap();
        assert_eq!(stats.replayed_inserts, 1);
        assert!(target.state.contains_key(&(1, 1)));
        assert!(!target.state.contains_key(&(1, 0)));
    }
}
