//! # asterix-txn — record-level transactions (§4.4)
//!
//! AsterixDB supports record-level ACID transactions that begin and end
//! implicitly per record inserted, deleted, or searched. This crate
//! reproduces that model:
//!
//! * [`locks`] — a node-local 2PL lock table keyed by (dataset, primary
//!   key). Locks are only acquired for primary-index modifications; the
//!   secondary indexes rely on latching plus post-validation in query plans.
//! * [`wal`] — logical write-ahead logging with the no-steal/no-force
//!   policy: one log record per LSM-index update operation, forced at
//!   commit.
//! * [`recovery`] — replay of committed log records newer than each index's
//!   last flushed component, paired with the storage layer's validity-marker
//!   shadowing (invalid components are garbage-collected by the LSM open
//!   path).

pub mod locks;
pub mod recovery;
pub mod wal;

pub use locks::{LockManager, LockMode};
pub use recovery::{recover, RecoveryStats, RecoveryTarget};
pub use wal::{LogManager, LogRecord, TxnId};

use std::fmt;

/// Transaction-layer error type.
#[derive(Debug)]
pub enum TxnError {
    Io(std::io::Error),
    Corrupt(String),
    /// Lock wait exceeded the deadlock-avoidance timeout.
    LockTimeout(String),
    Storage(asterix_storage::StorageError),
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::Io(e) => write!(f, "io error: {e}"),
            TxnError::Corrupt(m) => write!(f, "corrupt log: {m}"),
            TxnError::LockTimeout(m) => write!(f, "lock timeout: {m}"),
            TxnError::Storage(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TxnError {}

impl From<std::io::Error> for TxnError {
    fn from(e: std::io::Error) -> Self {
        TxnError::Io(e)
    }
}

impl From<asterix_storage::StorageError> for TxnError {
    fn from(e: asterix_storage::StorageError) -> Self {
        TxnError::Storage(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, TxnError>;
