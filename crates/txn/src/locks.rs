//! Node-local 2PL lock manager (§4.4).
//!
//! "As transactions in AsterixDB just guarantee record-level consistency,
//! all locks are node-local and no distributed locking is required.
//! Further, actual locks are only acquired for modifications of primary
//! indexes and not for secondary indexes."
//!
//! Lock keys are `(dataset id, encoded primary key)`. Modes are shared and
//! exclusive with the usual compatibility matrix. Because record-level
//! transactions touch one record at a time, deadlocks cannot form among
//! them; a wait timeout guards against misuse by longer (multi-record)
//! callers.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// Lock modes with the standard S/X compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    Shared,
    Exclusive,
}

/// Identifies a lockable resource: a record of a dataset by primary key.
pub type ResourceId = (u32, Vec<u8>);

/// A transaction id as seen by the lock table.
pub type LockTxnId = u64;

#[derive(Default)]
struct LockState {
    /// Holders and their modes. Multiple Shared holders, or one Exclusive.
    holders: HashMap<LockTxnId, LockMode>,
    waiting: usize,
}

impl LockState {
    fn compatible(&self, txn: LockTxnId, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => {
                self.holders.iter().all(|(t, m)| *t == txn || *m == LockMode::Shared)
            }
            LockMode::Exclusive => self.holders.keys().all(|t| *t == txn),
        }
    }
}

struct Inner {
    table: HashMap<ResourceId, LockState>,
    /// Locks held per transaction, for release-all at commit.
    held: HashMap<LockTxnId, HashSet<ResourceId>>,
}

/// The lock table.
pub struct LockManager {
    inner: Mutex<Inner>,
    cv: Condvar,
    timeout: Duration,
}

impl LockManager {
    /// Create a lock manager with the given wait timeout.
    pub fn new(timeout: Duration) -> Arc<LockManager> {
        Arc::new(LockManager {
            inner: Mutex::new(Inner { table: HashMap::new(), held: HashMap::new() }),
            cv: Condvar::new(),
            timeout,
        })
    }

    /// Acquire (or upgrade) a lock; blocks until granted or timeout.
    pub fn lock(&self, txn: LockTxnId, resource: &ResourceId, mode: LockMode) -> crate::Result<()> {
        let mut inner = self.inner.lock();
        loop {
            let state = inner.table.entry(resource.clone()).or_default();
            // Re-entrant / upgrade handling.
            let already = state.holders.get(&txn).copied();
            let effective = match (already, mode) {
                (Some(LockMode::Exclusive), _) => return Ok(()),
                (Some(LockMode::Shared), LockMode::Shared) => return Ok(()),
                (Some(LockMode::Shared), LockMode::Exclusive) => LockMode::Exclusive,
                (None, m) => m,
            };
            if state.compatible(txn, effective) {
                state.holders.insert(txn, effective);
                inner.held.entry(txn).or_default().insert(resource.clone());
                return Ok(());
            }
            let state = inner.table.get_mut(resource).unwrap();
            state.waiting += 1;
            let timed_out = self.cv.wait_for(&mut inner, self.timeout).timed_out();
            if let Some(state) = inner.table.get_mut(resource) {
                state.waiting = state.waiting.saturating_sub(1);
            }
            if timed_out {
                return Err(crate::TxnError::LockTimeout(format!(
                    "txn {txn} waiting for {:?} on dataset {}",
                    mode, resource.0
                )));
            }
        }
    }

    /// Try to acquire without blocking; returns whether granted.
    pub fn try_lock(&self, txn: LockTxnId, resource: &ResourceId, mode: LockMode) -> bool {
        let mut inner = self.inner.lock();
        let state = inner.table.entry(resource.clone()).or_default();
        let already = state.holders.get(&txn).copied();
        let effective = match (already, mode) {
            (Some(LockMode::Exclusive), _) => return true,
            (Some(LockMode::Shared), LockMode::Shared) => return true,
            (Some(LockMode::Shared), LockMode::Exclusive) => LockMode::Exclusive,
            (None, m) => m,
        };
        if state.compatible(txn, effective) {
            state.holders.insert(txn, effective);
            inner.held.entry(txn).or_default().insert(resource.clone());
            true
        } else {
            false
        }
    }

    /// Release every lock held by `txn` (commit/abort).
    pub fn release_all(&self, txn: LockTxnId) {
        let mut inner = self.inner.lock();
        let Some(resources) = inner.held.remove(&txn) else { return };
        for r in resources {
            let remove = if let Some(state) = inner.table.get_mut(&r) {
                state.holders.remove(&txn);
                state.holders.is_empty() && state.waiting == 0
            } else {
                false
            };
            if remove {
                inner.table.remove(&r);
            }
        }
        self.cv.notify_all();
    }

    /// Number of resources currently locked (test/diagnostic hook).
    pub fn locked_resource_count(&self) -> usize {
        self.inner.lock().table.values().filter(|s| !s.holders.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    fn rid(ds: u32, k: u8) -> ResourceId {
        (ds, vec![k])
    }

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::new(Duration::from_millis(100));
        lm.lock(1, &rid(1, 1), LockMode::Shared).unwrap();
        lm.lock(2, &rid(1, 1), LockMode::Shared).unwrap();
        assert_eq!(lm.locked_resource_count(), 1);
        lm.release_all(1);
        lm.release_all(2);
        assert_eq!(lm.locked_resource_count(), 0);
    }

    #[test]
    fn exclusive_blocks_shared() {
        let lm = LockManager::new(Duration::from_millis(50));
        lm.lock(1, &rid(1, 1), LockMode::Exclusive).unwrap();
        assert!(lm.lock(2, &rid(1, 1), LockMode::Shared).is_err());
        lm.release_all(1);
        assert!(lm.lock(2, &rid(1, 1), LockMode::Shared).is_ok());
    }

    #[test]
    fn reentrancy_and_upgrade() {
        let lm = LockManager::new(Duration::from_millis(50));
        lm.lock(1, &rid(1, 1), LockMode::Shared).unwrap();
        lm.lock(1, &rid(1, 1), LockMode::Shared).unwrap();
        // Upgrade succeeds while sole holder.
        lm.lock(1, &rid(1, 1), LockMode::Exclusive).unwrap();
        assert!(!lm.try_lock(2, &rid(1, 1), LockMode::Shared));
        lm.release_all(1);
    }

    #[test]
    fn upgrade_blocked_by_other_shared_holder() {
        let lm = LockManager::new(Duration::from_millis(50));
        lm.lock(1, &rid(1, 1), LockMode::Shared).unwrap();
        lm.lock(2, &rid(1, 1), LockMode::Shared).unwrap();
        assert!(lm.lock(1, &rid(1, 1), LockMode::Exclusive).is_err());
        lm.release_all(2);
        assert!(lm.lock(1, &rid(1, 1), LockMode::Exclusive).is_ok());
        lm.release_all(1);
    }

    #[test]
    fn different_records_do_not_conflict() {
        let lm = LockManager::new(Duration::from_millis(50));
        lm.lock(1, &rid(1, 1), LockMode::Exclusive).unwrap();
        lm.lock(2, &rid(1, 2), LockMode::Exclusive).unwrap();
        lm.lock(3, &rid(2, 1), LockMode::Exclusive).unwrap();
        assert_eq!(lm.locked_resource_count(), 3);
        lm.release_all(1);
        lm.release_all(2);
        lm.release_all(3);
    }

    #[test]
    fn waiters_wake_on_release() {
        let lm = LockManager::new(Duration::from_secs(5));
        lm.lock(1, &rid(1, 1), LockMode::Exclusive).unwrap();
        let lm2 = Arc::clone(&lm);
        let acquired = Arc::new(AtomicUsize::new(0));
        let acquired2 = Arc::clone(&acquired);
        let h = thread::spawn(move || {
            lm2.lock(2, &rid(1, 1), LockMode::Exclusive).unwrap();
            acquired2.store(1, Ordering::SeqCst);
            lm2.release_all(2);
        });
        thread::sleep(Duration::from_millis(50));
        assert_eq!(acquired.load(Ordering::SeqCst), 0);
        lm.release_all(1);
        h.join().unwrap();
        assert_eq!(acquired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_increments_are_serialized() {
        // A bank-style check: concurrent read-modify-write under X locks.
        let lm = LockManager::new(Duration::from_secs(10));
        let counter = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let lm = Arc::clone(&lm);
            let counter = Arc::clone(&counter);
            handles.push(thread::spawn(move || {
                for i in 0..100 {
                    let txn = t * 1000 + i;
                    lm.lock(txn, &(1, vec![42]), LockMode::Exclusive).unwrap();
                    {
                        let mut c = counter.lock();
                        let v = *c;
                        thread::yield_now();
                        *c = v + 1;
                    }
                    lm.release_all(txn);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 800);
    }
}
