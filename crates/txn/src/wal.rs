//! Logical write-ahead logging (§4.4).
//!
//! "For logical logging, the no-steal/no-force buffer management policy and
//! write-ahead-log (WAL) protocols are followed, so each LSM-index-level
//! update operation generates a single log record."
//!
//! Record kinds:
//! * `Update` — one logical insert/delete against one LSM index;
//! * `Commit` — a record-level transaction committed (forces the log);
//! * `Flush`  — an index's in-memory component was flushed; carries the LSN
//!   up to which that index's updates are now durable in a component, so
//!   recovery replays only the tail ("only the committed operations from
//!   in-memory components need to be selectively replayed").

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use asterix_obs::{Counter, MetricsRegistry};
use parking_lot::Mutex;

use crate::{Result, TxnError};

/// Transaction identifier.
pub type TxnId = u64;

/// Log sequence number (1-based; 0 = "before everything").
pub type Lsn = u64;

/// A logical log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// One LSM-index update: (txn, dataset, index, delete?, key, value).
    Update { txn: TxnId, dataset: u32, index: u32, is_delete: bool, key: Vec<u8>, value: Vec<u8> },
    /// Transaction commit.
    Commit { txn: TxnId },
    /// Transaction abort (its updates must not be replayed).
    Abort { txn: TxnId },
    /// Index flush watermark: updates of (dataset, index) with LSN <=
    /// `durable_lsn` are persisted in disk components.
    Flush { dataset: u32, index: u32, durable_lsn: Lsn },
}

const T_UPDATE: u8 = 1;
const T_COMMIT: u8 = 2;
const T_ABORT: u8 = 3;
const T_FLUSH: u8 = 4;

fn crc32(data: &[u8]) -> u32 {
    // Small table-free CRC-32 (IEEE), adequate for log-record integrity.
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

impl LogRecord {
    fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        match self {
            LogRecord::Update { txn, dataset, index, is_delete, key, value } => {
                body.push(T_UPDATE);
                body.extend_from_slice(&txn.to_le_bytes());
                body.extend_from_slice(&dataset.to_le_bytes());
                body.extend_from_slice(&index.to_le_bytes());
                body.push(u8::from(*is_delete));
                body.extend_from_slice(&(key.len() as u32).to_le_bytes());
                body.extend_from_slice(key);
                body.extend_from_slice(&(value.len() as u32).to_le_bytes());
                body.extend_from_slice(value);
            }
            LogRecord::Commit { txn } => {
                body.push(T_COMMIT);
                body.extend_from_slice(&txn.to_le_bytes());
            }
            LogRecord::Abort { txn } => {
                body.push(T_ABORT);
                body.extend_from_slice(&txn.to_le_bytes());
            }
            LogRecord::Flush { dataset, index, durable_lsn } => {
                body.push(T_FLUSH);
                body.extend_from_slice(&dataset.to_le_bytes());
                body.extend_from_slice(&index.to_le_bytes());
                body.extend_from_slice(&durable_lsn.to_le_bytes());
            }
        }
        let mut out = Vec::with_capacity(body.len() + 8);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    fn decode(body: &[u8]) -> Result<LogRecord> {
        let corrupt = || TxnError::Corrupt("truncated log record body".into());
        let mut pos = 0usize;
        let u8_at = |pos: &mut usize| -> Result<u8> {
            let b = *body.get(*pos).ok_or_else(corrupt)?;
            *pos += 1;
            Ok(b)
        };
        let u32_at = |pos: &mut usize| -> Result<u32> {
            if *pos + 4 > body.len() {
                return Err(corrupt());
            }
            let v = u32::from_le_bytes(body[*pos..*pos + 4].try_into().unwrap());
            *pos += 4;
            Ok(v)
        };
        let u64_at = |pos: &mut usize| -> Result<u64> {
            if *pos + 8 > body.len() {
                return Err(corrupt());
            }
            let v = u64::from_le_bytes(body[*pos..*pos + 8].try_into().unwrap());
            *pos += 8;
            Ok(v)
        };
        let bytes_at = |pos: &mut usize| -> Result<Vec<u8>> {
            let n = u32_at(pos)? as usize;
            if *pos + n > body.len() {
                return Err(corrupt());
            }
            let out = body[*pos..*pos + n].to_vec();
            *pos += n;
            Ok(out)
        };
        Ok(match u8_at(&mut pos)? {
            T_UPDATE => LogRecord::Update {
                txn: u64_at(&mut pos)?,
                dataset: u32_at(&mut pos)?,
                index: u32_at(&mut pos)?,
                is_delete: u8_at(&mut pos)? != 0,
                key: bytes_at(&mut pos)?,
                value: bytes_at(&mut pos)?,
            },
            T_COMMIT => LogRecord::Commit { txn: u64_at(&mut pos)? },
            T_ABORT => LogRecord::Abort { txn: u64_at(&mut pos)? },
            T_FLUSH => LogRecord::Flush {
                dataset: u32_at(&mut pos)?,
                index: u32_at(&mut pos)?,
                durable_lsn: u64_at(&mut pos)?,
            },
            other => return Err(TxnError::Corrupt(format!("bad log record type {other}"))),
        })
    }
}

/// Durability level for commit forcing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// Flush the userspace buffer to the OS (journaled-equivalent for the
    /// Table 4 comparison; crash of the *process* loses nothing).
    Buffer,
    /// Additionally fsync (survives OS crash). Slower; off by default in
    /// benches to keep insert costs comparable across systems.
    Fsync,
}

/// The append-only log manager for one node.
pub struct LogManager {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
    next_lsn: AtomicU64,
    next_txn: AtomicU64,
    durability: Durability,
    appends: Counter,
    forces: Counter,
}

impl LogManager {
    /// Open (creating if needed) the log at `path`.
    pub fn open(path: &Path, durability: Durability) -> Result<LogManager> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        // Determine the next LSN by replaying the record count.
        let existing = if path.exists() { Self::read_all_records(path)?.len() } else { 0 };
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(LogManager {
            path: path.to_path_buf(),
            writer: Mutex::new(BufWriter::new(file)),
            next_lsn: AtomicU64::new(existing as u64 + 1),
            next_txn: AtomicU64::new(1),
            durability,
            appends: Counter::new(),
            forces: Counter::new(),
        })
    }

    /// Log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Allocate a fresh transaction id.
    pub fn begin(&self) -> TxnId {
        self.next_txn.fetch_add(1, Ordering::Relaxed)
    }

    /// Append a record, returning its LSN. WAL rule: callers append the
    /// Update record *before* applying the operation to the index.
    pub fn append(&self, rec: &LogRecord) -> Result<Lsn> {
        let lsn = self.next_lsn.fetch_add(1, Ordering::SeqCst);
        let bytes = rec.encode();
        let mut w = self.writer.lock();
        w.write_all(&bytes)?;
        self.appends.inc();
        Ok(lsn)
    }

    /// Append a commit record and force the log (no-steal/no-force).
    pub fn commit(&self, txn: TxnId) -> Result<Lsn> {
        let lsn = self.append(&LogRecord::Commit { txn })?;
        self.force()?;
        Ok(lsn)
    }

    /// Force buffered records to the OS (and disk under `Fsync`).
    pub fn force(&self) -> Result<()> {
        let mut w = self.writer.lock();
        w.flush()?;
        if self.durability == Durability::Fsync {
            w.get_ref().sync_data()?;
        }
        self.forces.inc();
        Ok(())
    }

    /// Records appended since open (not persisted across reopen).
    pub fn append_count(&self) -> u64 {
        self.appends.get()
    }

    /// Log forces (buffer flushes / fsync-equivalents) since open.
    pub fn force_count(&self) -> u64 {
        self.forces.get()
    }

    /// Register the append/force counters under `{prefix}.{appends,forces}`.
    pub fn register_into(&self, reg: &MetricsRegistry, prefix: &str) {
        reg.register_counter(&format!("{prefix}.appends"), &self.appends);
        reg.register_counter(&format!("{prefix}.forces"), &self.forces);
    }

    /// Read every intact record (with LSNs) from a log file; a torn tail is
    /// tolerated (truncated/corrupt trailing records are dropped).
    pub fn read_all_records(path: &Path) -> Result<Vec<(Lsn, LogRecord)>> {
        let mut buf = Vec::new();
        File::open(path)?.read_to_end(&mut buf)?;
        let mut out = Vec::new();
        let mut pos = 0usize;
        let mut lsn: Lsn = 1;
        while pos + 8 <= buf.len() {
            let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
            if pos + 8 + len > buf.len() {
                break; // torn tail
            }
            let body = &buf[pos + 8..pos + 8 + len];
            if crc32(body) != crc {
                break; // corrupt tail
            }
            match LogRecord::decode(body) {
                Ok(rec) => out.push((lsn, rec)),
                Err(_) => break,
            }
            lsn += 1;
            pos += 8 + len;
        }
        Ok(out)
    }

    /// Truncate the log (after a checkpoint — all indexes flushed).
    pub fn truncate(&self) -> Result<()> {
        let mut w = self.writer.lock();
        w.flush()?;
        let file = OpenOptions::new().write(true).open(&self.path)?;
        file.set_len(0)?;
        file.sync_all()?;
        *w = BufWriter::new(OpenOptions::new().append(true).open(&self.path)?);
        self.next_lsn.store(1, Ordering::SeqCst);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::TempDir;

    fn upd(txn: TxnId, k: u8) -> LogRecord {
        LogRecord::Update {
            txn,
            dataset: 1,
            index: 0,
            is_delete: false,
            key: vec![k],
            value: vec![k, k],
        }
    }

    #[test]
    fn append_and_read_back() {
        let dir = TempDir::new().unwrap();
        let path = dir.path().join("wal.log");
        let log = LogManager::open(&path, Durability::Buffer).unwrap();
        let t = log.begin();
        log.append(&upd(t, 1)).unwrap();
        log.append(&upd(t, 2)).unwrap();
        log.commit(t).unwrap();
        let recs = LogManager::read_all_records(&path).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].0, 1);
        assert_eq!(recs[2].1, LogRecord::Commit { txn: t });
    }

    #[test]
    fn wal_counters_track_appends_and_forces() {
        let dir = TempDir::new().unwrap();
        let path = dir.path().join("wal.log");
        let log = LogManager::open(&path, Durability::Buffer).unwrap();
        let t = log.begin();
        log.append(&upd(t, 1)).unwrap();
        log.append(&upd(t, 2)).unwrap();
        log.commit(t).unwrap(); // one append + one force
        assert_eq!(log.append_count(), 3);
        assert_eq!(log.force_count(), 1);

        let reg = MetricsRegistry::new();
        log.register_into(&reg, "wal.node0");
        log.force().unwrap();
        match reg.get("wal.node0.forces") {
            Some(asterix_obs::Metric::Counter(c)) => assert_eq!(c.get(), 2),
            other => panic!("wrong metric: {other:?}"),
        }
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let dir = TempDir::new().unwrap();
        let path = dir.path().join("wal.log");
        {
            let log = LogManager::open(&path, Durability::Buffer).unwrap();
            log.append(&upd(1, 1)).unwrap();
            log.commit(1).unwrap();
        }
        // Append garbage simulating a torn write.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[42u8; 7]).unwrap();
        }
        let recs = LogManager::read_all_records(&path).unwrap();
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn corrupt_record_stops_replay() {
        let dir = TempDir::new().unwrap();
        let path = dir.path().join("wal.log");
        {
            let log = LogManager::open(&path, Durability::Buffer).unwrap();
            log.append(&upd(1, 1)).unwrap();
            log.append(&upd(1, 2)).unwrap();
            log.force().unwrap();
        }
        // Flip a byte in the second record's body.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let recs = LogManager::read_all_records(&path).unwrap();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn reopen_continues_lsns() {
        let dir = TempDir::new().unwrap();
        let path = dir.path().join("wal.log");
        {
            let log = LogManager::open(&path, Durability::Buffer).unwrap();
            log.append(&upd(1, 1)).unwrap();
            log.force().unwrap();
        }
        let log = LogManager::open(&path, Durability::Buffer).unwrap();
        let lsn = log.append(&LogRecord::Commit { txn: 1 }).unwrap();
        assert_eq!(lsn, 2);
    }

    #[test]
    fn flush_records_roundtrip() {
        let dir = TempDir::new().unwrap();
        let path = dir.path().join("wal.log");
        let log = LogManager::open(&path, Durability::Buffer).unwrap();
        log.append(&LogRecord::Flush { dataset: 3, index: 1, durable_lsn: 17 }).unwrap();
        log.force().unwrap();
        let recs = LogManager::read_all_records(&path).unwrap();
        assert_eq!(recs[0].1, LogRecord::Flush { dataset: 3, index: 1, durable_lsn: 17 });
    }

    #[test]
    fn truncate_resets() {
        let dir = TempDir::new().unwrap();
        let path = dir.path().join("wal.log");
        let log = LogManager::open(&path, Durability::Buffer).unwrap();
        log.append(&upd(1, 1)).unwrap();
        log.commit(1).unwrap();
        log.truncate().unwrap();
        assert!(LogManager::read_all_records(&path).unwrap().is_empty());
        log.append(&upd(2, 2)).unwrap();
        log.force().unwrap();
        assert_eq!(LogManager::read_all_records(&path).unwrap().len(), 1);
    }
}
