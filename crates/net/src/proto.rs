//! The wire protocol: length-prefixed binary frames.
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! +----------------+-----------+------------------------+
//! | u32 BE length  | u8 opcode | payload (length bytes) |
//! +----------------+-----------+------------------------+
//! ```
//!
//! The length counts the payload only (not itself, not the opcode), so an
//! empty-payload frame is 5 bytes on the wire. Multi-byte integers inside
//! payloads are big-endian; strings are UTF-8; data values are ADM
//! self-describing bytes ([`asterix_adm::serde::encode`]) — the same
//! encoding the storage and exchange layers use, which is what makes the
//! bit-identity guarantee of the loopback tests meaningful.
//!
//! The decoder enforces [`MAX_FRAME_BYTES_DEFAULT`]-style limits
//! *before* allocating: a length prefix larger than the configured
//! `max_frame_bytes` is a [`ErrorCode::FrameTooLarge`] protocol error, not
//! an allocation. Truncated or garbage frames surface as
//! [`FrameError::Protocol`] / clean EOF, never a hang or an OOM.

use std::io::{Read, Write};

use asterix_adm::Value;

/// Protocol revision carried in the `Hello` payload. Bump on any frame- or
/// payload-layout change.
pub const PROTOCOL_VERSION: u8 = 1;

/// Default cap on a single frame's payload (8 MiB).
pub const MAX_FRAME_BYTES_DEFAULT: usize = 8 * 1024 * 1024;

/// Request opcodes (client → server).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Request {
    /// Version + optional shared-secret handshake; must be the first frame
    /// on every connection.
    Hello = 0x01,
    /// Run a batch of AQL statements in this connection's session.
    Execute = 0x02,
    /// Normalize the (single) query and store it server-side; returns a
    /// statement handle.
    Prepare = 0x03,
    /// Execute a previously prepared handle with a fresh parameter vector.
    ExecutePrepared = 0x04,
    /// Cooperatively cancel a running job by id (from any connection).
    Cancel = 0x05,
    /// Fetch the server's metrics registry snapshot as JSON.
    Metrics = 0x06,
    /// Orderly goodbye; the server acknowledges then closes.
    Close = 0x07,
}

impl Request {
    pub fn from_u8(b: u8) -> Option<Request> {
        Some(match b {
            0x01 => Request::Hello,
            0x02 => Request::Execute,
            0x03 => Request::Prepare,
            0x04 => Request::ExecutePrepared,
            0x05 => Request::Cancel,
            0x06 => Request::Metrics,
            0x07 => Request::Close,
            _ => return None,
        })
    }
}

/// Response opcodes (server → client).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Response {
    /// Success with an opcode-specific payload (banner JSON, metrics JSON,
    /// cancel outcome byte, empty for `Close`).
    Ok = 0x80,
    /// Statement results (see [`encode_results`] / [`decode_results`]).
    Results = 0x81,
    /// A prepared-statement handle: u64 id + u32 param count.
    Prepared = 0x82,
    /// Typed error: u16 [`ErrorCode`] + UTF-8 message.
    Error = 0xEE,
}

impl Response {
    pub fn from_u8(b: u8) -> Option<Response> {
        Some(match b {
            0x80 => Response::Ok,
            0x81 => Response::Results,
            0x82 => Response::Prepared,
            0xEE => Response::Error,
            _ => return None,
        })
    }
}

/// Typed error codes carried in [`Response::Error`] frames, so clients can
/// distinguish "try later" (admission) from "fix your query" (parse) from
/// "goodbye" (shutdown) without string matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// Bad or missing shared secret, or no `Hello` first.
    Auth = 1,
    /// Malformed frame or payload.
    Protocol = 2,
    /// Length prefix exceeds the server's `max_frame_bytes`.
    FrameTooLarge = 3,
    /// The server is at its connection cap; rejected at the door.
    ConnectionLimit = 4,
    /// The server is draining for shutdown.
    ServerShutdown = 5,
    /// `ExecutePrepared` with a handle this connection never prepared.
    UnknownHandle = 6,
    /// `Prepare` beyond the per-connection prepared-statement cap.
    PreparedLimit = 7,
    Parse = 10,
    Translate = 11,
    Catalog = 12,
    Execution = 13,
    Cancelled = 14,
    /// Admission queue full ([`asterixdb::AdmissionError::Rejected`]).
    AdmissionRejected = 15,
    /// Admission wait timed out.
    QueueTimeout = 16,
    /// Anything else (storage, txn, io, ...).
    Internal = 99,
}

impl ErrorCode {
    pub fn from_u16(v: u16) -> ErrorCode {
        match v {
            1 => ErrorCode::Auth,
            2 => ErrorCode::Protocol,
            3 => ErrorCode::FrameTooLarge,
            4 => ErrorCode::ConnectionLimit,
            5 => ErrorCode::ServerShutdown,
            6 => ErrorCode::UnknownHandle,
            7 => ErrorCode::PreparedLimit,
            10 => ErrorCode::Parse,
            11 => ErrorCode::Translate,
            12 => ErrorCode::Catalog,
            13 => ErrorCode::Execution,
            14 => ErrorCode::Cancelled,
            15 => ErrorCode::AdmissionRejected,
            16 => ErrorCode::QueueTimeout,
            _ => ErrorCode::Internal,
        }
    }
}

/// Map an instance error onto the wire's typed codes.
pub fn error_code_for(e: &asterixdb::AsterixError) -> ErrorCode {
    use asterixdb::AsterixError as E;
    match e {
        E::Parse(_) => ErrorCode::Parse,
        E::Translate(_) => ErrorCode::Translate,
        E::Catalog(_) => ErrorCode::Catalog,
        E::Execution(_) => ErrorCode::Execution,
        E::Cancelled => ErrorCode::Cancelled,
        E::Admission(a) => match a {
            asterixdb::AdmissionError::Rejected { .. } => ErrorCode::AdmissionRejected,
            asterixdb::AdmissionError::QueueTimeout { .. } => ErrorCode::QueueTimeout,
            asterixdb::AdmissionError::Cancelled => ErrorCode::Cancelled,
        },
        _ => ErrorCode::Internal,
    }
}

/// Frame-layer failures (distinct from typed server errors).
#[derive(Debug)]
pub enum FrameError {
    Io(std::io::Error),
    /// Length prefix over the configured cap; carries the offending length.
    TooLarge(usize),
    /// Structurally invalid frame or payload.
    Protocol(String),
    /// Orderly remote close between frames.
    Eof,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "io error: {e}"),
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
            FrameError::Protocol(m) => write!(f, "protocol error: {m}"),
            FrameError::Eof => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Write one frame: length prefix, opcode, payload.
pub fn write_frame(w: &mut impl Write, opcode: u8, payload: &[u8]) -> std::io::Result<()> {
    let len = payload.len() as u32;
    let mut head = [0u8; 5];
    head[..4].copy_from_slice(&len.to_be_bytes());
    head[4] = opcode;
    w.write_all(&head)?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame, enforcing `max_frame_bytes` on the length prefix before
/// any payload allocation. Returns `(opcode, payload)`.
///
/// A clean EOF *before any header byte* is [`FrameError::Eof`]; EOF
/// mid-frame is a truncation ([`FrameError::Protocol`]). For sockets with
/// a read timeout, use a persistent [`FrameReader`] instead: this one-shot
/// form forgets partial bytes on a timeout.
pub fn read_frame(r: &mut impl Read, max_frame_bytes: usize) -> Result<(u8, Vec<u8>), FrameError> {
    FrameReader::new().read(r, max_frame_bytes)
}

/// Incremental frame decoder that survives read timeouts.
///
/// Partial header and payload bytes are kept across
/// `WouldBlock`/`TimedOut` errors, so a caller that uses a socket read
/// timeout as an idle tick can resume the *same* frame on the next call —
/// a peer whose bytes trickle in with gaps longer than the timeout (normal
/// on WAN or congested links) is never desynced or disconnected.
pub struct FrameReader {
    head: [u8; 5],
    head_filled: usize,
    payload: Option<Vec<u8>>,
    payload_filled: usize,
}

impl FrameReader {
    pub fn new() -> FrameReader {
        FrameReader { head: [0u8; 5], head_filled: 0, payload: None, payload_filled: 0 }
    }

    /// Whether any bytes of the current frame have been consumed. A read
    /// timeout with this false is an idle tick between frames; with it
    /// true, the peer is mid-frame and the bytes so far are retained.
    pub fn mid_frame(&self) -> bool {
        self.head_filled > 0
    }

    /// Try to complete one frame, enforcing `max_frame_bytes` on the
    /// length prefix before any payload allocation.
    ///
    /// On `WouldBlock`/`TimedOut` (or any other error) the error is
    /// returned but progress is kept — call again with the same reader to
    /// resume. A completed frame resets the reader for the next one.
    pub fn read(
        &mut self,
        r: &mut impl Read,
        max_frame_bytes: usize,
    ) -> Result<(u8, Vec<u8>), FrameError> {
        while self.head_filled < self.head.len() {
            match r.read(&mut self.head[self.head_filled..]) {
                Ok(0) => {
                    return if self.head_filled == 0 {
                        Err(FrameError::Eof)
                    } else {
                        Err(FrameError::Protocol("truncated frame header".into()))
                    };
                }
                Ok(n) => self.head_filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
        if self.payload.is_none() {
            let len = u32::from_be_bytes([self.head[0], self.head[1], self.head[2], self.head[3]])
                as usize;
            if len > max_frame_bytes {
                return Err(FrameError::TooLarge(len));
            }
            self.payload = Some(vec![0u8; len]);
            self.payload_filled = 0;
        }
        let payload = self.payload.as_mut().expect("payload allocated above");
        while self.payload_filled < payload.len() {
            match r.read(&mut payload[self.payload_filled..]) {
                Ok(0) => return Err(FrameError::Protocol("truncated frame payload".into())),
                Ok(n) => self.payload_filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
        let opcode = self.head[4];
        let payload = self.payload.take().expect("payload present");
        self.head_filled = 0;
        self.payload_filled = 0;
        Ok((opcode, payload))
    }
}

impl Default for FrameReader {
    fn default() -> Self {
        FrameReader::new()
    }
}

// ---------------------------------------------------------------------------
// Payload building blocks
// ---------------------------------------------------------------------------

/// Cursor over a payload with bounds-checked big-endian reads.
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    pub fn new(buf: &'a [u8]) -> PayloadReader<'a> {
        PayloadReader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.remaining() < n {
            return Err(FrameError::Protocol(format!(
                "payload truncated: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, FrameError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    pub fn u32(&mut self) -> Result<u32, FrameError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self) -> Result<u64, FrameError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_be_bytes(a))
    }

    /// A u32-length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], FrameError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// A u32-length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, FrameError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec())
            .map_err(|_| FrameError::Protocol("invalid utf-8 in payload".into()))
    }

    /// Everything not yet consumed, as UTF-8.
    pub fn rest_string(&mut self) -> Result<String, FrameError> {
        let b = self.take(self.remaining())?;
        String::from_utf8(b.to_vec())
            .map_err(|_| FrameError::Protocol("invalid utf-8 in payload".into()))
    }
}

/// Append helpers mirroring [`PayloadReader`].
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    pub fn new() -> PayloadWriter {
        PayloadWriter { buf: Vec::new() }
    }

    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
        self
    }

    pub fn string(&mut self, s: &str) -> &mut Self {
        self.bytes(s.as_bytes())
    }

    pub fn raw(&mut self, b: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(b);
        self
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

impl Default for PayloadWriter {
    fn default() -> Self {
        PayloadWriter::new()
    }
}

// ---------------------------------------------------------------------------
// Statement-result encoding (Execute / ExecutePrepared responses)
// ---------------------------------------------------------------------------

/// A statement outcome as it travels the wire; mirrors
/// [`asterixdb::StatementResult`].
#[derive(Debug, Clone, PartialEq)]
pub enum WireResult {
    /// DDL / session statement completed.
    Ok,
    /// DML completed, affecting this many records.
    Count(u64),
    /// Query rows (ADM values).
    Rows(Vec<Value>),
}

const TAG_OK: u8 = 0;
const TAG_COUNT: u8 = 1;
const TAG_ROWS: u8 = 2;

/// Encode a batch of statement results:
/// `u32 n, then per result: u8 tag, Count→u64, Rows→u32 nrows + per-row
/// u32 len + ADM bytes`.
pub fn encode_results(results: &[asterixdb::StatementResult]) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.u32(results.len() as u32);
    for r in results {
        match r {
            asterixdb::StatementResult::Ok => {
                w.u8(TAG_OK);
            }
            asterixdb::StatementResult::Count(n) => {
                w.u8(TAG_COUNT).u64(*n as u64);
            }
            asterixdb::StatementResult::Rows(rows) => {
                w.u8(TAG_ROWS).u32(rows.len() as u32);
                for row in rows {
                    w.bytes(&asterix_adm::serde::encode(row));
                }
            }
        }
    }
    w.into_bytes()
}

/// Decode what [`encode_results`] produced.
pub fn decode_results(payload: &[u8]) -> Result<Vec<WireResult>, FrameError> {
    let mut r = PayloadReader::new(payload);
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        match r.u8()? {
            TAG_OK => out.push(WireResult::Ok),
            TAG_COUNT => out.push(WireResult::Count(r.u64()?)),
            TAG_ROWS => {
                let nrows = r.u32()? as usize;
                let mut rows = Vec::with_capacity(nrows.min(65536));
                for _ in 0..nrows {
                    let b = r.bytes()?;
                    let v = asterix_adm::serde::decode(b)
                        .map_err(|e| FrameError::Protocol(format!("bad ADM row encoding: {e}")))?;
                    rows.push(v);
                }
                out.push(WireResult::Rows(rows));
            }
            t => return Err(FrameError::Protocol(format!("unknown result tag {t}"))),
        }
    }
    if r.remaining() != 0 {
        return Err(FrameError::Protocol(format!(
            "{} trailing bytes after results",
            r.remaining()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, Request::Execute as u8, b"for $x in [1] return $x").unwrap();
        let (op, payload) = read_frame(&mut buf.as_slice(), MAX_FRAME_BYTES_DEFAULT).unwrap();
        assert_eq!(op, Request::Execute as u8);
        assert_eq!(payload, b"for $x in [1] return $x");
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        // 4 GiB-1 length prefix; must fail fast, not allocate.
        let buf = [0xFF, 0xFF, 0xFF, 0xFF, 0x02];
        match read_frame(&mut buf.as_slice(), 1024) {
            Err(FrameError::TooLarge(n)) => assert_eq!(n, u32::MAX as usize),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncated_header_and_payload_are_protocol_errors() {
        let buf = [0x00, 0x00];
        assert!(matches!(read_frame(&mut buf.as_slice(), 1024), Err(FrameError::Protocol(_))));
        // Header promises 10 bytes of payload, delivers 3.
        let buf = [0x00, 0x00, 0x00, 0x0A, 0x02, 1, 2, 3];
        assert!(matches!(read_frame(&mut buf.as_slice(), 1024), Err(FrameError::Protocol(_))));
    }

    /// Yields one byte per call, with a `WouldBlock` "timeout" before each
    /// — the worst-case trickle a read-timeout socket can produce.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
        ready: bool,
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "tick"));
            }
            self.ready = false;
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn frame_reader_resumes_across_read_timeouts() {
        // Two back-to-back frames, delivered one byte at a time with a
        // timeout between every byte; a non-resumable reader would discard
        // partial header bytes on each timeout and desync permanently.
        let mut wire = Vec::new();
        write_frame(&mut wire, Request::Execute as u8, b"abc").unwrap();
        write_frame(&mut wire, Request::Close as u8, b"").unwrap();
        let total = wire.len();
        let mut src = Trickle { data: wire, pos: 0, ready: false };
        let mut reader = FrameReader::new();
        let mut frames = Vec::new();
        let mut ticks = 0usize;
        while frames.len() < 2 {
            match reader.read(&mut src, 1024) {
                Ok(frame) => {
                    assert!(!reader.mid_frame(), "reader must reset after a full frame");
                    frames.push(frame);
                }
                Err(FrameError::Io(e)) if e.kind() == std::io::ErrorKind::WouldBlock => ticks += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(ticks, total, "every byte was preceded by a timeout tick");
        assert_eq!(frames[0].0, Request::Execute as u8);
        assert_eq!(frames[0].1, b"abc");
        assert_eq!(frames[1].0, Request::Close as u8);
        assert_eq!(frames[1].1, b"");
    }

    #[test]
    fn frame_reader_mid_frame_tracks_consumed_bytes() {
        let mut wire = Vec::new();
        write_frame(&mut wire, Request::Execute as u8, b"xy").unwrap();
        let mut src = Trickle { data: wire, pos: 0, ready: false };
        let mut reader = FrameReader::new();
        // First timeout: nothing consumed yet — an idle tick.
        assert!(matches!(reader.read(&mut src, 1024), Err(FrameError::Io(_))));
        assert!(!reader.mid_frame());
        // Second call consumes one header byte before its timeout.
        assert!(matches!(reader.read(&mut src, 1024), Err(FrameError::Io(_))));
        assert!(reader.mid_frame());
    }

    #[test]
    fn clean_eof_between_frames() {
        let buf: [u8; 0] = [];
        assert!(matches!(read_frame(&mut buf.as_slice(), 1024), Err(FrameError::Eof)));
    }

    #[test]
    fn results_roundtrip_bit_identical() {
        let rows = vec![
            Value::Int64(42),
            Value::string("hello"),
            Value::ordered_list(vec![Value::Int64(1), Value::Int64(2)]),
        ];
        let results = vec![
            asterixdb::StatementResult::Ok,
            asterixdb::StatementResult::Count(7),
            asterixdb::StatementResult::Rows(rows.clone()),
        ];
        let decoded = decode_results(&encode_results(&results)).unwrap();
        assert_eq!(decoded.len(), 3);
        assert_eq!(decoded[0], WireResult::Ok);
        assert_eq!(decoded[1], WireResult::Count(7));
        let WireResult::Rows(got) = &decoded[2] else { panic!("expected rows") };
        for (a, b) in got.iter().zip(rows.iter()) {
            assert_eq!(asterix_adm::serde::encode(a), asterix_adm::serde::encode(b));
        }
    }

    #[test]
    fn error_code_u16_roundtrip() {
        for c in [
            ErrorCode::Auth,
            ErrorCode::Protocol,
            ErrorCode::FrameTooLarge,
            ErrorCode::ConnectionLimit,
            ErrorCode::ServerShutdown,
            ErrorCode::UnknownHandle,
            ErrorCode::PreparedLimit,
            ErrorCode::Parse,
            ErrorCode::Translate,
            ErrorCode::Catalog,
            ErrorCode::Execution,
            ErrorCode::Cancelled,
            ErrorCode::AdmissionRejected,
            ErrorCode::QueueTimeout,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_u16(c as u16), c);
        }
    }
}
