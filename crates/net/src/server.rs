//! The wire-protocol server: one listener, one worker thread per
//! connection, one [`asterixdb::Session`] per connection.
//!
//! Composition with the rest of the system:
//!
//! - **Sessions** — every accepted connection calls
//!   [`asterixdb::Instance::new_session`], so `use dataverse` / `set`
//!   statements are connection-local and the instance's `sessions.active`
//!   gauge counts live connections' sessions (leaks show up as a non-zero
//!   gauge after disconnect).
//! - **Admission** — queries go through the instance's normal
//!   `asterix-rm` path; queue-full and queue-timeout surface as typed
//!   [`ErrorCode::AdmissionRejected`] / [`ErrorCode::QueueTimeout`] wire
//!   errors. The connection cap is the *door in front of the door*: beyond
//!   `max_connections`, the accept loop answers with
//!   [`ErrorCode::ConnectionLimit`] and closes without spawning a worker.
//! - **Shutdown** — [`Server::shutdown`] flips the drain flag; new
//!   connects get [`ErrorCode::ServerShutdown`], idle workers notice within
//!   their read-timeout tick and hang up, in-flight statements are given
//!   `shutdown_grace` to finish, and whatever is still running after the
//!   grace is cooperatively cancelled through the workload manager's
//!   `CancellationToken`s (the same machinery `Instance::cancel` uses), so
//!   spilling operators unwind and leave no temp files.

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use asterix_obs::{Counter, Gauge};
use asterixdb::{Instance, PreparedQuery, Session};

use crate::proto::{
    encode_results, error_code_for, write_frame, ErrorCode, FrameError, FrameReader, PayloadReader,
    PayloadWriter, Request, Response, MAX_FRAME_BYTES_DEFAULT, PROTOCOL_VERSION,
};

/// Knobs for [`Server::start`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; `127.0.0.1:0` picks an ephemeral port (the bound
    /// address is [`Server::local_addr`]).
    pub addr: String,
    /// Connection cap; beyond it, connects are answered with a typed
    /// [`ErrorCode::ConnectionLimit`] error and closed.
    pub max_connections: usize,
    /// Per-frame payload cap enforced before allocation.
    pub max_frame_bytes: usize,
    /// Shared secret required in `Hello`; `None` accepts any handshake.
    pub secret: Option<String>,
    /// How long [`Server::shutdown`] waits for in-flight work before
    /// cancelling it.
    pub shutdown_grace: Duration,
    /// Per-syscall write timeout on worker sockets, so a client that
    /// stops reading (full TCP window) cannot wedge a worker — and thereby
    /// [`Server::shutdown`] — in `write_all` forever.
    pub write_timeout: Duration,
    /// Cap on prepared-statement handles per connection; beyond it,
    /// `Prepare` is answered with a typed [`ErrorCode::PreparedLimit`]
    /// error (each handle pins a compiled plan in server memory).
    pub max_prepared_per_conn: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            max_connections: 64,
            max_frame_bytes: MAX_FRAME_BYTES_DEFAULT,
            secret: None,
            shutdown_grace: Duration::from_secs(5),
            write_timeout: Duration::from_secs(10),
            max_prepared_per_conn: 256,
        }
    }
}

/// `net.*` counters, registered into the instance's metrics registry so
/// they ride the same JSON/Prometheus snapshots (and the bench `metrics`
/// block) as everything else.
#[derive(Clone, Default)]
pub struct NetStats {
    /// Connections ever accepted (including rejected-at-door).
    pub connections_total: Counter,
    /// Currently live worker connections.
    pub connections_active: Gauge,
    /// Connects turned away (cap or shutdown).
    pub connections_rejected: Counter,
    /// Request frames processed.
    pub requests: Counter,
    /// Payload bytes received / sent (excluding 5-byte frame heads).
    pub bytes_in: Counter,
    pub bytes_out: Counter,
    /// Error frames sent (auth, protocol, execution, ...).
    pub wire_errors: Counter,
}

impl NetStats {
    fn register(&self, m: &asterix_obs::MetricsRegistry) {
        m.register_counter("net.connections.total", &self.connections_total);
        m.register_gauge("net.connections.active", &self.connections_active);
        m.register_counter("net.connections.rejected", &self.connections_rejected);
        m.register_counter("net.requests", &self.requests);
        m.register_counter("net.bytes_in", &self.bytes_in);
        m.register_counter("net.bytes_out", &self.bytes_out);
        m.register_counter("net.wire_errors", &self.wire_errors);
    }
}

struct ServerShared {
    instance: Arc<Instance>,
    cfg: ServerConfig,
    stats: NetStats,
    /// Drain mode: reject new connects (typed), close idle connections,
    /// finish in-flight requests.
    draining: AtomicBool,
    /// Accept loop hard stop (set after the drain completes).
    stopped: AtomicBool,
    /// Live worker connections (drain completion test).
    active: AtomicUsize,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// A running wire-protocol server bound to a local address.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
}

/// Worker read timeout: the latency bound on noticing the drain flag.
const TICK: Duration = Duration::from_millis(100);

impl Server {
    /// Bind and start serving `instance` in background threads.
    pub fn start(instance: Arc<Instance>, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let stats = NetStats::default();
        stats.register(instance.metrics());
        let shared = Arc::new(ServerShared {
            instance,
            cfg,
            stats,
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            workers: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("asterix-net-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Server { local_addr, shared, accept_thread: Mutex::new(Some(accept_thread)) })
    }

    /// The bound address (use with `Client::connect` when the config asked
    /// for port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live worker connections.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// The server's `net.*` stats handles.
    pub fn stats(&self) -> &NetStats {
        &self.shared.stats
    }

    /// Graceful shutdown: reject new connects with a typed
    /// [`ErrorCode::ServerShutdown`] error, let in-flight statements finish
    /// within the grace, cancel whatever is still running through the
    /// workload manager, and join every thread. Idempotent.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        // Drain: workers exit after their current request (or on their
        // next idle tick).
        let deadline = Instant::now() + self.shared.cfg.shutdown_grace;
        while self.shared.active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        // Grace expired: unwind the stragglers cooperatively. Cancelled
        // queries release their admission slots and memory grants and
        // remove spill files on the way out. A worker can also be wedged
        // outside any job — blocked in `write_all` to a client that
        // stopped reading — which cancellation cannot reach; the socket
        // write timeout bounds that, so this second wait is bounded too,
        // and anything still alive past it is abandoned rather than
        // hanging shutdown (which also runs from Drop) forever.
        if self.shared.active.load(Ordering::SeqCst) > 0 {
            for job in self.shared.instance.list_jobs() {
                self.shared.instance.cancel(job.id);
            }
            let abandon = Instant::now() + self.shared.cfg.write_timeout + Duration::from_secs(1);
            while self.shared.active.load(Ordering::SeqCst) > 0 && Instant::now() < abandon {
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        // Stop the accept loop: flip the hard-stop flag and poke the
        // listener with a throwaway connect so `accept` returns.
        self.shared.stopped.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.lock().unwrap().take() {
            let _ = t.join();
        }
        // Join only workers that are actually done; dropping the handle of
        // a straggler detaches it (it exits on its own once its socket
        // write times out).
        let workers = std::mem::take(&mut *self.shared.workers.lock().unwrap());
        for w in workers {
            if w.is_finished() {
                let _ = w.join();
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    loop {
        let Ok((stream, _peer)) = listener.accept() else {
            if shared.stopped.load(Ordering::SeqCst) {
                return;
            }
            // A persistent accept failure (e.g. EMFILE when the process is
            // out of fds) must not busy-spin a core until fds free up.
            std::thread::sleep(Duration::from_millis(50));
            continue;
        };
        if shared.stopped.load(Ordering::SeqCst) {
            return;
        }
        shared.stats.connections_total.inc();
        if shared.draining.load(Ordering::SeqCst) {
            reject(&shared, stream, ErrorCode::ServerShutdown, "server shutting down");
            continue;
        }
        // Reject-at-door beyond the connection cap: reserve the slot
        // before spawning so a connect burst cannot overshoot.
        let prev = shared.active.fetch_add(1, Ordering::SeqCst);
        if prev >= shared.cfg.max_connections {
            shared.active.fetch_sub(1, Ordering::SeqCst);
            reject(
                &shared,
                stream,
                ErrorCode::ConnectionLimit,
                &format!("connection limit ({}) reached", shared.cfg.max_connections),
            );
            continue;
        }
        shared.stats.connections_active.add(1);
        let worker_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new().name("asterix-net-conn".into()).spawn(move || {
            let conn_shared = Arc::clone(&worker_shared);
            serve_connection(stream, conn_shared);
            worker_shared.stats.connections_active.sub(1);
            worker_shared.active.fetch_sub(1, Ordering::SeqCst);
        });
        match handle {
            Ok(h) => {
                // Reap long-finished connections' handles as we go, so the
                // Vec tracks live connections rather than growing for the
                // server's whole lifetime.
                let mut workers = shared.workers.lock().unwrap();
                workers.retain(|w| !w.is_finished());
                workers.push(h);
            }
            Err(_) => {
                shared.stats.connections_active.sub(1);
                shared.active.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

/// Answer a doomed connect with one typed error frame and close.
fn reject(shared: &ServerShared, mut stream: TcpStream, code: ErrorCode, msg: &str) {
    shared.stats.connections_rejected.inc();
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    if send_error(&mut stream, &shared.stats, code, msg).is_err() {
        return;
    }
    // Half-close, then consume whatever the client already sent (its
    // `Hello` is typically in flight). Dropping the socket with unread
    // bytes would RST the connection and destroy the error frame before
    // the client reads it. Bounded: small buffer, short timeout, byte cap.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut sink = [0u8; 4096];
    let mut drained = 0usize;
    while drained < 64 * 1024 {
        match std::io::Read::read(&mut stream, &mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

fn send_error(
    stream: &mut TcpStream,
    stats: &NetStats,
    code: ErrorCode,
    msg: &str,
) -> std::io::Result<()> {
    stats.wire_errors.inc();
    let mut w = PayloadWriter::new();
    w.u16(code as u16).raw(msg.as_bytes());
    let payload = w.into_bytes();
    stats.bytes_out.add(payload.len() as u64);
    write_frame(stream, Response::Error as u8, &payload)
}

fn send_ok(
    stream: &mut TcpStream,
    stats: &NetStats,
    op: Response,
    payload: &[u8],
) -> std::io::Result<()> {
    stats.bytes_out.add(payload.len() as u64);
    write_frame(stream, op as u8, payload)
}

/// Per-connection state: the session plus this connection's prepared-
/// statement handles. Handles are connection-scoped (dropped with it), so
/// one client cannot execute another's statement ids.
struct Conn {
    sess: Session,
    prepared: HashMap<u64, PreparedQuery>,
    next_handle: AtomicU64,
}

fn serve_connection(mut stream: TcpStream, shared: Arc<ServerShared>) {
    let _ = stream.set_read_timeout(Some(TICK));
    // Per-syscall, so a slow-but-reading client is fine (each write call
    // makes progress); only a fully stalled TCP window trips it, erroring
    // the worker out instead of wedging it — and shutdown — forever.
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let _ = stream.set_nodelay(true);
    let stats = shared.stats.clone();
    // Handshake first: anything before a valid Hello is turned away.
    match read_frame_ticking(&mut stream, &shared) {
        Ok(Some((op, payload))) => {
            stats.bytes_in.add(payload.len() as u64);
            if op != Request::Hello as u8 {
                let _ = send_error(&mut stream, &stats, ErrorCode::Auth, "expected Hello");
                return;
            }
            let mut r = PayloadReader::new(&payload);
            let version = match r.u8() {
                Ok(v) => v,
                Err(_) => {
                    let _ =
                        send_error(&mut stream, &stats, ErrorCode::Protocol, "empty Hello payload");
                    return;
                }
            };
            if version != PROTOCOL_VERSION {
                let _ = send_error(
                    &mut stream,
                    &stats,
                    ErrorCode::Protocol,
                    &format!("unsupported protocol version {version}"),
                );
                return;
            }
            let secret = r.string().unwrap_or_default();
            if let Some(expected) = &shared.cfg.secret {
                if &secret != expected {
                    let _ = send_error(&mut stream, &stats, ErrorCode::Auth, "bad secret");
                    return;
                }
            }
            let banner = format!("{{\"server\":\"asterix-net\",\"protocol\":{PROTOCOL_VERSION}}}");
            if send_ok(&mut stream, &stats, Response::Ok, banner.as_bytes()).is_err() {
                return;
            }
        }
        Ok(None) | Err(_) => return,
    }

    let conn = Conn {
        sess: shared.instance.new_session(),
        prepared: HashMap::new(),
        next_handle: AtomicU64::new(1),
    };
    serve_requests(&mut stream, &shared, conn);
}

/// Blocking frame read that keeps ticking through read timeouts so the
/// drain flag is noticed within one [`TICK`]. `Ok(None)` means "hang up
/// now" (drain, EOF, or a frame error already answered on the wire).
///
/// The [`FrameReader`] persists across ticks: a timeout mid-frame keeps
/// the bytes read so far and resumes, so a client whose header or payload
/// trickles in with >[`TICK`] gaps is never desynced or disconnected.
fn read_frame_ticking(
    stream: &mut TcpStream,
    shared: &ServerShared,
) -> Result<Option<(u8, Vec<u8>)>, ()> {
    let mut reader = FrameReader::new();
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            let _ = send_error(
                stream,
                &shared.stats,
                ErrorCode::ServerShutdown,
                "server shutting down",
            );
            return Ok(None);
        }
        match reader.read(stream, shared.cfg.max_frame_bytes) {
            Ok(frame) => return Ok(Some(frame)),
            Err(FrameError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(FrameError::Eof) => return Ok(None),
            Err(FrameError::TooLarge(n)) => {
                let _ = send_error(
                    stream,
                    &shared.stats,
                    ErrorCode::FrameTooLarge,
                    &format!(
                        "frame of {n} bytes exceeds max_frame_bytes={}",
                        shared.cfg.max_frame_bytes
                    ),
                );
                return Ok(None);
            }
            Err(FrameError::Protocol(m)) => {
                let _ = send_error(stream, &shared.stats, ErrorCode::Protocol, &m);
                return Ok(None);
            }
            Err(FrameError::Io(_)) => return Ok(None),
        }
    }
}

fn serve_requests(stream: &mut TcpStream, shared: &Arc<ServerShared>, mut conn: Conn) {
    let stats = shared.stats.clone();
    loop {
        let (op, payload) = match read_frame_ticking(stream, shared) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(()) => return,
        };
        stats.requests.inc();
        stats.bytes_in.add(payload.len() as u64);
        let keep_going = match Request::from_u8(op) {
            Some(Request::Hello) => {
                send_error(stream, &stats, ErrorCode::Protocol, "duplicate Hello").is_ok()
            }
            Some(Request::Execute) => handle_execute(stream, shared, &conn, &payload),
            Some(Request::Prepare) => handle_prepare(stream, shared, &mut conn, &payload),
            Some(Request::ExecutePrepared) => {
                handle_execute_prepared(stream, shared, &conn, &payload)
            }
            Some(Request::Cancel) => handle_cancel(stream, shared, &payload),
            Some(Request::Metrics) => {
                let json = shared.instance.metrics_json();
                send_ok(stream, &stats, Response::Ok, json.as_bytes()).is_ok()
            }
            Some(Request::Close) => {
                let _ = send_ok(stream, &stats, Response::Ok, &[]);
                let _ = stream.flush();
                return;
            }
            None => {
                let _ = send_error(
                    stream,
                    &stats,
                    ErrorCode::Protocol,
                    &format!("unknown opcode 0x{op:02x}"),
                );
                return;
            }
        };
        if !keep_going {
            return;
        }
    }
}

fn handle_execute(
    stream: &mut TcpStream,
    shared: &Arc<ServerShared>,
    conn: &Conn,
    payload: &[u8],
) -> bool {
    let stats = &shared.stats;
    let aql = match std::str::from_utf8(payload) {
        Ok(s) => s,
        Err(_) => {
            return send_error(stream, stats, ErrorCode::Protocol, "Execute payload is not UTF-8")
                .is_ok();
        }
    };
    match shared.instance.execute_in(&conn.sess, aql) {
        Ok(results) => send_ok(stream, stats, Response::Results, &encode_results(&results)).is_ok(),
        Err(e) => send_error(stream, stats, error_code_for(&e), &e.to_string()).is_ok(),
    }
}

fn handle_prepare(
    stream: &mut TcpStream,
    shared: &Arc<ServerShared>,
    conn: &mut Conn,
    payload: &[u8],
) -> bool {
    let stats = &shared.stats;
    let aql = match std::str::from_utf8(payload) {
        Ok(s) => s,
        Err(_) => {
            return send_error(stream, stats, ErrorCode::Protocol, "Prepare payload is not UTF-8")
                .is_ok();
        }
    };
    // Each handle pins a compiled plan in server memory for the life of
    // the connection; without a cap, looping Prepare is a trivial
    // memory-exhaustion vector (especially with no secret configured).
    if conn.prepared.len() >= shared.cfg.max_prepared_per_conn {
        return send_error(
            stream,
            stats,
            ErrorCode::PreparedLimit,
            &format!(
                "prepared-statement limit ({}) reached on this connection",
                shared.cfg.max_prepared_per_conn
            ),
        )
        .is_ok();
    }
    match shared.instance.prepare(aql) {
        Ok(prepared) => {
            let handle = conn.next_handle.fetch_add(1, Ordering::Relaxed);
            let nparams = prepared.param_count() as u32;
            conn.prepared.insert(handle, prepared);
            let mut w = PayloadWriter::new();
            w.u64(handle).u32(nparams);
            send_ok(stream, stats, Response::Prepared, &w.into_bytes()).is_ok()
        }
        Err(e) => send_error(stream, stats, error_code_for(&e), &e.to_string()).is_ok(),
    }
}

fn handle_execute_prepared(
    stream: &mut TcpStream,
    shared: &Arc<ServerShared>,
    conn: &Conn,
    payload: &[u8],
) -> bool {
    let stats = &shared.stats;
    let mut r = PayloadReader::new(payload);
    let parsed = (|| -> Result<(u64, Vec<asterix_adm::Value>), FrameError> {
        let handle = r.u64()?;
        let n = r.u32()? as usize;
        let mut params = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let b = r.bytes()?;
            let v = asterix_adm::serde::decode(b)
                .map_err(|e| FrameError::Protocol(format!("bad ADM parameter: {e}")))?;
            params.push(v);
        }
        if r.remaining() != 0 {
            return Err(FrameError::Protocol("trailing bytes after parameters".into()));
        }
        Ok((handle, params))
    })();
    let (handle, params) = match parsed {
        Ok(p) => p,
        Err(e) => return send_error(stream, stats, ErrorCode::Protocol, &e.to_string()).is_ok(),
    };
    let Some(prepared) = conn.prepared.get(&handle) else {
        return send_error(
            stream,
            stats,
            ErrorCode::UnknownHandle,
            &format!("no prepared statement with handle {handle}"),
        )
        .is_ok();
    };
    match shared.instance.execute_prepared_in(&conn.sess, prepared, &params) {
        Ok(rows) => {
            let results = [asterixdb::StatementResult::Rows(rows)];
            send_ok(stream, stats, Response::Results, &encode_results(&results)).is_ok()
        }
        Err(e) => send_error(stream, stats, error_code_for(&e), &e.to_string()).is_ok(),
    }
}

fn handle_cancel(stream: &mut TcpStream, shared: &Arc<ServerShared>, payload: &[u8]) -> bool {
    let stats = &shared.stats;
    let mut r = PayloadReader::new(payload);
    let job_id = match r.u64() {
        Ok(id) => id,
        Err(_) => {
            return send_error(stream, stats, ErrorCode::Protocol, "Cancel payload wants a u64")
                .is_ok();
        }
    };
    let cancelled = shared.instance.cancel(job_id);
    send_ok(stream, stats, Response::Ok, &[u8::from(cancelled)]).is_ok()
}
