//! The native client: a blocking [`TcpStream`] speaking the crate's frame
//! protocol, with typed error decoding.
//!
//! ```no_run
//! use asterix_net::{Client, WireResult};
//!
//! let mut c = Client::connect("127.0.0.1:7031", Some("s3cret")).unwrap();
//! c.execute("use dataverse TinySocial").unwrap();
//! let rows = c.query("for $u in dataset Users return $u.name").unwrap();
//! let stmt = c.prepare("for $u in dataset Users where $u.id = 1 return $u").unwrap();
//! let one = c.execute_prepared(&stmt, &[asterix_adm::Value::Int64(7)]).unwrap();
//! # let _ = (rows, one);
//! ```

use std::net::{TcpStream, ToSocketAddrs};

use asterix_adm::Value;

use crate::proto::{
    decode_results, read_frame, write_frame, ErrorCode, FrameError, PayloadReader, PayloadWriter,
    Request, Response, WireResult, MAX_FRAME_BYTES_DEFAULT, PROTOCOL_VERSION,
};

/// Client-side failures: transport, framing, or a typed server error.
#[derive(Debug)]
pub enum NetError {
    Io(std::io::Error),
    /// Locally detected protocol violation (bad frame, unexpected opcode).
    Protocol(String),
    /// The server answered with a typed error frame.
    Server {
        code: ErrorCode,
        message: String,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::Protocol(m) => write!(f, "protocol error: {m}"),
            NetError::Server { code, message } => write!(f, "server error ({code:?}): {message}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => NetError::Io(e),
            other => NetError::Protocol(other.to_string()),
        }
    }
}

impl NetError {
    /// The typed server error code, when this is a server error.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            NetError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }
}

/// A server-side prepared-statement handle (connection-scoped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreparedHandle {
    pub id: u64,
    /// Parameter slots [`Client::execute_prepared`] must fill.
    pub param_count: usize,
}

/// A connected, authenticated wire-protocol client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    max_frame_bytes: usize,
}

impl Client {
    /// Connect and run the `Hello` handshake (protocol version + optional
    /// shared secret). A server configured with a secret answers a missing
    /// or wrong one with a typed [`ErrorCode::Auth`] error.
    pub fn connect(addr: impl ToSocketAddrs, secret: Option<&str>) -> Result<Client, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut client = Client { stream, max_frame_bytes: MAX_FRAME_BYTES_DEFAULT };
        let mut w = PayloadWriter::new();
        w.u8(PROTOCOL_VERSION).string(secret.unwrap_or(""));
        let payload = w.into_bytes();
        match client.round_trip(Request::Hello, &payload)? {
            (Response::Ok, _banner) => Ok(client),
            (op, _) => Err(unexpected(op)),
        }
    }

    /// Run a batch of AQL statements in this connection's session; one
    /// [`WireResult`] per statement.
    pub fn execute(&mut self, aql: &str) -> Result<Vec<WireResult>, NetError> {
        match self.round_trip(Request::Execute, aql.as_bytes())? {
            (Response::Results, payload) => Ok(decode_results(&payload)?),
            (op, _) => Err(unexpected(op)),
        }
    }

    /// [`Client::execute`], returning the last statement's rows (the common
    /// single-query case).
    pub fn query(&mut self, aql: &str) -> Result<Vec<Value>, NetError> {
        let results = self.execute(aql)?;
        for r in results.into_iter().rev() {
            if let WireResult::Rows(rows) = r {
                return Ok(rows);
            }
        }
        Err(NetError::Protocol("no query statement in batch".into()))
    }

    /// Prepare the (single) query server-side; the returned handle is valid
    /// on this connection until it closes.
    pub fn prepare(&mut self, aql: &str) -> Result<PreparedHandle, NetError> {
        match self.round_trip(Request::Prepare, aql.as_bytes())? {
            (Response::Prepared, payload) => {
                let mut r = PayloadReader::new(&payload);
                let id = r.u64().map_err(NetError::from)?;
                let param_count = r.u32().map_err(NetError::from)? as usize;
                Ok(PreparedHandle { id, param_count })
            }
            (op, _) => Err(unexpected(op)),
        }
    }

    /// Execute a prepared handle with `params` bound in slot order.
    pub fn execute_prepared(
        &mut self,
        handle: &PreparedHandle,
        params: &[Value],
    ) -> Result<Vec<Value>, NetError> {
        let mut w = PayloadWriter::new();
        w.u64(handle.id).u32(params.len() as u32);
        for p in params {
            w.bytes(&asterix_adm::serde::encode(p));
        }
        let payload = w.into_bytes();
        match self.round_trip(Request::ExecutePrepared, &payload)? {
            (Response::Results, payload) => {
                for r in decode_results(&payload)?.into_iter().rev() {
                    if let WireResult::Rows(rows) = r {
                        return Ok(rows);
                    }
                }
                Err(NetError::Protocol("prepared execute returned no rows result".into()))
            }
            (op, _) => Err(unexpected(op)),
        }
    }

    /// Cooperatively cancel a job by id; `true` if it was live.
    pub fn cancel(&mut self, job_id: u64) -> Result<bool, NetError> {
        let mut w = PayloadWriter::new();
        w.u64(job_id);
        let payload = w.into_bytes();
        match self.round_trip(Request::Cancel, &payload)? {
            (Response::Ok, p) => Ok(p.first().copied() == Some(1)),
            (op, _) => Err(unexpected(op)),
        }
    }

    /// The server's metrics registry snapshot (schema-versioned JSON).
    pub fn metrics_json(&mut self) -> Result<String, NetError> {
        match self.round_trip(Request::Metrics, &[])? {
            (Response::Ok, p) => String::from_utf8(p)
                .map_err(|_| NetError::Protocol("metrics JSON is not UTF-8".into())),
            (op, _) => Err(unexpected(op)),
        }
    }

    /// Orderly goodbye: the server acknowledges and closes the connection.
    pub fn close(mut self) -> Result<(), NetError> {
        match self.round_trip(Request::Close, &[])? {
            (Response::Ok, _) => Ok(()),
            (op, _) => Err(unexpected(op)),
        }
    }

    fn round_trip(&mut self, op: Request, payload: &[u8]) -> Result<(Response, Vec<u8>), NetError> {
        if let Err(e) = write_frame(&mut self.stream, op as u8, payload) {
            // The server may have answered (a typed reject at the door)
            // and half-closed before reading our request; prefer its
            // error frame, if one is already buffered, over the raw EPIPE.
            let racy = matches!(
                e.kind(),
                std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
            );
            if !racy {
                return Err(e.into());
            }
            match read_frame(&mut self.stream, self.max_frame_bytes) {
                Ok(got) => return self.decode_response(got),
                Err(_) => return Err(e.into()),
            }
        }
        let got = read_frame(&mut self.stream, self.max_frame_bytes)?;
        self.decode_response(got)
    }

    fn decode_response(&self, got: (u8, Vec<u8>)) -> Result<(Response, Vec<u8>), NetError> {
        let (op, payload) = got;
        let Some(resp) = Response::from_u8(op) else {
            return Err(NetError::Protocol(format!("unknown response opcode 0x{op:02x}")));
        };
        if resp == Response::Error {
            let mut r = PayloadReader::new(&payload);
            let code = ErrorCode::from_u16(r.u16().map_err(NetError::from)?);
            let message = r.rest_string().unwrap_or_default();
            return Err(NetError::Server { code, message });
        }
        Ok((resp, payload))
    }
}

fn unexpected(op: Response) -> NetError {
    NetError::Protocol(format!("unexpected response opcode {op:?}"))
}
