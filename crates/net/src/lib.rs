//! # asterix-net — the network front end
//!
//! The paper's AsterixDB is a *service*: clients hand AQL to the Cluster
//! Controller over the network and get data back (§2). This crate makes
//! the reproduction one too, with nothing beyond `std::net`:
//!
//! - [`proto`] — the length-prefixed binary frame protocol (u32 length,
//!   u8 opcode, ADM/JSON payloads) with typed [`proto::ErrorCode`]s and a
//!   `max_frame_bytes` decoder guard.
//! - [`server`] — a [`std::net::TcpListener`] front end over an
//!   [`asterixdb::Instance`]: one worker thread and one
//!   [`asterixdb::Session`] per connection, a reject-at-the-door
//!   connection cap layered in front of `asterix-rm` admission, optional
//!   shared-secret auth, graceful drain-then-cancel shutdown, and `net.*`
//!   metrics in the instance registry.
//! - [`client`] — the matching native client (connect/auth, `execute`,
//!   `prepare`/`execute_prepared` with server-side handles, typed error
//!   decoding), used by the loopback tests and the `asterix-cli` example.
//!
//! See DESIGN.md §"Network front end" for the frame layout and opcode
//! table.

pub mod client;
pub mod proto;
pub mod server;

pub use client::{Client, NetError, PreparedHandle};
pub use proto::{ErrorCode, WireResult, MAX_FRAME_BYTES_DEFAULT, PROTOCOL_VERSION};
pub use server::{NetStats, Server, ServerConfig};
