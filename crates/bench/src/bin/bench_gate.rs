//! CI perf-regression gate over the Table 3 bench JSON.
//!
//! Compares a freshly written `ASTERIX_BENCH_JSON_OUT` snapshot against the
//! committed `BENCH_table3.json`:
//!
//! * **Structural drift fails the build**: schema-version changes, a
//!   committed query row or system entry missing from the fresh run, or a
//!   metrics key the committed snapshot reports that the fresh run no
//!   longer emits.
//! * **Timings** are diffed with a generous tolerance, and only when the
//!   two snapshots were produced at the same corpus scale (CI runs
//!   tiny-scale against the committed small-scale baseline, where ratios
//!   are meaningless — timings are then reported informationally).
//!
//! Usage: `bench_gate <committed.json> <fresh.json> [--tolerance N]`

use asterix_obs::{json_parse, JsonValue};

fn load(path: &str) -> JsonValue {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_gate: cannot read {path}: {e}"));
    json_parse(&text).unwrap_or_else(|e| panic!("bench_gate: {path} is not valid JSON: {e}"))
}

fn num(v: &JsonValue, key: &str) -> Option<f64> {
    v.get(key).and_then(JsonValue::as_f64)
}

/// `{"users":…,"messages":…,"tweets":…}` as a comparable triple.
fn scale_of(v: &JsonValue) -> Option<(f64, f64, f64)> {
    let s = v.get("scale")?;
    Some((num(s, "users")?, num(s, "messages")?, num(s, "tweets")?))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: bench_gate <committed.json> <fresh.json> [--tolerance N]");
        std::process::exit(2);
    }
    let mut tolerance = 10.0f64;
    if let Some(i) = args.iter().position(|a| a == "--tolerance") {
        tolerance = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .expect("bench_gate: --tolerance needs a number");
    }
    let committed = load(&args[0]);
    let fresh = load(&args[1]);
    let mut failures: Vec<String> = Vec::new();

    // Schema-version drift is always structural.
    let (cv, fv) = (num(&committed, "schema_version"), num(&fresh, "schema_version"));
    if cv.is_none() || cv != fv {
        failures.push(format!("schema_version drift: committed {cv:?}, fresh {fv:?}"));
    }

    // Ablation blocks (runtime filters, columnar storage, plan cache) are
    // structural: once committed, a fresh run must keep emitting the block
    // with every key it used to report.
    for block in ["runtime_filter_ablation", "columnar_ablation", "plan_cache_ablation"] {
        let Some(cblk) = committed.get(block) else { continue };
        let Some(fblk) = fresh.get(block) else {
            failures.push(format!("ablation block '{block}' missing from fresh run"));
            continue;
        };
        for (key, _) in cblk.as_obj().unwrap_or(&[]) {
            if fblk.get(key).is_none() {
                failures.push(format!("ablation block '{block}': key '{key}' missing"));
            }
        }
    }

    // Every committed query row must still be produced, with the same
    // column count.
    let empty: Vec<JsonValue> = Vec::new();
    let crows = committed.get("rows").and_then(JsonValue::as_arr).unwrap_or(&empty);
    let frows = fresh.get("rows").and_then(JsonValue::as_arr).unwrap_or(&empty);
    if crows.is_empty() {
        failures.push("committed snapshot has no rows".into());
    }
    let same_scale = scale_of(&committed).is_some() && scale_of(&committed) == scale_of(&fresh);
    let mut timing_lines = Vec::new();
    for (i, crow) in crows.iter().enumerate() {
        let Some(name) = crow.get("query").and_then(JsonValue::as_str) else {
            failures.push(format!("committed row {i} has no query name"));
            continue;
        };
        // Repeated "— with IX" names: match by occurrence index.
        let nth = crows[..i]
            .iter()
            .filter(|r| r.get("query").and_then(JsonValue::as_str) == Some(name))
            .count();
        let found = frows
            .iter()
            .filter(|r| r.get("query").and_then(JsonValue::as_str) == Some(name))
            .nth(nth);
        let Some(frow) = found else {
            failures.push(format!("query row '{name}' (occurrence {nth}) missing from fresh run"));
            continue;
        };
        let cms = crow.get("ms").and_then(JsonValue::as_arr).unwrap_or(&empty);
        let fms = frow.get("ms").and_then(JsonValue::as_arr).unwrap_or(&empty);
        if cms.len() != fms.len() {
            failures.push(format!(
                "query row '{name}': column count changed {} -> {}",
                cms.len(),
                fms.len()
            ));
            continue;
        }
        for (col, (c, f)) in cms.iter().zip(fms.iter()).enumerate() {
            let (Some(c), Some(f)) = (c.as_f64(), f.as_f64()) else { continue };
            // Sub-ms baselines and sub-5ms results sit inside scheduler
            // noise on shared CI runners; the gate is for order-of-magnitude
            // blowups, not jitter.
            if same_scale && c >= 1.0 && f > 5.0 && f > c * tolerance {
                failures.push(format!(
                    "timing regression: '{name}' col {col}: {c:.3}ms -> {f:.3}ms \
                     (> {tolerance}x tolerance)"
                ));
            }
            if f > c * 2.0 && f > 5.0 {
                timing_lines.push(format!("  '{name}' col {col}: {c:.3}ms -> {f:.3}ms"));
            }
        }
    }

    // Every committed system entry must still report every key it used to,
    // including each key in its metrics registry snapshot.
    let csystems = committed.get("systems").and_then(JsonValue::as_arr).unwrap_or(&empty);
    let fsystems = fresh.get("systems").and_then(JsonValue::as_arr).unwrap_or(&empty);
    for csys in csystems {
        let Some(name) = csys.get("system").and_then(JsonValue::as_str) else { continue };
        let Some(fsys) =
            fsystems.iter().find(|s| s.get("system").and_then(JsonValue::as_str) == Some(name))
        else {
            failures.push(format!("system entry '{name}' missing from fresh run"));
            continue;
        };
        for (key, _) in csys.as_obj().unwrap_or(&[]) {
            if fsys.get(key).is_none() {
                failures.push(format!("system '{name}': key '{key}' missing from fresh run"));
            }
        }
        let cmetrics = csys.get("metrics").and_then(JsonValue::as_obj).unwrap_or(&[]);
        let fmetrics = fsys.get("metrics");
        let missing: Vec<&str> = cmetrics
            .iter()
            .filter(|(k, _)| fmetrics.is_none_or(|m| m.get(k).is_none()))
            .map(|(k, _)| k.as_str())
            .collect();
        if !missing.is_empty() {
            failures.push(format!(
                "system '{name}': {} metrics key(s) missing from fresh run (e.g. '{}')",
                missing.len(),
                missing[0]
            ));
        }
    }

    if !timing_lines.is_empty() {
        let verdict = if same_scale { "checked against tolerance" } else { "different scales" };
        println!("slower rows ({verdict}):");
        for l in &timing_lines {
            println!("{l}");
        }
    }
    if failures.is_empty() {
        println!(
            "bench_gate OK: {} rows, {} systems, scale match: {same_scale}",
            crows.len(),
            csystems.len()
        );
    } else {
        eprintln!("bench_gate FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
