//! Regenerate **Figure 6: the Hyracks job for Query 10** — compile the
//! paper's simple-aggregation query against an indexed dataset and verify
//! the compiled job has exactly the paper's shape:
//!
//! ```text
//! btree-search(msTimestampIdx)        (secondary index search)
//!   |1:1|  sort $id                   (sort primary keys)
//!   |1:1|  btree-search(primary)      (primary index lookups)
//!   |1:1|  select post-validate       (the §4.4 consistency re-check)
//!   |1:1|  aggregate local-avg
//!   |n:1 replicating|
//!          aggregate global-avg
//! ```

use asterix_bench::datagen::{generate, Scale};
use asterix_bench::harness::{setup_asterix, SchemaMode};

const QUERY_10: &str = r#"
avg(
    for $m in dataset MugshotMessages
    where $m.timestamp >= datetime("2014-01-01T00:00:00")
      and $m.timestamp <  datetime("2014-04-01T00:00:00")
    return string-length($m.message)
)
"#;

fn main() {
    let scale = Scale::tiny();
    let corpus = generate(&scale, 20140702);
    let sys = setup_asterix(&corpus, SchemaMode::Schema, true);

    let (logical, job) = sys.instance.explain(QUERY_10).expect("explain query 10");
    println!("## Figure 6 — compiled plan for Query 10\n");
    println!("### Optimized logical plan\n```\n{logical}```\n");
    println!("### Hyracks job (operators bottom-up, connectors between)\n```\n{job}```\n");

    println!("### Shape checks (the paper's Figure 6 structure)\n");
    let mut all_ok = true;
    let mut check = |name: &str, ok: bool| {
        all_ok &= ok;
        println!("- [{}] {}", if ok { "x" } else { " " }, name);
    };
    check(
        "secondary-index search on the timestamp index",
        job.contains("btree-search Bench.MugshotMessages.msTimestampIdx"),
    );
    check("primary keys are sorted before the primary search", job.contains("sort $pk"));
    check(
        "primary-index search follows",
        job.contains("btree-search Bench.MugshotMessages (primary)"),
    );
    check(
        "post-validation select above the primary search (§4.4)",
        job.contains("select post-validate"),
    );
    check("local aggregation operator", job.contains("aggregate local"));
    check("global aggregation operator at parallelism 1", job.contains("aggregate global"));
    check(
        "an n:1 replicating connector feeds the global aggregate",
        job.contains(":1 replicating"),
    );
    check("every other connector is 1:1 (no repartitioning needed)", !job.contains("partitioning"));
    check("no full data-scan appears (index access path won)", !job.contains("data-scan"));

    // And the query actually runs, producing the same answer as a scan.
    let indexed = sys.instance.query(QUERY_10).expect("run query 10");
    sys.instance.optimizer_options.write().enable_index_access = false;
    let scanned = sys.instance.query(QUERY_10).expect("run query 10 via scan");
    let same = match (indexed[0].as_f64(), scanned[0].as_f64()) {
        (Some(a), Some(b)) => (a - b).abs() < 1e-9,
        (None, None) => true, // both null (empty range at tiny scale)
        _ => false,
    };
    check("indexed and scan plans return identical answers", same);

    if !all_ok {
        eprintln!("FIGURE 6 SHAPE CHECKS FAILED");
        std::process::exit(1);
    }
}
