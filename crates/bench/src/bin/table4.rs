//! Regenerate **Table 4: Average insert time per record** — batch sizes 1
//! and 20 across the insert-capable systems (Hive is excluded, as in the
//! paper).
//!
//! Reproduction targets: single-record inserts in AsterixDB carry
//! per-statement compilation ("Hyracks job generation and start-up")
//! overhead that the simpler engines do not pay, and batching 20 records
//! into one statement amortizes it below the per-record cost of the
//! others — the paper's crossover.

use std::time::Instant;

use asterix_adm::print::to_adm_string;
use asterix_baselines::docstore::Collection;
use asterix_baselines::relational::RelTable;
use asterix_bench::datagen::{gen_message, Scale};
use asterix_bench::harness::{setup_asterix, SchemaMode, Table3System};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let n_single = 200usize;
    let n_batches = 20usize; // batches of 20

    let mut rng = StdRng::seed_from_u64(7);
    let docs: Vec<asterix_adm::Value> = (0..(n_single + n_batches * 20) as i64)
        .map(|i| gen_message(&mut rng, 1_000_000 + i, scale.users))
        .collect();

    // --- AsterixDB (Schema + KeyOnly): full AQL statement path ------------
    let asx = |mode: SchemaMode| -> (f64, f64, String) {
        let corpus = empty_corpus();
        let sys = setup_asterix(&corpus, mode, true);
        // Single-record statements.
        let start = Instant::now();
        for d in &docs[..n_single] {
            let stmt = format!("insert into dataset MugshotMessages ({});", to_adm_string(d));
            sys.instance.execute(&stmt).expect("insert");
        }
        let single = start.elapsed().as_secs_f64() / n_single as f64;
        // One-statement batches of 20.
        let start = Instant::now();
        for b in 0..n_batches {
            let chunk = &docs[n_single + b * 20..n_single + (b + 1) * 20];
            let items: Vec<String> = chunk.iter().map(to_adm_string).collect();
            let stmt = format!("insert into dataset MugshotMessages ([{}]);", items.join(", "));
            sys.instance.execute(&stmt).expect("batch insert");
        }
        let batch = start.elapsed().as_secs_f64() / (n_batches * 20) as f64;
        let stats = sys.runtime_stats_json().unwrap_or_default();
        (single, batch, stats)
    };
    eprintln!("running AsterixDB (Schema) inserts ...");
    let (as_s1, as_s20, as_stats) = asx(SchemaMode::Schema);
    eprintln!("running AsterixDB (KeyOnly) inserts ...");
    let (ak_s1, ak_s20, ak_stats) = asx(SchemaMode::KeyOnly);

    // --- System-X stand-in -------------------------------------------------
    eprintln!("running System-X inserts ...");
    let mut sx = RelTable::new("messages", &["message-id", "author-id", "timestamp", "message"]);
    sx.create_index("message-id");
    let to_row = |d: &asterix_adm::Value| {
        vec![d.field("message-id"), d.field("author-id"), d.field("timestamp"), d.field("message")]
    };
    let start = Instant::now();
    for d in &docs[..n_single] {
        sx.insert(to_row(d));
    }
    let sx_s1 = start.elapsed().as_secs_f64() / n_single as f64;
    let start = Instant::now();
    for b in 0..n_batches {
        for d in &docs[n_single + b * 20..n_single + (b + 1) * 20] {
            sx.insert(to_row(d));
        }
    }
    let sx_s20 = start.elapsed().as_secs_f64() / (n_batches * 20) as f64;

    // --- Mongo stand-in (journaled) ----------------------------------------
    eprintln!("running Mongo-like inserts ...");
    let dir = tempfile::TempDir::new().unwrap();
    let mut mongo = Collection::with_journal("message-id", dir.path().join("j.log")).unwrap();
    let start = Instant::now();
    for d in &docs[..n_single] {
        mongo.insert(d).unwrap();
    }
    let mg_s1 = start.elapsed().as_secs_f64() / n_single as f64;
    let start = Instant::now();
    for b in 0..n_batches {
        mongo.insert_batch(&docs[n_single + b * 20..n_single + (b + 1) * 20]).unwrap();
    }
    let mg_s20 = start.elapsed().as_secs_f64() / (n_batches * 20) as f64;

    let ms = |s: f64| format!("{:.3}", s * 1000.0);
    println!("## Table 4 — Average insert time per record (measured, ms)\n");
    println!("| Batch | Asterix Schema | Asterix KeyOnly | Syst-X | Mongo | paper (s) |");
    println!("|---|---|---|---|---|---|");
    println!(
        "| 1  | {} | {} | {} | {} | 0.091 / 0.093 / 0.040 / 0.035 |",
        ms(as_s1),
        ms(ak_s1),
        ms(sx_s1),
        ms(mg_s1)
    );
    println!(
        "| 20 | {} | {} | {} | {} | 0.010 / 0.011 / 0.026 / 0.024 |",
        ms(as_s20),
        ms(ak_s20),
        ms(sx_s20),
        ms(mg_s20)
    );

    println!("\n### Shape checks\n");
    let check = |name: &str, ok: bool| {
        println!("- [{}] {}", if ok { "x" } else { " " }, name);
    };
    check(
        "batching amortizes AsterixDB's per-statement overhead by >3x",
        as_s1 / as_s20.max(1e-9) > 3.0,
    );
    check(
        "single-record AsterixDB inserts are slower than the simple engines (job-gen overhead)",
        as_s1 > sx_s1 && as_s1 > mg_s1,
    );
    check(
        "batched AsterixDB insert-per-record improves relative to the others (paper's crossover direction)",
        (as_s20 / as_s1) < (mg_s20 / mg_s1).max(sx_s20 / sx_s1),
    );

    // Machine-readable runtime counters for the ingest runs.
    println!("\n### Runtime stats (JSON)\n");
    println!("```json");
    println!("{as_stats}");
    println!("{ak_stats}");
    println!("```");
}

/// An empty corpus (Table 4 measures pure insert cost).
fn empty_corpus() -> asterix_bench::datagen::Corpus {
    asterix_bench::datagen::Corpus { users: vec![], messages: vec![], tweets: vec![] }
}
