//! Regenerate **Table 2: Dataset sizes** — storage footprint of the three
//! datasets in the five systems.
//!
//! Paper (GB, 10-node cluster): Asterix(Schema) 192/120/330,
//! Asterix(KeyOnly) 360/240/600, Syst-X 290/100/495, Hive 38/12/25,
//! Mongo 240/215/478. We report MB at laptop scale; the *ordering and
//! ratios* are the reproduction target (see EXPERIMENTS.md).

use asterix_bench::datagen::{generate, Scale};
use asterix_bench::harness::*;

fn mb(b: u64) -> f64 {
    b as f64 / (1024.0 * 1024.0)
}

fn main() {
    let scale = Scale::from_env();
    eprintln!(
        "generating corpus: {} users, {} messages, {} tweets ...",
        scale.users, scale.messages, scale.tweets
    );
    let corpus = generate(&scale, 20140702);

    eprintln!("loading the five systems ...");
    let schema = setup_asterix(&corpus, SchemaMode::Schema, false);
    let keyonly = setup_asterix(&corpus, SchemaMode::KeyOnly, false);
    let systemx = setup_systemx(&corpus, false);
    let hive = setup_hive(&corpus);
    let mongo = setup_mongo(&corpus, false);

    // Per-dataset sizes for AsterixDB; baselines report their own splits.
    let asx_sizes = |sys: &AsterixSystem| -> (u64, u64, u64) {
        let g = |d: &str| sys.instance.dataset(d).unwrap().primary_size_bytes();
        (g("MugshotUsers"), g("MugshotMessages"), g("Tweets"))
    };
    let (su, sm, st) = asx_sizes(&schema);
    let (ku, km, kt) = asx_sizes(&keyonly);
    let (xu, xm, xt) =
        (systemx.users.size_bytes(), systemx.messages.size_bytes(), systemx.tweets.size_bytes());
    let (hu, hm, ht) = (
        hive.users.size_bytes() + hive.user_employment.size_bytes(),
        hive.messages.size_bytes() + hive.message_tags.size_bytes(),
        hive.tweets.size_bytes(),
    );
    let (mu, mm, mt) =
        (mongo.users.size_bytes(), mongo.messages.size_bytes(), mongo.tweets.size_bytes());

    println!("## Table 2 — Dataset sizes (measured, MB at laptop scale)\n");
    println!("| System | Users | Messages | Tweets | paper (GB) |");
    println!("|---|---|---|---|---|");
    println!(
        "| Asterix (Schema)  | {:.1} | {:.1} | {:.1} | 192 / 120 / 330 |",
        mb(su),
        mb(sm),
        mb(st)
    );
    println!(
        "| Asterix (KeyOnly) | {:.1} | {:.1} | {:.1} | 360 / 240 / 600 |",
        mb(ku),
        mb(km),
        mb(kt)
    );
    println!(
        "| Syst-X            | {:.1} | {:.1} | {:.1} | 290 / 100 / 495 |",
        mb(xu),
        mb(xm),
        mb(xt)
    );
    println!(
        "| Hive              | {:.1} | {:.1} | {:.1} | 38 / 12 / 25 |",
        mb(hu),
        mb(hm),
        mb(ht)
    );
    println!(
        "| Mongo             | {:.1} | {:.1} | {:.1} | 240 / 215 / 478 |",
        mb(mu),
        mb(mm),
        mb(mt)
    );

    println!("\n### Shape checks (the reproduction targets)\n");
    let check = |name: &str, ok: bool| {
        println!("- [{}] {}", if ok { "x" } else { " " }, name);
    };
    check(
        "KeyOnly > Schema for every dataset (open instances carry field names)",
        ku > su && km > sm && kt > st,
    );
    check(
        "Hive is the smallest store (columnar compression)",
        hu < su.min(xu).min(mu) && hm < sm.min(xm).min(mm),
    );
    check(
        "Mongo tracks KeyOnly (both store field names per document)",
        mb(mu) / mb(ku) > 0.5 && mb(mu) / mb(ku) < 2.0,
    );
    check("KeyOnly/Schema ratio within 2x of the paper's (~1.9 users, 2.0 msgs)", {
        let r = ku as f64 / su as f64;
        (1.1..4.0).contains(&r)
    });
}
