//! Regenerate **Table 3: Average query response time** — the paper's 20-row
//! read-only workload over the five systems.
//!
//! Absolute numbers differ (laptop vs 10-node cluster); the reproduction
//! targets are the paper's *shape* findings:
//! * indexes collapse every query's cost in every indexing system;
//! * Hive-like is catastrophic on record lookup, competitive on agg scans;
//! * the Mongo-like client-side join degrades with selectivity;
//! * Asterix KeyOnly scans slower than Schema (bigger data), identical when
//!   indexed;
//! * indexed joins beat hash joins at small selectivity.

use std::time::Duration;

use asterix_bench::datagen::{generate, ts_range_for, Scale};
use asterix_bench::harness::*;

struct Row {
    name: &'static str,
    paper: &'static str,
    times: Vec<Duration>,
}

fn main() {
    let scale = Scale::from_env();
    eprintln!(
        "generating corpus: {} users, {} messages, {} tweets ...",
        scale.users, scale.messages, scale.tweets
    );
    let corpus = generate(&scale, 20140702);
    // Paper selectivities scaled: joins filter 300 (sm) / 3000 (lg) users of
    // ~1e6-equivalent; aggs select 300 (sm) / 30000 (lg) messages. We keep
    // the same *fractions* of our corpus.
    let m = corpus.messages.len();
    let u = corpus.users.len();
    let (m_sm_lo, m_sm_hi) = ts_range_for(m / 100, m); // ~1% of messages
    let (m_lg_lo, m_lg_hi) = ts_range_for(m / 10, m); // ~10%
    let (u_sm_lo, u_sm_hi) = ts_range_for(u / 100, u);
    let (u_lg_lo, u_lg_hi) = ts_range_for(u / 10, u);

    eprintln!("loading systems (indexed + unindexed variants) ...");
    let systems_noix: Vec<Box<dyn Table3System>> = vec![
        Box::new(setup_asterix(&corpus, SchemaMode::Schema, false)),
        Box::new(setup_asterix(&corpus, SchemaMode::KeyOnly, false)),
        Box::new(setup_systemx(&corpus, false)),
        Box::new(setup_hive(&corpus)),
        Box::new(setup_mongo(&corpus, false)),
    ];
    let systems_ix: Vec<Box<dyn Table3System>> = vec![
        Box::new(setup_asterix(&corpus, SchemaMode::Schema, true)),
        Box::new(setup_asterix(&corpus, SchemaMode::KeyOnly, true)),
        Box::new(setup_systemx(&corpus, true)),
        Box::new(setup_hive(&corpus)), // Hive re-cites its unindexed time
        Box::new(setup_mongo(&corpus, true)),
    ];

    let (warmup, runs) = (2, 5);
    let mut rows: Vec<Row> = Vec::new();
    let mut run_row = |name: &'static str,
                       paper: &'static str,
                       systems: &[Box<dyn Table3System>],
                       f: &dyn Fn(&dyn Table3System)| {
        let mut times = Vec::new();
        for s in systems {
            times.push(time_avg(warmup, runs, || f(s.as_ref())));
        }
        rows.push(Row { name, paper, times });
        eprintln!("  done: {name}");
    };

    run_row("Rec Lookup", "0.03/0.03/0.12/(379)/0.02", &systems_ix, &|s| {
        s.rec_lookup(57);
    });
    run_row("Range Scan", "79/148/148/11717/176", &systems_noix, &|s| {
        s.range_scan(m_sm_lo, m_sm_hi);
    });
    run_row("— with IX", "0.10/0.10/4.9/(—)/0.05", &systems_ix, &|s| {
        s.range_scan(m_sm_lo, m_sm_hi);
    });
    run_row("Sel-Join (Sm)", "78/97/55/334/66", &systems_noix, &|s| {
        s.sel_join(u_sm_lo, u_sm_hi);
    });
    run_row("— with IX", "0.51/0.55/2.1/(—)/0.62", &systems_ix, &|s| {
        s.sel_join(u_sm_lo, u_sm_hi);
    });
    run_row("Sel-Join (Lg)", "80/100/57/351/274", &systems_noix, &|s| {
        s.sel_join(u_lg_lo, u_lg_hi);
    });
    run_row("— with IX", "2.2/2.3/10.6/(—)/15.0", &systems_ix, &|s| {
        s.sel_join(u_lg_lo, u_lg_hi);
    });
    run_row("Sel2-Join (Sm)", "79/98/56/340/66", &systems_noix, &|s| {
        s.sel2_join(u_sm_lo, u_sm_hi, m_lg_lo, m_lg_hi);
    });
    run_row("— with IX", "0.50/0.52/2.6/(—)/0.61", &systems_ix, &|s| {
        s.sel2_join(u_sm_lo, u_sm_hi, m_lg_lo, m_lg_hi);
    });
    run_row("Sel2-Join (Lg)", "80/101/56/394/313", &systems_noix, &|s| {
        s.sel2_join(u_lg_lo, u_lg_hi, m_lg_lo, m_lg_hi);
    });
    run_row("— with IX", "2.3/2.3/10.7/(—)/15.3", &systems_ix, &|s| {
        s.sel2_join(u_lg_lo, u_lg_hi, m_lg_lo, m_lg_hi);
    });
    run_row("Agg (Sm)", "129/232/131/83/401", &systems_noix, &|s| {
        s.agg(m_sm_lo, m_sm_hi);
    });
    run_row("— with IX", "0.16/0.17/0.14/(—)/0.19", &systems_ix, &|s| {
        s.agg(m_sm_lo, m_sm_hi);
    });
    run_row("Agg (Lg)", "129/232/132/94/401", &systems_noix, &|s| {
        s.agg(m_lg_lo, m_lg_hi);
    });
    run_row("— with IX", "5.5/5.6/4.7/(—)/8.3", &systems_ix, &|s| {
        s.agg(m_lg_lo, m_lg_hi);
    });
    run_row("Grp-Aggr (Sm)", "130/233/131/128/398", &systems_noix, &|s| {
        s.grp_agg(m_sm_lo, m_sm_hi);
    });
    run_row("— with IX", "0.45/0.46/0.17/(—)/0.20", &systems_ix, &|s| {
        s.grp_agg(m_sm_lo, m_sm_hi);
    });
    run_row("Grp-Aggr (Lg)", "131/234/133/140/400", &systems_noix, &|s| {
        s.grp_agg(m_lg_lo, m_lg_hi);
    });
    run_row("— with IX", "6.0/5.9/4.7/(—)/9.0", &systems_ix, &|s| {
        s.grp_agg(m_lg_lo, m_lg_hi);
    });

    println!("## Table 3 — Average query response time (measured, ms)\n");
    println!("| Query | Asterix Schema | Asterix KeyOnly | Syst-X | Hive | Mongo | paper (s) |");
    println!("|---|---|---|---|---|---|---|");
    for r in &rows {
        print!("| {} ", r.name);
        for t in &r.times {
            print!("| {} ", fmt_ms(*t));
        }
        println!("| {} |", r.paper);
    }

    // Shape checks (who wins / indexes help).
    println!("\n### Shape checks\n");
    let ms = |d: Duration| d.as_secs_f64() * 1000.0;
    let check = |name: &str, ok: bool| {
        println!("- [{}] {}", if ok { "x" } else { " " }, name);
    };
    // Row indexes (match the run_row order above).
    let scan_noix = &rows[1];
    let scan_ix = &rows[2];
    check(
        "secondary index speeds up AsterixDB's range scan by >5x",
        ms(scan_noix.times[0]) / ms(scan_ix.times[0]).max(0.001) > 5.0,
    );
    check(
        "secondary index speeds up every indexing system's range scan",
        ms(scan_noix.times[2]) > ms(scan_ix.times[2])
            && ms(scan_noix.times[4]) > ms(scan_ix.times[4]),
    );
    check(
        // The paper parenthesizes Hive's 379s lookup against the others'
        // milliseconds: an index-less engine pays a full scan per lookup.
        // Compare against the fastest point-lookup engine (AsterixDB's
        // number includes per-statement compilation, its Table 4 story).
        "Hive-like record lookup is orders slower than the best indexed lookup",
        {
            let best =
                [0usize, 2, 4].iter().map(|&i| ms(rows[0].times[i])).fold(f64::INFINITY, f64::min);
            ms(rows[0].times[3]) > 20.0 * best.max(0.0001)
        },
    );
    check(
        // The paper's KeyOnly-vs-Schema scan gap is disk-I/O-bound (1.9x
        // more bytes to read); in a memory-resident run the byte gap is
        // real but the time gap sits inside noise, so assert the cause
        // (storage size) and that KeyOnly is not *faster* beyond noise.
        "Asterix KeyOnly stores more bytes than Schema, scans no faster",
        systems_noix[1].size_bytes() > systems_noix[0].size_bytes()
            && ms(scan_noix.times[1]) > 0.8 * ms(scan_noix.times[0]),
    );
    let join_sm_ix = &rows[4];
    let join_lg_ix = &rows[6];
    check(
        "indexed join cost grows with selectivity (Sm < Lg)",
        ms(join_sm_ix.times[0]) < ms(join_lg_ix.times[0]),
    );
    let join_sm_noix = &rows[3];
    check(
        "small-selectivity indexed join beats the hash join",
        ms(join_sm_ix.times[0]) < ms(join_sm_noix.times[0]),
    );
    check("Mongo-like client-side join degrades faster than server joins (Lg)", {
        let mongo_ratio = ms(rows[5].times[4]) / ms(rows[3].times[4]).max(0.001);
        let sysx_ratio = ms(rows[5].times[2]) / ms(rows[3].times[2]).max(0.001);
        mongo_ratio > sysx_ratio * 0.8 // degrade at least comparably
    });
    check("Hive-like agg scan is competitive without indexes (within 4x of best)", {
        let best = rows[13].times.iter().map(|t| ms(*t)).fold(f64::INFINITY, f64::min);
        ms(rows[13].times[3]) < best * 4.0
    });

    // Runtime-filter ablation on the reversed join (selective build side,
    // full-scan probe side): same rows with filters on and off, probe
    // tuples pruned before the exchange when on. Fresh unindexed Schema
    // instances so the Table 3 systems' counters stay untouched.
    eprintln!("runtime-filter ablation (rev-sel-join) ...");
    let rf_on = setup_asterix(&corpus, SchemaMode::Schema, false);
    let rf_off = setup_asterix(&corpus, SchemaMode::Schema, false);
    rf_off.instance.optimizer_options.write().enable_runtime_filters = false;
    let rows_on = rf_on.rev_sel_join(u_sm_lo, u_sm_hi);
    let rows_off = rf_off.rev_sel_join(u_sm_lo, u_sm_hi);
    let t_on = time_avg(warmup, runs, || {
        rf_on.rev_sel_join(u_sm_lo, u_sm_hi);
    });
    let t_off = time_avg(warmup, runs, || {
        rf_off.rev_sel_join(u_sm_lo, u_sm_hi);
    });
    let fs_on = rf_on.instance.filter_stats();
    let fs_off = rf_off.instance.filter_stats();
    println!("\n### Runtime-filter ablation (rev-sel-join, Sm selectivity)\n");
    println!("| filters | time | rows | published | checked | pruned |");
    println!("|---|---|---|---|---|---|");
    println!(
        "| on | {} | {rows_on} | {} | {} | {} |",
        fmt_ms(t_on),
        fs_on.published.get(),
        fs_on.checked.get(),
        fs_on.pruned_tuples.get()
    );
    println!(
        "| off | {} | {rows_off} | {} | {} | {} |",
        fmt_ms(t_off),
        fs_off.published.get(),
        fs_off.checked.get(),
        fs_off.pruned_tuples.get()
    );
    println!();
    check("runtime filters do not change the join result", rows_on == rows_off);
    check("build side published a filter per join partition", fs_on.published.get() > 0);
    check("probe tuples were pruned before the exchange", fs_on.pruned_tuples.get() > 0);
    check("disabled run published and pruned nothing", {
        fs_off.published.get() == 0 && fs_off.pruned_tuples.get() == 0
    });

    // Columnar ablation on the field-projecting scan queries (agg reads
    // {timestamp, message}, grp-agg reads {timestamp, author-id} of wide
    // message records): same results with columnar components on and off,
    // untouched columns never leaving the buffer cache when on. Fresh
    // unindexed Schema instances with the knob forced per side, so the
    // run works under ASTERIX_BENCH_DISABLE_COLUMNAR smoke too.
    eprintln!("columnar ablation (agg / grp-agg, Lg selectivity) ...");
    let col_on = setup_asterix_with(&corpus, SchemaMode::Schema, false, None, None, |c| {
        c.disable_columnar = false;
    });
    let col_off = setup_asterix_with(&corpus, SchemaMode::Schema, false, None, None, |c| {
        c.disable_columnar = true;
    });
    let agg_on = col_on.agg(m_lg_lo, m_lg_hi);
    let agg_off = col_off.agg(m_lg_lo, m_lg_hi);
    let grp_on = col_on.grp_agg(m_lg_lo, m_lg_hi);
    let grp_off = col_off.grp_agg(m_lg_lo, m_lg_hi);
    let t_agg_col = time_avg(warmup, runs, || {
        col_on.agg(m_lg_lo, m_lg_hi);
    });
    let t_agg_row = time_avg(warmup, runs, || {
        col_off.agg(m_lg_lo, m_lg_hi);
    });
    let t_grp_col = time_avg(warmup, runs, || {
        col_on.grp_agg(m_lg_lo, m_lg_hi);
    });
    let t_grp_row = time_avg(warmup, runs, || {
        col_off.grp_agg(m_lg_lo, m_lg_hi);
    });
    let cs_on = col_on.instance.columnar_stats();
    let cs_off = col_off.instance.columnar_stats();
    println!("\n### Columnar ablation (Lg selectivity scans)\n");
    println!("| columnar | agg | grp-agg | components | cols projected | bytes skipped | fallback rows |");
    println!("|---|---|---|---|---|---|---|");
    println!(
        "| on | {} | {} | {} | {} | {} | {} |",
        fmt_ms(t_agg_col),
        fmt_ms(t_grp_col),
        cs_on.components.get(),
        cs_on.columns_projected.get(),
        cs_on.bytes_skipped.get(),
        cs_on.fallback_rows.get()
    );
    println!(
        "| off | {} | {} | {} | {} | {} | {} |",
        fmt_ms(t_agg_row),
        fmt_ms(t_grp_row),
        cs_off.components.get(),
        cs_off.columns_projected.get(),
        cs_off.bytes_skipped.get(),
        cs_off.fallback_rows.get()
    );
    println!();
    check("columnar storage does not change agg/grp-agg results", {
        agg_on == agg_off && grp_on == grp_off
    });
    check("columnar run built columnar components on flush", cs_on.components.get() > 0);
    check("projected scans read a column subset and skipped bytes", {
        cs_on.columns_projected.get() > 0 && cs_on.bytes_skipped.get() > 0
    });
    check("disabled run built row components and projected nothing", {
        cs_off.components.get() == 0 && cs_off.columns_projected.get() == 0
    });

    // Plan-cache ablation on the hot-repeated indexed selective join: the
    // same statement re-executed with fixed literals. With the cache on,
    // every repeat after the first binds a cached plan (no
    // parse/translate/optimize); with it off, each repeat pays the full
    // chain. Fresh indexed Schema instances with the knob forced per side,
    // so the run works under ASTERIX_BENCH_DISABLE_PLAN_CACHE smoke too.
    eprintln!("plan-cache ablation (hot-repeat sel-join) ...");
    let pc_on = setup_asterix_with(&corpus, SchemaMode::Schema, true, None, None, |c| {
        c.disable_plan_cache = false;
    });
    let pc_off = setup_asterix_with(&corpus, SchemaMode::Schema, true, None, None, |c| {
        c.disable_plan_cache = true;
    });
    // Count from here: the corpus load's repeated inserts also ride the
    // cache and would otherwise swamp the query counters.
    let pcs = &pc_on.instance.plan_cache().stats;
    let (hits0, misses0) = (pcs.hits.get(), pcs.misses.get());
    let (bind_sum0, bind_cnt0) = (pcs.bind_us.sum(), pcs.bind_us.count());
    let rows_pc_on = pc_on.sel_join(u_sm_lo, u_sm_hi);
    let rows_pc_off = pc_off.sel_join(u_sm_lo, u_sm_hi);
    let t_pc_on = time_avg(warmup, runs, || {
        pc_on.sel_join(u_sm_lo, u_sm_hi);
    });
    let t_pc_off = time_avg(warmup, runs, || {
        pc_off.sel_join(u_sm_lo, u_sm_hi);
    });
    let (pc_hits, pc_misses) = (pcs.hits.get() - hits0, pcs.misses.get() - misses0);
    let avg_bind_us =
        (pcs.bind_us.sum() - bind_sum0) as f64 / (pcs.bind_us.count() - bind_cnt0).max(1) as f64;
    println!("\n### Plan-cache ablation (sel-join Sm, hot repeats)\n");
    println!("| plan cache | time | rows | hits | misses | avg bind |");
    println!("|---|---|---|---|---|---|");
    println!(
        "| on | {} | {rows_pc_on} | {pc_hits} | {pc_misses} | {avg_bind_us:.0}us |",
        fmt_ms(t_pc_on)
    );
    println!("| off | {} | {rows_pc_off} | 0 | 0 | — |", fmt_ms(t_pc_off));
    println!();
    check("plan cache does not change the join result", rows_pc_on == rows_pc_off);
    check("hot repeats hit the cache (one miss per shape)", {
        pc_hits >= (warmup + runs) as u64 && pc_misses == 1
    });
    check("cached bind is sub-millisecond on average", avg_bind_us < 1000.0);
    check("disabled run never touched its cache", {
        pc_off.instance.plan_cache().is_empty()
            && pc_off.instance.plan_cache().stats.misses.get() == 0
    });

    // Machine-readable runtime counters (buffer-cache hit rate, exchange
    // frames/tuples/stalls accumulated over the whole workload).
    let sys_stats: Vec<String> = systems_noix
        .iter()
        .chain(systems_ix.iter())
        .filter_map(|s| s.runtime_stats_json())
        .collect();
    println!("\n### Runtime stats (JSON)\n");
    println!("```json");
    for json in &sys_stats {
        println!("{json}");
    }
    println!("```");

    // Consolidated machine-readable snapshot (BENCH_table3.json):
    // regenerate with
    //   ASTERIX_BENCH_SAMPLE_MS=1000 ASTERIX_BENCH_JSON_OUT=BENCH_table3.json \
    //     cargo run --release -p asterix-bench --bin table3
    // (1s sampler cadence keeps the committed timeseries block small.)
    if let Ok(path) = std::env::var("ASTERIX_BENCH_JSON_OUT") {
        let ms = |d: Duration| d.as_secs_f64() * 1000.0;
        let mut out = String::from("{\n  \"schema_version\": 1,\n");
        out.push_str(
            "  \"regenerate\": \"ASTERIX_BENCH_SAMPLE_MS=1000 \
             ASTERIX_BENCH_JSON_OUT=BENCH_table3.json \
             cargo run --release -p asterix-bench --bin table3\",\n",
        );
        out.push_str(&format!(
            "  \"scale\": {{\"users\": {}, \"messages\": {}, \"tweets\": {}}},\n",
            scale.users, scale.messages, scale.tweets
        ));
        out.push_str(&format!("  \"warmup\": {warmup}, \"runs\": {runs},\n"));
        out.push_str(
            "  \"columns\": [\"Asterix(Schema)\", \"Asterix(KeyOnly)\", \
             \"System-X\", \"Hive\", \"Mongo\"],\n",
        );
        out.push_str("  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            let times: Vec<String> = r.times.iter().map(|t| format!("{:.3}", ms(*t))).collect();
            out.push_str(&format!(
                "    {{\"query\": \"{}\", \"ms\": [{}], \"paper_s\": \"{}\"}}{}\n",
                r.name,
                times.join(", "),
                r.paper,
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"runtime_filter_ablation\": {{\"query\": \"rev-sel-join (Sm)\", \
             \"on_ms\": {:.3}, \"off_ms\": {:.3}, \"rows\": {rows_on}, \
             \"published\": {}, \"checked\": {}, \"pruned_tuples\": {}}},\n",
            ms(t_on),
            ms(t_off),
            fs_on.published.get(),
            fs_on.checked.get(),
            fs_on.pruned_tuples.get()
        ));
        out.push_str(&format!(
            "  \"columnar_ablation\": {{\"query\": \"agg+grp-agg (Lg)\", \
             \"agg_on_ms\": {:.3}, \"agg_off_ms\": {:.3}, \
             \"grp_on_ms\": {:.3}, \"grp_off_ms\": {:.3}, \
             \"components\": {}, \"columns_projected\": {}, \
             \"bytes_skipped\": {}, \"fallback_rows\": {}, \
             \"off_components\": {}}},\n",
            ms(t_agg_col),
            ms(t_agg_row),
            ms(t_grp_col),
            ms(t_grp_row),
            cs_on.components.get(),
            cs_on.columns_projected.get(),
            cs_on.bytes_skipped.get(),
            cs_on.fallback_rows.get(),
            cs_off.components.get()
        ));
        out.push_str(&format!(
            "  \"plan_cache_ablation\": {{\"query\": \"sel-join (Sm) hot repeat\", \
             \"on_ms\": {:.3}, \"off_ms\": {:.3}, \"rows\": {rows_pc_on}, \
             \"hits\": {pc_hits}, \"misses\": {pc_misses}, \
             \"avg_bind_us\": {avg_bind_us:.1}}},\n",
            ms(t_pc_on),
            ms(t_pc_off)
        ));
        out.push_str(&format!("  \"systems\": [{}]\n}}\n", sys_stats.join(",\n")));
        std::fs::write(&path, out).expect("write ASTERIX_BENCH_JSON_OUT");
        eprintln!("wrote {path}");
    }
}
