//! Deterministic synthetic data mirroring §5.3.1's users / messages /
//! tweets datasets (nested records, bags, datetimes, points, tag bags).

use asterix_adm::value::Point;
use asterix_adm::{Record, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scale knobs for the generated corpus.
#[derive(Debug, Clone)]
pub struct Scale {
    pub users: usize,
    pub messages: usize,
    pub tweets: usize,
}

impl Scale {
    /// Default laptop-scale corpus; override with `ASTERIX_BENCH_SCALE`
    /// (a multiplier).
    pub fn from_env() -> Scale {
        let mult: f64 =
            std::env::var("ASTERIX_BENCH_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0);
        Scale {
            users: (4_000.0 * mult) as usize,
            messages: (20_000.0 * mult) as usize,
            tweets: (10_000.0 * mult) as usize,
        }
    }

    pub fn tiny() -> Scale {
        Scale { users: 200, messages: 1000, tweets: 500 }
    }
}

const EPOCH_2010: i64 = 1_262_304_000_000; // 2010-01-01T00:00:00Z in millis
const YEAR_MILLIS: i64 = 365 * 24 * 3600 * 1000;

const FIRST_NAMES: &[&str] = &[
    "Ada", "Grace", "Alan", "Edsger", "Barbara", "Donald", "John", "Dana", "Nicola", "Margaret",
    "Tim", "Leslie", "Tony", "Frances", "Niklaus", "Ken",
];
const LAST_NAMES: &[&str] = &[
    "Lovelace", "Hopper", "Turing", "Dijkstra", "Liskov", "Knuth", "Backus", "Scott", "Hamilton",
    "Lee", "Lamport", "Hoare", "Allen", "Wirth", "Thompson", "Codd",
];
const CITIES: &[&str] = &[
    "Irvine",
    "Riverside",
    "San Harry",
    "Springfield",
    "Portland",
    "Austin",
    "Madison",
    "Boulder",
];
const STATES: &[&str] = &["CA", "OR", "TX", "WI", "CO", "WA"];
const COUNTRIES: &[&str] = &["USA", "Canada", "Mexico", "Germany", "India", "Japan"];
const ORGS: &[&str] = &[
    "Kongreen",
    "Hexbit",
    "Dataverse Inc",
    "Streamworks",
    "Quanta",
    "Mugshot.com",
    "Acme Analytics",
];
const JOB_KINDS: &[&str] = &["full-time", "part-time", "contract"];
const WORDS: &[&str] = &[
    "love", "this", "phone", "network", "tonight", "coffee", "deadline", "paper", "weather",
    "game", "concert", "great", "terrible", "slow", "fast", "battery", "service", "signal",
    "happy", "meeting", "traffic", "beach", "music", "launch", "release", "update", "crash",
    "awesome", "bug", "query",
];
const TAGS: &[&str] =
    &["tech", "music", "sports", "food", "travel", "news", "movies", "science", "art", "coding"];

fn pick<'a>(rng: &mut StdRng, xs: &'a [&'a str]) -> &'a str {
    xs[rng.gen_range(0..xs.len())]
}

/// Generate one Mugshot user (MugshotUserType's shape, Data definition 1).
pub fn gen_user(rng: &mut StdRng, id: i64, nusers: usize) -> Value {
    let first = pick(rng, FIRST_NAMES);
    let last = pick(rng, LAST_NAMES);
    let user_since = EPOCH_2010 + rng.gen_range(0..4 * YEAR_MILLIS);
    let nfriends = rng.gen_range(1..8usize);
    let friends: Vec<Value> =
        (0..nfriends).map(|_| Value::Int64(rng.gen_range(0..nusers as i64))).collect();
    let nemp = rng.gen_range(0..3usize);
    let employment: Vec<Value> = (0..nemp)
        .map(|_| {
            let start = (user_since / 86_400_000) as i32 - rng.gen_range(0..2000);
            let mut emp = Record::new();
            emp.push_unchecked("organization-name", Value::string(pick(rng, ORGS)));
            emp.push_unchecked("start-date", Value::Date(start));
            if rng.gen_bool(0.5) {
                emp.push_unchecked("end-date", Value::Date(start + rng.gen_range(30..1500)));
            }
            // Open-type extra field (Query 7 probes job-kind, undeclared).
            if rng.gen_bool(0.7) {
                emp.push_unchecked("job-kind", Value::string(pick(rng, JOB_KINDS)));
            }
            Value::record(emp)
        })
        .collect();
    let mut address = Record::new();
    address.push_unchecked("street", Value::string(format!("{} Main St", rng.gen_range(1..999))));
    address.push_unchecked("city", Value::string(pick(rng, CITIES)));
    address.push_unchecked("state", Value::string(pick(rng, STATES)));
    address.push_unchecked("zip", Value::string(format!("{:05}", rng.gen_range(10000..99999))));
    address.push_unchecked("country", Value::string(pick(rng, COUNTRIES)));

    let mut r = Record::new();
    r.push_unchecked("id", Value::Int64(id));
    r.push_unchecked("alias", Value::string(format!("{first}{id}")));
    r.push_unchecked("name", Value::string(format!("{first} {last}")));
    r.push_unchecked("user-since", Value::DateTime(user_since));
    r.push_unchecked("address", Value::record(address));
    r.push_unchecked("friend-ids", Value::unordered_list(friends));
    r.push_unchecked("employment", Value::ordered_list(employment));
    Value::record(r)
}

fn gen_text(rng: &mut StdRng, words: usize) -> String {
    let mut s = String::new();
    for i in 0..words {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(pick(rng, WORDS));
    }
    s
}

/// Generate one Mugshot message (MugshotMessageType's shape).
pub fn gen_message(rng: &mut StdRng, mid: i64, nusers: usize) -> Value {
    let ts = EPOCH_2010 + rng.gen_range(0..4 * YEAR_MILLIS);
    let ntags = rng.gen_range(1..4usize);
    let tags: Vec<Value> = (0..ntags).map(|_| Value::string(pick(rng, TAGS))).collect();
    let mut r = Record::new();
    r.push_unchecked("message-id", Value::Int64(mid));
    r.push_unchecked("author-id", Value::Int64(rng.gen_range(0..nusers as i64)));
    r.push_unchecked("timestamp", Value::DateTime(ts));
    if rng.gen_bool(0.3) {
        r.push_unchecked("in-response-to", Value::Int64(rng.gen_range(0..mid.max(1))));
    }
    if rng.gen_bool(0.8) {
        r.push_unchecked(
            "sender-location",
            Value::Point(Point::new(rng.gen_range(-120.0..-80.0), rng.gen_range(25.0..48.0))),
        );
    }
    r.push_unchecked("tags", Value::unordered_list(tags));
    let nw = rng.gen_range(4..20);
    r.push_unchecked("message", Value::string(gen_text(rng, nw)));
    Value::record(r)
}

/// Generate one tweet (the third §5.3.1 dataset).
pub fn gen_tweet(rng: &mut StdRng, tid: i64, nusers: usize) -> Value {
    let ts = EPOCH_2010 + rng.gen_range(0..4 * YEAR_MILLIS);
    let mut user = Record::new();
    let name = format!("{}{}", pick(rng, FIRST_NAMES), rng.gen_range(0..nusers));
    user.push_unchecked("screen-name", Value::string(&name));
    user.push_unchecked("followers", Value::Int64(rng.gen_range(0..100_000)));
    let mut r = Record::new();
    r.push_unchecked("tweetid", Value::Int64(tid));
    r.push_unchecked("user", Value::record(user));
    r.push_unchecked(
        "sender-location",
        Value::Point(Point::new(rng.gen_range(-120.0..-80.0), rng.gen_range(25.0..48.0))),
    );
    r.push_unchecked("send-time", Value::DateTime(ts));
    r.push_unchecked(
        "referred-topics",
        Value::unordered_list(
            (0..rng.gen_range(1..4usize)).map(|_| Value::string(pick(rng, TAGS))).collect(),
        ),
    );
    let nw = rng.gen_range(3..12);
    r.push_unchecked("message-text", Value::string(gen_text(rng, nw)));
    Value::record(r)
}

/// The three datasets, deterministically generated from a seed.
pub struct Corpus {
    pub users: Vec<Value>,
    pub messages: Vec<Value>,
    pub tweets: Vec<Value>,
}

/// Generate the full corpus.
pub fn generate(scale: &Scale, seed: u64) -> Corpus {
    let mut rng = StdRng::seed_from_u64(seed);
    let users = (0..scale.users as i64).map(|i| gen_user(&mut rng, i, scale.users)).collect();
    let messages =
        (0..scale.messages as i64).map(|i| gen_message(&mut rng, i, scale.users)).collect();
    let tweets = (0..scale.tweets as i64).map(|i| gen_tweet(&mut rng, i, scale.users)).collect();
    Corpus { users, messages, tweets }
}

/// A timestamp range selecting roughly `target` of `total` messages (the
/// paper's small = 300 / large = 3000-or-30000 selectivities, scaled).
pub fn ts_range_for(target: usize, total: usize) -> (i64, i64) {
    let frac = target as f64 / total.max(1) as f64;
    let span = (4 * YEAR_MILLIS) as f64 * frac;
    let start = EPOCH_2010 + YEAR_MILLIS; // away from the edges
    (start, start + span as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_shaped() {
        let scale = Scale::tiny();
        let a = generate(&scale, 42);
        let b = generate(&scale, 42);
        assert_eq!(a.users.len(), 200);
        assert_eq!(a.messages.len(), 1000);
        assert_eq!(
            a.users[7].total_cmp(&b.users[7]),
            std::cmp::Ordering::Equal,
            "same seed, same data"
        );
        let c = generate(&scale, 43);
        assert!(a.users[7].total_cmp(&c.users[7]).is_ne());
        // Shape checks.
        let u = &a.users[0];
        assert!(matches!(u.field("user-since"), Value::DateTime(_)));
        assert!(u.field("address").field("zip").as_str().is_some());
        assert!(u.field("friend-ids").as_list().is_some());
        let m = &a.messages[0];
        assert!(m.field("message").as_str().is_some());
        assert!(m.field("tags").as_list().unwrap().len() <= 3);
    }

    #[test]
    fn ts_range_selectivity_is_close() {
        let scale = Scale::tiny();
        let c = generate(&scale, 7);
        let (lo, hi) = ts_range_for(100, c.messages.len());
        let n = c
            .messages
            .iter()
            .filter(|m| {
                let Value::DateTime(t) = m.field("timestamp") else { return false };
                t >= lo && t < hi
            })
            .count();
        // Uniform timestamps: expect within 3x of the target.
        assert!(n > 30 && n < 300, "selected {n}, wanted ~100");
    }

    #[test]
    fn author_ids_reference_users() {
        let scale = Scale::tiny();
        let c = generate(&scale, 7);
        for m in &c.messages {
            let a = m.field("author-id").as_i64().unwrap();
            assert!(a >= 0 && (a as usize) < scale.users);
        }
    }
}
