//! The five-system Table 3 harness.
//!
//! Each system loads the same [`crate::datagen`] corpus and answers the
//! same workload; the harness validates that all systems return the same
//! row counts before timing anything, then reports per-query times.

use std::sync::Arc;
use std::time::{Duration, Instant};

use asterix_adm::temporal::format_datetime;
use asterix_adm::Value;
use asterix_baselines::docstore::Collection;
use asterix_baselines::relational::{self, NormalizedDataset};
use asterix_baselines::scanengine::Table as OrcTable;
use asterixdb::{ClusterConfig, Instance};

use crate::datagen::Corpus;

/// Which AsterixDB type declaration to use (Table 2/3's Schema vs KeyOnly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemaMode {
    /// All fields declared a priori.
    Schema,
    /// Only the primary key declared (fully open instances).
    KeyOnly,
}

/// The common workload interface all five systems implement.
pub trait Table3System {
    fn name(&self) -> &'static str;

    /// Single-record primary-key fetch.
    fn rec_lookup(&self, id: i64) -> usize;

    /// Messages with timestamp in `[lo, hi)`.
    fn range_scan(&self, lo: i64, hi: i64) -> usize;

    /// Users filtered by user-since range joined with their messages.
    fn sel_join(&self, lo: i64, hi: i64) -> usize;

    /// As `sel_join` plus a timestamp filter on the message side.
    fn sel2_join(&self, ulo: i64, uhi: i64, mlo: i64, mhi: i64) -> usize;

    /// Average message length in a timestamp range.
    fn agg(&self, lo: i64, hi: i64) -> Option<f64>;

    /// Top-10 chattiest authors in a timestamp range; returns group count
    /// reported (≤ 10).
    fn grp_agg(&self, lo: i64, hi: i64) -> usize;

    /// Total storage bytes (Table 2).
    fn size_bytes(&self) -> u64;

    /// Machine-readable runtime counters as one JSON object, for systems
    /// that track them (AsterixDB reports buffer-cache hit rate and
    /// exchange frame/stall totals).
    fn runtime_stats_json(&self) -> Option<String> {
        None
    }
}

/// Insert-capable systems (Table 4; Hive is excluded, as in the paper).
pub trait Table4System {
    fn insert_one(&mut self, doc: &Value);
    fn insert_batch(&mut self, docs: &[Value]);
}

// ---------------------------------------------------------------------------
// AsterixDB
// ---------------------------------------------------------------------------

/// An AsterixDB instance loaded with the corpus.
pub struct AsterixSystem {
    pub instance: Arc<Instance>,
    pub mode: SchemaMode,
    pub indexed: bool,
    _dir: tempfile::TempDir,
}

const SCHEMA_DDL: &str = r#"
    create dataverse Bench;
    use dataverse Bench;
    create type EmploymentType as open {
        organization-name: string,
        start-date: date,
        end-date: date?
    };
    create type AddressType as open {
        street: string, city: string, state: string, zip: string, country: string
    };
    create type MugshotUserType as open {
        id: int64,
        alias: string,
        name: string,
        user-since: datetime,
        address: AddressType,
        friend-ids: {{ int64 }},
        employment: [EmploymentType]
    };
    create type MugshotMessageType as open {
        message-id: int64,
        author-id: int64,
        timestamp: datetime,
        in-response-to: int64?,
        sender-location: point?,
        tags: {{ string }},
        message: string
    };
    create type TweetUserType as open {
        screen-name: string, followers: int64
    };
    create type TweetType as open {
        tweetid: int64,
        user: TweetUserType,
        sender-location: point,
        send-time: datetime,
        referred-topics: {{ string }},
        message-text: string
    };
    create dataset MugshotUsers(MugshotUserType) primary key id;
    create dataset MugshotMessages(MugshotMessageType) primary key message-id;
    create dataset Tweets(TweetType) primary key tweetid;
"#;

const KEYONLY_DDL: &str = r#"
    create dataverse Bench;
    use dataverse Bench;
    create type MugshotUserType as open { id: int64 };
    create type MugshotMessageType as open { message-id: int64 };
    create type TweetType as open { tweetid: int64 };
    create dataset MugshotUsers(MugshotUserType) primary key id;
    create dataset MugshotMessages(MugshotMessageType) primary key message-id;
    create dataset Tweets(TweetType) primary key tweetid;
"#;

const INDEX_DDL: &str = r#"
    use dataverse Bench;
    create index msUserSinceIdx on MugshotUsers(user-since);
    create index msTimestampIdx on MugshotMessages(timestamp);
    create index msAuthorIdx on MugshotMessages(author-id) type btree;
"#;

/// Stand up an AsterixDB instance and load the corpus. The
/// `ASTERIX_BENCH_QUERY_MEM` environment variable (bytes) overrides the
/// per-query working-memory request, so the Table 3 binaries can run
/// memory-pressure sweeps without a recompile.
pub fn setup_asterix(corpus: &Corpus, mode: SchemaMode, indexed: bool) -> AsterixSystem {
    let query_mem = std::env::var("ASTERIX_BENCH_QUERY_MEM").ok().and_then(|v| v.parse().ok());
    setup_asterix_tuned(corpus, mode, indexed, query_mem, None)
}

/// [`setup_asterix`] with explicit workload-manager settings: `query_mem`
/// is the per-query working-memory request the jobs divide across their
/// sorts/groups/joins (small values force spilling), and `max_concurrent`
/// caps simultaneously admitted queries (admission sweeps).
pub fn setup_asterix_tuned(
    corpus: &Corpus,
    mode: SchemaMode,
    indexed: bool,
    query_mem: Option<usize>,
    max_concurrent: Option<usize>,
) -> AsterixSystem {
    setup_asterix_with(corpus, mode, indexed, query_mem, max_concurrent, |_| {})
}

/// [`setup_asterix_tuned`] plus a config hook applied after the env knobs,
/// so ablation harnesses can force a knob both ways inside one process
/// (the env flags cover whole-process A/B runs in CI).
pub fn setup_asterix_with(
    corpus: &Corpus,
    mode: SchemaMode,
    indexed: bool,
    query_mem: Option<usize>,
    max_concurrent: Option<usize>,
    tweak: impl FnOnce(&mut ClusterConfig),
) -> AsterixSystem {
    let dir = tempfile::TempDir::new().expect("tempdir");
    let mut cfg = ClusterConfig::small(dir.path());
    cfg.nodes = 2;
    cfg.partitions_per_node = 2;
    if let Some(m) = query_mem {
        cfg.per_query_mem_bytes = m;
    }
    if let Some(c) = max_concurrent {
        cfg.max_concurrent_queries = c;
    }
    // A/B smoke knobs (CI runs the tiny-scale workload once per knob; the
    // shape checks then double as a results-parity gate for each path).
    let env_flag = |k: &str| std::env::var(k).is_ok_and(|v| v == "1");
    cfg.disable_vectorization = env_flag("ASTERIX_BENCH_DISABLE_VECTORIZATION");
    cfg.disable_runtime_filters = env_flag("ASTERIX_BENCH_DISABLE_RUNTIME_FILTERS");
    cfg.disable_columnar = env_flag("ASTERIX_BENCH_DISABLE_COLUMNAR");
    cfg.disable_plan_cache = env_flag("ASTERIX_BENCH_DISABLE_PLAN_CACHE");
    // Continuous metrics sampling for the bench JSON's time-series block
    // (`ASTERIX_BENCH_SAMPLE_MS=0` disables it).
    let sample_ms = std::env::var("ASTERIX_BENCH_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200u64);
    if sample_ms > 0 {
        cfg.metrics_sample_interval = Some(Duration::from_millis(sample_ms));
    }
    tweak(&mut cfg);
    let instance = Instance::open(cfg).expect("open instance");
    let ddl = match mode {
        SchemaMode::Schema => SCHEMA_DDL,
        SchemaMode::KeyOnly => KEYONLY_DDL,
    };
    instance.execute(ddl).expect("bench DDL");
    if indexed {
        instance.execute(INDEX_DDL).expect("index DDL");
    } else {
        instance.optimizer_options.write().enable_index_access = false;
    }
    let users = instance.dataset("MugshotUsers").unwrap();
    for u in &corpus.users {
        users.insert(u).expect("load user");
    }
    let msgs = instance.dataset("MugshotMessages").unwrap();
    for m in &corpus.messages {
        msgs.insert(m).expect("load message");
    }
    let tweets = instance.dataset("Tweets").unwrap();
    for t in &corpus.tweets {
        tweets.insert(t).expect("load tweet");
    }
    // Settle storage: flush memory components so reads hit disk components
    // (the paper's measurements are warm reads over persisted data).
    users.flush_all().unwrap();
    msgs.flush_all().unwrap();
    tweets.flush_all().unwrap();
    net_smoke(&instance);
    AsterixSystem { instance, mode, indexed, _dir: dir }
}

/// One loopback round-trip through the wire-protocol server, so the
/// `net.*` counters are live in every bench instance's registry (the
/// committed bench JSON carries them and the gate checks key presence).
fn net_smoke(instance: &Arc<Instance>) {
    let server =
        asterix_net::Server::start(Arc::clone(instance), asterix_net::ServerConfig::default())
            .expect("net smoke: server");
    let mut wire =
        asterix_net::Client::connect(server.local_addr(), None).expect("net smoke: connect");
    let rows = wire.query("for $x in [1, 2, 3] return $x").expect("net smoke: query");
    assert_eq!(rows.len(), 3, "net smoke query shape");
    wire.close().expect("net smoke: close");
    server.shutdown();
}

fn dt(ms: i64) -> String {
    format!("datetime(\"{}\")", format_datetime(ms))
}

impl Table3System for AsterixSystem {
    fn name(&self) -> &'static str {
        match (self.mode, self.indexed) {
            (SchemaMode::Schema, true) => "Asterix(Schema)+IX",
            (SchemaMode::Schema, false) => "Asterix(Schema)",
            (SchemaMode::KeyOnly, true) => "Asterix(KeyOnly)+IX",
            (SchemaMode::KeyOnly, false) => "Asterix(KeyOnly)",
        }
    }

    fn rec_lookup(&self, id: i64) -> usize {
        self.instance
            .query(&format!("for $u in dataset MugshotUsers where $u.id = {id} return $u"))
            .expect("rec lookup")
            .len()
    }

    fn range_scan(&self, lo: i64, hi: i64) -> usize {
        self.instance
            .query(&format!(
                "for $m in dataset MugshotMessages \
                 where $m.timestamp >= {} and $m.timestamp < {} return $m",
                dt(lo),
                dt(hi)
            ))
            .expect("range scan")
            .len()
    }

    fn sel_join(&self, lo: i64, hi: i64) -> usize {
        // The indexed variant uses the paper's `indexnl` hint (Query 14);
        // the unindexed variant compiles to a hybrid hash join (§5.1 rule
        // (b)).
        let hint = if self.indexed { "/*+ indexnl */ " } else { "" };
        self.instance
            .query(&format!(
                "for $u in dataset MugshotUsers \
                 for $m in dataset MugshotMessages \
                 where $m.author-id {hint}= $u.id \
                   and $u.user-since >= {} and $u.user-since <= {} \
                 return {{ \"uname\": $u.name, \"message\": $m.message }}",
                dt(lo),
                dt(hi)
            ))
            .expect("sel join")
            .len()
    }

    fn sel2_join(&self, ulo: i64, uhi: i64, mlo: i64, mhi: i64) -> usize {
        let hint = if self.indexed { "/*+ indexnl */ " } else { "" };
        self.instance
            .query(&format!(
                "for $u in dataset MugshotUsers \
                 for $m in dataset MugshotMessages \
                 where $m.author-id {hint}= $u.id \
                   and $u.user-since >= {} and $u.user-since <= {} \
                   and $m.timestamp >= {} and $m.timestamp < {} \
                 return {{ \"uname\": $u.name, \"message\": $m.message }}",
                dt(ulo),
                dt(uhi),
                dt(mlo),
                dt(mhi)
            ))
            .expect("sel2 join")
            .len()
    }

    fn agg(&self, lo: i64, hi: i64) -> Option<f64> {
        // Query 10, verbatim shape.
        let rows = self
            .instance
            .query(&format!(
                "avg( for $m in dataset MugshotMessages \
                      where $m.timestamp >= {} and $m.timestamp < {} \
                      return string-length($m.message) )",
                dt(lo),
                dt(hi)
            ))
            .expect("agg");
        rows.first().and_then(|v| v.as_f64())
    }

    fn grp_agg(&self, lo: i64, hi: i64) -> usize {
        // Query 11 with limit 10.
        self.instance
            .query(&format!(
                "for $m in dataset MugshotMessages \
                 where $m.timestamp >= {} and $m.timestamp < {} \
                 group by $aid := $m.author-id with $m \
                 let $cnt := count($m) \
                 order by $cnt desc \
                 limit 10 \
                 return {{ \"author\": $aid, \"cnt\": $cnt }}",
                dt(lo),
                dt(hi)
            ))
            .expect("grp agg")
            .len()
    }

    fn size_bytes(&self) -> u64 {
        ["MugshotUsers", "MugshotMessages", "Tweets"]
            .iter()
            .map(|d| self.instance.dataset(d).unwrap().primary_size_bytes())
            .sum()
    }

    fn runtime_stats_json(&self) -> Option<String> {
        // Schema-versioned: the legacy flat keys stay for old consumers,
        // and the full registry snapshot rides under the stable `metrics`
        // top-level key.
        let (hits, misses, rate) = self.instance.cache_stats();
        let x = self.instance.exchange_stats();
        Some(format!(
            "{{\"schema_version\":1,\"system\":\"{}\",\"cache_hits\":{hits},\
             \"cache_misses\":{misses},\"cache_hit_rate\":{rate:.4},\
             \"frames_sent\":{},\"tuples_sent\":{},\"bytes_sent\":{},\
             \"backpressure_stalls\":{},\
             \"metrics\":{},\
             \"timeseries\":{}}}",
            self.name(),
            x.frames_sent(),
            x.tuples_sent(),
            x.bytes_sent(),
            x.backpressure_stalls(),
            self.instance.metrics().to_json(),
            self.instance.metrics_timeseries_json(),
        ))
    }
}

impl AsterixSystem {
    /// The runtime-filter showcase join: `sel_join` with the datasets
    /// reversed, so the *build* side is the selective user range and the
    /// *probe* side scans every message. The tiny build publishes its key
    /// filter almost immediately, and the probe prunes partner-less
    /// messages before the repartition exchange — the natural `sel_join`
    /// orientation (selective probe, full build) gives filters nothing to
    /// do. Unhinted on purpose: this must compile to the hybrid hash join.
    pub fn rev_sel_join(&self, lo: i64, hi: i64) -> usize {
        self.instance
            .query(&format!(
                "for $m in dataset MugshotMessages \
                 for $u in dataset MugshotUsers \
                 where $m.author-id = $u.id \
                   and $u.user-since >= {} and $u.user-since <= {} \
                 return {{ \"uname\": $u.name, \"message\": $m.message }}",
                dt(lo),
                dt(hi)
            ))
            .expect("rev sel join")
            .len()
    }
}

// ---------------------------------------------------------------------------
// System-X stand-in
// ---------------------------------------------------------------------------

pub struct SystemX {
    pub users: NormalizedDataset,
    pub messages: NormalizedDataset,
    pub tweets: NormalizedDataset,
    pub indexed: bool,
}

pub fn setup_systemx(corpus: &Corpus, indexed: bool) -> SystemX {
    let mut users = relational::normalize(
        "users",
        &corpus.users,
        "id",
        &[
            "id",
            "alias",
            "name",
            "user-since",
            "address.street",
            "address.city",
            "address.state",
            "address.zip",
            "address.country",
        ],
        &[
            ("friend-ids", &[] as &[&str]),
            ("employment", &["organization-name", "start-date", "end-date"]),
        ],
    );
    let mut messages = relational::normalize(
        "messages",
        &corpus.messages,
        "message-id",
        &["message-id", "author-id", "timestamp", "sender-location", "message"],
        &[("tags", &[] as &[&str])],
    );
    let tweets = relational::normalize(
        "tweets",
        &corpus.tweets,
        "tweetid",
        &["tweetid", "user.screen-name", "send-time", "message-text"],
        &[("referred-topics", &[] as &[&str])],
    );
    // Primary-key indexes always exist in an RDBMS; side tables are keyed
    // by parent.
    users.main.create_index("id");
    messages.main.create_index("message-id");
    for s in users.side.iter_mut().chain(messages.side.iter_mut()) {
        s.create_index("_parent");
    }
    if indexed {
        users.main.create_index("user-since");
        messages.main.create_index("timestamp");
        messages.main.create_index("author-id");
    }
    SystemX { users, messages, tweets, indexed }
}

impl Table3System for SystemX {
    fn name(&self) -> &'static str {
        if self.indexed {
            "System-X+IX"
        } else {
            "System-X"
        }
    }

    fn rec_lookup(&self, id: i64) -> usize {
        // PK lookup plus the small joins to reassemble nested fields.
        let ids = self.users.main.select_range("id", &Value::Int64(id), &Value::Int64(id));
        self.users.reassemble(&ids, "id").len()
    }

    fn range_scan(&self, lo: i64, hi: i64) -> usize {
        let ids = self.messages.main.select_range(
            "timestamp",
            &Value::DateTime(lo),
            &Value::DateTime(hi),
        );
        // Reassembly joins pull the tag bags back in.
        self.messages.reassemble(&ids, "message-id").len()
    }

    fn sel_join(&self, lo: i64, hi: i64) -> usize {
        let uids =
            self.users.main.select_range("user-since", &Value::DateTime(lo), &Value::DateTime(hi));
        relational::join(&self.users.main, &uids, "id", &self.messages.main, "author-id").len()
    }

    fn sel2_join(&self, ulo: i64, uhi: i64, mlo: i64, mhi: i64) -> usize {
        let uids = self.users.main.select_range(
            "user-since",
            &Value::DateTime(ulo),
            &Value::DateTime(uhi),
        );
        let pairs =
            relational::join(&self.users.main, &uids, "id", &self.messages.main, "author-id");
        let ts = self.messages.main.col("timestamp").unwrap();
        pairs
            .iter()
            .filter(|(_, mid)| {
                let Value::DateTime(t) = self.messages.main.rows[*mid][ts] else {
                    return false;
                };
                t >= mlo && t < mhi
            })
            .count()
    }

    fn agg(&self, lo: i64, hi: i64) -> Option<f64> {
        let ids = self.messages.main.select_range(
            "timestamp",
            &Value::DateTime(lo),
            &Value::DateTime(hi),
        );
        let mc = self.messages.main.col("message").unwrap();
        let lens: Vec<f64> = ids
            .iter()
            .filter_map(|&i| {
                self.messages.main.rows[i][mc].as_str().map(|s| s.chars().count() as f64)
            })
            .collect();
        (!lens.is_empty()).then(|| lens.iter().sum::<f64>() / lens.len() as f64)
    }

    fn grp_agg(&self, lo: i64, hi: i64) -> usize {
        let ids = self.messages.main.select_range(
            "timestamp",
            &Value::DateTime(lo),
            &Value::DateTime(hi),
        );
        let ac = self.messages.main.col("author-id").unwrap();
        let mut counts: std::collections::HashMap<i64, usize> = Default::default();
        for &i in &ids {
            if let Some(a) = self.messages.main.rows[i][ac].as_i64() {
                *counts.entry(a).or_default() += 1;
            }
        }
        let mut v: Vec<(i64, usize)> = counts.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1));
        v.truncate(10);
        v.len()
    }

    fn size_bytes(&self) -> u64 {
        self.users.size_bytes() + self.messages.size_bytes() + self.tweets.size_bytes()
    }
}

// ---------------------------------------------------------------------------
// Hive/ORC stand-in
// ---------------------------------------------------------------------------

pub struct HiveLike {
    pub users: OrcTable,
    pub user_employment: OrcTable,
    pub messages: OrcTable,
    pub message_tags: OrcTable,
    pub tweets: OrcTable,
}

pub fn setup_hive(corpus: &Corpus) -> HiveLike {
    // Normalized like System-X (§5.3.1), but columnar + compressed.
    let emp_rows: Vec<Value> = corpus
        .users
        .iter()
        .flat_map(|u| {
            let pid = u.field("id");
            u.field("employment").as_list().map(|l| l.to_vec()).unwrap_or_default().into_iter().map(
                move |e| {
                    let mut r = asterix_adm::Record::new();
                    r.push_unchecked("_parent", pid.clone());
                    r.push_unchecked("organization-name", e.field("organization-name"));
                    r.push_unchecked("start-date", e.field("start-date"));
                    Value::record(r)
                },
            )
        })
        .collect();
    let tag_rows: Vec<Value> = corpus
        .messages
        .iter()
        .flat_map(|m| {
            let pid = m.field("message-id");
            m.field("tags").as_list().map(|l| l.to_vec()).unwrap_or_default().into_iter().map(
                move |t| {
                    let mut r = asterix_adm::Record::new();
                    r.push_unchecked("_parent", pid.clone());
                    r.push_unchecked("tag", t);
                    Value::record(r)
                },
            )
        })
        .collect();
    // Flatten dotted fields for the columnar layout.
    let flat_users: Vec<Value> = corpus
        .users
        .iter()
        .map(|u| {
            let mut r = asterix_adm::Record::new();
            r.push_unchecked("id", u.field("id"));
            r.push_unchecked("alias", u.field("alias"));
            r.push_unchecked("name", u.field("name"));
            r.push_unchecked("user-since", u.field("user-since"));
            r.push_unchecked("zip", u.field("address").field("zip"));
            r.push_unchecked("country", u.field("address").field("country"));
            Value::record(r)
        })
        .collect();
    HiveLike {
        users: OrcTable::from_records(
            &flat_users,
            &["id", "alias", "name", "user-since", "zip", "country"],
        ),
        user_employment: OrcTable::from_records(
            &emp_rows,
            &["_parent", "organization-name", "start-date"],
        ),
        messages: OrcTable::from_records(
            &corpus.messages,
            &["message-id", "author-id", "timestamp", "message"],
        ),
        message_tags: OrcTable::from_records(&tag_rows, &["_parent", "tag"]),
        tweets: OrcTable::from_records(&corpus.tweets, &["tweetid", "send-time", "message-text"]),
    }
}

impl Table3System for HiveLike {
    fn name(&self) -> &'static str {
        "Hive-like"
    }

    fn rec_lookup(&self, id: i64) -> usize {
        // No indexes: full scan even for one record (the parenthesized
        // Table 3 number).
        self.users.scan_where("id", |v| v.as_i64() == Some(id)).len()
    }

    fn range_scan(&self, lo: i64, hi: i64) -> usize {
        self.messages
            .scan_where("timestamp", |v| v.as_i64().is_some_and(|t| t >= lo && t < hi))
            .len()
    }

    fn sel_join(&self, lo: i64, hi: i64) -> usize {
        let uids =
            self.users.scan_where("user-since", |v| v.as_i64().is_some_and(|t| t >= lo && t <= hi));
        let pairs = self.users.hash_join("id", &self.messages, "author-id");
        let uset: std::collections::HashSet<usize> = uids.into_iter().collect();
        pairs.iter().filter(|(u, _)| uset.contains(u)).count()
    }

    fn sel2_join(&self, ulo: i64, uhi: i64, mlo: i64, mhi: i64) -> usize {
        let uids = self
            .users
            .scan_where("user-since", |v| v.as_i64().is_some_and(|t| t >= ulo && t <= uhi));
        let mids = self
            .messages
            .scan_where("timestamp", |v| v.as_i64().is_some_and(|t| t >= mlo && t < mhi));
        let uset: std::collections::HashSet<usize> = uids.into_iter().collect();
        let mset: std::collections::HashSet<usize> = mids.into_iter().collect();
        let pairs = self.users.hash_join("id", &self.messages, "author-id");
        pairs.iter().filter(|(u, m)| uset.contains(u) && mset.contains(m)).count()
    }

    fn agg(&self, lo: i64, hi: i64) -> Option<f64> {
        let rows = self
            .messages
            .scan_where("timestamp", |v| v.as_i64().is_some_and(|t| t >= lo && t < hi));
        let texts = self.messages.gather("message", &rows);
        let lens: Vec<f64> =
            texts.iter().filter_map(|v| v.as_str().map(|s| s.chars().count() as f64)).collect();
        (!lens.is_empty()).then(|| lens.iter().sum::<f64>() / lens.len() as f64)
    }

    fn grp_agg(&self, lo: i64, hi: i64) -> usize {
        let rows = self
            .messages
            .scan_where("timestamp", |v| v.as_i64().is_some_and(|t| t >= lo && t < hi));
        let authors = self.messages.gather("author-id", &rows);
        let mut counts: std::collections::HashMap<i64, usize> = Default::default();
        for a in authors {
            if let Some(a) = a.as_i64() {
                *counts.entry(a).or_default() += 1;
            }
        }
        let mut v: Vec<(i64, usize)> = counts.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1));
        v.truncate(10);
        v.len()
    }

    fn size_bytes(&self) -> u64 {
        self.users.size_bytes()
            + self.user_employment.size_bytes()
            + self.messages.size_bytes()
            + self.message_tags.size_bytes()
            + self.tweets.size_bytes()
    }
}

// ---------------------------------------------------------------------------
// MongoDB stand-in
// ---------------------------------------------------------------------------

pub struct MongoLike {
    pub users: Collection,
    pub messages: Collection,
    pub tweets: Collection,
    pub indexed: bool,
}

pub fn setup_mongo(corpus: &Corpus, indexed: bool) -> MongoLike {
    let mut users = Collection::new("id");
    let mut messages = Collection::new("message-id");
    let mut tweets = Collection::new("tweetid");
    for u in &corpus.users {
        users.insert(u).unwrap();
    }
    for m in &corpus.messages {
        messages.insert(m).unwrap();
    }
    for t in &corpus.tweets {
        tweets.insert(t).unwrap();
    }
    if indexed {
        users.ensure_index("user-since");
        messages.ensure_index("timestamp");
        messages.ensure_index("author-id");
    }
    MongoLike { users, messages, tweets, indexed }
}

impl Table3System for MongoLike {
    fn name(&self) -> &'static str {
        if self.indexed {
            "Mongo-like+IX"
        } else {
            "Mongo-like"
        }
    }

    fn rec_lookup(&self, id: i64) -> usize {
        usize::from(self.users.find_by_pk(&Value::Int64(id)).is_some())
    }

    fn range_scan(&self, lo: i64, hi: i64) -> usize {
        self.messages.find_range("timestamp", &Value::DateTime(lo), &Value::DateTime(hi - 1)).len()
    }

    fn sel_join(&self, lo: i64, hi: i64) -> usize {
        // The paper's client-side join: select users, then bulk-look-up
        // their messages from the client.
        let users = self.users.find_range("user-since", &Value::DateTime(lo), &Value::DateTime(hi));
        let mut n = 0;
        for u in &users {
            let id = u.field("id");
            n += self.messages.find_range("author-id", &id, &id).len();
        }
        n
    }

    fn sel2_join(&self, ulo: i64, uhi: i64, mlo: i64, mhi: i64) -> usize {
        let users =
            self.users.find_range("user-since", &Value::DateTime(ulo), &Value::DateTime(uhi));
        let mut n = 0;
        for u in &users {
            let id = u.field("id");
            n += self
                .messages
                .find_range("author-id", &id, &id)
                .iter()
                .filter(
                    |m| matches!(m.field("timestamp"), Value::DateTime(t) if t >= mlo && t < mhi),
                )
                .count();
        }
        n
    }

    fn agg(&self, lo: i64, hi: i64) -> Option<f64> {
        // The paper used Mongo's map-reduce for this query.
        self.messages.map_reduce_avg(
            |m| matches!(m.field("timestamp"), Value::DateTime(t) if t >= lo && t < hi),
            |m| m.field("message").as_str().map(|s| s.chars().count() as f64).unwrap_or(0.0),
        )
    }

    fn grp_agg(&self, lo: i64, hi: i64) -> usize {
        let msgs = self.messages.scan_filter(
            |m| matches!(m.field("timestamp"), Value::DateTime(t) if t >= lo && t < hi),
        );
        let mut counts: std::collections::HashMap<i64, usize> = Default::default();
        for m in msgs {
            if let Some(a) = m.field("author-id").as_i64() {
                *counts.entry(a).or_default() += 1;
            }
        }
        let mut v: Vec<(i64, usize)> = counts.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1));
        v.truncate(10);
        v.len()
    }

    fn size_bytes(&self) -> u64 {
        self.users.size_bytes() + self.messages.size_bytes() + self.tweets.size_bytes()
    }
}

// ---------------------------------------------------------------------------
// Timing helpers
// ---------------------------------------------------------------------------

/// Run `f` `runs` times after `warmup` discarded runs; returns the average
/// (the paper: 20 runs, first 5 discarded).
pub fn time_avg(warmup: usize, runs: usize, mut f: impl FnMut()) -> Duration {
    for _ in 0..warmup {
        f();
    }
    let start = Instant::now();
    for _ in 0..runs {
        f();
    }
    start.elapsed() / runs.max(1) as u32
}

/// Pretty milliseconds.
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{generate, ts_range_for, Scale};

    /// All five systems agree on every workload answer — the harness's
    /// correctness gate before any timing.
    #[test]
    fn all_systems_agree_on_answers() {
        let scale = Scale::tiny();
        let corpus = generate(&scale, 1);
        let (lo, hi) = ts_range_for(60, corpus.messages.len());
        let (ulo, uhi) = ts_range_for(30, corpus.users.len());

        let asx = setup_asterix(&corpus, SchemaMode::Schema, true);
        let asx_ko = setup_asterix(&corpus, SchemaMode::KeyOnly, false);
        let sx = setup_systemx(&corpus, true);
        let sx_noix = setup_systemx(&corpus, false);
        let hive = setup_hive(&corpus);
        let mongo = setup_mongo(&corpus, true);

        let systems: Vec<&dyn Table3System> = vec![&asx, &asx_ko, &sx, &sx_noix, &hive, &mongo];

        let expected_scan = sx.range_scan(lo, hi);
        assert!(expected_scan > 0, "range must select something");
        for s in &systems {
            assert_eq!(s.rec_lookup(7), 1, "{} rec_lookup", s.name());
            assert_eq!(s.rec_lookup(-5), 0, "{} rec_lookup miss", s.name());
            assert_eq!(s.range_scan(lo, hi), expected_scan, "{} range_scan", s.name());
        }

        let expected_join = sx.sel_join(ulo, uhi);
        for s in &systems {
            assert_eq!(s.sel_join(ulo, uhi), expected_join, "{} sel_join", s.name());
        }

        let expected_join2 = sx.sel2_join(ulo, uhi, lo, hi);
        for s in &systems {
            assert_eq!(s.sel2_join(ulo, uhi, lo, hi), expected_join2, "{} sel2_join", s.name());
        }

        let expected_avg = sx.agg(lo, hi).unwrap();
        for s in &systems {
            let got = s.agg(lo, hi).unwrap();
            assert!((got - expected_avg).abs() < 1e-9, "{}: avg {got} != {expected_avg}", s.name());
        }

        let expected_groups = sx.grp_agg(lo, hi);
        for s in &systems {
            assert_eq!(s.grp_agg(lo, hi), expected_groups, "{} grp_agg", s.name());
        }
    }

    /// The JSON stats sidecar carries live counters once queries have run.
    #[test]
    fn runtime_stats_json_reports_counters() {
        let scale = Scale::tiny();
        let corpus = generate(&scale, 3);
        let asx = setup_asterix(&corpus, SchemaMode::Schema, false);
        let (lo, hi) = ts_range_for(60, corpus.messages.len());
        assert!(asx.range_scan(lo, hi) > 0);
        let json = asx.runtime_stats_json().expect("asterix reports stats");
        for key in [
            "schema_version",
            "cache_hits",
            "cache_misses",
            "cache_hit_rate",
            "frames_sent",
            "tuples_sent",
            "bytes_sent",
            "backpressure_stalls",
            "\"metrics\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // The registry snapshot carries the migrated exchange counters and
        // the per-shard cache counters.
        assert!(json.contains("\"exchange.frames_sent\""), "registry snapshot in {json}");
        assert!(json.contains("\"cache.shard0.hits\""), "per-shard cache in {json}");
        // Pipeline-fusion gauges ride the same snapshot (Table 3/4 JSON).
        assert!(json.contains("\"exchange.pipelines_fused\""), "fusion gauges in {json}");
        assert!(json.contains("\"exchange.fusion_saved_threads\""), "fusion gauges in {json}");
        // Workload-manager counters: the scan above was admitted and got a
        // memory grant, all visible under the rm.* prefix.
        assert!(json.contains("\"rm.admitted\""), "rm counters in {json}");
        assert!(json.contains("\"rm.mem_granted_bytes\""), "rm gauges in {json}");
        assert!(json.contains("\"rm.queue_wait_us\""), "rm histograms in {json}");
        assert!(asx.instance.resource_manager().stats().admitted.get() > 0);
        // A scan moved at least one frame with at least one tuple, and the
        // byte counter measured its serialized occupancy.
        assert!(asx.instance.exchange_stats().frames_sent() > 0);
        assert!(asx.instance.exchange_stats().tuples_sent() > 0);
        assert!(asx.instance.exchange_stats().bytes_sent() > 0);
    }

    /// Squeezing the per-query memory grant changes the physical plans
    /// (spilling sorts/joins, flushing partial groups) but never the
    /// answers.
    #[test]
    fn memory_pressure_sweep_preserves_answers() {
        let scale = Scale::tiny();
        let corpus = generate(&scale, 5);
        let (lo, hi) = ts_range_for(60, corpus.messages.len());
        let roomy = setup_asterix(&corpus, SchemaMode::Schema, false);
        let tight = setup_asterix_tuned(&corpus, SchemaMode::Schema, false, Some(4 << 20), None);
        assert_eq!(tight.range_scan(lo, hi), roomy.range_scan(lo, hi));
        assert_eq!(tight.grp_agg(lo, hi), roomy.grp_agg(lo, hi));
        assert_eq!(tight.agg(lo, hi), roomy.agg(lo, hi));
    }

    /// Table 2's size ordering: Hive (compressed columns) smallest;
    /// KeyOnly (self-describing) larger than Schema (declared fields).
    #[test]
    fn table2_size_ordering_holds() {
        let scale = Scale::tiny();
        let corpus = generate(&scale, 2);
        let schema = setup_asterix(&corpus, SchemaMode::Schema, false);
        let keyonly = setup_asterix(&corpus, SchemaMode::KeyOnly, false);
        let hive = setup_hive(&corpus);
        let mongo = setup_mongo(&corpus, false);
        let s = schema.size_bytes();
        let k = keyonly.size_bytes();
        let h = hive.size_bytes();
        let m = mongo.size_bytes();
        assert!(s < k, "Schema ({s}) must be smaller than KeyOnly ({k})");
        assert!(h < s, "Hive compressed ({h}) must be smallest (schema {s})");
        assert!(m > s, "Mongo ({m}) stores field names, bigger than Schema ({s})");
    }
}
