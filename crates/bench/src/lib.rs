//! # asterix-bench — the evaluation harness (§5.3)
//!
//! Regenerates every table and figure of the paper's evaluation section:
//!
//! * **Table 2** (dataset sizes): [`datagen`] produces the paper's three
//!   synthetic datasets (users, messages, tweets); `bin/table2` stores them
//!   in all five systems and reports sizes.
//! * **Table 3** (query response times): `bin/table3` runs the paper's
//!   read-only workload (record lookup, range scan, two select-joins, two
//!   aggregations — each with and without indexes, small and large
//!   selectivity) against AsterixDB (Schema and KeyOnly configurations) and
//!   the three baseline stand-ins.
//! * **Table 4** (insert times): `bin/table4`, batch sizes 1 and 20.
//! * **Figure 6** (the Hyracks job for Query 10): `bin/fig6_plan` compiles
//!   Query 10 and prints/validates the job shape.
//!
//! Criterion benches under `benches/` cover the same workloads at reduced
//! scale plus ablations (limit-into-sort pushdown, group materialization,
//! LSM merge policies).

pub mod datagen;
pub mod harness;
