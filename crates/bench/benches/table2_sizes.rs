//! Criterion bench for Table 2: times corpus load into each system and
//! reports the resulting storage sizes (the `table2` binary prints the
//! full comparison table).

use criterion::{criterion_group, criterion_main, Criterion};

use asterix_bench::datagen::{generate, Scale};
use asterix_bench::harness::*;

fn bench_table2(c: &mut Criterion) {
    let scale = Scale::tiny();
    let corpus = generate(&scale, 20140702);

    let mut g = c.benchmark_group("table2/load");
    g.sample_size(10);
    g.bench_function("asterix_schema", |b| {
        b.iter(|| {
            let sys = setup_asterix(&corpus, SchemaMode::Schema, false);
            criterion::black_box(sys.size_bytes())
        })
    });
    g.bench_function("asterix_keyonly", |b| {
        b.iter(|| {
            let sys = setup_asterix(&corpus, SchemaMode::KeyOnly, false);
            criterion::black_box(sys.size_bytes())
        })
    });
    g.bench_function("systemx", |b| {
        b.iter(|| criterion::black_box(setup_systemx(&corpus, false).size_bytes()))
    });
    g.bench_function("hive_like", |b| {
        b.iter(|| criterion::black_box(setup_hive(&corpus).size_bytes()))
    });
    g.bench_function("mongo_like", |b| {
        b.iter(|| criterion::black_box(setup_mongo(&corpus, false).size_bytes()))
    });
    g.finish();

    // Print the size comparison once (the Table 2 payload).
    let s = setup_asterix(&corpus, SchemaMode::Schema, false).size_bytes();
    let k = setup_asterix(&corpus, SchemaMode::KeyOnly, false).size_bytes();
    let x = setup_systemx(&corpus, false).size_bytes();
    let h = setup_hive(&corpus).size_bytes();
    let m = setup_mongo(&corpus, false).size_bytes();
    eprintln!("table2 sizes (bytes): schema={s} keyonly={k} systemx={x} hive={h} mongo={m}");
    assert!(s < k && h < s, "Table 2 ordering must hold");
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
