//! Pipeline-fusion microbenchmark: the same scan → select → assign → sink
//! chain run fused (one push-driven thread per partition, tuples stay
//! encoded end-to-end) versus unfused (`disable_fusion`: one thread and a
//! bounded channel per operator partition, a frame copy at every hop).
//!
//! Inside the measured closure we assert the fusion gauges agree with the
//! mode — `pipelines_fused > 0` when fusion is on, `== 0` when forced off —
//! so a regression in the fusion pass fails the bench rather than silently
//! timing the wrong shape.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use parking_lot::Mutex;

use asterix_adm::Value;
use asterix_hyracks::ops::{AssignOp, SelectOp, SinkOp, SourceOp};
use asterix_hyracks::{run_job_with_stats, ConnectorKind, ExchangeStats, ExecutorConfig, JobSpec};

const TUPLES_PER_PART: i64 = 25_000;

/// scan → select (keep even ids) → assign (id*2) → sink, all OneToOne up to
/// the final replicating hop into the single-partition sink.
fn fusion_job(parts: usize) -> JobSpec {
    let mut job = JobSpec::new();
    let src = job.add(
        parts,
        Arc::new(SourceOp::new("gen", |p, _n, emit| {
            for i in 0..TUPLES_PER_PART {
                emit(vec![Value::Int64(i), Value::Int64(p as i64)])?;
            }
            Ok(())
        })),
    );
    let sel = job.add(
        parts,
        Arc::new(SelectOp::with_fields(
            "even",
            Arc::new(|t| Ok(matches!(t.first(), Some(Value::Int64(i)) if i % 2 == 0))),
            vec![0],
        )),
    );
    let asg = job.add(
        parts,
        Arc::new(AssignOp::with_fields(
            "double",
            vec![Arc::new(|t: &Vec<Value>| match t.first() {
                Some(Value::Int64(i)) => Ok(Value::Int64(i * 2)),
                other => Ok(other.cloned().unwrap_or(Value::Missing)),
            })],
            vec![0],
        )),
    );
    let sink = job.add(1, Arc::new(SinkOp::new(Arc::new(Mutex::new(Vec::new())))));
    job.connect(ConnectorKind::OneToOne, src, sel);
    job.connect(ConnectorKind::OneToOne, sel, asg);
    job.connect(ConnectorKind::MToNReplicating, asg, sink);
    job
}

fn bench_fusion(c: &mut Criterion) {
    for parts in [1usize, 4, 8] {
        let mut g = c.benchmark_group(format!("fusion/25k_per_part_p{parts}"));
        g.sample_size(10);
        for (label, disable) in [("fused", false), ("disable_fusion", true)] {
            g.bench_function(label, |b| {
                b.iter(|| {
                    let job = fusion_job(parts);
                    let cfg = ExecutorConfig {
                        partitions_per_node: parts,
                        disable_fusion: disable,
                        ..Default::default()
                    };
                    let stats = Arc::new(ExchangeStats::new());
                    run_job_with_stats(&job, &cfg, &stats).unwrap();
                    if disable {
                        assert_eq!(stats.pipelines_fused(), 0, "fusion must be off");
                    } else {
                        // scan→select→assign fuses per partition, saving two
                        // threads (and two channel hops) each.
                        assert_eq!(stats.pipelines_fused(), parts as i64);
                        assert_eq!(stats.fusion_saved_threads(), 2 * parts as i64);
                    }
                    stats.tuples_sent()
                })
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_fusion);
criterion_main!(benches);
