//! Criterion bench for Table 3's workload (reduced scale; the
//! `table3` binary prints the full 20-row table with shape checks).

use criterion::{criterion_group, criterion_main, Criterion};

use asterix_bench::datagen::{generate, ts_range_for, Scale};
use asterix_bench::harness::*;

fn bench_table3(c: &mut Criterion) {
    let scale = Scale::tiny();
    let corpus = generate(&scale, 20140702);
    let m = corpus.messages.len();
    let u = corpus.users.len();
    let (mlo, mhi) = ts_range_for(m / 20, m);
    let (ulo, uhi) = ts_range_for(u / 20, u);

    let systems_ix: Vec<Box<dyn Table3System>> = vec![
        Box::new(setup_asterix(&corpus, SchemaMode::Schema, true)),
        Box::new(setup_systemx(&corpus, true)),
        Box::new(setup_hive(&corpus)),
        Box::new(setup_mongo(&corpus, true)),
    ];
    let systems_noix: Vec<Box<dyn Table3System>> = vec![
        Box::new(setup_asterix(&corpus, SchemaMode::Schema, false)),
        Box::new(setup_systemx(&corpus, false)),
        Box::new(setup_mongo(&corpus, false)),
    ];

    let mut g = c.benchmark_group("table3/rec_lookup");
    for s in &systems_ix {
        g.bench_function(s.name(), |b| b.iter(|| s.rec_lookup(57)));
    }
    g.finish();

    let mut g = c.benchmark_group("table3/range_scan_ix");
    for s in &systems_ix {
        g.bench_function(s.name(), |b| b.iter(|| s.range_scan(mlo, mhi)));
    }
    g.finish();

    let mut g = c.benchmark_group("table3/range_scan_noix");
    for s in &systems_noix {
        g.bench_function(s.name(), |b| b.iter(|| s.range_scan(mlo, mhi)));
    }
    g.finish();

    let mut g = c.benchmark_group("table3/sel_join_ix");
    g.sample_size(10);
    for s in &systems_ix {
        g.bench_function(s.name(), |b| b.iter(|| s.sel_join(ulo, uhi)));
    }
    g.finish();

    let mut g = c.benchmark_group("table3/agg_ix");
    for s in &systems_ix {
        g.bench_function(s.name(), |b| b.iter(|| s.agg(mlo, mhi)));
    }
    g.finish();

    let mut g = c.benchmark_group("table3/grp_agg_ix");
    for s in &systems_ix {
        g.bench_function(s.name(), |b| b.iter(|| s.grp_agg(mlo, mhi)));
    }
    g.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
