//! Vectorized-evaluation microbenchmarks: the batch (frame-at-a-time)
//! select/project path against the per-tuple scalar path, and the hash
//! join's probe with and without runtime filters.
//!
//! The select rides the ordkey fast path (`id < C` decided by memcmp on
//! encoded comparison keys); `disable_vectorization` forces the decoded
//! per-tuple predicate — the same A/B the `ClusterConfig` knob exposes.
//! The join shape is the one runtime filters exist for: a selective build
//! side against a large probe, where pruning before the exchange saves
//! shipping (and joining) partner-less tuples.

use std::collections::HashSet;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use parking_lot::Mutex;

use asterix_adm::{ordkey, Value};
use asterix_hyracks::filter::{FilterStats, KeyTest};
use asterix_hyracks::ops::{
    CmpKind, HybridHashJoinOp, JoinType, OrdPred, ProjectOp, RuntimeFilterProbeOp, SelectOp,
    SinkOp, SourceOp,
};
use asterix_hyracks::{run_job_with_stats, ConnectorKind, ExchangeStats, ExecutorConfig, JobSpec};

const TUPLES_PER_PART: i64 = 25_000;
const BUILD_KEYS: i64 = 1_000;

/// scan → select (`id < half`, ordkey-classified) → project [id] → sink.
fn select_project_job(parts: usize) -> JobSpec {
    let mut job = JobSpec::new();
    let src = job.add(
        parts,
        Arc::new(SourceOp::new("gen", |_p, _n, emit| {
            for i in 0..TUPLES_PER_PART {
                emit(vec![Value::Int64(i), Value::Int64(i * 7), Value::Int64(i % 97)])?;
            }
            Ok(())
        })),
    );
    let half = Value::Int64(TUPLES_PER_PART / 2);
    let sel = job.add(
        parts,
        Arc::new(
            SelectOp::with_fields(
                "lt-half",
                Arc::new(move |t: &Vec<Value>| {
                    Ok(matches!(t.first(), Some(Value::Int64(i)) if *i < TUPLES_PER_PART / 2))
                }),
                vec![0],
            )
            .with_ordkey(OrdPred {
                col: 0,
                path: None,
                op: CmpKind::Lt,
                key: ordkey::encode_value(&half),
            }),
        ),
    );
    let proj = job.add(parts, Arc::new(ProjectOp { fields: vec![0] }));
    let sink = job.add(1, Arc::new(SinkOp::new(Arc::new(Mutex::new(Vec::new())))));
    job.connect(ConnectorKind::OneToOne, src, sel);
    job.connect(ConnectorKind::OneToOne, sel, proj);
    job.connect(ConnectorKind::MToNReplicating, proj, sink);
    job
}

fn bench_select_project(c: &mut Criterion) {
    for parts in [1usize, 4, 8] {
        let mut g = c.benchmark_group(&format!("vectorized/select_project_p{parts}"));
        g.sample_size(10);
        for (label, disable) in [("batch", false), ("disable_vectorization", true)] {
            g.bench_function(label, |b| {
                b.iter(|| {
                    let job = select_project_job(parts);
                    let cfg = ExecutorConfig {
                        partitions_per_node: parts,
                        disable_vectorization: disable,
                        ..Default::default()
                    };
                    let stats = Arc::new(ExchangeStats::new());
                    run_job_with_stats(&job, &cfg, &stats).unwrap();
                    // Survivor count is mode-independent: half of each
                    // partition's tuples pass, one exchange hop to the sink.
                    assert_eq!(
                        stats.tuples_sent(),
                        (parts as i64 * TUPLES_PER_PART / 2) as u64,
                        "batch and scalar select must agree"
                    );
                    stats.tuples_sent()
                })
            });
        }
        g.finish();
    }
}

/// build (selective) ⋈ probe (large): keys 0..1k against probes 0..25k —
/// 96% of probe tuples have no partner and are prunable pre-exchange.
fn join_job(parts: usize) -> (JobSpec, Arc<Mutex<Vec<Vec<Value>>>>) {
    let mut job = JobSpec::new();
    let build = job.add(
        parts,
        Arc::new(SourceOp::new("build", move |p, n, emit| {
            for i in 0..BUILD_KEYS {
                if i % n as i64 == p as i64 {
                    emit(vec![Value::Int64(i)])?;
                }
            }
            Ok(())
        })),
    );
    let probe = job.add(
        parts,
        Arc::new(SourceOp::new("probe", |_p, _n, emit| {
            for i in 0..TUPLES_PER_PART {
                emit(vec![Value::Int64(i), Value::Int64(i * 3)])?;
            }
            Ok(())
        })),
    );
    let fid = job.alloc_runtime_filter();
    let consult = job.add(
        parts,
        Arc::new(RuntimeFilterProbeOp { filter_id: fid, key_cols: vec![0], join_nparts: parts }),
    );
    let join = job.add(
        parts,
        Arc::new(
            HybridHashJoinOp::new("equi", vec![0], vec![0], JoinType::Inner)
                .with_runtime_filter(fid),
        ),
    );
    let collector = Arc::new(Mutex::new(Vec::new()));
    let sink = job.add(1, Arc::new(SinkOp::new(Arc::clone(&collector))));
    job.connect(ConnectorKind::MToNPartitioning { fields: vec![0] }, build, join);
    job.connect(ConnectorKind::OneToOne, probe, consult);
    job.connect(ConnectorKind::MToNPartitioning { fields: vec![0] }, consult, join);
    job.connect(ConnectorKind::MToNReplicating, join, sink);
    (job, collector)
}

fn bench_join_probe(c: &mut Criterion) {
    for parts in [4usize, 8] {
        let mut g = c.benchmark_group(&format!("vectorized/join_probe_p{parts}"));
        g.sample_size(10);
        for (label, disable) in [("runtime_filter", false), ("disable_runtime_filters", true)] {
            g.bench_function(label, |b| {
                b.iter(|| {
                    let (job, collector) = join_job(parts);
                    let fstats = FilterStats::default();
                    let cfg = ExecutorConfig {
                        partitions_per_node: parts,
                        disable_runtime_filters: disable,
                        // Exact-set filter: prunes every partner-less probe
                        // tuple the publish beat to the consult.
                        filter_factory: Some(Arc::new(|hashes: &[u64]| {
                            let set: HashSet<u64> = hashes.iter().copied().collect();
                            Arc::new(move |h| set.contains(&h)) as KeyTest
                        })),
                        filter_stats: fstats.clone(),
                        ..Default::default()
                    };
                    let stats = Arc::new(ExchangeStats::new());
                    run_job_with_stats(&job, &cfg, &stats).unwrap();
                    // Pruning never changes the join's output: every probe
                    // key 0..1k matches once per partition's probe source.
                    let rows = collector.lock().len();
                    assert_eq!(rows, (parts as i64 * BUILD_KEYS) as usize);
                    if disable {
                        assert_eq!(fstats.published.get(), 0, "filters must be off");
                    }
                    rows
                })
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_select_project, bench_join_probe);
criterion_main!(benches);
