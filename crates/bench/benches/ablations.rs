//! Design-choice ablations called out in DESIGN.md:
//!
//! * **limit-into-sort pushdown** — the paper notes AsterixDB "does not
//!   push limits into sort operations yet" and attributes part of Table 3's
//!   indexed Grp-Aggr gap to it; `push_limit_into_sort` measures what the
//!   missing optimization would buy.
//! * **index access on/off** — rule (a) of §5.1.
//! * **group-aggregate fusion on/off** — the §5.2 lesson: avoid
//!   materializing group lists that are only aggregated (off reproduces
//!   the first release's behavior that the pilots exposed).

use criterion::{criterion_group, criterion_main, Criterion};

use asterix_bench::datagen::{generate, ts_range_for, Scale};
use asterix_bench::harness::{setup_asterix, SchemaMode};

fn bench_ablations(c: &mut Criterion) {
    let scale = Scale::tiny();
    let corpus = generate(&scale, 20140702);
    let m = corpus.messages.len();
    let (lo, hi) = ts_range_for(m / 4, m);
    let sys = setup_asterix(&corpus, SchemaMode::Schema, true);

    let top3 = format!(
        "for $m in dataset MugshotMessages \
         where $m.timestamp >= datetime(\"{}\") and $m.timestamp < datetime(\"{}\") \
         group by $aid := $m.author-id with $m \
         let $cnt := count($m) \
         order by $cnt desc limit 3 \
         return {{ \"author\": $aid, \"cnt\": $cnt }}",
        asterix_adm::temporal::format_datetime(lo),
        asterix_adm::temporal::format_datetime(hi),
    );

    let mut g = c.benchmark_group("ablation/limit_into_sort");
    g.bench_function("paper_behavior_no_pushdown", |b| {
        sys.instance.optimizer_options.write().push_limit_into_sort = false;
        b.iter(|| sys.instance.query(&top3).unwrap())
    });
    g.bench_function("with_pushdown_topk", |b| {
        sys.instance.optimizer_options.write().push_limit_into_sort = true;
        b.iter(|| sys.instance.query(&top3).unwrap())
    });
    g.finish();
    sys.instance.optimizer_options.write().push_limit_into_sort = false;

    let range_q = format!(
        "for $m in dataset MugshotMessages \
         where $m.timestamp >= datetime(\"{}\") and $m.timestamp < datetime(\"{}\") \
         return $m.message-id",
        asterix_adm::temporal::format_datetime(lo),
        asterix_adm::temporal::format_datetime(lo + (hi - lo) / 50),
    );
    let mut g = c.benchmark_group("ablation/index_access_rule");
    g.bench_function("rule_a_on", |b| {
        sys.instance.optimizer_options.write().enable_index_access = true;
        b.iter(|| sys.instance.query(&range_q).unwrap())
    });
    g.bench_function("rule_a_off_scan", |b| {
        sys.instance.optimizer_options.write().enable_index_access = false;
        b.iter(|| sys.instance.query(&range_q).unwrap())
    });
    g.finish();
    sys.instance.optimizer_options.write().enable_index_access = true;

    // Group-materialization avoidance (§5.2): count over a large group,
    // with and without the fusion rule.
    let big_group = "for $m in dataset MugshotMessages \
         group by $a := $m.author-id with $m \
         let $c := count($m) \
         return { \"a\": $a, \"c\": $c }";
    let mut g = c.benchmark_group("ablation/group_materialization");
    g.bench_function("fused_second_release", |b| {
        sys.instance.optimizer_options.write().fuse_group_aggregates = true;
        b.iter(|| sys.instance.query(big_group).unwrap())
    });
    g.bench_function("materialized_first_release", |b| {
        sys.instance.optimizer_options.write().fuse_group_aggregates = false;
        b.iter(|| sys.instance.query(big_group).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
