//! Exchange-layer microbenchmarks: bounded-memory dataflow under
//! backpressure (§4.1's frame-based exchanges) and non-stalling LSM ingest
//! (§4.2: the write path never waits for flush I/O).
//!
//! The first group pushes a fixed tuple volume through a producer →
//! repartition → consumer pipeline at different `frames_in_flight`
//! settings and asserts, inside the measured closure, that peak buffered
//! frames stayed within the configured bound — demonstrating that
//! throughput is bought with a *constant* memory ceiling, not an unbounded
//! queue. The second group compares LSM ingest with background maintenance
//! against an explicit flush-every-batch discipline.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use parking_lot::Mutex;

use asterix_adm::Value;
use asterix_hyracks::ops::{SelectOp, SinkOp, SourceOp};
use asterix_hyracks::{run_job_with_stats, ConnectorKind, ExchangeStats, ExecutorConfig, JobSpec};
use asterix_storage::lsm::{LsmConfig, LsmTree, MergePolicy};
use asterix_storage::{BufferCache, NullObserver};

const TUPLES_PER_PART: i64 = 25_000;
const PARTS: usize = 2;

fn exchange_job() -> JobSpec {
    let mut job = JobSpec::new();
    let src = job.add(
        PARTS,
        Arc::new(SourceOp::new("gen", |p, _n, emit| {
            for i in 0..TUPLES_PER_PART {
                emit(vec![Value::Int64(i), Value::Int64(p as i64)])?;
            }
            Ok(())
        })),
    );
    let pass = job.add(PARTS, Arc::new(SelectOp::new("pass", Arc::new(|_t| Ok(true)))));
    let sink = job.add(1, Arc::new(SinkOp::new(Arc::new(Mutex::new(Vec::new())))));
    job.connect(ConnectorKind::MToNPartitioning { fields: vec![0] }, src, pass);
    job.connect(ConnectorKind::MToNReplicating, pass, sink);
    job
}

fn bench_exchange(c: &mut Criterion) {
    let mut g = c.benchmark_group("exchange/50k_tuples_2x2");
    g.sample_size(10);
    for fif in [1usize, 4, 16] {
        g.bench_function(format!("fif_{fif}"), |b| {
            b.iter(|| {
                let job = exchange_job();
                let cfg = ExecutorConfig {
                    partitions_per_node: 2,
                    frames_in_flight: fif,
                    ..Default::default()
                };
                let stats = Arc::new(ExchangeStats::new());
                run_job_with_stats(&job, &cfg, &stats).unwrap();
                // Bounded-memory claim: every channel holds at most `fif`
                // frames; the job wires PARTS² partitioning channels plus
                // PARTS replicating ones.
                let channels = (PARTS * PARTS + PARTS) as i64;
                let peak = stats.peak_buffered_frames();
                assert!(
                    peak <= fif as i64 * channels,
                    "peak {peak} frames exceeds bound for fif={fif}"
                );
                stats.frames_sent()
            })
        });
    }
    g.finish();
}

/// Frame-size sweep over the same exchange path: small frames amortize
/// badly (one channel send per handful of tuples), big frames batch well.
/// Inside the measured closure we also assert the byte counter is *exact*:
/// every tuple costs its serialized length plus one 4-byte slot entry, so
/// total bytes are independent of how tuples are cut into frames.
fn bench_frame_size(c: &mut Criterion) {
    let wire_tuple_bytes: u64 = {
        let enc = asterix_adm::encode_tuple(&[Value::Int64(0), Value::Int64(0)]);
        enc.len() as u64 + 4 // payload + slot-directory entry
    };
    let total_tuples = (TUPLES_PER_PART * PARTS as i64) as u64;

    let mut g = c.benchmark_group("exchange/frame_size_50k_2x2");
    g.sample_size(10);
    for tpf in [4usize, 64, 1024] {
        g.bench_function(format!("tuples_per_frame_{tpf}"), |b| {
            b.iter(|| {
                let job = exchange_job();
                let cfg = ExecutorConfig {
                    partitions_per_node: 2,
                    frames_in_flight: 8,
                    tuples_per_frame: tpf,
                    ..Default::default()
                };
                let stats = Arc::new(ExchangeStats::new());
                run_job_with_stats(&job, &cfg, &stats).unwrap();
                // Byte-exactness: the partitioning hop and the replicating
                // hop each forward every tuple exactly once, so the counter
                // must equal 2 legs * tuples * per-tuple wire size.
                let expected = 2 * total_tuples * wire_tuple_bytes;
                assert_eq!(
                    stats.bytes_sent(),
                    expected,
                    "exchange bytes must be exact frame occupancy at tpf={tpf}"
                );
                stats.frames_sent()
            })
        });
    }
    g.finish();
}

fn bench_nonstall_ingest(c: &mut Criterion) {
    let mut g = c.benchmark_group("lsm/ingest_20k_x64B");
    g.sample_size(10);

    // Background maintenance: inserts return as soon as the memory
    // component is sealed; flush I/O overlaps ingest.
    g.bench_function("background_flush", |b| {
        b.iter(|| {
            let dir = tempfile::TempDir::new().unwrap();
            let t = LsmTree::open(
                dir.path(),
                LsmConfig {
                    mem_budget: 64 << 10,
                    merge_policy: MergePolicy::NoMerge,
                    ..Default::default()
                },
                BufferCache::new(1024),
                Arc::new(NullObserver),
            )
            .unwrap();
            for i in 0..20_000i64 {
                t.insert(i.to_be_bytes().to_vec(), vec![0u8; 64]).unwrap();
            }
            t.flush().unwrap();
        })
    });

    // Foreground discipline: force a blocking flush at the same cadence the
    // budget would trip, serializing ingest behind flush I/O.
    g.bench_function("foreground_flush", |b| {
        b.iter(|| {
            let dir = tempfile::TempDir::new().unwrap();
            let t = LsmTree::open(
                dir.path(),
                LsmConfig {
                    mem_budget: 64 << 20, // never trips on its own
                    merge_policy: MergePolicy::NoMerge,
                    ..Default::default()
                },
                BufferCache::new(1024),
                Arc::new(NullObserver),
            )
            .unwrap();
            // 64 KiB budget / ~120 bytes per entry ≈ one flush per 546.
            for i in 0..20_000i64 {
                t.insert(i.to_be_bytes().to_vec(), vec![0u8; 64]).unwrap();
                if i % 546 == 545 {
                    t.flush().unwrap();
                }
            }
            t.flush().unwrap();
        })
    });
    g.finish();
}

criterion_group!(benches, bench_exchange, bench_frame_size, bench_nonstall_ingest);
criterion_main!(benches);
