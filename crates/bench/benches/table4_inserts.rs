//! Criterion bench for Table 4: per-record insert cost at batch sizes 1
//! and 20 (the `table4` binary prints the cross-system table).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use asterix_adm::print::to_adm_string;
use asterix_bench::datagen::{gen_message, Corpus};
use asterix_bench::harness::{setup_asterix, SchemaMode};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_inserts(c: &mut Criterion) {
    let corpus = Corpus { users: vec![], messages: vec![], tweets: vec![] };
    let sys = setup_asterix(&corpus, SchemaMode::Schema, true);
    let mut rng = StdRng::seed_from_u64(99);
    let mut next_id = 1_000_000i64;

    let mut g = c.benchmark_group("table4/insert");
    g.sample_size(20);
    g.bench_function("asterix_batch1", |b| {
        b.iter_batched(
            || {
                next_id += 1;
                format!(
                    "insert into dataset MugshotMessages ({});",
                    to_adm_string(&gen_message(&mut rng, next_id, 100))
                )
            },
            |stmt| sys.instance.execute(&stmt).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("asterix_batch20", |b| {
        b.iter_batched(
            || {
                let items: Vec<String> = (0..20)
                    .map(|_| {
                        next_id += 1;
                        to_adm_string(&gen_message(&mut rng, next_id, 100))
                    })
                    .collect();
                format!("insert into dataset MugshotMessages ([{}]);", items.join(", "))
            },
            |stmt| sys.instance.execute(&stmt).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_inserts);
criterion_main!(benches);
