//! LSM storage microbenchmarks: ingestion rate, point lookups against many
//! components (bloom-filter effect), merged scans, and the merge-policy
//! ablation from DESIGN.md (§4.3: merge policies trade write amplification
//! for read cost).

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

use asterix_adm::Value;
use asterix_storage::btree::{LsmBTree, ValueBound};
use asterix_storage::lsm::{LsmConfig, MergePolicy};
use asterix_storage::{BufferCache, NullObserver};

fn tree(dir: &std::path::Path, policy: MergePolicy) -> LsmBTree {
    LsmBTree::open(
        dir,
        1,
        LsmConfig {
            mem_budget: 256 << 10,
            page_size: 4096,
            bloom_fpp: 0.01,
            merge_policy: policy,
            max_frozen: 2,
            columnar: None,
        },
        BufferCache::new(1024),
        Arc::new(NullObserver),
    )
    .unwrap()
}

fn bench_lsm(c: &mut Criterion) {
    // Ingestion (the paper's design goal: LSM for high ingest rates).
    let mut g = c.benchmark_group("lsm/ingest_10k");
    g.sample_size(10);
    for (name, policy) in [
        ("no_merge", MergePolicy::NoMerge),
        ("constant4", MergePolicy::Constant { max: 4 }),
        ("prefix", MergePolicy::default()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let dir = tempfile::TempDir::new().unwrap();
                let t = tree(dir.path(), policy.clone());
                for i in 0..10_000i64 {
                    t.insert(&[Value::Int64(i)], vec![0u8; 64]).unwrap();
                }
            })
        });
    }
    g.finish();

    // Point lookups across many components: merge policy ablation.
    let mut g = c.benchmark_group("lsm/get_after_ingest");
    for (name, policy) in
        [("no_merge", MergePolicy::NoMerge), ("constant4", MergePolicy::Constant { max: 4 })]
    {
        let dir = tempfile::TempDir::new().unwrap();
        let t = tree(dir.path(), policy);
        for i in 0..20_000i64 {
            t.lsm()
                .insert(
                    asterix_storage::keycodec::encode_single(&Value::Int64(i)).unwrap(),
                    vec![0u8; 64],
                )
                .unwrap();
        }
        t.lsm().flush().unwrap();
        eprintln!("{name}: {} disk components", t.lsm().disk_component_count());
        g.bench_function(name, |b| {
            let mut i = 0i64;
            b.iter(|| {
                i = (i + 7919) % 20_000;
                t.get(&[Value::Int64(i)]).unwrap()
            })
        });
    }
    g.finish();

    // Range scans.
    let mut g = c.benchmark_group("lsm/scan_1k_of_20k");
    let dir = tempfile::TempDir::new().unwrap();
    let t = tree(dir.path(), MergePolicy::Constant { max: 4 });
    for i in 0..20_000i64 {
        t.insert(&[Value::Int64(i)], vec![0u8; 64]).unwrap();
    }
    t.lsm().flush().unwrap();
    g.bench_function("range", |b| {
        b.iter(|| {
            t.range(
                &ValueBound::included(Value::Int64(5000)),
                &ValueBound::excluded(Value::Int64(6000)),
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_lsm);
criterion_main!(benches);
