//! Compiled-plan cache microbenchmarks: the cost of a cold compile
//! (parse → translate → optimize → jobgen) versus a cached bind (cache
//! lookup + jobgen with parameters) for the Table 3 indexed-join shape,
//! across cluster widths — jobgen scales with partition count, so the bind
//! cost grows while the saved parse/translate/optimize cost is fixed.
//! A third group measures the end-to-end hot repeat (`query` twice).

use criterion::{criterion_group, criterion_main, Criterion};

use asterix_bench::datagen::{generate, Scale};
use asterix_bench::harness::{setup_asterix_with, SchemaMode};

const JOIN_Q: &str = "for $u in dataset MugshotUsers \
     for $m in dataset MugshotMessages \
     where $m.author-id /*+ indexnl */ = $u.id and $u.id >= 10 and $u.id < 20 \
     return { \"u\": $u.id, \"m\": $m.message-id }";

fn bench_plan_cache(c: &mut Criterion) {
    let scale = Scale::tiny();
    let corpus = generate(&scale, 20140702);
    for (nodes, ppn) in [(1usize, 1usize), (2, 2), (2, 4)] {
        let partitions = nodes * ppn;
        let cached = setup_asterix_with(&corpus, SchemaMode::Schema, true, None, None, |cfg| {
            cfg.nodes = nodes;
            cfg.partitions_per_node = ppn;
            cfg.disable_plan_cache = false;
        });
        let uncached = setup_asterix_with(&corpus, SchemaMode::Schema, true, None, None, |cfg| {
            cfg.nodes = nodes;
            cfg.partitions_per_node = ppn;
            cfg.disable_plan_cache = true;
        });

        // `explain` runs exactly the compile side (no execution): the full
        // chain when the cache is disabled, lookup + parameter bind once
        // the enabled instance's first call has populated the entry.
        let mut g = c.benchmark_group(format!("plan_cache/compile_p{partitions}"));
        g.bench_function("cold_full_chain", |b| b.iter(|| uncached.instance.explain(JOIN_Q)));
        cached.instance.explain(JOIN_Q).unwrap();
        g.bench_function("cached_bind", |b| b.iter(|| cached.instance.explain(JOIN_Q)));
        g.finish();

        // End-to-end hot repeats of the same short query.
        let mut g = c.benchmark_group(format!("plan_cache/hot_query_p{partitions}"));
        g.bench_function("cache_off", |b| b.iter(|| uncached.instance.query(JOIN_Q).unwrap()));
        g.bench_function("cache_on", |b| b.iter(|| cached.instance.query(JOIN_Q).unwrap()));
        g.finish();
    }
}

criterion_group!(benches, bench_plan_cache);
criterion_main!(benches);
