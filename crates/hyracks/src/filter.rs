//! Runtime join-filter pushdown: the hub that carries build-side key
//! membership filters from a hash join's build phase to probe-side
//! producers.
//!
//! At end-of-build, each partition of a [`crate::ops::HybridHashJoinOp`]
//! publishes a filter over the 64-bit hashes of its build-side join keys
//! ([`crate::frame::hash_encoded_fields`] of the key columns — the same
//! hash the probe exchange routes by). Probe-side producers upstream of the
//! exchange (dataset scans and the fused pipeline heads they anchor)
//! consult the filter per tuple and drop tuples whose key hash certainly
//! has no build match, shrinking exchange traffic and probe work.
//!
//! Timing is best-effort by design: probe-side threads start before the
//! build finishes, so early tuples pass unchecked until the filter appears.
//! Correctness never depends on a filter — the membership test may return
//! false positives but never false negatives, so consulting it only ever
//! removes tuples the join would discard anyway (which is also why only
//! INNER joins install filters; outer probes must keep unmatched tuples).
//!
//! The filter *representation* is type-erased: this crate sits below
//! `asterix-storage`, so the bloom-filter implementation is injected as a
//! [`FilterFactory`] (see `ExecutorConfig::filter_factory`; the asterixdb
//! layer installs one backed by `storage::bloom::BloomFilter`). With no
//! factory installed nothing is ever published and every probe passes.

use std::sync::Arc;

use asterix_obs::{Counter, MetricsRegistry};
use parking_lot::Mutex;

/// A type-erased membership test over a 64-bit key hash. False positives
/// allowed, false negatives not.
pub type KeyTest = Arc<dyn Fn(u64) -> bool + Send + Sync>;

/// Builds a [`KeyTest`] from the complete set of build-side key hashes of
/// one join partition.
pub type FilterFactory = Arc<dyn Fn(&[u64]) -> KeyTest + Send + Sync>;

/// `filters.*` observability counters (registered by the instance layer
/// under the `filters` prefix, riding the bench metrics JSON).
#[derive(Clone, Default)]
pub struct FilterStats {
    /// Filters published by join build phases (one per partition).
    pub published: Counter,
    /// Probe-side tuples tested against a published filter.
    pub checked: Counter,
    /// Probe-side tuples dropped before the exchange.
    pub pruned_tuples: Counter,
}

impl FilterStats {
    /// Adopt these live handles into `reg` under `{prefix}.published` etc.
    pub fn register_into(&self, reg: &MetricsRegistry, prefix: &str) {
        reg.register_counter(&format!("{prefix}.published"), &self.published);
        reg.register_counter(&format!("{prefix}.checked"), &self.checked);
        reg.register_counter(&format!("{prefix}.pruned_tuples"), &self.pruned_tuples);
    }
}

/// Per-job registry of runtime filters, one slot per filter id (allocated
/// at jobgen time via `JobSpec::alloc_runtime_filter`), each holding the
/// per-build-partition filters as they are published.
pub struct RuntimeFilterHub {
    factory: Option<FilterFactory>,
    stats: FilterStats,
    slots: Vec<Mutex<Vec<Option<KeyTest>>>>,
}

impl RuntimeFilterHub {
    /// A hub with `nfilters` slots. Without a factory, `publish` is a
    /// no-op and every probe passes unchecked.
    pub fn new(nfilters: usize, factory: Option<FilterFactory>, stats: FilterStats) -> Arc<Self> {
        Arc::new(RuntimeFilterHub {
            factory,
            stats,
            slots: (0..nfilters).map(|_| Mutex::new(Vec::new())).collect(),
        })
    }

    /// The inert hub: no slots, no factory. Default for contexts built
    /// outside a job run (unit tests, standalone operators).
    pub fn disabled() -> Arc<Self> {
        RuntimeFilterHub::new(0, None, FilterStats::default())
    }

    /// Build and publish the filter for `(id, partition)` over the given
    /// key hashes. No-op without a factory or for an unknown id.
    pub fn publish(&self, id: usize, partition: usize, hashes: &[u64]) {
        let (Some(factory), Some(slot)) = (&self.factory, self.slots.get(id)) else {
            return;
        };
        let test = factory(hashes);
        let mut parts = slot.lock();
        if parts.len() <= partition {
            parts.resize(partition + 1, None);
        }
        parts[partition] = Some(test);
        self.stats.published.inc();
    }

    /// The filter published for `(id, partition)`, if any yet. Consumers
    /// cache the returned handle and re-poll only while it is absent.
    pub fn get(&self, id: usize, partition: usize) -> Option<KeyTest> {
        self.slots.get(id)?.lock().get(partition)?.clone()
    }

    /// Number of filter slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The shared stats handles.
    pub fn stats(&self) -> &FilterStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// An exact-set factory for tests (no false positives at all).
    pub(crate) fn exact_factory() -> FilterFactory {
        Arc::new(|hashes: &[u64]| {
            let set: HashSet<u64> = hashes.iter().copied().collect();
            Arc::new(move |h| set.contains(&h)) as KeyTest
        })
    }

    #[test]
    fn publish_then_get_per_partition() {
        let hub = RuntimeFilterHub::new(2, Some(exact_factory()), FilterStats::default());
        assert_eq!(hub.len(), 2);
        assert!(hub.get(0, 0).is_none(), "nothing published yet");
        hub.publish(0, 1, &[7, 9]);
        assert!(hub.get(0, 0).is_none(), "other partition still absent");
        let f = hub.get(0, 1).unwrap();
        assert!(f(7) && f(9) && !f(8));
        assert_eq!(hub.stats().published.get(), 1);
        // Unknown ids are ignored, not panics.
        hub.publish(5, 0, &[1]);
        assert!(hub.get(5, 0).is_none());
    }

    #[test]
    fn disabled_hub_never_publishes() {
        let hub = RuntimeFilterHub::disabled();
        hub.publish(0, 0, &[1, 2, 3]);
        assert!(hub.get(0, 0).is_none());
        assert_eq!(hub.stats().published.get(), 0);
    }

    #[test]
    fn hub_without_factory_passes_everything() {
        let hub = RuntimeFilterHub::new(1, None, FilterStats::default());
        hub.publish(0, 0, &[42]);
        assert!(hub.get(0, 0).is_none(), "no factory, nothing published");
    }

    #[test]
    fn stats_register_under_prefix() {
        let stats = FilterStats::default();
        stats.published.add(2);
        stats.checked.add(10);
        stats.pruned_tuples.add(4);
        let reg = MetricsRegistry::new();
        stats.register_into(&reg, "filters");
        let json = reg.to_json();
        assert!(json.contains("\"filters.published\":2"), "{json}");
        assert!(json.contains("\"filters.checked\":10"), "{json}");
        assert!(json.contains("\"filters.pruned_tuples\":4"), "{json}");
    }
}
