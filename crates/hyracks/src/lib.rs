//! # asterix-hyracks — the data-parallel runtime (§4.1)
//!
//! Hyracks executes Jobs: DAGs of **Operators** connected by **Connectors**.
//! Operators consume partitions of their inputs and produce output
//! partitions; connectors redistribute data between them. This reproduction
//! runs every operator partition on its own thread, with frames (batches of
//! ADM tuples) flowing through channels — the thread-per-partition analogue
//! of the paper's shared-nothing cluster, preserving the same dataflow
//! semantics (partitioning, replication, merging) and the same
//! activity/stage structure (blocking operators like hash-join build or
//! sort run-generation split jobs into stages).
//!
//! The operator library covers the paper's §4.1 inventory: joins
//! (hybrid-hash with Grace-style spilling, nested-loop, index nested-loop),
//! aggregation (hash and preclustered group-by, local/global scalar
//! aggregation), external sort, select/assign/project/limit/unnest, index
//! lifecycle operators (scans, searches, insert/delete), and the six
//! connector kinds.

pub mod connector;
pub mod error;
pub mod executor;
pub mod filter;
pub mod frame;
pub mod job;
pub mod ops;
pub mod pipeline;
pub mod profile;

pub use connector::{Comparator, ConnectorKind, ExchangeConfig, ExchangeStats};
pub use error::{HyracksError, Result};
pub use executor::{run_job, run_job_profiled, run_job_with, run_job_with_stats, ExecutorConfig};
pub use filter::{FilterFactory, FilterStats, KeyTest, RuntimeFilterHub};
pub use frame::{
    hash_encoded_fields, hash_fields, Frame, FrameBuf, FramePool, SelBitmap, Tuple,
    DEFAULT_FRAME_BYTES, FRAME_CAPACITY,
};
pub use job::{FusedChain, FusionPlan, JobSpec, OperatorId};
pub use pipeline::{ExecEnv, PipelineCtx, PipelineOp};
pub use profile::{JobProfile, OperatorProfile, PartitionProfile, PortStat};
