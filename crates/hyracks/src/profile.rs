//! Per-operator runtime profiles.
//!
//! On a profiled run ([`crate::run_job_profiled`]) the executor attaches a
//! [`PortMeter`] to every input and output port of every operator
//! partition and times each partition's `run` body. The result is a
//! [`JobProfile`] keyed by [`OperatorId`] — operator ids are assigned in
//! plan-walk order by the compiler and survive job generation unchanged,
//! so profile rows map straight back to plan nodes (Figure 6 style).

use std::sync::Arc;
use std::time::Duration;

use asterix_obs::Counter;

use crate::job::{JobSpec, OperatorId};

/// Atomic tuple/frame/byte counters for one port of one partition.
/// `bytes` is exact wire accounting: the summed [`crate::Frame`] occupancy
/// (encoded tuple data plus slot directory) moving through the port.
#[derive(Debug, Default)]
pub struct PortMeter {
    pub tuples: Counter,
    pub frames: Counter,
    pub bytes: Counter,
}

impl PortMeter {
    pub fn snapshot(&self) -> PortStat {
        PortStat { tuples: self.tuples.get(), frames: self.frames.get(), bytes: self.bytes.get() }
    }
}

/// A point-in-time reading of one port's meter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PortStat {
    pub tuples: u64,
    pub frames: u64,
    pub bytes: u64,
}

/// One operator partition's measurements: per-port traffic plus busy time
/// (the wall time its thread spent inside `run`, including final drains).
#[derive(Clone, Debug, Default)]
pub struct PartitionProfile {
    pub partition: usize,
    pub inputs: Vec<PortStat>,
    pub outputs: Vec<PortStat>,
    pub busy: Duration,
}

/// All partitions of one operator.
#[derive(Clone, Debug)]
pub struct OperatorProfile {
    pub op: OperatorId,
    pub name: String,
    pub partitions: Vec<PartitionProfile>,
}

impl OperatorProfile {
    fn sum_ports(
        &self,
        f: impl Fn(&PartitionProfile) -> &[PortStat],
        g: impl Fn(&PortStat) -> u64,
    ) -> u64 {
        self.partitions.iter().flat_map(|p| f(p).iter()).map(g).sum()
    }

    /// Tuples that arrived across every input port and partition.
    pub fn tuples_in(&self) -> u64 {
        self.sum_ports(|p| &p.inputs, |s| s.tuples)
    }

    /// Tuples emitted across every output port and partition.
    pub fn tuples_out(&self) -> u64 {
        self.sum_ports(|p| &p.outputs, |s| s.tuples)
    }

    /// Tuples that arrived on one input port (e.g. a hash join's build
    /// side is port 0, its probe side port 1), summed over partitions.
    pub fn tuples_in_port(&self, port: usize) -> u64 {
        self.partitions.iter().filter_map(|p| p.inputs.get(port)).map(|s| s.tuples).sum()
    }

    pub fn frames_in(&self) -> u64 {
        self.sum_ports(|p| &p.inputs, |s| s.frames)
    }

    pub fn frames_out(&self) -> u64 {
        self.sum_ports(|p| &p.outputs, |s| s.frames)
    }

    pub fn bytes_in(&self) -> u64 {
        self.sum_ports(|p| &p.inputs, |s| s.bytes)
    }

    pub fn bytes_out(&self) -> u64 {
        self.sum_ports(|p| &p.outputs, |s| s.bytes)
    }

    /// Summed busy time across partitions (can exceed wall time).
    pub fn busy(&self) -> Duration {
        self.partitions.iter().map(|p| p.busy).sum()
    }
}

/// The profile of one job run: one entry per operator (indexed by
/// [`OperatorId`]), plus the job's wall-clock time.
#[derive(Clone, Debug)]
pub struct JobProfile {
    pub operators: Vec<OperatorProfile>,
    pub elapsed: Duration,
}

impl JobProfile {
    pub fn operator(&self, op: OperatorId) -> Option<&OperatorProfile> {
        self.operators.get(op.0)
    }

    /// First operator whose name starts with `prefix` (operator names come
    /// from the plan: `data-scan DS`, `equi`, `DS.IX`, ...).
    pub fn find(&self, prefix: &str) -> Option<&OperatorProfile> {
        self.operators.iter().find(|o| o.name.starts_with(prefix))
    }

    /// One-line runtime annotation for an operator, used by the extended
    /// explain output.
    pub fn annotation(&self, op: OperatorId) -> Option<String> {
        let o = self.operator(op)?;
        Some(format!(
            "in={} out={} bytes_out={} busy={:.3}ms",
            o.tuples_in(),
            o.tuples_out(),
            o.bytes_out(),
            o.busy().as_secs_f64() * 1000.0,
        ))
    }

    /// A human-readable per-operator table.
    pub fn describe(&self) -> String {
        let mut out = format!(
            "job profile: {} operators, elapsed {:.3}ms\n",
            self.operators.len(),
            self.elapsed.as_secs_f64() * 1000.0
        );
        for o in &self.operators {
            out.push_str(&format!(
                "  [{}] {} (parts={}): in={} out={} frames={}→{} bytes={}→{} busy={:.3}ms\n",
                o.op.0,
                o.name,
                o.partitions.len(),
                o.tuples_in(),
                o.tuples_out(),
                o.frames_in(),
                o.frames_out(),
                o.bytes_in(),
                o.bytes_out(),
                o.busy().as_secs_f64() * 1000.0,
            ));
        }
        out
    }
}

/// Executor-internal collection state for one operator partition: the
/// meters handed to its ports (in connector order) and its busy time.
#[derive(Debug, Default)]
pub(crate) struct PartitionMeters {
    pub inputs: Vec<Arc<PortMeter>>,
    pub outputs: Vec<Arc<PortMeter>>,
    pub busy: Arc<parking_lot::Mutex<Duration>>,
}

/// Per-(operator, partition) meter matrix for one profiled run.
#[derive(Debug, Default)]
pub(crate) struct ProfileBuilder {
    /// `meters[op][partition]`.
    pub meters: Vec<Vec<PartitionMeters>>,
}

impl ProfileBuilder {
    pub fn for_job(job: &JobSpec) -> ProfileBuilder {
        let meters = (0..job.op_count())
            .map(|op| {
                (0..job.partitions(OperatorId(op))).map(|_| PartitionMeters::default()).collect()
            })
            .collect();
        ProfileBuilder { meters }
    }

    pub fn finish(self, job: &JobSpec, elapsed: Duration) -> JobProfile {
        let operators = self
            .meters
            .into_iter()
            .enumerate()
            .map(|(op, parts)| OperatorProfile {
                op: OperatorId(op),
                name: job.op_name(OperatorId(op)),
                partitions: parts
                    .into_iter()
                    .enumerate()
                    .map(|(p, m)| PartitionProfile {
                        partition: p,
                        inputs: m.inputs.iter().map(|x| x.snapshot()).collect(),
                        outputs: m.outputs.iter().map(|x| x.snapshot()).collect(),
                        busy: *m.busy.lock(),
                    })
                    .collect(),
            })
            .collect();
        JobProfile { operators, elapsed }
    }
}
