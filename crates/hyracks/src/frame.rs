//! Byte frames and tuples — the unit of dataflow between operators.
//!
//! Hyracks moves fixed-size *byte frames* of serialized tuples between
//! operators (Section 4.1); comparators, hashers and partitioners work on
//! the bytes directly. [`FrameBuf`] is that frame: a byte buffer of
//! offset-prefixed tuple encodings (see `asterix_adm::tuple`) plus a slot
//! directory addressing each tuple. Hyracks proper writes the slot
//! directory at the frame's tail growing backwards; here it lives in a
//! companion array, and [`FrameBuf::occupancy`] accounts for it at 4 bytes
//! per slot exactly as the tail layout would — so summed occupancy is the
//! byte-exact wire size of the exchange.

use crossbeam::queue::SegQueue;
use std::sync::OnceLock;

use asterix_adm::{encode_tuple_into, AdmError, TupleRef, Value};

/// A decoded runtime tuple: positional ADM values. Field-name → position
/// mapping is a compile-time (Algebricks) concern; the runtime is purely
/// positional. This remains the operator-boundary type for staged
/// migration; the *channel* type between operators is [`FrameBuf`].
pub type Tuple = Vec<Value>;

/// Default tuples per frame (the flush threshold on tuple count).
pub const FRAME_CAPACITY: usize = 1024;

/// Default byte capacity of a frame (the flush threshold on occupancy).
pub const DEFAULT_FRAME_BYTES: usize = 32 * 1024;

/// A frame: a batch of serialized tuples moved through a connector in one
/// channel send, amortizing synchronization cost.
#[derive(Default)]
pub struct FrameBuf {
    /// Concatenated offset-prefixed tuple encodings.
    data: Vec<u8>,
    /// Slot directory: exclusive end offset of each tuple in `data`.
    slots: Vec<u32>,
}

/// `Frame` as sent and received by connector channels is the serialized
/// byte frame.
pub type Frame = FrameBuf;

impl FrameBuf {
    pub fn new() -> FrameBuf {
        FrameBuf { data: Vec::with_capacity(DEFAULT_FRAME_BYTES), slots: Vec::with_capacity(64) }
    }

    /// Serialize `t` and append it.
    pub fn push_tuple(&mut self, t: &[Value]) {
        encode_tuple_into(&mut self.data, t);
        self.slots.push(self.data.len() as u32);
    }

    /// Append an already-encoded tuple verbatim (the zero-copy re-slice
    /// path: forwarding operators never decode).
    pub fn push_encoded(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
        self.slots.push(self.data.len() as u32);
    }

    /// Number of tuples in the frame.
    pub fn tuple_count(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Occupied wire bytes: tuple data plus 4 bytes of slot directory per
    /// tuple. Exchange byte counters sum exactly this.
    pub fn occupancy(&self) -> usize {
        self.data.len() + 4 * self.slots.len()
    }

    /// The encoded bytes of tuple `i`.
    pub fn tuple_bytes(&self, i: usize) -> &[u8] {
        let start = if i == 0 { 0 } else { self.slots[i - 1] as usize };
        &self.data[start..self.slots[i] as usize]
    }

    /// Zero-copy accessor over tuple `i`.
    pub fn tuple_ref(&self, i: usize) -> Result<TupleRef<'_>, AdmError> {
        TupleRef::new(self.tuple_bytes(i))
    }

    /// Iterate the encoded tuples.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        (0..self.tuple_count()).map(move |i| self.tuple_bytes(i))
    }

    /// Decode tuple `i` into owned values (the staged-migration boundary).
    pub fn decode_tuple(&self, i: usize) -> Result<Tuple, AdmError> {
        self.tuple_ref(i)?.decode()
    }

    /// Drop all tuples, keeping both backing allocations.
    pub fn clear(&mut self) {
        self.data.clear();
        self.slots.clear();
    }

    /// Bulk-append every tuple of `other`: one data copy plus a rebased
    /// slot run, instead of `tuple_count` `push_encoded` calls.
    pub fn append_frame(&mut self, other: &FrameBuf) {
        let base = self.data.len() as u32;
        self.data.extend_from_slice(&other.data);
        self.slots.extend(other.slots.iter().map(|&s| s + base));
    }

    /// Copy the tuples selected by `keep` into `dst` (appending), walking
    /// the slot directory once and coalescing each maximal run of kept
    /// tuples into a single data copy — the batch select's slot-compacting
    /// emission. Bits at or beyond `tuple_count` are ignored.
    pub fn compact_into(&self, keep: &SelBitmap, dst: &mut FrameBuf) {
        let n = self.tuple_count();
        let mut i = 0;
        while i < n {
            if !keep.get(i) {
                i += 1;
                continue;
            }
            let mut j = i + 1;
            while j < n && keep.get(j) {
                j += 1;
            }
            let start = if i == 0 { 0 } else { self.slots[i - 1] as usize };
            let end = self.slots[j - 1] as usize;
            let rebase = (dst.data.len() as u32).wrapping_sub(start as u32);
            dst.data.extend_from_slice(&self.data[start..end]);
            dst.slots.extend(self.slots[i..j].iter().map(|&s| s.wrapping_add(rebase)));
            i = j;
        }
    }
}

/// A selection bitmap over one frame's slot directory: the batch select
/// path evaluates the predicate for every slot first, then emits survivors
/// with [`FrameBuf::compact_into`] in one pass. Backed by `u64` words; the
/// allocation is reused across frames.
#[derive(Default)]
pub struct SelBitmap {
    words: Vec<u64>,
    len: usize,
}

impl SelBitmap {
    pub fn new() -> SelBitmap {
        SelBitmap::default()
    }

    /// Clear and resize to cover `len` slots, all unselected.
    pub fn reset(&mut self, len: usize) {
        self.len = len;
        self.words.clear();
        self.words.resize(len.div_ceil(64), 0);
    }

    /// Select slot `i`.
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Is slot `i` selected?
    pub fn get(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of slots covered.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of selected slots.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Every covered slot selected?
    pub fn all(&self) -> bool {
        self.count() == self.len
    }
}

/// A lock-free pool of recycled frames shared by the ports of one job run.
///
/// Hyracks proper allocates fixed-size byte frames once and circulates
/// them; here the analogue is reusing the byte buffer and slot directory
/// backing each [`FrameBuf`] so steady-state exchange does no per-frame
/// allocation: receivers return drained frames via [`FramePool::give`],
/// senders grab them back via [`FramePool::take`].
pub struct FramePool {
    frames: SegQueue<Frame>,
    max_pooled: usize,
}

impl Default for FramePool {
    fn default() -> Self {
        FramePool::new()
    }
}

impl FramePool {
    /// A pool retaining at most a generous default number of idle frames.
    pub fn new() -> FramePool {
        FramePool::with_max(4096)
    }

    /// A pool retaining at most `max_pooled` idle frames; surplus returns
    /// are dropped so the pool itself cannot hoard memory.
    pub fn with_max(max_pooled: usize) -> FramePool {
        FramePool { frames: SegQueue::new(), max_pooled }
    }

    /// Take a cleared frame, reusing a recycled one when available.
    pub fn take(&self) -> Frame {
        self.frames.pop().unwrap_or_else(FrameBuf::new)
    }

    /// Return a frame for reuse. Its tuples are dropped; the backing
    /// allocations are kept.
    pub fn give(&self, mut frame: Frame) {
        if self.frames.len() < self.max_pooled {
            frame.clear();
            self.frames.push(frame);
        }
    }

    /// Idle frames currently pooled (used by tests and stats).
    pub fn pooled(&self) -> usize {
        self.frames.len()
    }
}

/// The stable hash of an absent field. A distinguished value — *not* 0 —
/// so a missing field can never collide with a present value whose
/// `stable_hash` happens to be 0.
fn missing_hash() -> u64 {
    static H: OnceLock<u64> = OnceLock::new();
    *H.get_or_init(|| Value::Missing.stable_hash())
}

/// Compute the hash of the given tuple fields, for hash partitioning and
/// hash joins. Uses the ADM stable hash so equal-comparing values (across
/// numeric widths) land in the same partition; absent fields hash as
/// MISSING.
pub fn hash_fields(tuple: &Tuple, fields: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &f in fields {
        let vh = tuple.get(f).map_or_else(missing_hash, |v| v.stable_hash());
        h ^= vh;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// [`hash_fields`] computed directly over an encoded tuple, bit-identical
/// to the decoded version: `ValueRef::stable_hash` replays the exact
/// hasher sequence of `Value::stable_hash`, and an out-of-range field
/// yields the MISSING encoding, which hashes as `Value::Missing`.
pub fn hash_encoded_fields(tuple: &TupleRef<'_>, fields: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &f in fields {
        h ^= tuple.field(f).stable_hash();
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use asterix_adm::encode_tuple;

    #[test]
    fn hash_respects_numeric_promotion() {
        let a: Tuple = vec![Value::Int32(5), Value::string("x")];
        let b: Tuple = vec![Value::Int64(5), Value::string("x")];
        assert_eq!(hash_fields(&a, &[0, 1]), hash_fields(&b, &[0, 1]));
        let c: Tuple = vec![Value::Int64(6), Value::string("x")];
        assert_ne!(hash_fields(&a, &[0]), hash_fields(&c, &[0]));
    }

    #[test]
    fn missing_fields_hash_consistently() {
        let a: Tuple = vec![Value::Int32(1)];
        assert_eq!(hash_fields(&a, &[5]), hash_fields(&a, &[9]));
    }

    #[test]
    fn missing_field_hash_is_distinguished_from_zero_hash() {
        // An absent field must not collide with any "hash 0" sentinel: it
        // hashes exactly as an explicit MISSING value does.
        let absent: Tuple = vec![];
        let explicit: Tuple = vec![Value::Missing];
        assert_eq!(hash_fields(&absent, &[0]), hash_fields(&explicit, &[0]));
        assert_ne!(
            hash_fields(&absent, &[0]),
            0xcbf2_9ce4_8422_2325u64.wrapping_mul(0x0000_0100_0000_01b3)
        );
    }

    #[test]
    fn encoded_hash_is_bit_identical_to_decoded_hash() {
        let tuples: Vec<Tuple> = vec![
            vec![Value::Int32(5), Value::string("x")],
            vec![Value::Int64(5), Value::string("x")],
            vec![Value::Missing, Value::Null, Value::Double(2.5)],
            vec![],
        ];
        for t in &tuples {
            let enc = encode_tuple(t);
            let r = TupleRef::new(&enc).unwrap();
            for fields in [&[0usize][..], &[0, 1], &[2], &[7], &[1, 5, 0]] {
                assert_eq!(
                    hash_fields(t, fields),
                    hash_encoded_fields(&r, fields),
                    "hash mismatch for {t:?} fields {fields:?}"
                );
            }
        }
    }

    #[test]
    fn frame_occupancy_is_byte_exact() {
        let mut f = FrameBuf::new();
        let t1 = encode_tuple(&[Value::Int64(1), Value::string("abc")]);
        let t2 = encode_tuple(&[Value::Null]);
        f.push_encoded(&t1);
        f.push_tuple(&[Value::Null]);
        assert_eq!(f.tuple_count(), 2);
        assert_eq!(f.occupancy(), t1.len() + t2.len() + 2 * 4);
        assert_eq!(f.tuple_bytes(0), &t1[..]);
        assert_eq!(f.tuple_bytes(1), &t2[..]);
        assert_eq!(f.decode_tuple(1).unwrap(), vec![Value::Null]);
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.occupancy(), 0);
    }

    #[test]
    fn compact_into_matches_per_tuple_filter() {
        let tuples: Vec<Tuple> =
            (0..10).map(|i| vec![Value::Int64(i), Value::string(format!("row{i}"))]).collect();
        let mut src = FrameBuf::new();
        for t in &tuples {
            src.push_tuple(t);
        }
        // Several selection shapes: runs, singletons, empty, full.
        let shapes: Vec<Vec<usize>> = vec![
            vec![],
            (0..10).collect(),
            vec![0, 1, 2, 7, 8],
            vec![9],
            vec![0, 2, 4, 6, 8],
            vec![3, 4, 5],
        ];
        for shape in shapes {
            let mut keep = SelBitmap::new();
            keep.reset(src.tuple_count());
            for &i in &shape {
                keep.set(i);
            }
            assert_eq!(keep.count(), shape.len());
            let mut dst = FrameBuf::new();
            dst.push_tuple(&[Value::string("pre-existing")]);
            src.compact_into(&keep, &mut dst);
            assert_eq!(dst.tuple_count(), 1 + shape.len(), "shape {shape:?}");
            for (k, &i) in shape.iter().enumerate() {
                assert_eq!(dst.tuple_bytes(1 + k), src.tuple_bytes(i), "shape {shape:?} slot {i}");
            }
        }
    }

    #[test]
    fn append_frame_is_bulk_push_encoded() {
        let mut a = FrameBuf::new();
        let mut b = FrameBuf::new();
        a.push_tuple(&[Value::Int64(1)]);
        b.push_tuple(&[Value::string("x")]);
        b.push_tuple(&[Value::Null, Value::Int64(2)]);
        let mut expect = FrameBuf::new();
        expect.push_encoded(a.tuple_bytes(0));
        for t in b.iter() {
            expect.push_encoded(t);
        }
        a.append_frame(&b);
        assert_eq!(a.tuple_count(), 3);
        assert_eq!(a.occupancy(), expect.occupancy());
        for i in 0..3 {
            assert_eq!(a.tuple_bytes(i), expect.tuple_bytes(i));
        }
        // Appending an empty frame is a no-op.
        a.append_frame(&FrameBuf::new());
        assert_eq!(a.tuple_count(), 3);
    }

    #[test]
    fn sel_bitmap_basics() {
        let mut s = SelBitmap::new();
        s.reset(70);
        assert_eq!(s.len(), 70);
        assert_eq!(s.count(), 0);
        assert!(!s.all());
        for i in 0..70 {
            s.set(i);
        }
        assert!(s.all());
        assert!(!s.get(70), "out-of-range reads are false");
        s.reset(3);
        assert_eq!(s.count(), 0, "reset clears prior bits");
        s.set(2);
        assert!(s.get(2) && !s.get(0));
    }

    #[test]
    fn pool_recycles_byte_buffers() {
        let pool = FramePool::with_max(2);
        let mut f = pool.take();
        f.push_tuple(&[Value::Int64(7)]);
        pool.give(f);
        assert_eq!(pool.pooled(), 1);
        let f = pool.take();
        assert!(f.is_empty(), "recycled frame comes back cleared");
        assert_eq!(pool.pooled(), 0);
    }
}
