//! Tuples and frames — the unit of dataflow between operators.

use crossbeam::queue::SegQueue;

use asterix_adm::Value;

/// A runtime tuple: positional ADM values. Field-name → position mapping is
/// a compile-time (Algebricks) concern; the runtime is purely positional.
pub type Tuple = Vec<Value>;

/// A frame: a batch of tuples moved through a connector in one channel
/// send, amortizing synchronization cost (the analogue of Hyracks' byte
/// frames).
pub type Frame = Vec<Tuple>;

/// Default tuples per frame.
pub const FRAME_CAPACITY: usize = 1024;

/// A lock-free pool of recycled frames shared by the ports of one job run.
///
/// Hyracks proper allocates fixed-size byte frames once and circulates them;
/// here the analogue is reusing the `Vec` backing each frame so steady-state
/// exchange does no per-frame allocation: receivers return drained frames
/// via [`FramePool::give`], senders grab them back via [`FramePool::take`].
pub struct FramePool {
    frames: SegQueue<Frame>,
    max_pooled: usize,
}

impl Default for FramePool {
    fn default() -> Self {
        FramePool::new()
    }
}

impl FramePool {
    /// A pool retaining at most a generous default number of idle frames.
    pub fn new() -> FramePool {
        FramePool::with_max(4096)
    }

    /// A pool retaining at most `max_pooled` idle frames; surplus returns
    /// are dropped so the pool itself cannot hoard memory.
    pub fn with_max(max_pooled: usize) -> FramePool {
        FramePool { frames: SegQueue::new(), max_pooled }
    }

    /// Take a cleared frame, reusing a recycled one when available.
    pub fn take(&self) -> Frame {
        self.frames.pop().unwrap_or_else(|| Frame::with_capacity(FRAME_CAPACITY))
    }

    /// Return a frame for reuse. Its tuples are dropped; the backing
    /// allocation is kept.
    pub fn give(&self, mut frame: Frame) {
        if self.frames.len() < self.max_pooled {
            frame.clear();
            self.frames.push(frame);
        }
    }

    /// Idle frames currently pooled (used by tests and stats).
    pub fn pooled(&self) -> usize {
        self.frames.len()
    }
}

/// Compute the hash of the given tuple fields, for hash partitioning and
/// hash joins. Uses the ADM stable hash so equal-comparing values (across
/// numeric widths) land in the same partition.
pub fn hash_fields(tuple: &Tuple, fields: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &f in fields {
        let vh = tuple.get(f).map_or(0, |v| v.stable_hash());
        h ^= vh;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_respects_numeric_promotion() {
        let a: Tuple = vec![Value::Int32(5), Value::string("x")];
        let b: Tuple = vec![Value::Int64(5), Value::string("x")];
        assert_eq!(hash_fields(&a, &[0, 1]), hash_fields(&b, &[0, 1]));
        let c: Tuple = vec![Value::Int64(6), Value::string("x")];
        assert_ne!(hash_fields(&a, &[0]), hash_fields(&c, &[0]));
    }

    #[test]
    fn missing_fields_hash_consistently() {
        let a: Tuple = vec![Value::Int32(1)];
        assert_eq!(hash_fields(&a, &[5]), hash_fields(&a, &[9]));
    }
}
