//! Job specifications: DAGs of operators and connectors, plus the
//! activity/stage analysis of §4.1.
//!
//! "As the first step in the execution of a submitted Hyracks Job, its
//! Operators are expanded into their constituent Activities. [...] the
//! separation of an Operator into two or more Activities surfaces the
//! constraint that it can produce no output until all of its input has been
//! consumed." Stages are maximal sets of activities executable together.

use std::sync::Arc;

use crate::connector::ConnectorKind;
use crate::ops::OperatorDescriptor;
use crate::Result;

/// Identifies an operator within a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OperatorId(pub usize);

pub(crate) struct OpNode {
    pub desc: Arc<dyn OperatorDescriptor>,
    pub nparts: usize,
}

pub(crate) struct ConnSpec {
    pub kind: ConnectorKind,
    pub src: OperatorId,
    pub dst: OperatorId,
}

/// A Hyracks job: a DAG of operators and connectors.
#[derive(Default)]
pub struct JobSpec {
    pub(crate) ops: Vec<OpNode>,
    pub(crate) conns: Vec<ConnSpec>,
    /// Runtime join filters allocated for this job (see
    /// [`JobSpec::alloc_runtime_filter`]); sizes the per-job
    /// [`crate::filter::RuntimeFilterHub`].
    nfilters: usize,
}

/// One maximal fused chain: the operators that share a thread per
/// partition, head first. A chain of length 1 is an unfused operator.
#[derive(Debug, Clone)]
pub struct FusedChain {
    /// Chain members in push order (head runs its `run` body; the rest run
    /// as push stages).
    pub ops: Vec<OperatorId>,
    /// Partition count shared by every member.
    pub nparts: usize,
}

/// The executor's pipeline-fusion plan for one job (see
/// [`JobSpec::fusion_plan`]).
#[derive(Debug, Clone)]
pub struct FusionPlan {
    /// Every operator appears in exactly one chain.
    pub chains: Vec<FusedChain>,
    /// Per-connector flag: `true` when the edge is fused away (no channel
    /// is wired for it).
    pub(crate) fused_conns: Vec<bool>,
}

impl FusionPlan {
    /// Threads the job will spawn: one per (chain, partition) — this is
    /// what `ExecutorConfig::max_threads` guards under fusion.
    pub fn total_threads(&self) -> usize {
        self.chains.iter().map(|c| c.nparts).sum()
    }

    /// Operator-partition pipelines running fused (chains of length ≥ 2).
    pub fn fused_pipelines(&self) -> usize {
        self.chains.iter().filter(|c| c.ops.len() >= 2).map(|c| c.nparts).sum()
    }

    /// Threads saved versus one thread per (operator, partition).
    pub fn saved_threads(&self) -> usize {
        self.chains.iter().map(|c| (c.ops.len() - 1) * c.nparts).sum()
    }
}

impl JobSpec {
    pub fn new() -> JobSpec {
        JobSpec::default()
    }

    /// Add an operator running with `nparts` partitions.
    pub fn add(&mut self, nparts: usize, desc: Arc<dyn OperatorDescriptor>) -> OperatorId {
        self.ops.push(OpNode { desc, nparts: nparts.max(1) });
        OperatorId(self.ops.len() - 1)
    }

    /// Connect `src`'s next output to `dst`'s next input through `kind`.
    /// Input/output indexes are assigned in connection order.
    pub fn connect(&mut self, kind: ConnectorKind, src: OperatorId, dst: OperatorId) {
        self.conns.push(ConnSpec { kind, src, dst });
    }

    /// Number of operators.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Allocate a runtime-filter slot, pairing a join's build side (which
    /// publishes into it) with probe-side consult stages. Returns the
    /// filter id to hand both ends.
    pub fn alloc_runtime_filter(&mut self) -> usize {
        self.nfilters += 1;
        self.nfilters - 1
    }

    /// Runtime-filter slots this job allocated.
    pub fn nfilters(&self) -> usize {
        self.nfilters
    }

    /// Partition count of an operator.
    pub fn partitions(&self, op: OperatorId) -> usize {
        self.ops[op.0].nparts
    }

    /// Operator display name.
    pub fn op_name(&self, op: OperatorId) -> String {
        self.ops[op.0].desc.name()
    }

    /// Incoming connector indexes of `dst`, in input order.
    pub(crate) fn inputs_of(&self, dst: OperatorId) -> Vec<usize> {
        self.conns.iter().enumerate().filter_map(|(i, c)| (c.dst == dst).then_some(i)).collect()
    }

    /// Outgoing connector indexes of `src`, in output order.
    pub(crate) fn outputs_of(&self, src: OperatorId) -> Vec<usize> {
        self.conns.iter().enumerate().filter_map(|(i, c)| (c.src == src).then_some(i)).collect()
    }

    /// Topological order of operators; errors on cycles.
    pub fn topo_order(&self) -> Result<Vec<OperatorId>> {
        let n = self.ops.len();
        let mut indegree = vec![0usize; n];
        for c in &self.conns {
            indegree[c.dst.0] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut out = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            out.push(OperatorId(i));
            for c in &self.conns {
                if c.src.0 == i {
                    indegree[c.dst.0] -= 1;
                    if indegree[c.dst.0] == 0 {
                        queue.push(c.dst.0);
                    }
                }
            }
        }
        if out.len() != n {
            return Err(crate::HyracksError::InvalidJob("job graph has a cycle".into()));
        }
        Ok(out)
    }

    /// Pipeline-fusion analysis: find maximal chains of operators linked by
    /// same-partition OneToOne connectors whose downstream end can run as a
    /// push stage, so the executor can run each chain as **one thread per
    /// partition** instead of one per (operator, partition).
    ///
    /// A connector edge `src → dst` is fused away iff:
    /// - it is a [`ConnectorKind::OneToOne`] between equal partition counts
    ///   (so partition `p` feeds partition `p` with no data movement),
    /// - it is `src`'s only output and `dst`'s only input (fan-out and
    ///   fan-in edges keep their channels),
    /// - `dst` has at most one output (a push stage forwards to one next),
    /// - `dst` declares no blocking inputs (blocking edges cut stages,
    ///   exactly as in the unfused stage analysis), and
    /// - `dst` opts in via [`OperatorDescriptor::fusible`].
    ///
    /// Everything else — repartition, broadcast, merge, blocking edges —
    /// keeps its channel, bounded-frame backpressure, and thread.
    pub fn fusion_plan(&self) -> Result<FusionPlan> {
        self.topo_order()?; // validates acyclicity
        let n = self.ops.len();
        let mut fused_conns = vec![false; self.conns.len()];
        for (ci, c) in self.conns.iter().enumerate() {
            if !matches!(c.kind, ConnectorKind::OneToOne) {
                continue;
            }
            let (s, d) = (c.src.0, c.dst.0);
            if s == d || self.ops[s].nparts != self.ops[d].nparts {
                // Mismatched OneToOne arity stays unfused so wiring raises
                // its usual error.
                continue;
            }
            if self.outputs_of(c.src) != [ci] || self.inputs_of(c.dst) != [ci] {
                continue;
            }
            if self.outputs_of(c.dst).len() > 1 {
                continue;
            }
            if !self.ops[d].desc.blocking_inputs().is_empty() || !self.ops[d].desc.fusible() {
                continue;
            }
            fused_conns[ci] = true;
        }

        // Chains: follow fused edges from every op with no fused
        // predecessor. Each op appears in exactly one chain (a fused dst
        // has exactly one input, so predecessors are unique).
        let mut next_of: Vec<Option<usize>> = vec![None; n];
        let mut has_fused_pred = vec![false; n];
        for (ci, c) in self.conns.iter().enumerate() {
            if fused_conns[ci] {
                next_of[c.src.0] = Some(c.dst.0);
                has_fused_pred[c.dst.0] = true;
            }
        }
        let mut chains = Vec::new();
        for head in 0..n {
            if has_fused_pred[head] {
                continue;
            }
            let mut ops = vec![OperatorId(head)];
            let mut cur = head;
            while let Some(nx) = next_of[cur] {
                ops.push(OperatorId(nx));
                cur = nx;
            }
            chains.push(FusedChain { nparts: self.ops[head].nparts, ops });
        }
        Ok(FusionPlan { chains, fused_conns })
    }

    /// The identity plan: every operator its own singleton chain, every
    /// connector wired — what `ExecutorConfig::disable_fusion` runs.
    pub fn unfused_plan(&self) -> Result<FusionPlan> {
        self.topo_order()?;
        let chains = self
            .ops
            .iter()
            .enumerate()
            .map(|(i, op)| FusedChain { ops: vec![OperatorId(i)], nparts: op.nparts })
            .collect();
        Ok(FusionPlan { chains, fused_conns: vec![false; self.conns.len()] })
    }

    /// Stage analysis: expand operators into activities and split the graph
    /// at blocking activity boundaries. Returns the stage index of each
    /// operator (stage k must fully finish its blocking consumption before
    /// stage k+1's results flow).
    pub fn stages(&self) -> Result<Vec<usize>> {
        let order = self.topo_order()?;
        let mut stage = vec![0usize; self.ops.len()];
        for op in order {
            let inputs = self.inputs_of(op);
            let blocking = self.ops[op.0].desc.blocking_inputs();
            let mut s = 0;
            for (input_idx, &conn_idx) in inputs.iter().enumerate() {
                let src = self.conns[conn_idx].src;
                let src_stage = stage[src.0];
                let bump = usize::from(blocking.contains(&input_idx));
                s = s.max(src_stage + bump);
            }
            stage[op.0] = s;
        }
        Ok(stage)
    }

    /// Pretty-print the job in Figure 6's style: one line per operator
    /// (bottom-up source-first), with the connector kind annotated between
    /// producer and consumer.
    pub fn describe(&self) -> String {
        self.describe_annotated(&|_| None)
    }

    /// Like [`JobSpec::describe`], but appends `annot(op)` (when `Some`) to
    /// each operator line — used by profiled explain to show runtime stats
    /// next to the plan node that produced each operator.
    pub fn describe_annotated(&self, annot: &dyn Fn(OperatorId) -> Option<String>) -> String {
        let mut out = String::new();
        let Ok(order) = self.topo_order() else {
            return "<cyclic job>".to_string();
        };
        let stages = self.stages().unwrap_or_else(|_| vec![0; self.ops.len()]);
        for op in order {
            let inputs = self.inputs_of(op);
            for &ci in &inputs {
                let c = &self.conns[ci];
                let (ns, nd) = (self.ops[c.src.0].nparts, self.ops[c.dst.0].nparts);
                let arrow = match c.kind {
                    ConnectorKind::OneToOne => "1:1".to_string(),
                    ConnectorKind::MToNReplicating => format!("{ns}:{nd} replicating"),
                    ConnectorKind::MToNPartitioning { .. } => {
                        format!("{ns}:{nd} partitioning")
                    }
                    ConnectorKind::LocalityAwareMToNPartitioning { .. } => {
                        format!("{ns}:{nd} locality-aware")
                    }
                    ConnectorKind::MToNPartitioningMerging { .. } => {
                        format!("{ns}:{nd} partitioning-merging")
                    }
                    ConnectorKind::HashPartitioningShuffle { .. } => {
                        format!("{ns}:{nd} shuffle")
                    }
                };
                out.push_str(&format!("  |{arrow}|\n"));
            }
            let extra = annot(op).map(|a| format!("  -- {a}")).unwrap_or_default();
            out.push_str(&format!(
                "{} [parts={}, stage={}]{extra}\n",
                self.ops[op.0].desc.name(),
                self.ops[op.0].nparts,
                stages[op.0]
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{SinkOp, SourceOp};
    use asterix_adm::Value;
    use parking_lot::Mutex;

    fn source() -> Arc<dyn OperatorDescriptor> {
        Arc::new(SourceOp::new("scan", |_, _, emit| {
            emit(vec![Value::Int64(1)])?;
            Ok(())
        }))
    }

    #[test]
    fn topo_order_and_cycles() {
        let mut job = JobSpec::new();
        let a = job.add(1, source());
        let sink = Arc::new(Mutex::new(Vec::new()));
        let b = job.add(1, Arc::new(SinkOp::new(Arc::clone(&sink))));
        job.connect(ConnectorKind::OneToOne, a, b);
        let order = job.topo_order().unwrap();
        assert_eq!(order, vec![a, b]);

        // A cycle is rejected.
        let mut bad = JobSpec::new();
        let x = bad.add(1, source());
        let y = bad.add(1, source());
        bad.connect(ConnectorKind::OneToOne, x, y);
        bad.connect(ConnectorKind::OneToOne, y, x);
        assert!(bad.topo_order().is_err());
    }

    #[test]
    fn fusion_plan_finds_maximal_one_to_one_chains() {
        use crate::ops::{AssignOp, SelectOp};

        // scan(2) -1:1-> select(2) -1:1-> assign(2) -repl-> sink(1)
        let mut job = JobSpec::new();
        let scan = job.add(2, source());
        let sel = job.add(2, Arc::new(SelectOp::new("f", Arc::new(|_: &Vec<Value>| Ok(true)))));
        let asg = job.add(2, Arc::new(AssignOp::new("a", vec![])));
        let collector = Arc::new(Mutex::new(Vec::new()));
        let sink = job.add(1, Arc::new(SinkOp::new(collector)));
        job.connect(ConnectorKind::OneToOne, scan, sel);
        job.connect(ConnectorKind::OneToOne, sel, asg);
        job.connect(ConnectorKind::MToNReplicating, asg, sink);

        let plan = job.fusion_plan().unwrap();
        let chains: Vec<Vec<OperatorId>> = plan.chains.iter().map(|c| c.ops.clone()).collect();
        assert_eq!(chains, vec![vec![scan, sel, asg], vec![sink]]);
        assert_eq!(plan.total_threads(), 3, "2 fused pipelines + 1 sink");
        assert_eq!(plan.fused_pipelines(), 2);
        assert_eq!(plan.saved_threads(), 4, "select and assign partitions ride along");
        assert_eq!(plan.fused_conns, vec![true, true, false]);

        // The escape hatch: every op alone, every connector wired.
        let unfused = job.unfused_plan().unwrap();
        assert_eq!(unfused.total_threads(), 7);
        assert_eq!(unfused.fused_pipelines(), 0);
        assert_eq!(unfused.saved_threads(), 0);
        assert!(unfused.fused_conns.iter().all(|&f| !f));
    }

    #[test]
    fn fusion_plan_keeps_blocking_fan_in_and_mismatched_edges() {
        use crate::ops::{SortKey, SortOp, UnionAllOp};

        // a(2) -1:1-> union(2) <-1:1- b(2); union -1:1-> sort(2): none fuse
        // (union has two inputs and is not fusible; sort blocks input 0).
        let mut job = JobSpec::new();
        let a = job.add(2, source());
        let b = job.add(2, source());
        let u = job.add(2, Arc::new(UnionAllOp));
        let sort = job.add(2, Arc::new(SortOp::new("k", vec![SortKey::field(0, false)])));
        job.connect(ConnectorKind::OneToOne, a, u);
        job.connect(ConnectorKind::OneToOne, b, u);
        job.connect(ConnectorKind::OneToOne, u, sort);
        let plan = job.fusion_plan().unwrap();
        assert!(plan.fused_conns.iter().all(|&f| !f));
        assert_eq!(plan.total_threads(), 8);

        // A OneToOne between mismatched partition counts stays unfused so
        // wiring reports the arity error instead of fusion hiding it.
        let mut bad = JobSpec::new();
        use crate::ops::SelectOp;
        let x = bad.add(2, source());
        let y = bad.add(3, Arc::new(SelectOp::new("f", Arc::new(|_: &Vec<Value>| Ok(true)))));
        bad.connect(ConnectorKind::OneToOne, x, y);
        let plan = bad.fusion_plan().unwrap();
        assert!(plan.fused_conns.iter().all(|&f| !f));
    }

    #[test]
    fn describe_contains_connector_names() {
        let mut job = JobSpec::new();
        let a = job.add(2, source());
        let sink = Arc::new(Mutex::new(Vec::new()));
        let b = job.add(1, Arc::new(SinkOp::new(sink)));
        job.connect(ConnectorKind::MToNReplicating, a, b);
        let d = job.describe();
        assert!(d.contains("2:1 replicating"), "{d}");
        assert!(d.contains("scan [parts=2"), "{d}");
    }
}
