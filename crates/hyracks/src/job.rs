//! Job specifications: DAGs of operators and connectors, plus the
//! activity/stage analysis of §4.1.
//!
//! "As the first step in the execution of a submitted Hyracks Job, its
//! Operators are expanded into their constituent Activities. [...] the
//! separation of an Operator into two or more Activities surfaces the
//! constraint that it can produce no output until all of its input has been
//! consumed." Stages are maximal sets of activities executable together.

use std::sync::Arc;

use crate::connector::ConnectorKind;
use crate::ops::OperatorDescriptor;
use crate::Result;

/// Identifies an operator within a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OperatorId(pub usize);

pub(crate) struct OpNode {
    pub desc: Arc<dyn OperatorDescriptor>,
    pub nparts: usize,
}

pub(crate) struct ConnSpec {
    pub kind: ConnectorKind,
    pub src: OperatorId,
    pub dst: OperatorId,
}

/// A Hyracks job: a DAG of operators and connectors.
#[derive(Default)]
pub struct JobSpec {
    pub(crate) ops: Vec<OpNode>,
    pub(crate) conns: Vec<ConnSpec>,
}

impl JobSpec {
    pub fn new() -> JobSpec {
        JobSpec::default()
    }

    /// Add an operator running with `nparts` partitions.
    pub fn add(&mut self, nparts: usize, desc: Arc<dyn OperatorDescriptor>) -> OperatorId {
        self.ops.push(OpNode { desc, nparts: nparts.max(1) });
        OperatorId(self.ops.len() - 1)
    }

    /// Connect `src`'s next output to `dst`'s next input through `kind`.
    /// Input/output indexes are assigned in connection order.
    pub fn connect(&mut self, kind: ConnectorKind, src: OperatorId, dst: OperatorId) {
        self.conns.push(ConnSpec { kind, src, dst });
    }

    /// Number of operators.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Partition count of an operator.
    pub fn partitions(&self, op: OperatorId) -> usize {
        self.ops[op.0].nparts
    }

    /// Operator display name.
    pub fn op_name(&self, op: OperatorId) -> String {
        self.ops[op.0].desc.name()
    }

    /// Incoming connector indexes of `dst`, in input order.
    pub(crate) fn inputs_of(&self, dst: OperatorId) -> Vec<usize> {
        self.conns.iter().enumerate().filter_map(|(i, c)| (c.dst == dst).then_some(i)).collect()
    }

    /// Outgoing connector indexes of `src`, in output order.
    pub(crate) fn outputs_of(&self, src: OperatorId) -> Vec<usize> {
        self.conns.iter().enumerate().filter_map(|(i, c)| (c.src == src).then_some(i)).collect()
    }

    /// Topological order of operators; errors on cycles.
    pub fn topo_order(&self) -> Result<Vec<OperatorId>> {
        let n = self.ops.len();
        let mut indegree = vec![0usize; n];
        for c in &self.conns {
            indegree[c.dst.0] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut out = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            out.push(OperatorId(i));
            for c in &self.conns {
                if c.src.0 == i {
                    indegree[c.dst.0] -= 1;
                    if indegree[c.dst.0] == 0 {
                        queue.push(c.dst.0);
                    }
                }
            }
        }
        if out.len() != n {
            return Err(crate::HyracksError::InvalidJob("job graph has a cycle".into()));
        }
        Ok(out)
    }

    /// Stage analysis: expand operators into activities and split the graph
    /// at blocking activity boundaries. Returns the stage index of each
    /// operator (stage k must fully finish its blocking consumption before
    /// stage k+1's results flow).
    pub fn stages(&self) -> Result<Vec<usize>> {
        let order = self.topo_order()?;
        let mut stage = vec![0usize; self.ops.len()];
        for op in order {
            let inputs = self.inputs_of(op);
            let blocking = self.ops[op.0].desc.blocking_inputs();
            let mut s = 0;
            for (input_idx, &conn_idx) in inputs.iter().enumerate() {
                let src = self.conns[conn_idx].src;
                let src_stage = stage[src.0];
                let bump = usize::from(blocking.contains(&input_idx));
                s = s.max(src_stage + bump);
            }
            stage[op.0] = s;
        }
        Ok(stage)
    }

    /// Pretty-print the job in Figure 6's style: one line per operator
    /// (bottom-up source-first), with the connector kind annotated between
    /// producer and consumer.
    pub fn describe(&self) -> String {
        self.describe_annotated(&|_| None)
    }

    /// Like [`JobSpec::describe`], but appends `annot(op)` (when `Some`) to
    /// each operator line — used by profiled explain to show runtime stats
    /// next to the plan node that produced each operator.
    pub fn describe_annotated(&self, annot: &dyn Fn(OperatorId) -> Option<String>) -> String {
        let mut out = String::new();
        let Ok(order) = self.topo_order() else {
            return "<cyclic job>".to_string();
        };
        let stages = self.stages().unwrap_or_else(|_| vec![0; self.ops.len()]);
        for op in order {
            let inputs = self.inputs_of(op);
            for &ci in &inputs {
                let c = &self.conns[ci];
                let (ns, nd) = (self.ops[c.src.0].nparts, self.ops[c.dst.0].nparts);
                let arrow = match c.kind {
                    ConnectorKind::OneToOne => "1:1".to_string(),
                    ConnectorKind::MToNReplicating => format!("{ns}:{nd} replicating"),
                    ConnectorKind::MToNPartitioning { .. } => {
                        format!("{ns}:{nd} partitioning")
                    }
                    ConnectorKind::LocalityAwareMToNPartitioning { .. } => {
                        format!("{ns}:{nd} locality-aware")
                    }
                    ConnectorKind::MToNPartitioningMerging { .. } => {
                        format!("{ns}:{nd} partitioning-merging")
                    }
                    ConnectorKind::HashPartitioningShuffle { .. } => {
                        format!("{ns}:{nd} shuffle")
                    }
                };
                out.push_str(&format!("  |{arrow}|\n"));
            }
            let extra = annot(op).map(|a| format!("  -- {a}")).unwrap_or_default();
            out.push_str(&format!(
                "{} [parts={}, stage={}]{extra}\n",
                self.ops[op.0].desc.name(),
                self.ops[op.0].nparts,
                stages[op.0]
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{SinkOp, SourceOp};
    use asterix_adm::Value;
    use parking_lot::Mutex;

    fn source() -> Arc<dyn OperatorDescriptor> {
        Arc::new(SourceOp::new("scan", |_, _, emit| {
            emit(vec![Value::Int64(1)])?;
            Ok(())
        }))
    }

    #[test]
    fn topo_order_and_cycles() {
        let mut job = JobSpec::new();
        let a = job.add(1, source());
        let sink = Arc::new(Mutex::new(Vec::new()));
        let b = job.add(1, Arc::new(SinkOp::new(Arc::clone(&sink))));
        job.connect(ConnectorKind::OneToOne, a, b);
        let order = job.topo_order().unwrap();
        assert_eq!(order, vec![a, b]);

        // A cycle is rejected.
        let mut bad = JobSpec::new();
        let x = bad.add(1, source());
        let y = bad.add(1, source());
        bad.connect(ConnectorKind::OneToOne, x, y);
        bad.connect(ConnectorKind::OneToOne, y, x);
        assert!(bad.topo_order().is_err());
    }

    #[test]
    fn describe_contains_connector_names() {
        let mut job = JobSpec::new();
        let a = job.add(2, source());
        let sink = Arc::new(Mutex::new(Vec::new()));
        let b = job.add(1, Arc::new(SinkOp::new(sink)));
        job.connect(ConnectorKind::MToNReplicating, a, b);
        let d = job.describe();
        assert!(d.contains("2:1 replicating"), "{d}");
        assert!(d.contains("scan [parts=2"), "{d}");
    }
}
