//! Connectors redistribute data between operator partitions (§4.1).
//!
//! The six kinds from the paper are implemented: `OneToOne`,
//! `MToNReplicating`, `MToNPartitioning`, `LocalityAwareMToNPartitioning`,
//! `MToNPartitioningMerging`, and `HashPartitioningShuffle`. Frames move
//! over unbounded crossbeam channels; a merging connector's receive side
//! performs a streaming k-way merge over the per-sender channels.

use std::cmp::Ordering;
use std::collections::VecDeque;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Select, Sender};

use crate::frame::{hash_fields, Frame, Tuple, FRAME_CAPACITY};
use crate::Result;

/// Tuple comparator used by merging connectors and sorts.
pub type Comparator = Arc<dyn Fn(&Tuple, &Tuple) -> Ordering + Send + Sync>;

/// The connector kinds of §4.1.
#[derive(Clone)]
pub enum ConnectorKind {
    /// Partition i → partition i; requires equal partition counts. No data
    /// movement — the pipelined fast path highlighted in Figure 6.
    OneToOne,
    /// Every source partition sends every frame to every destination
    /// partition (used e.g. to feed a 1-partition global aggregator).
    MToNReplicating,
    /// Hash partitioning on the given tuple fields.
    MToNPartitioning { fields: Vec<usize> },
    /// Hash partitioning that keeps data on the same node when the
    /// destination has partitions there (one network hop saved per §4.1's
    /// operator library).
    LocalityAwareMToNPartitioning { fields: Vec<usize> },
    /// Hash partitioning whose receive side merges the per-sender streams
    /// by a sort order, preserving sortedness across repartitioning.
    MToNPartitioningMerging { fields: Vec<usize>, comparator: Comparator },
    /// Alias of hash partitioning used for shuffle stages.
    HashPartitioningShuffle { fields: Vec<usize> },
}

impl ConnectorKind {
    /// Display name matching the paper's terminology.
    pub fn name(&self) -> &'static str {
        match self {
            ConnectorKind::OneToOne => "OneToOneConnector",
            ConnectorKind::MToNReplicating => "MToNReplicatingConnector",
            ConnectorKind::MToNPartitioning { .. } => "MToNPartitioningConnector",
            ConnectorKind::LocalityAwareMToNPartitioning { .. } => {
                "LocalityAwareMToNPartitioningConnector"
            }
            ConnectorKind::MToNPartitioningMerging { .. } => {
                "MToNPartitioningMergingConnector"
            }
            ConnectorKind::HashPartitioningShuffle { .. } => "HashPartitioningShuffle",
        }
    }
}

impl std::fmt::Debug for ConnectorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How an output port routes each tuple.
enum RouteStrategy {
    /// All tuples to one fixed destination channel.
    Fixed(usize),
    /// Hash of fields modulo destination count.
    Hash(Vec<usize>),
    /// Hash of fields within the sender's node group when possible.
    LocalityAware { fields: Vec<usize>, group: Vec<usize> },
    /// Every tuple to every destination.
    Replicate,
}

/// The sending half of one connector for one source partition.
pub struct OutputPort {
    senders: Vec<Sender<Frame>>,
    buffers: Vec<Frame>,
    strategy: RouteStrategy,
}

impl OutputPort {
    fn new(senders: Vec<Sender<Frame>>, strategy: RouteStrategy) -> OutputPort {
        let n = senders.len();
        OutputPort { senders, buffers: (0..n).map(|_| Frame::new()).collect(), strategy }
    }

    /// A port that discards everything (for dangling outputs).
    pub fn sink() -> OutputPort {
        OutputPort { senders: Vec::new(), buffers: Vec::new(), strategy: RouteStrategy::Replicate }
    }

    /// Emit one tuple.
    pub fn push(&mut self, tuple: Tuple) -> Result<()> {
        match &self.strategy {
            RouteStrategy::Fixed(j) => self.buffer_to(*j, tuple),
            RouteStrategy::Hash(fields) => {
                let j = (hash_fields(&tuple, fields) % self.senders.len().max(1) as u64) as usize;
                self.buffer_to(j, tuple)
            }
            RouteStrategy::LocalityAware { fields, group } => {
                let h = hash_fields(&tuple, fields);
                let j = group[(h % group.len() as u64) as usize];
                self.buffer_to(j, tuple)
            }
            RouteStrategy::Replicate => {
                for j in 0..self.senders.len() {
                    self.buffer_to(j, tuple.clone())?;
                }
                Ok(())
            }
        }
    }

    fn buffer_to(&mut self, j: usize, tuple: Tuple) -> Result<()> {
        if self.senders.is_empty() {
            return Ok(());
        }
        self.buffers[j].push(tuple);
        if self.buffers[j].len() >= FRAME_CAPACITY {
            let frame = std::mem::take(&mut self.buffers[j]);
            // Receiver gone means downstream finished early (e.g. LIMIT);
            // dropping data then is correct, not an error.
            let _ = self.senders[j].send(frame);
        }
        Ok(())
    }

    /// Flush remaining buffered tuples. Called automatically when the
    /// operator finishes (executor drops the port), but operators may flush
    /// early to bound latency (feeds do).
    pub fn flush(&mut self) {
        for j in 0..self.senders.len() {
            if !self.buffers[j].is_empty() {
                let frame = std::mem::take(&mut self.buffers[j]);
                let _ = self.senders[j].send(frame);
            }
        }
    }
}

impl Drop for OutputPort {
    fn drop(&mut self) {
        self.flush();
    }
}

/// How an input port combines multiple incoming channels.
enum InputMode {
    /// Take frames in arrival order (select over channels).
    Any,
    /// K-way merge of sorted per-sender streams.
    Merge(Comparator),
}

/// The receiving half of one connector for one destination partition.
pub struct InputPort {
    receivers: Vec<Receiver<Frame>>,
    mode: InputMode,
    /// Merge-mode lookahead buffers, one per sender.
    lookahead: Vec<VecDeque<Tuple>>,
    exhausted: Vec<bool>,
}

impl InputPort {
    fn new(receivers: Vec<Receiver<Frame>>, mode: InputMode) -> InputPort {
        let n = receivers.len();
        InputPort {
            receivers,
            mode,
            lookahead: (0..n).map(|_| VecDeque::new()).collect(),
            exhausted: vec![false; n],
        }
    }

    /// An input port that yields nothing (for testing/synthetic ops).
    pub fn empty() -> InputPort {
        InputPort::new(Vec::new(), InputMode::Any)
    }

    /// Receive the next frame (Any mode) — `None` at end of stream.
    fn recv_any(&mut self) -> Option<Frame> {
        loop {
            let live: Vec<usize> = (0..self.receivers.len())
                .filter(|&i| !self.exhausted[i])
                .collect();
            if live.is_empty() {
                return None;
            }
            if live.len() == 1 {
                match self.receivers[live[0]].recv() {
                    Ok(f) => return Some(f),
                    Err(_) => {
                        self.exhausted[live[0]] = true;
                        continue;
                    }
                }
            }
            let mut sel = Select::new();
            for &i in &live {
                sel.recv(&self.receivers[i]);
            }
            let op = sel.select();
            let idx = live[op.index()];
            match op.recv(&self.receivers[idx]) {
                Ok(f) => return Some(f),
                Err(_) => {
                    self.exhausted[idx] = true;
                }
            }
        }
    }

    fn refill(&mut self, i: usize) {
        while self.lookahead[i].is_empty() && !self.exhausted[i] {
            match self.receivers[i].recv() {
                Ok(frame) => self.lookahead[i].extend(frame),
                Err(_) => self.exhausted[i] = true,
            }
        }
    }

    fn next_merged(&mut self) -> Option<Tuple> {
        let cmp = match &self.mode {
            InputMode::Merge(c) => Arc::clone(c),
            InputMode::Any => unreachable!("next_merged on non-merge port"),
        };
        for i in 0..self.receivers.len() {
            self.refill(i);
        }
        let mut best: Option<usize> = None;
        for i in 0..self.receivers.len() {
            if let Some(t) = self.lookahead[i].front() {
                match best {
                    None => best = Some(i),
                    Some(b) => {
                        if cmp(t, self.lookahead[b].front().unwrap()) == Ordering::Less {
                            best = Some(i);
                        }
                    }
                }
            }
        }
        best.and_then(|i| self.lookahead[i].pop_front())
    }

    /// Drain the port, invoking `f` for every tuple; stops early (and
    /// discards the rest) if `f` returns `false`.
    pub fn for_each(&mut self, mut f: impl FnMut(Tuple) -> Result<bool>) -> Result<()> {
        match &self.mode {
            InputMode::Any => {
                while let Some(frame) = self.recv_any() {
                    for t in frame {
                        if !f(t)? {
                            self.drain();
                            return Ok(());
                        }
                    }
                }
                Ok(())
            }
            InputMode::Merge(_) => {
                while let Some(t) = self.next_merged() {
                    if !f(t)? {
                        self.drain();
                        return Ok(());
                    }
                }
                Ok(())
            }
        }
    }

    /// Collect the whole input into a vector (blocking operators).
    pub fn collect(&mut self) -> Result<Vec<Tuple>> {
        let mut out = Vec::new();
        self.for_each(|t| {
            out.push(t);
            Ok(true)
        })?;
        Ok(out)
    }

    /// Consume and discard the remainder of the stream so upstream senders
    /// never block (channels are unbounded, so this only frees memory).
    pub fn drain(&mut self) {
        for i in 0..self.receivers.len() {
            while self.receivers[i].try_recv().is_ok() {}
            self.exhausted[i] = true;
        }
        self.lookahead.iter_mut().for_each(|q| q.clear());
    }
}

/// Build the channel fabric for one connector between `n_src` source and
/// `n_dst` destination partitions. Returns (per-source output ports,
/// per-destination input ports).
///
/// `node_of` maps a partition index to its (simulated) node id, used by the
/// locality-aware connector.
pub fn wire(
    kind: &ConnectorKind,
    n_src: usize,
    n_dst: usize,
    node_of: &dyn Fn(usize) -> usize,
) -> Result<(Vec<OutputPort>, Vec<InputPort>)> {
    match kind {
        ConnectorKind::OneToOne => {
            if n_src != n_dst {
                return Err(crate::HyracksError::InvalidJob(format!(
                    "OneToOne connector between {n_src} and {n_dst} partitions"
                )));
            }
            let mut outs = Vec::with_capacity(n_src);
            let mut ins = Vec::with_capacity(n_dst);
            for _ in 0..n_src {
                let (tx, rx) = unbounded();
                outs.push(OutputPort::new(vec![tx], RouteStrategy::Fixed(0)));
                ins.push(InputPort::new(vec![rx], InputMode::Any));
            }
            Ok((outs, ins))
        }
        ConnectorKind::MToNReplicating => {
            let (txs, rxs): (Vec<_>, Vec<_>) = (0..n_dst).map(|_| unbounded()).unzip();
            let outs = (0..n_src)
                .map(|_| OutputPort::new(txs.clone(), RouteStrategy::Replicate))
                .collect();
            let ins = rxs
                .into_iter()
                .map(|rx| InputPort::new(vec![rx], InputMode::Any))
                .collect();
            Ok((outs, ins))
        }
        ConnectorKind::MToNPartitioning { fields }
        | ConnectorKind::HashPartitioningShuffle { fields } => {
            let (txs, rxs): (Vec<_>, Vec<_>) = (0..n_dst).map(|_| unbounded()).unzip();
            let outs = (0..n_src)
                .map(|_| OutputPort::new(txs.clone(), RouteStrategy::Hash(fields.clone())))
                .collect();
            let ins = rxs
                .into_iter()
                .map(|rx| InputPort::new(vec![rx], InputMode::Any))
                .collect();
            Ok((outs, ins))
        }
        ConnectorKind::LocalityAwareMToNPartitioning { fields } => {
            let (txs, rxs): (Vec<_>, Vec<_>) = (0..n_dst).map(|_| unbounded()).unzip();
            let outs = (0..n_src)
                .map(|p| {
                    // Destinations on the same node as source partition p,
                    // falling back to all destinations.
                    let my_node = node_of(p);
                    let local: Vec<usize> =
                        (0..n_dst).filter(|&j| node_of(j) == my_node).collect();
                    let group = if local.is_empty() { (0..n_dst).collect() } else { local };
                    OutputPort::new(
                        txs.clone(),
                        RouteStrategy::LocalityAware { fields: fields.clone(), group },
                    )
                })
                .collect();
            let ins = rxs
                .into_iter()
                .map(|rx| InputPort::new(vec![rx], InputMode::Any))
                .collect();
            Ok((outs, ins))
        }
        ConnectorKind::MToNPartitioningMerging { fields, comparator } => {
            // One channel per (src, dst) pair so the receiver can merge the
            // sorted per-sender streams.
            let mut per_dst_rxs: Vec<Vec<Receiver<Frame>>> =
                (0..n_dst).map(|_| Vec::with_capacity(n_src)).collect();
            let mut per_src_txs: Vec<Vec<Sender<Frame>>> =
                (0..n_src).map(|_| Vec::with_capacity(n_dst)).collect();
            for txs in per_src_txs.iter_mut() {
                for rxs in per_dst_rxs.iter_mut() {
                    let (tx, rx) = unbounded();
                    txs.push(tx);
                    rxs.push(rx);
                }
            }
            let outs = per_src_txs
                .into_iter()
                .map(|txs| OutputPort::new(txs, RouteStrategy::Hash(fields.clone())))
                .collect();
            let ins = per_dst_rxs
                .into_iter()
                .map(|rxs| InputPort::new(rxs, InputMode::Merge(Arc::clone(comparator))))
                .collect();
            Ok((outs, ins))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asterix_adm::Value;

    fn t(i: i64) -> Tuple {
        vec![Value::Int64(i)]
    }

    #[test]
    fn one_to_one_preserves_partition() {
        let (mut outs, ins) = wire(&ConnectorKind::OneToOne, 2, 2, &|_| 0).unwrap();
        outs[0].push(t(0)).unwrap();
        outs[1].push(t(1)).unwrap();
        drop(outs);
        for (i, mut port) in ins.into_iter().enumerate() {
            let got = port.collect().unwrap();
            assert_eq!(got, vec![t(i as i64)]);
        }
    }

    #[test]
    fn one_to_one_arity_mismatch_rejected() {
        assert!(wire(&ConnectorKind::OneToOne, 2, 3, &|_| 0).is_err());
    }

    #[test]
    fn partitioning_routes_by_hash() {
        let kind = ConnectorKind::MToNPartitioning { fields: vec![0] };
        let (mut outs, ins) = wire(&kind, 2, 4, &|_| 0).unwrap();
        for i in 0..100 {
            outs[(i % 2) as usize].push(t(i)).unwrap();
        }
        drop(outs);
        let mut total = 0;
        let mut per_part: Vec<Vec<i64>> = Vec::new();
        for mut port in ins {
            let got = port.collect().unwrap();
            total += got.len();
            per_part.push(got.iter().map(|t| t[0].as_i64().unwrap()).collect());
        }
        assert_eq!(total, 100);
        // Same key always lands in the same partition: re-send key 7.
        let (mut outs2, ins2) = wire(&kind, 1, 4, &|_| 0).unwrap();
        outs2[0].push(t(7)).unwrap();
        drop(outs2);
        let landed: Vec<usize> = ins2
            .into_iter()
            .enumerate()
            .filter_map(|(i, mut p)| (!p.collect().unwrap().is_empty()).then_some(i))
            .collect();
        assert_eq!(landed.len(), 1);
        assert!(per_part[landed[0]].contains(&7));
    }

    #[test]
    fn replicating_duplicates() {
        let (mut outs, ins) = wire(&ConnectorKind::MToNReplicating, 2, 3, &|_| 0).unwrap();
        outs[0].push(t(1)).unwrap();
        outs[1].push(t(2)).unwrap();
        drop(outs);
        for mut port in ins {
            let mut got: Vec<i64> =
                port.collect().unwrap().iter().map(|t| t[0].as_i64().unwrap()).collect();
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }
    }

    #[test]
    fn merging_connector_preserves_order() {
        let cmp: Comparator = Arc::new(|a, b| a[0].total_cmp(&b[0]));
        let kind = ConnectorKind::MToNPartitioningMerging { fields: vec![], comparator: cmp };
        // fields=[] → every tuple hashes identically → all to dst 0.
        let (mut outs, mut ins) = wire(&kind, 3, 1, &|_| 0).unwrap();
        // Each source emits a sorted run.
        for (s, base) in [(0usize, 0i64), (1, 1), (2, 2)] {
            for i in 0..10 {
                outs[s].push(t(base + i * 3)).unwrap();
            }
        }
        drop(outs);
        let got: Vec<i64> =
            ins[0].collect().unwrap().iter().map(|t| t[0].as_i64().unwrap()).collect();
        let expect: Vec<i64> = (0..30).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn locality_aware_stays_on_node() {
        // 4 partitions on 2 nodes: partitions 0,1 on node 0; 2,3 on node 1.
        let node_of = |p: usize| p / 2;
        let kind = ConnectorKind::LocalityAwareMToNPartitioning { fields: vec![0] };
        let (mut outs, ins) = wire(&kind, 4, 4, &node_of).unwrap();
        for i in 0..100 {
            outs[0].push(t(i)).unwrap(); // src partition 0, node 0
        }
        drop(outs);
        let counts: Vec<usize> =
            ins.into_iter().map(|mut p| p.collect().unwrap().len()).collect();
        // Everything from node 0 stays on node 0's partitions (0 and 1).
        assert_eq!(counts[2] + counts[3], 0);
        assert_eq!(counts[0] + counts[1], 100);
    }

    #[test]
    fn early_exit_drains() {
        let (mut outs, mut ins) = wire(&ConnectorKind::OneToOne, 1, 1, &|_| 0).unwrap();
        for i in 0..5000 {
            outs[0].push(t(i)).unwrap();
        }
        drop(outs);
        let mut n = 0;
        ins[0]
            .for_each(|_| {
                n += 1;
                Ok(n < 10)
            })
            .unwrap();
        assert_eq!(n, 10);
        // Port fully drained afterwards.
        assert!(ins[0].collect().unwrap().is_empty());
    }
}
