//! Connectors redistribute data between operator partitions (§4.1).
//!
//! The six kinds from the paper are implemented: `OneToOne`,
//! `MToNReplicating`, `MToNPartitioning`, `LocalityAwareMToNPartitioning`,
//! `MToNPartitioningMerging`, and `HashPartitioningShuffle`. *Byte frames*
//! ([`Frame`] = [`crate::frame::FrameBuf`]) of serialized tuples move over
//! **bounded** crossbeam channels sized by
//! [`ExchangeConfig::frames_in_flight`], so a fast producer blocks once the
//! frame budget is reached and backpressure propagates upstream — peak
//! exchange memory is `O(channels × frames_in_flight × frame_bytes)`
//! rather than `O(dataset)`. No `Vec<Value>`-typed frame ever crosses a
//! channel: producers serialize on [`OutputPort::push`] (or forward
//! already-encoded tuples via [`OutputPort::push_encoded`] without
//! re-encoding), receivers decode lazily at the operator boundary. Hash
//! routing of encoded tuples uses `hash_encoded_fields`, bit-identical to
//! the decoded `hash_fields`, so both push paths route alike. A merging
//! connector's receive side performs a streaming k-way merge over the
//! per-sender channels, comparing *encoded* tuples. Drained frames are
//! returned to a shared [`FramePool`] and reused by senders, so
//! steady-state exchange does no per-frame allocation.

use std::cmp::Ordering;
use std::sync::Arc;

use asterix_adm::{encode_tuple_into, TupleRef};
use asterix_obs::{Counter, Gauge, Histogram, MetricsRegistry, TraceContext};
use asterix_rm::CancellationToken;
use crossbeam::channel::{bounded, Receiver, Select, Sender, TrySendError};

use crate::frame::{
    hash_encoded_fields, hash_fields, Frame, FramePool, Tuple, DEFAULT_FRAME_BYTES, FRAME_CAPACITY,
};
use crate::pipeline::PipelineOp;
use crate::profile::PortMeter;
use crate::{HyracksError, Result};

/// Comparator over *encoded* tuples, used by merging connectors and sorts.
/// Both arguments are offset-prefixed tuple encodings
/// (`asterix_adm::tuple`); implementations compare key bytes directly.
pub type Comparator = Arc<dyn Fn(&[u8], &[u8]) -> Ordering + Send + Sync>;

/// Counters for one job run's exchange activity, shared by every port.
///
/// `buffered_frames` is a gauge of frames handed to a channel (queued or
/// mid-send) and not yet received; its high-water mark proves the
/// bounded-memory claim: with `frames_in_flight = F`, a channel never holds
/// more than `F` frames (capacity `F - 1` queued plus one in a blocked
/// sender's hand). `bytes_sent` sums the exact frame occupancy (tuple data
/// plus slot directory) of every delivered frame — a measurement, not an
/// estimate.
#[derive(Debug)]
pub struct ExchangeStats {
    frames_sent: Counter,
    tuples_sent: Counter,
    bytes_sent: Counter,
    backpressure_stalls: Counter,
    buffered_frames: Gauge,
    /// Operator-partition pipelines that ran fused (chains of length ≥ 2)
    /// in the most recent job on this exchange.
    pipelines_fused: Gauge,
    /// Threads the most recent job did NOT spawn thanks to fusion: the
    /// one-thread-per-(operator, partition) count minus the pipeline count.
    fusion_saved_threads: Gauge,
    /// Wall time each pipeline thread spent in its run body (µs).
    pipeline_busy_us: Histogram,
}

impl Default for ExchangeStats {
    fn default() -> Self {
        ExchangeStats {
            frames_sent: Counter::new(),
            tuples_sent: Counter::new(),
            bytes_sent: Counter::new(),
            backpressure_stalls: Counter::new(),
            buffered_frames: Gauge::new(),
            pipelines_fused: Gauge::new(),
            fusion_saved_threads: Gauge::new(),
            pipeline_busy_us: Histogram::duration_us(),
        }
    }
}

impl ExchangeStats {
    pub fn new() -> ExchangeStats {
        ExchangeStats::default()
    }

    /// A frame is being handed to a channel (before the send completes, so
    /// the gauge over-counts rather than under-counts in-flight memory).
    fn on_enqueue(&self) {
        self.buffered_frames.add(1);
    }

    fn on_send_ok(&self, tuples: u64, bytes: u64) {
        self.frames_sent.inc();
        self.tuples_sent.add(tuples);
        self.bytes_sent.add(bytes);
    }

    /// The send failed (receiver gone): undo the gauge increment.
    fn on_send_fail(&self) {
        self.buffered_frames.sub(1);
    }

    fn on_stall(&self) {
        self.backpressure_stalls.inc();
    }

    fn on_recv(&self) {
        self.buffered_frames.sub(1);
    }

    /// Record the fusion outcome of a job: how many operator-partition
    /// pipelines ran fused and how many threads that saved versus the
    /// one-thread-per-(operator, partition) baseline. Gauges reflect the
    /// most recent job; peaks track the high-water mark.
    pub(crate) fn on_job_fusion(&self, pipelines_fused: i64, saved_threads: i64) {
        self.pipelines_fused.set(pipelines_fused);
        self.fusion_saved_threads.set(saved_threads);
    }

    /// Record one pipeline thread's busy time.
    pub(crate) fn on_pipeline_done(&self, busy: std::time::Duration) {
        self.pipeline_busy_us.record_duration(busy);
    }

    /// Frames delivered to channels so far.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent.get()
    }

    /// Tuples delivered to channels so far.
    pub fn tuples_sent(&self) -> u64 {
        self.tuples_sent.get()
    }

    /// Exact wire bytes delivered to channels so far: the summed
    /// [`Frame::occupancy`] of every sent frame.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.get()
    }

    /// Times a sender found its channel full and had to block.
    pub fn backpressure_stalls(&self) -> u64 {
        self.backpressure_stalls.get()
    }

    /// Frames currently in flight (sent, not yet received).
    pub fn buffered_frames(&self) -> i64 {
        self.buffered_frames.get()
    }

    /// High-water mark of `buffered_frames` over the run.
    pub fn peak_buffered_frames(&self) -> i64 {
        self.buffered_frames.peak()
    }

    /// Operator-partition pipelines that ran fused in the most recent job.
    pub fn pipelines_fused(&self) -> i64 {
        self.pipelines_fused.get()
    }

    /// Threads the most recent job avoided spawning thanks to fusion.
    pub fn fusion_saved_threads(&self) -> i64 {
        self.fusion_saved_threads.get()
    }

    /// Per-pipeline busy-time histogram (µs).
    pub fn pipeline_busy_us(&self) -> &Histogram {
        &self.pipeline_busy_us
    }

    /// Adopt this bundle's handles into a [`MetricsRegistry`] under
    /// `{prefix}.*` names. The counters stay live — the registry snapshot
    /// and the legacy accessors read the same atomics.
    pub fn register_into(&self, reg: &MetricsRegistry, prefix: &str) {
        reg.register_counter(&format!("{prefix}.frames_sent"), &self.frames_sent);
        reg.register_counter(&format!("{prefix}.tuples_sent"), &self.tuples_sent);
        reg.register_counter(&format!("{prefix}.bytes_sent"), &self.bytes_sent);
        reg.register_counter(&format!("{prefix}.backpressure_stalls"), &self.backpressure_stalls);
        reg.register_gauge(&format!("{prefix}.buffered_frames"), &self.buffered_frames);
        reg.register_gauge(&format!("{prefix}.pipelines_fused"), &self.pipelines_fused);
        reg.register_gauge(&format!("{prefix}.fusion_saved_threads"), &self.fusion_saved_threads);
        reg.register_histogram(&format!("{prefix}.pipeline_busy_us"), &self.pipeline_busy_us);
    }
}

/// Exchange-layer settings threaded through [`wire`] into every port.
#[derive(Clone)]
pub struct ExchangeConfig {
    /// Per-channel bound on frames in flight (queued plus one mid-send).
    /// Minimum 1 (a rendezvous channel: every send waits for its receive).
    pub frames_in_flight: usize,
    /// Flush a frame once it holds this many tuples.
    pub tuples_per_frame: usize,
    /// Flush a frame once its occupancy reaches this many bytes.
    pub frame_bytes: usize,
    /// Shared counters for the run.
    pub stats: Arc<ExchangeStats>,
    /// Shared frame-recycling pool for the run.
    pub pool: Arc<FramePool>,
    /// Cooperative cancellation token for the job, checked at every port
    /// push and frame receive so a cancelled query unwinds at frame
    /// granularity. `None` (the default) means the job is uncancellable.
    pub cancel: Option<CancellationToken>,
    /// Tracing handle for the job; ports record `exchange.send_block`
    /// spans under it when backpressure blocks a send. Disabled by
    /// default; the executor swaps in a per-thread labelled context.
    pub trace: TraceContext,
    /// Live tuple-progress counter for the job (the RM jobs table's view);
    /// bumped once per delivered frame's tuple count.
    pub progress: Option<Counter>,
}

impl Default for ExchangeConfig {
    fn default() -> Self {
        ExchangeConfig {
            frames_in_flight: 8,
            tuples_per_frame: FRAME_CAPACITY,
            frame_bytes: DEFAULT_FRAME_BYTES,
            stats: Arc::new(ExchangeStats::new()),
            pool: Arc::new(FramePool::new()),
            cancel: None,
            trace: TraceContext::disabled(),
            progress: None,
        }
    }
}

impl ExchangeConfig {
    fn channel(&self) -> (Sender<Frame>, Receiver<Frame>) {
        // Capacity F-1 so queued + one frame in a blocked sender's hand
        // never exceeds frames_in_flight. F=1 is a rendezvous channel.
        bounded(self.frames_in_flight.max(1) - 1)
    }
}

/// The connector kinds of §4.1.
#[derive(Clone)]
pub enum ConnectorKind {
    /// Partition i → partition i; requires equal partition counts. No data
    /// movement — the pipelined fast path highlighted in Figure 6.
    OneToOne,
    /// Every source partition sends every frame to every destination
    /// partition (used e.g. to feed a 1-partition global aggregator).
    MToNReplicating,
    /// Hash partitioning on the given tuple fields.
    MToNPartitioning { fields: Vec<usize> },
    /// Hash partitioning that keeps data on the same node when the
    /// destination has partitions there (one network hop saved per §4.1's
    /// operator library).
    LocalityAwareMToNPartitioning { fields: Vec<usize> },
    /// Hash partitioning whose receive side merges the per-sender streams
    /// by a sort order, preserving sortedness across repartitioning.
    MToNPartitioningMerging { fields: Vec<usize>, comparator: Comparator },
    /// Alias of hash partitioning used for shuffle stages.
    HashPartitioningShuffle { fields: Vec<usize> },
}

impl ConnectorKind {
    /// Display name matching the paper's terminology.
    pub fn name(&self) -> &'static str {
        match self {
            ConnectorKind::OneToOne => "OneToOneConnector",
            ConnectorKind::MToNReplicating => "MToNReplicatingConnector",
            ConnectorKind::MToNPartitioning { .. } => "MToNPartitioningConnector",
            ConnectorKind::LocalityAwareMToNPartitioning { .. } => {
                "LocalityAwareMToNPartitioningConnector"
            }
            ConnectorKind::MToNPartitioningMerging { .. } => "MToNPartitioningMergingConnector",
            ConnectorKind::HashPartitioningShuffle { .. } => "HashPartitioningShuffle",
        }
    }
}

impl std::fmt::Debug for ConnectorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How an output port routes each tuple.
enum RouteStrategy {
    /// All tuples to one fixed destination channel.
    Fixed(usize),
    /// Hash of fields modulo destination count.
    Hash(Vec<usize>),
    /// Hash of fields within the sender's node group when possible.
    LocalityAware { fields: Vec<usize>, group: Vec<usize> },
    /// Every tuple to every destination.
    Replicate,
}

/// The sending half of one connector for one source partition.
pub struct OutputPort {
    senders: Vec<Sender<Frame>>,
    buffers: Vec<Frame>,
    /// Destinations whose receiver has hung up; sends to them are skipped.
    dead: Vec<bool>,
    strategy: RouteStrategy,
    stats: Arc<ExchangeStats>,
    pool: Arc<FramePool>,
    tuples_per_frame: usize,
    frame_bytes: usize,
    /// Reused scratch buffer for serializing pushed tuples.
    enc: Vec<u8>,
    /// Per-operator profiling meter (attached only on profiled runs).
    meter: Option<Arc<PortMeter>>,
    /// When set, this port bypasses the exchange entirely: every tuple is
    /// handed synchronously to the fused downstream chain. `senders` and
    /// `buffers` are empty, and metering lives inside the chain's
    /// [`crate::pipeline::FusedEdge`] adapters, not on this port.
    fused: Option<Box<dyn PipelineOp>>,
    /// The fused chain's `finish` has run (it must run exactly once).
    fused_done: bool,
    /// Job cancellation token, checked on every push.
    cancel: Option<CancellationToken>,
    /// Trace context for send-block spans (disabled unless profiled).
    trace: TraceContext,
    /// Job-wide tuple-progress counter (live views), if any.
    progress: Option<Counter>,
}

impl OutputPort {
    fn new(
        senders: Vec<Sender<Frame>>,
        strategy: RouteStrategy,
        xcfg: &ExchangeConfig,
    ) -> OutputPort {
        let n = senders.len();
        OutputPort {
            senders,
            buffers: (0..n).map(|_| xcfg.pool.take()).collect(),
            dead: vec![false; n],
            strategy,
            stats: Arc::clone(&xcfg.stats),
            pool: Arc::clone(&xcfg.pool),
            tuples_per_frame: xcfg.tuples_per_frame.max(1),
            frame_bytes: xcfg.frame_bytes.max(1),
            enc: Vec::new(),
            meter: None,
            fused: None,
            fused_done: false,
            cancel: xcfg.cancel.clone(),
            trace: xcfg.trace.clone(),
            progress: xcfg.progress.clone(),
        }
    }

    /// A port that discards everything (for dangling outputs).
    pub fn sink() -> OutputPort {
        OutputPort {
            senders: Vec::new(),
            buffers: Vec::new(),
            dead: Vec::new(),
            strategy: RouteStrategy::Replicate,
            stats: Arc::default(),
            pool: Arc::default(),
            tuples_per_frame: FRAME_CAPACITY,
            frame_bytes: DEFAULT_FRAME_BYTES,
            enc: Vec::new(),
            meter: None,
            fused: None,
            fused_done: false,
            cancel: None,
            trace: TraceContext::disabled(),
            progress: None,
        }
    }

    /// A port backed by a fused pipeline chain instead of channels: pushes
    /// go straight into `chain` on the caller's thread. The token makes the
    /// head of the chain a cancellation point, matching channel-backed
    /// ports (the chain's tail `PortSink` re-checks on its real port).
    pub(crate) fn fused(
        chain: Box<dyn PipelineOp>,
        cancel: Option<CancellationToken>,
    ) -> OutputPort {
        let mut port = OutputPort::sink();
        port.fused = Some(chain);
        port.cancel = cancel;
        port
    }

    /// Attach a profiling meter counting tuples/frames/bytes emitted
    /// through this port.
    pub(crate) fn set_meter(&mut self, meter: Arc<PortMeter>) {
        self.meter = Some(meter);
    }

    /// Swap in the executor thread's labelled trace context (send-block
    /// spans recorded on this port become children of the thread's span).
    pub(crate) fn set_trace(&mut self, trace: TraceContext) {
        self.trace = trace;
    }

    fn all_dead(&self) -> bool {
        !self.dead.is_empty() && self.dead.iter().all(|&d| d)
    }

    /// True once the job's cancellation token has fired. Plain tokens cost
    /// one relaxed load; an un-fired deadline token also reads the clock.
    fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(|t| t.is_cancelled())
    }

    /// Hand one frame to channel `j`, blocking if the frame budget is
    /// exhausted. Returns `false` (after recycling the frame) when the
    /// receiver has hung up.
    fn send_frame(&mut self, j: usize, frame: Frame) -> bool {
        if self.dead[j] || frame.is_empty() {
            self.pool.give(frame);
            return !self.dead[j];
        }
        let tuples = frame.tuple_count() as u64;
        let bytes = frame.occupancy() as u64;
        self.stats.on_enqueue();
        let undeliverable = match self.senders[j].try_send(frame) {
            Ok(()) => None,
            Err(TrySendError::Full(frame)) => {
                self.stats.on_stall();
                let block = self.trace.span("exchange.send_block");
                match self.senders[j].send(frame) {
                    Ok(()) => {
                        block.finish();
                        None
                    }
                    Err(e) => Some(e.into_inner()),
                }
            }
            Err(TrySendError::Disconnected(frame)) => Some(frame),
        };
        match undeliverable {
            None => {
                self.stats.on_send_ok(tuples, bytes);
                if let Some(m) = &self.meter {
                    m.frames.inc();
                    m.bytes.add(bytes);
                }
                if let Some(p) = &self.progress {
                    p.add(tuples);
                }
                true
            }
            Some(frame) => {
                self.stats.on_send_fail();
                self.pool.give(frame);
                self.dead[j] = true;
                false
            }
        }
    }

    /// Emit one tuple, serializing it into the destination frame. Returns
    /// [`HyracksError::DownstreamClosed`] once every destination's receiver
    /// has hung up (e.g. a downstream LIMIT finished), so the producer can
    /// stop instead of computing data nobody will read.
    pub fn push(&mut self, tuple: Tuple) -> Result<()> {
        if self.is_cancelled() {
            return Err(HyracksError::Cancelled);
        }
        let mut enc = std::mem::take(&mut self.enc);
        enc.clear();
        encode_tuple_into(&mut enc, &tuple);
        let res = match &mut self.fused {
            Some(chain) => chain.push(&enc),
            None => self.route(&enc, Some(&tuple)),
        };
        self.enc = enc;
        res
    }

    /// Forward an already-encoded tuple verbatim — the zero-copy re-slice
    /// path. Routes identically to [`OutputPort::push`] because the
    /// byte-level hasher is bit-identical to the decoded one.
    pub fn push_encoded(&mut self, bytes: &[u8]) -> Result<()> {
        if self.is_cancelled() {
            return Err(HyracksError::Cancelled);
        }
        if let Some(chain) = &mut self.fused {
            return chain.push(bytes);
        }
        self.route(bytes, None)
    }

    /// Emit a whole frame of encoded tuples — the vectorized producer path.
    /// One cancellation check covers the batch. Fixed-destination and
    /// replicating routes append the frame with a single bulk copy per
    /// destination ([`Frame::append_frame`]); hash routes still place each
    /// tuple individually (routing is inherently per tuple).
    pub fn push_frame(&mut self, frame: &Frame) -> Result<()> {
        if self.is_cancelled() {
            return Err(HyracksError::Cancelled);
        }
        if let Some(chain) = &mut self.fused {
            return chain.push_frame(frame);
        }
        if frame.is_empty() {
            return Ok(());
        }
        match &self.strategy {
            RouteStrategy::Fixed(j) => {
                let j = *j;
                if let Some(m) = &self.meter {
                    m.tuples.add(frame.tuple_count() as u64);
                }
                self.bulk_to(j, frame)
            }
            RouteStrategy::Replicate => {
                if let Some(m) = &self.meter {
                    m.tuples.add(frame.tuple_count() as u64);
                }
                for j in 0..self.senders.len() {
                    self.bulk_to(j, frame)?;
                }
                Ok(())
            }
            RouteStrategy::Hash(_) | RouteStrategy::LocalityAware { .. } => {
                for bytes in frame.iter() {
                    self.route(bytes, None)?;
                }
                Ok(())
            }
        }
    }

    /// Bulk-append `frame` to destination `j`'s buffer, sending when a
    /// flush threshold is crossed — [`OutputPort::buffer_to`] at frame
    /// granularity.
    fn bulk_to(&mut self, j: usize, frame: &Frame) -> Result<()> {
        if self.senders.is_empty() {
            return Ok(());
        }
        if self.dead[j] {
            return if self.all_dead() { Err(HyracksError::DownstreamClosed) } else { Ok(()) };
        }
        self.buffers[j].append_frame(frame);
        if self.buffers[j].tuple_count() >= self.tuples_per_frame
            || self.buffers[j].occupancy() >= self.frame_bytes
        {
            let out = std::mem::replace(&mut self.buffers[j], self.pool.take());
            if !self.send_frame(j, out) && self.all_dead() {
                return Err(HyracksError::DownstreamClosed);
            }
        }
        Ok(())
    }

    fn route(&mut self, bytes: &[u8], decoded: Option<&Tuple>) -> Result<()> {
        if let Some(m) = &self.meter {
            m.tuples.inc();
        }
        if matches!(self.strategy, RouteStrategy::Replicate) {
            // One serialization, appended to every destination's frame —
            // replication no longer clones the tuple per destination.
            for j in 0..self.senders.len() {
                self.buffer_to(j, bytes)?;
            }
            return Ok(());
        }
        let n = self.senders.len().max(1) as u64;
        let j = match &self.strategy {
            RouteStrategy::Fixed(j) => *j,
            RouteStrategy::Hash(fields) => (route_hash(bytes, decoded, fields)? % n) as usize,
            RouteStrategy::LocalityAware { fields, group } => {
                let h = route_hash(bytes, decoded, fields)?;
                group[(h % group.len() as u64) as usize]
            }
            RouteStrategy::Replicate => unreachable!(),
        };
        self.buffer_to(j, bytes)
    }

    fn buffer_to(&mut self, j: usize, bytes: &[u8]) -> Result<()> {
        if self.senders.is_empty() {
            return Ok(());
        }
        if self.dead[j] {
            // This destination is gone; its share of the data has no
            // consumer. Only when *every* destination is gone does the
            // producer get told to stop.
            return if self.all_dead() { Err(HyracksError::DownstreamClosed) } else { Ok(()) };
        }
        self.buffers[j].push_encoded(bytes);
        if self.buffers[j].tuple_count() >= self.tuples_per_frame
            || self.buffers[j].occupancy() >= self.frame_bytes
        {
            let frame = std::mem::replace(&mut self.buffers[j], self.pool.take());
            if !self.send_frame(j, frame) && self.all_dead() {
                return Err(HyracksError::DownstreamClosed);
            }
        }
        Ok(())
    }

    /// Flush remaining buffered tuples. Called automatically when the
    /// operator finishes (executor drops the port), but operators may flush
    /// early to bound latency (feeds do). Returns
    /// [`HyracksError::DownstreamClosed`] when every destination has hung
    /// up — explicit callers can stop early; the `Drop` path ignores it.
    pub fn flush(&mut self) -> Result<()> {
        if let Some(chain) = &mut self.fused {
            return chain.flush();
        }
        for j in 0..self.senders.len() {
            if !self.buffers[j].is_empty() {
                let frame = std::mem::take(&mut self.buffers[j]);
                self.send_frame(j, frame);
            }
        }
        if self.all_dead() {
            Err(HyracksError::DownstreamClosed)
        } else {
            Ok(())
        }
    }

    /// End-of-stream for a fused port: run the chain's `finish` exactly
    /// once (emitting buffered downstream state and flushing the tail's
    /// real port). A no-op on channel-backed ports — their end-of-stream is
    /// the flush-on-drop disconnect, unchanged.
    pub(crate) fn finish_fused(&mut self) -> Result<()> {
        if self.fused_done {
            return Ok(());
        }
        self.fused_done = true;
        match &mut self.fused {
            Some(chain) => chain.finish(),
            None => Ok(()),
        }
    }
}

/// Routing hash of one tuple: the decoded value-level hash when the caller
/// has the tuple in hand, otherwise the bit-identical byte-level hash.
fn route_hash(bytes: &[u8], decoded: Option<&Tuple>, fields: &[usize]) -> Result<u64> {
    match decoded {
        Some(t) => Ok(hash_fields(t, fields)),
        None => Ok(hash_encoded_fields(&TupleRef::new(bytes)?, fields)),
    }
}

impl Drop for OutputPort {
    fn drop(&mut self) {
        if self.fused.is_some() {
            // Backstop: the executor calls finish_fused explicitly; if the
            // operator body bailed before that, still finish the chain so
            // buffered results reach the real tail port.
            let _ = self.finish_fused();
        } else {
            let _ = self.flush();
        }
    }
}

/// How an input port combines multiple incoming channels.
enum InputMode {
    /// Take frames in arrival order (select over channels).
    Any,
    /// K-way merge of sorted per-sender streams, comparing encoded tuples.
    Merge(Comparator),
}

/// Merge-mode read position within one sender's current frame.
struct MergeCursor {
    frame: Frame,
    idx: usize,
}

/// The receiving half of one connector for one destination partition.
pub struct InputPort {
    receivers: Vec<Receiver<Frame>>,
    mode: InputMode,
    /// Merge-mode lookahead: the current frame of each sender, read in
    /// place — tuples are compared and handed out as borrowed slices.
    lookahead: Vec<Option<MergeCursor>>,
    exhausted: Vec<bool>,
    stats: Arc<ExchangeStats>,
    pool: Arc<FramePool>,
    /// Per-operator profiling meter (attached only on profiled runs).
    meter: Option<Arc<PortMeter>>,
    /// Job cancellation token, checked at frame granularity while reading.
    cancel: Option<CancellationToken>,
}

impl InputPort {
    fn new(receivers: Vec<Receiver<Frame>>, mode: InputMode, xcfg: &ExchangeConfig) -> InputPort {
        let n = receivers.len();
        InputPort {
            receivers,
            mode,
            lookahead: (0..n).map(|_| None).collect(),
            exhausted: vec![false; n],
            stats: Arc::clone(&xcfg.stats),
            pool: Arc::clone(&xcfg.pool),
            meter: None,
            cancel: xcfg.cancel.clone(),
        }
    }

    /// An input port that yields nothing (for testing/synthetic ops).
    pub fn empty() -> InputPort {
        InputPort {
            receivers: Vec::new(),
            mode: InputMode::Any,
            lookahead: Vec::new(),
            exhausted: Vec::new(),
            stats: Arc::default(),
            pool: Arc::default(),
            meter: None,
            cancel: None,
        }
    }

    /// Attach a profiling meter counting tuples/frames/bytes arriving at
    /// this port.
    pub(crate) fn set_meter(&mut self, meter: Arc<PortMeter>) {
        self.meter = Some(meter);
    }

    /// Account one received frame against the run gauge and, when
    /// profiling, this port's meter. Bytes are the exact frame occupancy.
    fn note_frame(&self, frame: &Frame) {
        self.stats.on_recv();
        if let Some(m) = &self.meter {
            m.frames.inc();
            m.tuples.add(frame.tuple_count() as u64);
            m.bytes.add(frame.occupancy() as u64);
        }
    }

    /// Receive the next frame (Any mode) — `None` at end of stream.
    fn recv_any(&mut self) -> Option<Frame> {
        loop {
            let live: Vec<usize> =
                (0..self.receivers.len()).filter(|&i| !self.exhausted[i]).collect();
            if live.is_empty() {
                return None;
            }
            if live.len() == 1 {
                match self.receivers[live[0]].recv() {
                    Ok(f) => {
                        self.note_frame(&f);
                        return Some(f);
                    }
                    Err(_) => {
                        self.exhausted[live[0]] = true;
                        continue;
                    }
                }
            }
            let mut sel = Select::new();
            for &i in &live {
                sel.recv(&self.receivers[i]);
            }
            let op = sel.select();
            let idx = live[op.index()];
            match op.recv(&self.receivers[idx]) {
                Ok(f) => {
                    self.note_frame(&f);
                    return Some(f);
                }
                Err(_) => {
                    self.exhausted[idx] = true;
                }
            }
        }
    }

    fn refill(&mut self, i: usize) {
        while self.lookahead[i].is_none() && !self.exhausted[i] {
            match self.receivers[i].recv() {
                Ok(frame) => {
                    self.note_frame(&frame);
                    if frame.is_empty() {
                        self.pool.give(frame);
                    } else {
                        self.lookahead[i] = Some(MergeCursor { frame, idx: 0 });
                    }
                }
                Err(_) => self.exhausted[i] = true,
            }
        }
    }

    /// The sender whose current head tuple is smallest (merge mode).
    fn best_source(&mut self, cmp: &Comparator) -> Option<usize> {
        for i in 0..self.receivers.len() {
            self.refill(i);
        }
        let mut best: Option<usize> = None;
        for i in 0..self.receivers.len() {
            let Some(cur) = &self.lookahead[i] else { continue };
            match best {
                None => best = Some(i),
                Some(b) => {
                    let bb = self.lookahead[b].as_ref().unwrap();
                    if cmp(cur.frame.tuple_bytes(cur.idx), bb.frame.tuple_bytes(bb.idx))
                        == Ordering::Less
                    {
                        best = Some(i);
                    }
                }
            }
        }
        best
    }

    /// Step sender `i` past its head tuple, recycling finished frames.
    fn advance(&mut self, i: usize) {
        let done = match &mut self.lookahead[i] {
            Some(cur) => {
                cur.idx += 1;
                cur.idx >= cur.frame.tuple_count()
            }
            None => false,
        };
        if done {
            let cur = self.lookahead[i].take().unwrap();
            self.pool.give(cur.frame);
        }
    }

    /// Drain the port, invoking `f` with every *encoded* tuple — the
    /// zero-decode path for forwarding operators. Stops early (and
    /// discards the rest) if `f` returns `false`.
    pub fn for_each_raw(&mut self, mut f: impl FnMut(&[u8]) -> Result<bool>) -> Result<()> {
        match &self.mode {
            InputMode::Any => {
                while let Some(frame) = self.recv_any() {
                    // Blocking operators (sort/join builds) consume whole
                    // inputs before pushing anything, so the read side is a
                    // cancellation point too — at frame granularity, before
                    // more work is invested in the frame's tuples.
                    if self.cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
                        self.pool.give(frame);
                        self.drain();
                        return Err(HyracksError::Cancelled);
                    }
                    let mut keep_going = true;
                    for i in 0..frame.tuple_count() {
                        if keep_going && !f(frame.tuple_bytes(i))? {
                            keep_going = false;
                        }
                    }
                    self.pool.give(frame);
                    if !keep_going {
                        self.drain();
                        return Ok(());
                    }
                }
                Ok(())
            }
            InputMode::Merge(cmp) => {
                let cmp = Arc::clone(cmp);
                loop {
                    if self.cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
                        self.drain();
                        return Err(HyracksError::Cancelled);
                    }
                    let Some(i) = self.best_source(&cmp) else { return Ok(()) };
                    let cur = self.lookahead[i].as_ref().unwrap();
                    let keep = f(cur.frame.tuple_bytes(cur.idx))?;
                    self.advance(i);
                    if !keep {
                        self.drain();
                        return Ok(());
                    }
                }
            }
        }
    }

    /// Drain the port frame-at-a-time — the vectorized consumer path. In
    /// arrival-order mode each received frame is handed to `f` whole (no
    /// per-tuple dispatch at all); in merge mode the merged stream is
    /// re-batched into a scratch frame so `f` still sees order-preserving
    /// batches. Stops early (and discards the rest) if `f` returns `false`.
    pub fn for_each_frame(&mut self, mut f: impl FnMut(&Frame) -> Result<bool>) -> Result<()> {
        match &self.mode {
            InputMode::Any => {
                while let Some(frame) = self.recv_any() {
                    if self.cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
                        self.pool.give(frame);
                        self.drain();
                        return Err(HyracksError::Cancelled);
                    }
                    let keep = f(&frame);
                    self.pool.give(frame);
                    match keep {
                        Ok(true) => {}
                        Ok(false) => {
                            self.drain();
                            return Ok(());
                        }
                        Err(e) => return Err(e),
                    }
                }
                Ok(())
            }
            InputMode::Merge(cmp) => {
                let cmp = Arc::clone(cmp);
                let mut scratch = Frame::new();
                loop {
                    if self.cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
                        self.drain();
                        return Err(HyracksError::Cancelled);
                    }
                    let Some(i) = self.best_source(&cmp) else { break };
                    let cur = self.lookahead[i].as_ref().unwrap();
                    scratch.push_encoded(cur.frame.tuple_bytes(cur.idx));
                    self.advance(i);
                    if scratch.tuple_count() >= FRAME_CAPACITY {
                        if !f(&scratch)? {
                            self.drain();
                            return Ok(());
                        }
                        scratch.clear();
                    }
                }
                if !scratch.is_empty() {
                    f(&scratch)?;
                }
                Ok(())
            }
        }
    }

    /// Drain the port, decoding each tuple for `f` (the staged-migration
    /// operator boundary); stops early (and discards the rest) if `f`
    /// returns `false`.
    pub fn for_each(&mut self, mut f: impl FnMut(Tuple) -> Result<bool>) -> Result<()> {
        self.for_each_raw(|bytes| f(asterix_adm::decode_tuple(bytes)?))
    }

    /// Collect the whole input into a vector (blocking operators).
    pub fn collect(&mut self) -> Result<Vec<Tuple>> {
        let mut out = Vec::new();
        self.for_each(|t| {
            out.push(t);
            Ok(true)
        })?;
        Ok(out)
    }

    /// Consume and discard what is currently queued, recycle the frames,
    /// and mark the port exhausted. With bounded channels this also opens
    /// queue space so blocked senders make progress until the port is
    /// dropped (which disconnects the channels and wakes them for good).
    pub fn drain(&mut self) {
        for i in 0..self.receivers.len() {
            while let Ok(f) = self.receivers[i].try_recv() {
                self.note_frame(&f);
                self.pool.give(f);
            }
            self.exhausted[i] = true;
        }
        for slot in self.lookahead.iter_mut() {
            if let Some(cur) = slot.take() {
                self.pool.give(cur.frame);
            }
        }
    }
}

impl Drop for InputPort {
    fn drop(&mut self) {
        // Keep the in-flight gauge honest: account for frames still queued
        // when the consumer exits early.
        self.drain();
    }
}

/// Build the channel fabric for one connector between `n_src` source and
/// `n_dst` destination partitions. Returns (per-source output ports,
/// per-destination input ports).
///
/// `node_of` maps a partition index to its (simulated) node id, used by the
/// locality-aware connector. `xcfg` supplies the frames-in-flight bound and
/// the shared stats/pool for the run.
pub fn wire(
    kind: &ConnectorKind,
    n_src: usize,
    n_dst: usize,
    node_of: &dyn Fn(usize) -> usize,
    xcfg: &ExchangeConfig,
) -> Result<(Vec<OutputPort>, Vec<InputPort>)> {
    match kind {
        ConnectorKind::OneToOne => {
            if n_src != n_dst {
                return Err(crate::HyracksError::InvalidJob(format!(
                    "OneToOne connector between {n_src} and {n_dst} partitions"
                )));
            }
            let mut outs = Vec::with_capacity(n_src);
            let mut ins = Vec::with_capacity(n_dst);
            for _ in 0..n_src {
                let (tx, rx) = xcfg.channel();
                outs.push(OutputPort::new(vec![tx], RouteStrategy::Fixed(0), xcfg));
                ins.push(InputPort::new(vec![rx], InputMode::Any, xcfg));
            }
            Ok((outs, ins))
        }
        ConnectorKind::MToNReplicating => {
            let (txs, rxs): (Vec<_>, Vec<_>) = (0..n_dst).map(|_| xcfg.channel()).unzip();
            let outs = (0..n_src)
                .map(|_| OutputPort::new(txs.clone(), RouteStrategy::Replicate, xcfg))
                .collect();
            let ins =
                rxs.into_iter().map(|rx| InputPort::new(vec![rx], InputMode::Any, xcfg)).collect();
            Ok((outs, ins))
        }
        ConnectorKind::MToNPartitioning { fields }
        | ConnectorKind::HashPartitioningShuffle { fields } => {
            let (txs, rxs): (Vec<_>, Vec<_>) = (0..n_dst).map(|_| xcfg.channel()).unzip();
            let outs = (0..n_src)
                .map(|_| OutputPort::new(txs.clone(), RouteStrategy::Hash(fields.clone()), xcfg))
                .collect();
            let ins =
                rxs.into_iter().map(|rx| InputPort::new(vec![rx], InputMode::Any, xcfg)).collect();
            Ok((outs, ins))
        }
        ConnectorKind::LocalityAwareMToNPartitioning { fields } => {
            let (txs, rxs): (Vec<_>, Vec<_>) = (0..n_dst).map(|_| xcfg.channel()).unzip();
            let outs = (0..n_src)
                .map(|p| {
                    // Destinations on the same node as source partition p,
                    // falling back to all destinations.
                    let my_node = node_of(p);
                    let local: Vec<usize> = (0..n_dst).filter(|&j| node_of(j) == my_node).collect();
                    let group = if local.is_empty() { (0..n_dst).collect() } else { local };
                    OutputPort::new(
                        txs.clone(),
                        RouteStrategy::LocalityAware { fields: fields.clone(), group },
                        xcfg,
                    )
                })
                .collect();
            let ins =
                rxs.into_iter().map(|rx| InputPort::new(vec![rx], InputMode::Any, xcfg)).collect();
            Ok((outs, ins))
        }
        ConnectorKind::MToNPartitioningMerging { fields, comparator } => {
            // One channel per (src, dst) pair so the receiver can merge the
            // sorted per-sender streams.
            let mut per_dst_rxs: Vec<Vec<Receiver<Frame>>> =
                (0..n_dst).map(|_| Vec::with_capacity(n_src)).collect();
            let mut per_src_txs: Vec<Vec<Sender<Frame>>> =
                (0..n_src).map(|_| Vec::with_capacity(n_dst)).collect();
            for txs in per_src_txs.iter_mut() {
                for rxs in per_dst_rxs.iter_mut() {
                    let (tx, rx) = xcfg.channel();
                    txs.push(tx);
                    rxs.push(rx);
                }
            }
            let outs = per_src_txs
                .into_iter()
                .map(|txs| OutputPort::new(txs, RouteStrategy::Hash(fields.clone()), xcfg))
                .collect();
            let ins = per_dst_rxs
                .into_iter()
                .map(|rxs| InputPort::new(rxs, InputMode::Merge(Arc::clone(comparator)), xcfg))
                .collect();
            Ok((outs, ins))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{sort_comparator, SortKey};
    use asterix_adm::{encode_tuple, Value};

    fn t(i: i64) -> Tuple {
        vec![Value::Int64(i)]
    }

    fn xcfg() -> ExchangeConfig {
        ExchangeConfig::default()
    }

    #[test]
    fn one_to_one_preserves_partition() {
        let (mut outs, ins) = wire(&ConnectorKind::OneToOne, 2, 2, &|_| 0, &xcfg()).unwrap();
        outs[0].push(t(0)).unwrap();
        outs[1].push(t(1)).unwrap();
        drop(outs);
        for (i, mut port) in ins.into_iter().enumerate() {
            let got = port.collect().unwrap();
            assert_eq!(got, vec![t(i as i64)]);
        }
    }

    #[test]
    fn one_to_one_arity_mismatch_rejected() {
        assert!(wire(&ConnectorKind::OneToOne, 2, 3, &|_| 0, &xcfg()).is_err());
    }

    #[test]
    fn partitioning_routes_by_hash() {
        let kind = ConnectorKind::MToNPartitioning { fields: vec![0] };
        let (mut outs, ins) = wire(&kind, 2, 4, &|_| 0, &xcfg()).unwrap();
        for i in 0..100 {
            outs[(i % 2) as usize].push(t(i)).unwrap();
        }
        drop(outs);
        let mut total = 0;
        let mut per_part: Vec<Vec<i64>> = Vec::new();
        for mut port in ins {
            let got = port.collect().unwrap();
            total += got.len();
            per_part.push(got.iter().map(|t| t[0].as_i64().unwrap()).collect());
        }
        assert_eq!(total, 100);
        // Same key always lands in the same partition: re-send key 7.
        let (mut outs2, ins2) = wire(&kind, 1, 4, &|_| 0, &xcfg()).unwrap();
        outs2[0].push(t(7)).unwrap();
        drop(outs2);
        let landed: Vec<usize> = ins2
            .into_iter()
            .enumerate()
            .filter_map(|(i, mut p)| (!p.collect().unwrap().is_empty()).then_some(i))
            .collect();
        assert_eq!(landed.len(), 1);
        assert!(per_part[landed[0]].contains(&7));
    }

    #[test]
    fn encoded_and_decoded_pushes_route_identically() {
        // push() and push_encoded() must agree on the destination: the
        // byte-level hash is bit-identical to the decoded one.
        let kind = ConnectorKind::MToNPartitioning { fields: vec![0] };
        let (mut outs, ins) = wire(&kind, 1, 4, &|_| 0, &xcfg()).unwrap();
        for i in 0..50 {
            outs[0].push(t(i)).unwrap();
            outs[0].push_encoded(&encode_tuple(&t(i))).unwrap();
        }
        drop(outs);
        for mut port in ins {
            let got = port.collect().unwrap();
            // Every value arrived an even number of times (both copies
            // routed to the same destination).
            let mut counts = std::collections::HashMap::new();
            for row in &got {
                *counts.entry(row[0].as_i64().unwrap()).or_insert(0usize) += 1;
            }
            assert!(counts.values().all(|&c| c == 2), "copies split across partitions");
        }
    }

    #[test]
    fn replicating_duplicates() {
        let (mut outs, ins) = wire(&ConnectorKind::MToNReplicating, 2, 3, &|_| 0, &xcfg()).unwrap();
        outs[0].push(t(1)).unwrap();
        outs[1].push(t(2)).unwrap();
        drop(outs);
        for mut port in ins {
            let mut got: Vec<i64> =
                port.collect().unwrap().iter().map(|t| t[0].as_i64().unwrap()).collect();
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }
    }

    #[test]
    fn merging_connector_preserves_order() {
        // The real jobgen comparator: encoded-key bytes on field 0.
        let cmp: Comparator = sort_comparator(&[SortKey::field(0, false)]);
        let kind = ConnectorKind::MToNPartitioningMerging { fields: vec![], comparator: cmp };
        // fields=[] → every tuple hashes identically → all to dst 0.
        let (mut outs, mut ins) = wire(&kind, 3, 1, &|_| 0, &xcfg()).unwrap();
        // Each source emits a sorted run.
        for (s, base) in [(0usize, 0i64), (1, 1), (2, 2)] {
            for i in 0..10 {
                outs[s].push(t(base + i * 3)).unwrap();
            }
        }
        drop(outs);
        let got: Vec<i64> =
            ins[0].collect().unwrap().iter().map(|t| t[0].as_i64().unwrap()).collect();
        let expect: Vec<i64> = (0..30).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn locality_aware_stays_on_node() {
        // 4 partitions on 2 nodes: partitions 0,1 on node 0; 2,3 on node 1.
        let node_of = |p: usize| p / 2;
        let kind = ConnectorKind::LocalityAwareMToNPartitioning { fields: vec![0] };
        let (mut outs, ins) = wire(&kind, 4, 4, &node_of, &xcfg()).unwrap();
        for i in 0..100 {
            outs[0].push(t(i)).unwrap(); // src partition 0, node 0
        }
        drop(outs);
        let counts: Vec<usize> = ins.into_iter().map(|mut p| p.collect().unwrap().len()).collect();
        // Everything from node 0 stays on node 0's partitions (0 and 1).
        assert_eq!(counts[2] + counts[3], 0);
        assert_eq!(counts[0] + counts[1], 100);
    }

    #[test]
    fn early_exit_drains() {
        let (mut outs, mut ins) = wire(&ConnectorKind::OneToOne, 1, 1, &|_| 0, &xcfg()).unwrap();
        for i in 0..5000 {
            outs[0].push(t(i)).unwrap();
        }
        drop(outs);
        let mut n = 0;
        ins[0]
            .for_each(|_| {
                n += 1;
                Ok(n < 10)
            })
            .unwrap();
        assert_eq!(n, 10);
        // Port fully drained afterwards.
        assert!(ins[0].collect().unwrap().is_empty());
    }

    #[test]
    fn closed_receiver_surfaces_downstream_closed() {
        // Producer feeding a hung-up consumer learns about it within one
        // frame instead of silently discarding data forever.
        let cfg = ExchangeConfig { frames_in_flight: 2, ..Default::default() };
        let (mut outs, ins) = wire(&ConnectorKind::OneToOne, 1, 1, &|_| 0, &cfg).unwrap();
        drop(ins);
        let mut stopped_at = None;
        for i in 0..100_000 {
            if outs[0].push(t(i)).is_err() {
                stopped_at = Some(i);
                break;
            }
        }
        // First full frame (FRAME_CAPACITY tuples) hits the disconnect.
        assert_eq!(stopped_at, Some(FRAME_CAPACITY as i64 - 1));
        assert!(matches!(outs[0].flush(), Err(HyracksError::DownstreamClosed)));
    }

    #[test]
    fn partial_disconnect_keeps_live_destinations() {
        // 1 source, 2 destinations; destination 1 hangs up. Data routed to
        // the live destination still flows; push only errors once ALL
        // destinations are gone.
        let cfg = ExchangeConfig { frames_in_flight: 8, ..Default::default() };
        let kind = ConnectorKind::MToNPartitioning { fields: vec![0] };
        let (mut outs, mut ins) = wire(&kind, 1, 2, &|_| 0, &cfg).unwrap();
        let dead = ins.pop().unwrap();
        drop(dead);
        let mut pushed = 0u64;
        for i in 0..(FRAME_CAPACITY as i64 * 4) {
            if outs[0].push(t(i)).is_err() {
                break;
            }
            pushed += 1;
        }
        assert_eq!(pushed, FRAME_CAPACITY as u64 * 4, "live destination keeps accepting");
        drop(outs);
        let got = ins[0].collect().unwrap();
        assert!(!got.is_empty());
        assert!(got.iter().all(|t| { (hash_fields(t, &[0]) % 2) == 0 }));
    }

    #[test]
    fn frames_are_recycled_through_the_pool() {
        let cfg = xcfg();
        let (mut outs, mut ins) = wire(&ConnectorKind::OneToOne, 1, 1, &|_| 0, &cfg).unwrap();
        for i in 0..(FRAME_CAPACITY as i64 * 2) {
            outs[0].push(t(i)).unwrap();
        }
        drop(outs);
        assert_eq!(ins[0].collect().unwrap().len(), FRAME_CAPACITY * 2);
        drop(ins);
        assert!(cfg.pool.pooled() >= 2, "drained frames return to the pool");
        assert_eq!(cfg.stats.frames_sent(), 2);
        assert_eq!(cfg.stats.tuples_sent(), FRAME_CAPACITY as u64 * 2);
        assert_eq!(cfg.stats.buffered_frames(), 0, "gauge returns to zero");
    }

    #[test]
    fn exchange_bytes_are_exact_frame_occupancy() {
        // bytes_sent is a measurement of wire bytes: per-tuple encoded
        // length plus 4 slot-directory bytes, summed over sent frames.
        let cfg = xcfg();
        let (mut outs, mut ins) = wire(&ConnectorKind::OneToOne, 1, 1, &|_| 0, &cfg).unwrap();
        let rows: Vec<Tuple> =
            (0..10).map(|i| vec![Value::Int64(i), Value::string("pad")]).collect();
        let expected: u64 = rows.iter().map(|r| encode_tuple(r).len() as u64 + 4).sum();
        for r in &rows {
            outs[0].push(r.clone()).unwrap();
        }
        outs[0].flush().unwrap();
        drop(outs);
        assert_eq!(ins[0].collect().unwrap().len(), 10);
        assert_eq!(cfg.stats.bytes_sent(), expected);
    }

    #[test]
    fn fused_port_bypasses_channels_and_finishes_once() {
        use crate::pipeline::testing::{Recorder, RecorderStage};
        use parking_lot::Mutex;

        let rec = Arc::new(Mutex::new(Recorder::default()));
        let mut port = OutputPort::fused(Box::new(RecorderStage(Arc::clone(&rec))), None);
        // Both push paths reach the chain with identical encodings.
        port.push(t(1)).unwrap();
        port.push_encoded(&encode_tuple(&t(2))).unwrap();
        port.finish_fused().unwrap();
        port.finish_fused().unwrap(); // idempotent
        {
            let r = rec.lock();
            assert_eq!(r.rows, vec![encode_tuple(&t(1)), encode_tuple(&t(2))]);
            assert!(r.finished);
        }
        drop(port); // Drop after an explicit finish is a no-op.
        assert_eq!(rec.lock().rows.len(), 2);
    }

    #[test]
    fn push_frame_routes_identically_to_per_tuple() {
        // The batch producer path must land every tuple on the same
        // destination the per-tuple path picks, for every strategy.
        for kind in [
            ConnectorKind::OneToOne,
            ConnectorKind::MToNReplicating,
            ConnectorKind::MToNPartitioning { fields: vec![0] },
        ] {
            let n_dst = if matches!(kind, ConnectorKind::OneToOne) { 1 } else { 3 };
            let cfg = ExchangeConfig { frames_in_flight: 64, ..Default::default() };
            let (mut outs, ins) = wire(&kind, 1, n_dst, &|_| 0, &cfg).unwrap();
            let mut frame = Frame::new();
            for i in 0..40 {
                frame.push_encoded(&encode_tuple(&t(i)));
            }
            outs[0].push_frame(&frame).unwrap();
            // Reference: the per-tuple path over a second wiring.
            let cfg2 = ExchangeConfig { frames_in_flight: 64, ..Default::default() };
            let (mut outs2, ins2) = wire(&kind, 1, n_dst, &|_| 0, &cfg2).unwrap();
            for i in 0..40 {
                outs2[0].push_encoded(&encode_tuple(&t(i))).unwrap();
            }
            drop(outs);
            drop(outs2);
            for (mut a, mut b) in ins.into_iter().zip(ins2) {
                assert_eq!(a.collect().unwrap(), b.collect().unwrap(), "{}", kind.name());
            }
        }
    }

    #[test]
    fn for_each_frame_sees_whole_frames_and_merges_in_order() {
        // Any mode: received frames arrive whole.
        let cfg = ExchangeConfig { frames_in_flight: 64, ..Default::default() };
        let (mut outs, mut ins) = wire(&ConnectorKind::OneToOne, 1, 1, &|_| 0, &cfg).unwrap();
        for i in 0..(FRAME_CAPACITY as i64 + 10) {
            outs[0].push(t(i)).unwrap();
        }
        drop(outs);
        let mut sizes = Vec::new();
        let mut rows = Vec::new();
        ins[0]
            .for_each_frame(|frame| {
                sizes.push(frame.tuple_count());
                for i in 0..frame.tuple_count() {
                    rows.push(frame.decode_tuple(i).unwrap()[0].as_i64().unwrap());
                }
                Ok(true)
            })
            .unwrap();
        assert_eq!(sizes, vec![FRAME_CAPACITY, 10]);
        assert_eq!(rows, (0..(FRAME_CAPACITY as i64 + 10)).collect::<Vec<_>>());

        // Merge mode: batches preserve the k-way merge order.
        let cmp: Comparator = sort_comparator(&[SortKey::field(0, false)]);
        let kind = ConnectorKind::MToNPartitioningMerging { fields: vec![], comparator: cmp };
        let cfg = ExchangeConfig { frames_in_flight: 64, ..Default::default() };
        let (mut outs, mut ins) = wire(&kind, 3, 1, &|_| 0, &cfg).unwrap();
        for (s, base) in [(0usize, 0i64), (1, 1), (2, 2)] {
            for i in 0..10 {
                outs[s].push(t(base + i * 3)).unwrap();
            }
        }
        drop(outs);
        let mut merged = Vec::new();
        ins[0]
            .for_each_frame(|frame| {
                for i in 0..frame.tuple_count() {
                    merged.push(frame.decode_tuple(i).unwrap()[0].as_i64().unwrap());
                }
                Ok(true)
            })
            .unwrap();
        assert_eq!(merged, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn small_frame_bytes_forces_early_flush() {
        // The byte capacity is a flush threshold of its own: tiny frames
        // mean many sends even when the tuple count is far below capacity.
        // Enough frames in flight that the single-threaded test never
        // blocks on the bounded channel before the consumer drains it.
        let cfg = ExchangeConfig { frame_bytes: 64, frames_in_flight: 64, ..Default::default() };
        let (mut outs, mut ins) = wire(&ConnectorKind::OneToOne, 1, 1, &|_| 0, &cfg).unwrap();
        for i in 0..100 {
            outs[0].push(t(i)).unwrap();
        }
        drop(outs);
        assert_eq!(ins[0].collect().unwrap().len(), 100);
        assert!(
            cfg.stats.frames_sent() > 10,
            "only {} frames for 100 tuples at 64-byte frames",
            cfg.stats.frames_sent()
        );
    }
}
