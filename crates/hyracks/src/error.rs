//! Runtime error type.

use std::fmt;

/// Errors surfaced by job execution.
#[derive(Debug)]
pub enum HyracksError {
    /// Expression/data-model failure inside an operator.
    Adm(asterix_adm::AdmError),
    /// A malformed job graph (bad connector arity, cycles, ...).
    InvalidJob(String),
    /// Operator runtime failure (storage callbacks and the like surface
    /// through this as strings to keep the runtime crate substrate-neutral).
    Operator(String),
    /// I/O during spilling.
    Io(std::io::Error),
    /// Every downstream consumer of an output port has hung up (e.g. a
    /// `LimitOp` finished early). Producers should stop generating data;
    /// the executor treats this as a clean early exit, not a failure.
    DownstreamClosed,
    /// The job's cancellation token fired (`Instance::cancel` or a query
    /// deadline). Operator threads unwind through the same drain paths as
    /// `DownstreamClosed`, but the job as a whole reports this as an error.
    Cancelled,
}

impl HyracksError {
    /// Is this the benign "consumer finished early" signal?
    pub fn is_downstream_closed(&self) -> bool {
        matches!(self, HyracksError::DownstreamClosed)
    }
}

impl fmt::Display for HyracksError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HyracksError::Adm(e) => write!(f, "{e}"),
            HyracksError::InvalidJob(m) => write!(f, "invalid job: {m}"),
            HyracksError::Operator(m) => write!(f, "operator failure: {m}"),
            HyracksError::Io(e) => write!(f, "io error: {e}"),
            HyracksError::DownstreamClosed => write!(f, "downstream consumers closed"),
            HyracksError::Cancelled => write!(f, "query cancelled"),
        }
    }
}

impl std::error::Error for HyracksError {}

impl From<asterix_adm::AdmError> for HyracksError {
    fn from(e: asterix_adm::AdmError) -> Self {
        HyracksError::Adm(e)
    }
}

impl From<std::io::Error> for HyracksError {
    fn from(e: std::io::Error) -> Self {
        HyracksError::Io(e)
    }
}

impl From<String> for HyracksError {
    fn from(m: String) -> Self {
        HyracksError::Operator(m)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, HyracksError>;
