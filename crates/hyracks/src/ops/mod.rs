//! The operator library (§4.1).
//!
//! Operators are stateless descriptors; per-partition state lives inside
//! `run`, which the executor invokes once per partition on its own thread.
//! Expression evaluation is injected as closures so the runtime stays
//! data-language-neutral (the same property that lets Hyracks host
//! Hivesterix and VXQuery in the paper's software stack, Figure 5).

mod group;
mod join;
mod sort;

pub use group::{AggKind, AggSpec, GroupMode, HashGroupOp, PreclusteredGroupOp, ScalarAggOp};
pub use join::{HybridHashJoinOp, IndexNestedLoopJoinOp, JoinType, NestedLoopJoinOp};
pub use sort::{sort_comparator, SortKey, SortOp};

use std::sync::Arc;

use asterix_adm::Value;
use parking_lot::Mutex;

use crate::connector::{InputPort, OutputPort};
use crate::frame::Tuple;
use crate::Result;

/// Evaluate an expression over a tuple.
pub type EvalFn = Arc<dyn Fn(&Tuple) -> Result<Value> + Send + Sync>;

/// Evaluate a predicate over a tuple. `Ok(false)` for unknown (AQL's
/// 2.5-valued logic collapses to false at the select boundary).
pub type PredFn = Arc<dyn Fn(&Tuple) -> Result<bool> + Send + Sync>;

/// Produce source tuples for one partition: `(partition, nparts, emit)`.
pub type SourceFn =
    Arc<dyn Fn(usize, usize, &mut dyn FnMut(Tuple) -> Result<()>) -> Result<()> + Send + Sync>;

/// Produce *encoded* source tuples for one partition — the zero-copy scan
/// path: storage hands the offset-prefixed tuple encoding straight to the
/// exchange without materializing `Value`s.
pub type RawSourceFn =
    Arc<dyn Fn(usize, usize, &mut dyn FnMut(&[u8]) -> Result<()>) -> Result<()> + Send + Sync>;

/// Per-partition execution context handed to `run`.
pub struct OpCtx {
    pub partition: usize,
    pub nparts: usize,
    /// Simulated node hosting this partition.
    pub node: usize,
    pub inputs: Vec<InputPort>,
    pub outputs: Vec<OutputPort>,
}

/// An operator: named, with declared blocking inputs (activity structure)
/// and a per-partition run body.
pub trait OperatorDescriptor: Send + Sync {
    /// Display name (used by `JobSpec::describe`, Figure 6 style).
    fn name(&self) -> String;

    /// Input indexes that must be fully consumed before any output is
    /// produced — the activity split of §4.1 (e.g. hash-join input 0 is the
    /// Build activity).
    fn blocking_inputs(&self) -> Vec<usize> {
        Vec::new()
    }

    /// Execute one partition.
    fn run(&self, ctx: &mut OpCtx) -> Result<()>;
}

// ---------------------------------------------------------------------------
// Sources and sinks
// ---------------------------------------------------------------------------

/// A data source driven by a closure (dataset scans, index searches, value
/// literals — the storage layer binds these). Sources either emit decoded
/// tuples ([`SourceFn`]) or already-encoded tuple bytes ([`RawSourceFn`]);
/// the raw form feeds the exchange without a decode/re-encode round trip.
pub struct SourceOp {
    label: String,
    source: SourceBody,
}

enum SourceBody {
    Decoded(SourceFn),
    Raw(RawSourceFn),
}

impl SourceOp {
    pub fn new(
        label: impl Into<String>,
        f: impl Fn(usize, usize, &mut dyn FnMut(Tuple) -> Result<()>) -> Result<()>
            + Send
            + Sync
            + 'static,
    ) -> SourceOp {
        SourceOp { label: label.into(), source: SourceBody::Decoded(Arc::new(f)) }
    }

    pub fn from_fn(label: impl Into<String>, f: SourceFn) -> SourceOp {
        SourceOp { label: label.into(), source: SourceBody::Decoded(f) }
    }

    /// A source that emits encoded tuples (the serialized scan path).
    pub fn from_raw_fn(label: impl Into<String>, f: RawSourceFn) -> SourceOp {
        SourceOp { label: label.into(), source: SourceBody::Raw(f) }
    }
}

impl OperatorDescriptor for SourceOp {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { partition, nparts, outputs, .. } = ctx;
        let out = &mut outputs[0];
        match &self.source {
            SourceBody::Decoded(f) => f(*partition, *nparts, &mut |t| out.push(t)),
            SourceBody::Raw(f) => f(*partition, *nparts, &mut |bytes| out.push_encoded(bytes)),
        }
    }
}

/// Collects every input tuple into a shared vector (job results).
pub struct SinkOp {
    collector: Arc<Mutex<Vec<Tuple>>>,
}

impl SinkOp {
    pub fn new(collector: Arc<Mutex<Vec<Tuple>>>) -> SinkOp {
        SinkOp { collector }
    }
}

impl OperatorDescriptor for SinkOp {
    fn name(&self) -> String {
        "result-sink".into()
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let mut local = Vec::new();
        ctx.inputs[0].for_each(|t| {
            local.push(t);
            Ok(true)
        })?;
        self.collector.lock().extend(local);
        Ok(())
    }
}

/// Applies a side-effecting callback per tuple (index insert/delete — the
/// index lifecycle operators of §4.1), forwarding tuples downstream.
pub struct ApplyOp {
    label: String,
    apply: Arc<dyn Fn(usize, &Tuple) -> Result<()> + Send + Sync>,
}

impl ApplyOp {
    pub fn new(
        label: impl Into<String>,
        apply: impl Fn(usize, &Tuple) -> Result<()> + Send + Sync + 'static,
    ) -> ApplyOp {
        ApplyOp { label: label.into(), apply: Arc::new(apply) }
    }
}

impl OperatorDescriptor for ApplyOp {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { partition, inputs, outputs, .. } = ctx;
        let p = *partition;
        let out = &mut outputs[0];
        let apply = &self.apply;
        // Decode for the callback, but forward the original bytes verbatim.
        inputs[0].for_each_raw(|bytes| {
            let t = asterix_adm::decode_tuple(bytes)?;
            apply(p, &t)?;
            out.push_encoded(bytes)?;
            Ok(true)
        })
    }
}

// ---------------------------------------------------------------------------
// Tuple-at-a-time operators
// ---------------------------------------------------------------------------

/// Filter by predicate (the `select` operator of Figure 6).
pub struct SelectOp {
    label: String,
    pred: PredFn,
}

impl SelectOp {
    pub fn new(label: impl Into<String>, pred: PredFn) -> SelectOp {
        SelectOp { label: label.into(), pred }
    }
}

impl OperatorDescriptor for SelectOp {
    fn name(&self) -> String {
        format!("select {}", self.label)
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { inputs, outputs, .. } = ctx;
        let out = &mut outputs[0];
        let pred = &self.pred;
        // Evaluate on a decoded view; surviving tuples are forwarded as
        // their original bytes (no re-serialization).
        inputs[0].for_each_raw(|bytes| {
            let t = asterix_adm::decode_tuple(bytes)?;
            if pred(&t)? {
                out.push_encoded(bytes)?;
            }
            Ok(true)
        })
    }
}

/// Append computed expression values to each tuple (Figure 6's `assign`).
pub struct AssignOp {
    label: String,
    exprs: Vec<EvalFn>,
}

impl AssignOp {
    pub fn new(label: impl Into<String>, exprs: Vec<EvalFn>) -> AssignOp {
        AssignOp { label: label.into(), exprs }
    }
}

impl OperatorDescriptor for AssignOp {
    fn name(&self) -> String {
        format!("assign {}", self.label)
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { inputs, outputs, .. } = ctx;
        let out = &mut outputs[0];
        let exprs = &self.exprs;
        inputs[0].for_each(|mut t| {
            for e in exprs {
                let v = e(&t)?;
                t.push(v);
            }
            out.push(t)?;
            Ok(true)
        })
    }
}

/// Keep only the given field positions, in order.
pub struct ProjectOp {
    pub fields: Vec<usize>,
}

impl OperatorDescriptor for ProjectOp {
    fn name(&self) -> String {
        format!("project {:?}", self.fields)
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { inputs, outputs, .. } = ctx;
        let out = &mut outputs[0];
        let fields = &self.fields;
        // Pure byte re-slicing: kept fields' encodings are copied into a
        // fresh tuple without ever decoding them (out-of-range fields
        // become MISSING, matching the decoded semantics).
        let mut scratch = Vec::new();
        inputs[0].for_each_raw(|bytes| {
            let r = asterix_adm::TupleRef::new(bytes)?;
            scratch.clear();
            asterix_adm::tuple::project_tuple_into(&mut scratch, &r, fields);
            out.push_encoded(&scratch)?;
            Ok(true)
        })
    }
}

/// Pass through at most `limit` tuples after skipping `offset` (per
/// instance — a global limit runs this at parallelism 1).
pub struct LimitOp {
    pub limit: usize,
    pub offset: usize,
}

impl OperatorDescriptor for LimitOp {
    fn name(&self) -> String {
        if self.offset > 0 {
            format!("limit {} offset {}", self.limit, self.offset)
        } else {
            format!("limit {}", self.limit)
        }
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { inputs, outputs, .. } = ctx;
        let out = &mut outputs[0];
        let mut seen = 0usize;
        let mut emitted = 0usize;
        let (limit, offset) = (self.limit, self.offset);
        // Pure forwarding: never decodes a tuple.
        inputs[0].for_each_raw(|bytes| {
            if seen < offset {
                seen += 1;
                return Ok(true);
            }
            if emitted >= limit {
                return Ok(false);
            }
            out.push_encoded(bytes)?;
            emitted += 1;
            Ok(emitted < limit)
        })
    }
}

/// Unnest a collection-valued expression: one output tuple per element,
/// with the element (and optionally its 1-based position, for AQL's `at`
/// positional variables) appended.
pub struct UnnestOp {
    label: String,
    expr: EvalFn,
    pub with_position: bool,
    /// When false (inner unnest), tuples whose collection is empty or
    /// unknown vanish; when true (outer), one tuple with `missing` appended
    /// survives — the left-outer shape of Query 4.
    pub outer: bool,
}

impl UnnestOp {
    pub fn new(label: impl Into<String>, expr: EvalFn) -> UnnestOp {
        UnnestOp { label: label.into(), expr, with_position: false, outer: false }
    }

    pub fn outer(label: impl Into<String>, expr: EvalFn) -> UnnestOp {
        UnnestOp { label: label.into(), expr, with_position: false, outer: true }
    }

    pub fn with_position(mut self) -> Self {
        self.with_position = true;
        self
    }
}

impl OperatorDescriptor for UnnestOp {
    fn name(&self) -> String {
        format!("unnest {}", self.label)
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { inputs, outputs, .. } = ctx;
        let out = &mut outputs[0];
        let expr = &self.expr;
        let (with_pos, outer) = (self.with_position, self.outer);
        inputs[0].for_each(|t| {
            let coll = expr(&t)?;
            match coll.as_list() {
                Some(items) if !items.is_empty() => {
                    for (i, item) in items.iter().enumerate() {
                        let mut row = t.clone();
                        row.push(item.clone());
                        if with_pos {
                            row.push(Value::Int64(i as i64 + 1));
                        }
                        out.push(row)?;
                    }
                }
                _ if outer => {
                    let mut row = t.clone();
                    row.push(Value::Missing);
                    if with_pos {
                        row.push(Value::Missing);
                    }
                    out.push(row)?;
                }
                _ => {}
            }
            Ok(true)
        })
    }
}

/// Forward all inputs to the single output (bag union).
pub struct UnionAllOp;

impl OperatorDescriptor for UnionAllOp {
    fn name(&self) -> String {
        "union-all".into()
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { inputs, outputs, .. } = ctx;
        let out = &mut outputs[0];
        for input in inputs.iter_mut() {
            // Pure forwarding: never decodes a tuple.
            input.for_each_raw(|bytes| {
                out.push_encoded(bytes)?;
                Ok(true)
            })?;
        }
        Ok(())
    }
}

/// Forward the input to every output — a Feed Joint (§4.5): "like a
/// network tap [...] allows data to be routed simultaneously along
/// multiple paths".
pub struct ReplicateOp;

impl OperatorDescriptor for ReplicateOp {
    fn name(&self) -> String {
        "replicate (feed joint)".into()
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { inputs, outputs, .. } = ctx;
        let n = outputs.len();
        let mut closed = vec![false; n];
        // Byte forwarding: each tap gets the same encoding appended to its
        // frame — no per-tap tuple clone.
        inputs[0].for_each_raw(|bytes| {
            let mut all_closed = true;
            for (i, out) in outputs.iter_mut().enumerate() {
                if closed[i] {
                    continue;
                }
                // One tap hanging up must not starve the others; only stop
                // consuming once every downstream path is gone.
                match out.push_encoded(bytes) {
                    Ok(()) => all_closed = false,
                    Err(crate::HyracksError::DownstreamClosed) => closed[i] = true,
                    Err(e) => return Err(e),
                }
            }
            Ok(!all_closed)
        })
    }
}

/// Partition-aware flat-map: the closure receives the partition index —
/// used for partition-local storage access like the primary-index lookups
/// that follow a secondary-index search (Figure 6).
pub struct PartitionMapOp {
    label: String,
    f: Arc<dyn Fn(usize, &Tuple) -> Result<Vec<Tuple>> + Send + Sync>,
}

impl PartitionMapOp {
    pub fn new(
        label: impl Into<String>,
        f: impl Fn(usize, &Tuple) -> Result<Vec<Tuple>> + Send + Sync + 'static,
    ) -> PartitionMapOp {
        PartitionMapOp { label: label.into(), f: Arc::new(f) }
    }
}

impl OperatorDescriptor for PartitionMapOp {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { partition, inputs, outputs, .. } = ctx;
        let p = *partition;
        let out = &mut outputs[0];
        let f = &self.f;
        inputs[0].for_each(|t| {
            for row in f(p, &t)? {
                out.push(row)?;
            }
            Ok(true)
        })
    }
}

/// Duplicate elimination on a set of key columns: the first tuple of each
/// distinct key survives. Run after hash-partitioning on those columns for
/// global dedup.
pub struct DistinctOp {
    pub keys: Vec<usize>,
}

impl OperatorDescriptor for DistinctOp {
    fn name(&self) -> String {
        format!("distinct {:?}", self.keys)
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { inputs, outputs, .. } = ctx;
        let out = &mut outputs[0];
        let keys = &self.keys;
        // Keyed by the canonical comparison-key encoding of the key
        // columns: byte equality there is exactly `total_cmp == Equal`
        // (numeric widths collapse), so no collision re-check is needed,
        // and survivors are forwarded as their original bytes.
        let mut seen: std::collections::HashSet<Vec<u8>> = std::collections::HashSet::new();
        inputs[0].for_each_raw(|bytes| {
            let r = asterix_adm::TupleRef::new(bytes)?;
            let mut key = Vec::new();
            for &i in keys {
                asterix_adm::ordkey::encode_value_into(&mut key, &r.field_value(i)?);
            }
            if seen.insert(key) {
                out.push_encoded(bytes)?;
            }
            Ok(true)
        })
    }
}

/// General flat-map (used for compiled subplans that need bespoke tuple
/// shapes).
pub struct MapOp {
    label: String,
    f: Arc<dyn Fn(&Tuple) -> Result<Vec<Tuple>> + Send + Sync>,
}

impl MapOp {
    pub fn new(
        label: impl Into<String>,
        f: impl Fn(&Tuple) -> Result<Vec<Tuple>> + Send + Sync + 'static,
    ) -> MapOp {
        MapOp { label: label.into(), f: Arc::new(f) }
    }
}

impl OperatorDescriptor for MapOp {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { inputs, outputs, .. } = ctx;
        let out = &mut outputs[0];
        let f = &self.f;
        inputs[0].for_each(|t| {
            for row in f(&t)? {
                out.push(row)?;
            }
            Ok(true)
        })
    }
}
