//! The operator library (§4.1).
//!
//! Operators are stateless descriptors; per-partition state lives inside
//! `run`, which the executor invokes once per partition on its own thread.
//! Expression evaluation is injected as closures so the runtime stays
//! data-language-neutral (the same property that lets Hyracks host
//! Hivesterix and VXQuery in the paper's software stack, Figure 5).

mod group;
mod join;
mod sort;

pub use group::{AggKind, AggSpec, GroupMode, HashGroupOp, PreclusteredGroupOp, ScalarAggOp};
pub use join::{HybridHashJoinOp, IndexNestedLoopJoinOp, JoinType, NestedLoopJoinOp};
pub use sort::{sort_comparator, SortKey, SortOp};

use std::cmp::Ordering;
use std::sync::Arc;

use asterix_adm::Value;
use parking_lot::Mutex;

use crate::connector::{InputPort, OutputPort};
use crate::filter::{KeyTest, RuntimeFilterHub};
use crate::frame::{hash_encoded_fields, FrameBuf, SelBitmap, Tuple};
use crate::pipeline::{ExecEnv, PipelineCtx, PipelineOp};
use crate::Result;

/// Evaluate an expression over a tuple.
pub type EvalFn = Arc<dyn Fn(&Tuple) -> Result<Value> + Send + Sync>;

/// Evaluate a predicate over a tuple. `Ok(false)` for unknown (AQL's
/// 2.5-valued logic collapses to false at the select boundary).
pub type PredFn = Arc<dyn Fn(&Tuple) -> Result<bool> + Send + Sync>;

/// Produce source tuples for one partition: `(partition, nparts, emit)`.
pub type SourceFn =
    Arc<dyn Fn(usize, usize, &mut dyn FnMut(Tuple) -> Result<()>) -> Result<()> + Send + Sync>;

/// Produce *encoded* source tuples for one partition — the zero-copy scan
/// path: storage hands the offset-prefixed tuple encoding straight to the
/// exchange without materializing `Value`s.
pub type RawSourceFn =
    Arc<dyn Fn(usize, usize, &mut dyn FnMut(&[u8]) -> Result<()>) -> Result<()> + Send + Sync>;

/// Per-partition execution context handed to `run`.
pub struct OpCtx {
    pub partition: usize,
    pub nparts: usize,
    /// Simulated node hosting this partition.
    pub node: usize,
    pub inputs: Vec<InputPort>,
    pub outputs: Vec<OutputPort>,
    /// Job-wide execution environment (vectorization switch, frame batching
    /// target, runtime-filter hub).
    pub env: ExecEnv,
}

/// An operator: named, with declared blocking inputs (activity structure)
/// and a per-partition run body.
pub trait OperatorDescriptor: Send + Sync {
    /// Display name (used by `JobSpec::describe`, Figure 6 style).
    fn name(&self) -> String;

    /// Input indexes that must be fully consumed before any output is
    /// produced — the activity split of §4.1 (e.g. hash-join input 0 is the
    /// Build activity).
    fn blocking_inputs(&self) -> Vec<usize> {
        Vec::new()
    }

    /// Whether this operator can run as a push stage inside a fused
    /// pipeline: streaming, single-input, non-blocking. Sources are chain
    /// *heads* (they keep their `run` body), never stages, so they stay
    /// `false`; so do multi-input and multi-output operators.
    fn fusible(&self) -> bool {
        false
    }

    /// Instantiate this operator as a push stage feeding `next`. The
    /// executor only calls this when [`OperatorDescriptor::fusible`] is
    /// true.
    fn pipeline(&self, ctx: PipelineCtx, next: Box<dyn PipelineOp>) -> Result<Box<dyn PipelineOp>> {
        let _ = (ctx, next);
        Err(crate::HyracksError::InvalidJob(format!(
            "operator {} cannot run as a fused pipeline stage",
            self.name()
        )))
    }

    /// Execute one partition.
    fn run(&self, ctx: &mut OpCtx) -> Result<()>;
}

/// Decode an encoded tuple for expression evaluation. With a referenced
/// field set, only those positions are decoded (through the O(1)
/// `TupleRef::field_value` accessor) into a sparse tuple whose other
/// positions hold `Missing` — callers passing a field set guarantee their
/// expressions read only these positions. Without one, the whole tuple is
/// decoded (the conservative fallback for open/variable-arity shapes).
fn decode_for_eval(bytes: &[u8], fields: Option<&[usize]>) -> Result<Tuple> {
    match fields {
        None => Ok(asterix_adm::decode_tuple(bytes)?),
        Some(fs) => {
            let r = asterix_adm::TupleRef::new(bytes)?;
            let width = fs.iter().copied().max().map_or(0, |m| m + 1);
            let mut t = vec![Value::Missing; width];
            for &f in fs {
                t[f] = r.field_value(f)?;
            }
            Ok(t)
        }
    }
}

// ---------------------------------------------------------------------------
// Sources and sinks
// ---------------------------------------------------------------------------

/// A data source driven by a closure (dataset scans, index searches, value
/// literals — the storage layer binds these). Sources either emit decoded
/// tuples ([`SourceFn`]) or already-encoded tuple bytes ([`RawSourceFn`]);
/// the raw form feeds the exchange without a decode/re-encode round trip.
pub struct SourceOp {
    label: String,
    source: SourceBody,
}

enum SourceBody {
    Decoded(SourceFn),
    Raw(RawSourceFn),
}

impl SourceOp {
    pub fn new(
        label: impl Into<String>,
        f: impl Fn(usize, usize, &mut dyn FnMut(Tuple) -> Result<()>) -> Result<()>
            + Send
            + Sync
            + 'static,
    ) -> SourceOp {
        SourceOp { label: label.into(), source: SourceBody::Decoded(Arc::new(f)) }
    }

    pub fn from_fn(label: impl Into<String>, f: SourceFn) -> SourceOp {
        SourceOp { label: label.into(), source: SourceBody::Decoded(f) }
    }

    /// A source that emits encoded tuples (the serialized scan path).
    pub fn from_raw_fn(label: impl Into<String>, f: RawSourceFn) -> SourceOp {
        SourceOp { label: label.into(), source: SourceBody::Raw(f) }
    }
}

impl OperatorDescriptor for SourceOp {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let env = ctx.env.clone();
        let OpCtx { partition, nparts, outputs, .. } = ctx;
        let out = &mut outputs[0];
        match &self.source {
            SourceBody::Decoded(f) => f(*partition, *nparts, &mut |t| out.push(t)),
            SourceBody::Raw(f) if env.vectorized => {
                // Vectorized scan head: batch emitted encodings into a
                // frame and push it whole, so every downstream batch-aware
                // stage (and the exchange) sees frame granularity.
                let tpf = env.tuples_per_frame.max(1);
                let mut batch = FrameBuf::new();
                f(*partition, *nparts, &mut |bytes| {
                    batch.push_encoded(bytes);
                    if batch.tuple_count() >= tpf {
                        let res = out.push_frame(&batch);
                        batch.clear();
                        return res;
                    }
                    Ok(())
                })?;
                if !batch.is_empty() {
                    out.push_frame(&batch)?;
                }
                Ok(())
            }
            SourceBody::Raw(f) => f(*partition, *nparts, &mut |bytes| out.push_encoded(bytes)),
        }
    }
}

/// Collects every input tuple into a shared vector (job results).
pub struct SinkOp {
    collector: Arc<Mutex<Vec<Tuple>>>,
}

impl SinkOp {
    pub fn new(collector: Arc<Mutex<Vec<Tuple>>>) -> SinkOp {
        SinkOp { collector }
    }
}

impl OperatorDescriptor for SinkOp {
    fn name(&self) -> String {
        "result-sink".into()
    }

    fn fusible(&self) -> bool {
        true
    }

    fn pipeline(
        &self,
        _ctx: PipelineCtx,
        next: Box<dyn PipelineOp>,
    ) -> Result<Box<dyn PipelineOp>> {
        Ok(Box::new(SinkStage { collector: Arc::clone(&self.collector), local: Vec::new(), next }))
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let mut local = Vec::new();
        ctx.inputs[0].for_each(|t| {
            local.push(t);
            Ok(true)
        })?;
        self.collector.lock().extend(local);
        Ok(())
    }
}

struct SinkStage {
    collector: Arc<Mutex<Vec<Tuple>>>,
    local: Vec<Tuple>,
    next: Box<dyn PipelineOp>,
}

impl PipelineOp for SinkStage {
    fn push(&mut self, bytes: &[u8]) -> Result<()> {
        self.local.push(asterix_adm::decode_tuple(bytes)?);
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.next.flush()
    }

    fn finish(&mut self) -> Result<()> {
        // Match the pull body: results land in one batch at end of input
        // (partial results still land when an upstream error cut the run
        // short, exactly like the drop-flush path).
        self.collector.lock().extend(std::mem::take(&mut self.local));
        self.next.finish()
    }
}

/// Applies a side-effecting callback per tuple (index insert/delete — the
/// index lifecycle operators of §4.1), forwarding tuples downstream.
pub struct ApplyOp {
    label: String,
    apply: Arc<dyn Fn(usize, &Tuple) -> Result<()> + Send + Sync>,
}

impl ApplyOp {
    pub fn new(
        label: impl Into<String>,
        apply: impl Fn(usize, &Tuple) -> Result<()> + Send + Sync + 'static,
    ) -> ApplyOp {
        ApplyOp { label: label.into(), apply: Arc::new(apply) }
    }
}

impl OperatorDescriptor for ApplyOp {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn fusible(&self) -> bool {
        true
    }

    fn pipeline(&self, ctx: PipelineCtx, next: Box<dyn PipelineOp>) -> Result<Box<dyn PipelineOp>> {
        Ok(Box::new(ApplyStage { partition: ctx.partition, apply: Arc::clone(&self.apply), next }))
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { partition, inputs, outputs, .. } = ctx;
        let p = *partition;
        let out = &mut outputs[0];
        let apply = &self.apply;
        // Decode for the callback, but forward the original bytes verbatim.
        inputs[0].for_each_raw(|bytes| {
            let t = asterix_adm::decode_tuple(bytes)?;
            apply(p, &t)?;
            out.push_encoded(bytes)?;
            Ok(true)
        })
    }
}

struct ApplyStage {
    partition: usize,
    apply: Arc<dyn Fn(usize, &Tuple) -> Result<()> + Send + Sync>,
    next: Box<dyn PipelineOp>,
}

impl PipelineOp for ApplyStage {
    fn push(&mut self, bytes: &[u8]) -> Result<()> {
        let t = asterix_adm::decode_tuple(bytes)?;
        (self.apply)(self.partition, &t)?;
        self.next.push(bytes)
    }

    fn flush(&mut self) -> Result<()> {
        self.next.flush()
    }

    fn finish(&mut self) -> Result<()> {
        self.next.finish()
    }
}

// ---------------------------------------------------------------------------
// Tuple-at-a-time operators
// ---------------------------------------------------------------------------

/// Comparison kind of an ordkey-classified constant predicate (mirrors the
/// non-fuzzy compare operators of the expression language).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpKind {
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpKind {
    fn apply(self, ord: Ordering) -> bool {
        match self {
            CmpKind::Eq => ord == Ordering::Equal,
            CmpKind::Neq => ord != Ordering::Equal,
            CmpKind::Lt => ord == Ordering::Less,
            CmpKind::Le => ord != Ordering::Greater,
            CmpKind::Gt => ord == Ordering::Greater,
            CmpKind::Ge => ord != Ordering::Less,
        }
    }
}

/// A constant comparison jobgen classified as ordkey-comparable:
/// `column [.path] <op> constant`, decided by memcmp of comparison-key
/// bytes without decoding the tuple. `key` is the constant's
/// `ordkey::encode_value` encoding, computed once at compile time.
///
/// Per-tuple evaluation is *partial*: tuples whose field cannot be
/// transcoded to a comparison key (non-scalar, or numeric at the |v| ≥
/// 9e15 collapse boundary where key order diverges from `total_cmp`)
/// return `None` and the caller falls back to the decoded predicate — so
/// the fast path can never change a verdict, only skip decode work.
#[derive(Clone, Debug)]
pub struct OrdPred {
    /// Tuple column holding the comparand (or the record it lives in).
    pub col: usize,
    /// When set, compare `column.path` (a record field addressed directly
    /// in the encoded bytes) instead of the column itself.
    pub path: Option<String>,
    pub op: CmpKind,
    /// `ordkey::encode_value` bytes of the constant.
    pub key: Vec<u8>,
}

impl OrdPred {
    /// Decide the predicate on encoded bytes alone. `Some(keep)` is
    /// authoritative; `None` means "decode and ask the real predicate".
    fn eval_encoded(&self, bytes: &[u8], scratch: &mut Vec<u8>) -> Option<bool> {
        let r = asterix_adm::TupleRef::new(bytes).ok()?;
        let mut fb = r.field_bytes(self.col);
        if let Some(name) = &self.path {
            // Fall back on anything but a record with the field present —
            // the decoded path owns the missing/non-record semantics.
            fb = asterix_adm::serde::encoded_record_field(fb, name)?;
        }
        // MISSING/NULL comparands: compare() yields NULL, which the select
        // boundary collapses to false. Decided without a key.
        if asterix_adm::ValueRef::new(fb).is_unknown() {
            return Some(false);
        }
        scratch.clear();
        if !asterix_adm::ordkey::encoded_scalar_key_into(fb, scratch) {
            return None;
        }
        Some(self.op.apply(scratch.as_slice().cmp(&self.key)))
    }
}

/// Filter by predicate (the `select` operator of Figure 6).
pub struct SelectOp {
    label: String,
    pred: PredFn,
    /// Columns the predicate reads, when the compiler knows them: only
    /// these are decoded per tuple (`None` = full decode).
    fields: Option<Vec<usize>>,
    /// Ordkey fast path for constant comparisons (vectorized runs only;
    /// the scalar A/B path always decodes).
    ord: Option<OrdPred>,
}

impl SelectOp {
    pub fn new(label: impl Into<String>, pred: PredFn) -> SelectOp {
        SelectOp { label: label.into(), pred, fields: None, ord: None }
    }

    /// A select whose predicate reads only the given columns: evaluation
    /// decodes just those positions through `TupleRef::field_value` and the
    /// predicate sees `Missing` everywhere else.
    pub fn with_fields(label: impl Into<String>, pred: PredFn, fields: Vec<usize>) -> SelectOp {
        SelectOp { label: label.into(), pred, fields: Some(fields), ord: None }
    }

    /// Attach an ordkey-classified constant comparison equivalent to the
    /// predicate: batch evaluation memcmps comparison-key bytes and only
    /// decodes tuples the transcoder refuses.
    pub fn with_ordkey(mut self, ord: OrdPred) -> SelectOp {
        self.ord = Some(ord);
        self
    }
}

impl OperatorDescriptor for SelectOp {
    fn name(&self) -> String {
        format!("select {}", self.label)
    }

    fn fusible(&self) -> bool {
        true
    }

    fn pipeline(&self, ctx: PipelineCtx, next: Box<dyn PipelineOp>) -> Result<Box<dyn PipelineOp>> {
        Ok(Box::new(SelectStage {
            pred: Arc::clone(&self.pred),
            fields: self.fields.clone(),
            ord: if ctx.env.vectorized { self.ord.clone() } else { None },
            keep: SelBitmap::new(),
            key_scratch: Vec::new(),
            compacted: FrameBuf::new(),
            next,
        }))
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let vectorized = ctx.env.vectorized;
        let OpCtx { inputs, outputs, .. } = ctx;
        let out = &mut outputs[0];
        let pred = &self.pred;
        let fields = self.fields.as_deref();
        if !vectorized {
            // Scalar A/B path: evaluate on a (sparsely) decoded view;
            // surviving tuples are forwarded as their original bytes.
            return inputs[0].for_each_raw(|bytes| {
                let t = decode_for_eval(bytes, fields)?;
                if pred(&t)? {
                    out.push_encoded(bytes)?;
                }
                Ok(true)
            });
        }
        // Batch path: one pass over the slot directory builds the bitmap
        // (ordkey memcmp when classified, decoded predicate otherwise),
        // then survivors move in one slot-compacting copy — or the frame
        // passes through untouched when everything survived.
        let ord = self.ord.as_ref();
        let mut keep = SelBitmap::new();
        let mut key_scratch = Vec::new();
        let mut compacted = FrameBuf::new();
        inputs[0].for_each_frame(|frame| {
            let n = frame.tuple_count();
            keep.reset(n);
            for i in 0..n {
                let bytes = frame.tuple_bytes(i);
                let verdict = match ord.and_then(|o| o.eval_encoded(bytes, &mut key_scratch)) {
                    Some(v) => v,
                    None => pred(&decode_for_eval(bytes, fields)?)?,
                };
                if verdict {
                    keep.set(i);
                }
            }
            if keep.all() {
                out.push_frame(frame)?;
            } else if keep.count() > 0 {
                compacted.clear();
                frame.compact_into(&keep, &mut compacted);
                out.push_frame(&compacted)?;
            }
            Ok(true)
        })
    }
}

struct SelectStage {
    pred: PredFn,
    fields: Option<Vec<usize>>,
    /// Ordkey fast path — populated only on vectorized runs.
    ord: Option<OrdPred>,
    keep: SelBitmap,
    key_scratch: Vec<u8>,
    compacted: FrameBuf,
    next: Box<dyn PipelineOp>,
}

impl SelectStage {
    fn verdict(&mut self, bytes: &[u8]) -> Result<bool> {
        if let Some(v) =
            self.ord.as_ref().and_then(|o| o.eval_encoded(bytes, &mut self.key_scratch))
        {
            return Ok(v);
        }
        let t = decode_for_eval(bytes, self.fields.as_deref())?;
        (self.pred)(&t)
    }
}

impl PipelineOp for SelectStage {
    fn push(&mut self, bytes: &[u8]) -> Result<()> {
        let t = decode_for_eval(bytes, self.fields.as_deref())?;
        if (self.pred)(&t)? {
            self.next.push(bytes)?;
        }
        Ok(())
    }

    fn push_frame(&mut self, frame: &FrameBuf) -> Result<()> {
        let n = frame.tuple_count();
        self.keep.reset(n);
        for i in 0..n {
            if self.verdict(frame.tuple_bytes(i))? {
                self.keep.set(i);
            }
        }
        if self.keep.all() {
            self.next.push_frame(frame)
        } else if self.keep.count() > 0 {
            self.compacted.clear();
            frame.compact_into(&self.keep, &mut self.compacted);
            let compacted = std::mem::take(&mut self.compacted);
            let res = self.next.push_frame(&compacted);
            self.compacted = compacted;
            res
        } else {
            Ok(())
        }
    }

    fn flush(&mut self) -> Result<()> {
        self.next.flush()
    }

    fn finish(&mut self) -> Result<()> {
        self.next.finish()
    }
}

/// Append computed expression values to each tuple (Figure 6's `assign`).
pub struct AssignOp {
    label: String,
    exprs: Vec<EvalFn>,
    /// Columns the expressions read, when the compiler knows them. With a
    /// field set, evaluation decodes only those positions and the appended
    /// values are spliced on at the byte level (`append_values_into`) — the
    /// input tuple is never fully decoded or re-encoded. Callers guarantee
    /// the expressions read input columns only (no expression sees the
    /// values appended before it, unlike the full-decode path).
    fields: Option<Vec<usize>>,
}

impl AssignOp {
    pub fn new(label: impl Into<String>, exprs: Vec<EvalFn>) -> AssignOp {
        AssignOp { label: label.into(), exprs, fields: None }
    }

    /// An assign whose expressions read only the given input columns.
    pub fn with_fields(
        label: impl Into<String>,
        exprs: Vec<EvalFn>,
        fields: Vec<usize>,
    ) -> AssignOp {
        AssignOp { label: label.into(), exprs, fields: Some(fields) }
    }
}

impl OperatorDescriptor for AssignOp {
    fn name(&self) -> String {
        format!("assign {}", self.label)
    }

    fn fusible(&self) -> bool {
        true
    }

    fn pipeline(
        &self,
        _ctx: PipelineCtx,
        next: Box<dyn PipelineOp>,
    ) -> Result<Box<dyn PipelineOp>> {
        Ok(Box::new(AssignStage {
            exprs: self.exprs.clone(),
            fields: self.fields.clone(),
            scratch: Vec::new(),
            vals: Vec::new(),
            next,
        }))
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { inputs, outputs, .. } = ctx;
        let out = &mut outputs[0];
        let exprs = &self.exprs;
        match self.fields.as_deref() {
            // Full decode: each expression sees the values appended before
            // it (positions arity, arity+1, ...).
            None => inputs[0].for_each(|mut t| {
                for e in exprs {
                    let v = e(&t)?;
                    t.push(v);
                }
                out.push(t)?;
                Ok(true)
            }),
            // Sparse decode + byte-level append: only the referenced
            // columns are materialized, and the original tuple bytes are
            // copied verbatim into the output.
            Some(fs) => {
                let mut scratch = Vec::new();
                let mut vals = Vec::with_capacity(exprs.len());
                inputs[0].for_each_raw(|bytes| {
                    let t = decode_for_eval(bytes, Some(fs))?;
                    vals.clear();
                    for e in exprs {
                        vals.push(e(&t)?);
                    }
                    scratch.clear();
                    asterix_adm::tuple::append_values_into(
                        &mut scratch,
                        &asterix_adm::TupleRef::new(bytes)?,
                        &vals,
                    );
                    out.push_encoded(&scratch)?;
                    Ok(true)
                })
            }
        }
    }
}

struct AssignStage {
    exprs: Vec<EvalFn>,
    fields: Option<Vec<usize>>,
    scratch: Vec<u8>,
    vals: Vec<Value>,
    next: Box<dyn PipelineOp>,
}

impl PipelineOp for AssignStage {
    fn push(&mut self, bytes: &[u8]) -> Result<()> {
        self.scratch.clear();
        match self.fields.as_deref() {
            None => {
                let mut t = asterix_adm::decode_tuple(bytes)?;
                for e in &self.exprs {
                    let v = e(&t)?;
                    t.push(v);
                }
                asterix_adm::encode_tuple_into(&mut self.scratch, &t);
            }
            Some(fs) => {
                let t = decode_for_eval(bytes, Some(fs))?;
                self.vals.clear();
                for e in &self.exprs {
                    self.vals.push(e(&t)?);
                }
                asterix_adm::tuple::append_values_into(
                    &mut self.scratch,
                    &asterix_adm::TupleRef::new(bytes)?,
                    &self.vals,
                );
            }
        }
        self.next.push(&self.scratch)
    }

    fn flush(&mut self) -> Result<()> {
        self.next.flush()
    }

    fn finish(&mut self) -> Result<()> {
        self.next.finish()
    }
}

/// Keep only the given field positions, in order.
pub struct ProjectOp {
    pub fields: Vec<usize>,
}

impl OperatorDescriptor for ProjectOp {
    fn name(&self) -> String {
        format!("project {:?}", self.fields)
    }

    fn fusible(&self) -> bool {
        true
    }

    fn pipeline(
        &self,
        _ctx: PipelineCtx,
        next: Box<dyn PipelineOp>,
    ) -> Result<Box<dyn PipelineOp>> {
        Ok(Box::new(ProjectStage {
            fields: self.fields.clone(),
            scratch: Vec::new(),
            projected: FrameBuf::new(),
            next,
        }))
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let vectorized = ctx.env.vectorized;
        let OpCtx { inputs, outputs, .. } = ctx;
        let out = &mut outputs[0];
        let fields = &self.fields;
        // Pure byte re-slicing: kept fields' encodings are copied into a
        // fresh tuple without ever decoding them (out-of-range fields
        // become MISSING, matching the decoded semantics).
        let mut scratch = Vec::new();
        if !vectorized {
            return inputs[0].for_each_raw(|bytes| {
                let r = asterix_adm::TupleRef::new(bytes)?;
                scratch.clear();
                asterix_adm::tuple::project_tuple_into(&mut scratch, &r, fields);
                out.push_encoded(&scratch)?;
                Ok(true)
            });
        }
        // Batch path: project every tuple of the frame into a scratch frame
        // walked off the slot directory once, then push it whole.
        let mut projected = FrameBuf::new();
        inputs[0].for_each_frame(|frame| {
            projected.clear();
            for i in 0..frame.tuple_count() {
                let r = frame.tuple_ref(i)?;
                scratch.clear();
                asterix_adm::tuple::project_tuple_into(&mut scratch, &r, fields);
                projected.push_encoded(&scratch);
            }
            out.push_frame(&projected)?;
            Ok(true)
        })
    }
}

struct ProjectStage {
    fields: Vec<usize>,
    scratch: Vec<u8>,
    projected: FrameBuf,
    next: Box<dyn PipelineOp>,
}

impl PipelineOp for ProjectStage {
    fn push(&mut self, bytes: &[u8]) -> Result<()> {
        let r = asterix_adm::TupleRef::new(bytes)?;
        self.scratch.clear();
        asterix_adm::tuple::project_tuple_into(&mut self.scratch, &r, &self.fields);
        self.next.push(&self.scratch)
    }

    fn push_frame(&mut self, frame: &FrameBuf) -> Result<()> {
        self.projected.clear();
        for i in 0..frame.tuple_count() {
            let r = frame.tuple_ref(i)?;
            self.scratch.clear();
            asterix_adm::tuple::project_tuple_into(&mut self.scratch, &r, &self.fields);
            self.projected.push_encoded(&self.scratch);
        }
        let projected = std::mem::take(&mut self.projected);
        let res = self.next.push_frame(&projected);
        self.projected = projected;
        res
    }

    fn flush(&mut self) -> Result<()> {
        self.next.flush()
    }

    fn finish(&mut self) -> Result<()> {
        self.next.finish()
    }
}

/// Pass through at most `limit` tuples after skipping `offset` (per
/// instance — a global limit runs this at parallelism 1).
pub struct LimitOp {
    pub limit: usize,
    pub offset: usize,
}

impl OperatorDescriptor for LimitOp {
    fn name(&self) -> String {
        if self.offset > 0 {
            format!("limit {} offset {}", self.limit, self.offset)
        } else {
            format!("limit {}", self.limit)
        }
    }

    fn fusible(&self) -> bool {
        true
    }

    fn pipeline(
        &self,
        _ctx: PipelineCtx,
        next: Box<dyn PipelineOp>,
    ) -> Result<Box<dyn PipelineOp>> {
        Ok(Box::new(LimitStage {
            limit: self.limit,
            offset: self.offset,
            seen: 0,
            emitted: 0,
            next,
        }))
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { inputs, outputs, .. } = ctx;
        let out = &mut outputs[0];
        let mut seen = 0usize;
        let mut emitted = 0usize;
        let (limit, offset) = (self.limit, self.offset);
        // Pure forwarding: never decodes a tuple.
        inputs[0].for_each_raw(|bytes| {
            if seen < offset {
                seen += 1;
                return Ok(true);
            }
            if emitted >= limit {
                return Ok(false);
            }
            out.push_encoded(bytes)?;
            emitted += 1;
            Ok(emitted < limit)
        })
    }
}

struct LimitStage {
    limit: usize,
    offset: usize,
    seen: usize,
    emitted: usize,
    next: Box<dyn PipelineOp>,
}

impl PipelineOp for LimitStage {
    fn push(&mut self, bytes: &[u8]) -> Result<()> {
        if self.seen < self.offset {
            self.seen += 1;
            return Ok(());
        }
        if self.emitted >= self.limit {
            return Err(crate::HyracksError::DownstreamClosed);
        }
        self.next.push(bytes)?;
        self.emitted += 1;
        if self.emitted >= self.limit {
            // The fused analogue of a closed channel: tell upstream to stop
            // as soon as the last allowed tuple is delivered.
            return Err(crate::HyracksError::DownstreamClosed);
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.next.flush()
    }

    fn finish(&mut self) -> Result<()> {
        self.next.finish()
    }
}

/// How many pass-through tuples a filter consumer routes to a
/// not-yet-published partition before re-polling the hub.
const FILTER_POLL_EVERY: u32 = 64;

/// Consult-side state for runtime join filters, shared by the pull
/// operator and the fused stage: per-join-partition cached [`KeyTest`]s
/// and locally-accumulated stats (folded into the hub counters once, at
/// end of stream).
struct FilterConsult {
    hub: Arc<RuntimeFilterHub>,
    filter_id: usize,
    key_cols: Vec<usize>,
    join_nparts: usize,
    cached: Vec<Option<KeyTest>>,
    since_poll: u32,
    checked: u64,
    pruned: u64,
}

impl FilterConsult {
    fn new(
        env: &ExecEnv,
        filter_id: usize,
        key_cols: Vec<usize>,
        join_nparts: usize,
    ) -> FilterConsult {
        let join_nparts = join_nparts.max(1);
        FilterConsult {
            hub: Arc::clone(&env.filters),
            filter_id,
            key_cols,
            join_nparts,
            cached: vec![None; join_nparts],
            // Start saturated so the first tuple polls immediately: when
            // the build finishes before the probe starts (small build
            // sides, the common case), pruning kicks in from tuple one.
            since_poll: FILTER_POLL_EVERY,
            checked: 0,
            pruned: 0,
        }
    }

    /// Fetch filters published since the last poll.
    fn poll(&mut self) {
        self.since_poll = 0;
        for p in 0..self.join_nparts {
            if self.cached[p].is_none() {
                self.cached[p] = self.hub.get(self.filter_id, p);
            }
        }
    }

    /// Keep this tuple? Routes the key hash exactly like the exchange
    /// (`hash % join_nparts`) and tests that partition's filter;
    /// pass-through until the filter is published (best-effort by design —
    /// the filter has no false negatives, so a late check never changes
    /// results, only prunes less).
    fn keep(&mut self, bytes: &[u8]) -> Result<bool> {
        let r = asterix_adm::TupleRef::new(bytes)?;
        let h = hash_encoded_fields(&r, &self.key_cols);
        let p = (h % self.join_nparts as u64) as usize;
        if self.cached[p].is_none() {
            self.since_poll += 1;
            if self.since_poll >= FILTER_POLL_EVERY {
                self.poll();
            }
        }
        Ok(match &self.cached[p] {
            None => true,
            Some(test) => {
                self.checked += 1;
                if test(h) {
                    true
                } else {
                    self.pruned += 1;
                    false
                }
            }
        })
    }

    /// Fold the locally-accumulated counts into the hub's shared stats.
    fn flush_stats(&mut self) {
        if self.checked > 0 {
            self.hub.stats().checked.add(std::mem::take(&mut self.checked));
        }
        if self.pruned > 0 {
            self.hub.stats().pruned_tuples.add(std::mem::take(&mut self.pruned));
        }
    }
}

/// Probe-side consult operator for runtime join filters: drops tuples
/// whose join-key hash certainly has no build-side match *before* the
/// exchange into the join. Jobgen inserts it on the probe branch of inner
/// hash joins; it is fusible, so it rides the scan-headed pipeline thread
/// — the scan itself consults the filter.
pub struct RuntimeFilterProbeOp {
    /// Hub slot this probe consults ([`crate::job::JobSpec::alloc_runtime_filter`]).
    pub filter_id: usize,
    /// Probe-side columns holding the join key, in the join's key order —
    /// the columns the probe exchange hashes.
    pub key_cols: Vec<usize>,
    /// Partition count of the join: the modulus of the routing hash.
    pub join_nparts: usize,
}

impl OperatorDescriptor for RuntimeFilterProbeOp {
    fn name(&self) -> String {
        format!("runtime-filter-probe #{} {:?}", self.filter_id, self.key_cols)
    }

    fn fusible(&self) -> bool {
        true
    }

    fn pipeline(&self, ctx: PipelineCtx, next: Box<dyn PipelineOp>) -> Result<Box<dyn PipelineOp>> {
        Ok(Box::new(RuntimeFilterStage {
            consult: FilterConsult::new(
                &ctx.env,
                self.filter_id,
                self.key_cols.clone(),
                self.join_nparts,
            ),
            keep: SelBitmap::new(),
            compacted: FrameBuf::new(),
            next,
        }))
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let env = ctx.env.clone();
        let mut consult =
            FilterConsult::new(&env, self.filter_id, self.key_cols.clone(), self.join_nparts);
        let OpCtx { inputs, outputs, .. } = ctx;
        let out = &mut outputs[0];
        let res = if env.vectorized {
            let mut keep = SelBitmap::new();
            let mut compacted = FrameBuf::new();
            inputs[0].for_each_frame(|frame| {
                consult.poll();
                let n = frame.tuple_count();
                keep.reset(n);
                for i in 0..n {
                    if consult.keep(frame.tuple_bytes(i))? {
                        keep.set(i);
                    }
                }
                if keep.all() {
                    out.push_frame(frame)?;
                } else if keep.count() > 0 {
                    compacted.clear();
                    frame.compact_into(&keep, &mut compacted);
                    out.push_frame(&compacted)?;
                }
                Ok(true)
            })
        } else {
            inputs[0].for_each_raw(|bytes| {
                if consult.keep(bytes)? {
                    out.push_encoded(bytes)?;
                }
                Ok(true)
            })
        };
        consult.flush_stats();
        res
    }
}

struct RuntimeFilterStage {
    consult: FilterConsult,
    keep: SelBitmap,
    compacted: FrameBuf,
    next: Box<dyn PipelineOp>,
}

impl PipelineOp for RuntimeFilterStage {
    fn push(&mut self, bytes: &[u8]) -> Result<()> {
        if self.consult.keep(bytes)? {
            self.next.push(bytes)?;
        }
        Ok(())
    }

    fn push_frame(&mut self, frame: &FrameBuf) -> Result<()> {
        self.consult.poll();
        let n = frame.tuple_count();
        self.keep.reset(n);
        for i in 0..n {
            if self.consult.keep(frame.tuple_bytes(i))? {
                self.keep.set(i);
            }
        }
        if self.keep.all() {
            self.next.push_frame(frame)
        } else if self.keep.count() > 0 {
            self.compacted.clear();
            frame.compact_into(&self.keep, &mut self.compacted);
            let compacted = std::mem::take(&mut self.compacted);
            let res = self.next.push_frame(&compacted);
            self.compacted = compacted;
            res
        } else {
            Ok(())
        }
    }

    fn flush(&mut self) -> Result<()> {
        self.next.flush()
    }

    fn finish(&mut self) -> Result<()> {
        self.consult.flush_stats();
        self.next.finish()
    }
}

/// Unnest a collection-valued expression: one output tuple per element,
/// with the element (and optionally its 1-based position, for AQL's `at`
/// positional variables) appended.
pub struct UnnestOp {
    label: String,
    expr: EvalFn,
    pub with_position: bool,
    /// When false (inner unnest), tuples whose collection is empty or
    /// unknown vanish; when true (outer), one tuple with `missing` appended
    /// survives — the left-outer shape of Query 4.
    pub outer: bool,
}

impl UnnestOp {
    pub fn new(label: impl Into<String>, expr: EvalFn) -> UnnestOp {
        UnnestOp { label: label.into(), expr, with_position: false, outer: false }
    }

    pub fn outer(label: impl Into<String>, expr: EvalFn) -> UnnestOp {
        UnnestOp { label: label.into(), expr, with_position: false, outer: true }
    }

    pub fn with_position(mut self) -> Self {
        self.with_position = true;
        self
    }
}

impl OperatorDescriptor for UnnestOp {
    fn name(&self) -> String {
        format!("unnest {}", self.label)
    }

    fn fusible(&self) -> bool {
        true
    }

    fn pipeline(
        &self,
        _ctx: PipelineCtx,
        next: Box<dyn PipelineOp>,
    ) -> Result<Box<dyn PipelineOp>> {
        Ok(Box::new(UnnestStage {
            expr: Arc::clone(&self.expr),
            with_position: self.with_position,
            outer: self.outer,
            scratch: Vec::new(),
            next,
        }))
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { inputs, outputs, .. } = ctx;
        let out = &mut outputs[0];
        let expr = &self.expr;
        let (with_pos, outer) = (self.with_position, self.outer);
        inputs[0].for_each(|t| {
            let coll = expr(&t)?;
            match coll.as_list() {
                Some(items) if !items.is_empty() => {
                    for (i, item) in items.iter().enumerate() {
                        let mut row = t.clone();
                        row.push(item.clone());
                        if with_pos {
                            row.push(Value::Int64(i as i64 + 1));
                        }
                        out.push(row)?;
                    }
                }
                _ if outer => {
                    let mut row = t.clone();
                    row.push(Value::Missing);
                    if with_pos {
                        row.push(Value::Missing);
                    }
                    out.push(row)?;
                }
                _ => {}
            }
            Ok(true)
        })
    }
}

struct UnnestStage {
    expr: EvalFn,
    with_position: bool,
    outer: bool,
    scratch: Vec<u8>,
    next: Box<dyn PipelineOp>,
}

impl UnnestStage {
    /// Build one output row at the byte level: the input tuple's encoding
    /// plus the appended element (and position), never re-encoding the
    /// input fields.
    fn emit(&mut self, base: &asterix_adm::TupleRef<'_>, vals: &[Value]) -> Result<()> {
        self.scratch.clear();
        asterix_adm::tuple::append_values_into(&mut self.scratch, base, vals);
        self.next.push(&self.scratch)
    }
}

impl PipelineOp for UnnestStage {
    fn push(&mut self, bytes: &[u8]) -> Result<()> {
        let t = asterix_adm::decode_tuple(bytes)?;
        let coll = (self.expr)(&t)?;
        let base = asterix_adm::TupleRef::new(bytes)?;
        match coll.as_list() {
            Some(items) if !items.is_empty() => {
                for (i, item) in items.iter().enumerate() {
                    if self.with_position {
                        self.emit(&base, &[item.clone(), Value::Int64(i as i64 + 1)])?;
                    } else {
                        self.emit(&base, std::slice::from_ref(item))?;
                    }
                }
            }
            _ if self.outer => {
                if self.with_position {
                    self.emit(&base, &[Value::Missing, Value::Missing])?;
                } else {
                    self.emit(&base, &[Value::Missing])?;
                }
            }
            _ => {}
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.next.flush()
    }

    fn finish(&mut self) -> Result<()> {
        self.next.finish()
    }
}

/// Forward all inputs to the single output (bag union).
pub struct UnionAllOp;

impl OperatorDescriptor for UnionAllOp {
    fn name(&self) -> String {
        "union-all".into()
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { inputs, outputs, .. } = ctx;
        let out = &mut outputs[0];
        for input in inputs.iter_mut() {
            // Pure forwarding: never decodes a tuple.
            input.for_each_raw(|bytes| {
                out.push_encoded(bytes)?;
                Ok(true)
            })?;
        }
        Ok(())
    }
}

/// Forward the input to every output — a Feed Joint (§4.5): "like a
/// network tap [...] allows data to be routed simultaneously along
/// multiple paths".
pub struct ReplicateOp;

impl OperatorDescriptor for ReplicateOp {
    fn name(&self) -> String {
        "replicate (feed joint)".into()
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { inputs, outputs, .. } = ctx;
        let n = outputs.len();
        let mut closed = vec![false; n];
        // Byte forwarding: each tap gets the same encoding appended to its
        // frame — no per-tap tuple clone.
        inputs[0].for_each_raw(|bytes| {
            let mut all_closed = true;
            for (i, out) in outputs.iter_mut().enumerate() {
                if closed[i] {
                    continue;
                }
                // One tap hanging up must not starve the others; only stop
                // consuming once every downstream path is gone.
                match out.push_encoded(bytes) {
                    Ok(()) => all_closed = false,
                    Err(crate::HyracksError::DownstreamClosed) => closed[i] = true,
                    Err(e) => return Err(e),
                }
            }
            Ok(!all_closed)
        })
    }
}

/// Partition-aware flat-map: the closure receives the partition index —
/// used for partition-local storage access like the primary-index lookups
/// that follow a secondary-index search (Figure 6).
pub struct PartitionMapOp {
    label: String,
    f: Arc<dyn Fn(usize, &Tuple) -> Result<Vec<Tuple>> + Send + Sync>,
}

impl PartitionMapOp {
    pub fn new(
        label: impl Into<String>,
        f: impl Fn(usize, &Tuple) -> Result<Vec<Tuple>> + Send + Sync + 'static,
    ) -> PartitionMapOp {
        PartitionMapOp { label: label.into(), f: Arc::new(f) }
    }
}

impl OperatorDescriptor for PartitionMapOp {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn fusible(&self) -> bool {
        true
    }

    fn pipeline(&self, ctx: PipelineCtx, next: Box<dyn PipelineOp>) -> Result<Box<dyn PipelineOp>> {
        Ok(Box::new(PartitionMapStage {
            partition: ctx.partition,
            f: Arc::clone(&self.f),
            scratch: Vec::new(),
            next,
        }))
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { partition, inputs, outputs, .. } = ctx;
        let p = *partition;
        let out = &mut outputs[0];
        let f = &self.f;
        inputs[0].for_each(|t| {
            for row in f(p, &t)? {
                out.push(row)?;
            }
            Ok(true)
        })
    }
}

struct PartitionMapStage {
    partition: usize,
    f: Arc<dyn Fn(usize, &Tuple) -> Result<Vec<Tuple>> + Send + Sync>,
    scratch: Vec<u8>,
    next: Box<dyn PipelineOp>,
}

impl PipelineOp for PartitionMapStage {
    fn push(&mut self, bytes: &[u8]) -> Result<()> {
        let t = asterix_adm::decode_tuple(bytes)?;
        for row in (self.f)(self.partition, &t)? {
            self.scratch.clear();
            asterix_adm::encode_tuple_into(&mut self.scratch, &row);
            self.next.push(&self.scratch)?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.next.flush()
    }

    fn finish(&mut self) -> Result<()> {
        self.next.finish()
    }
}

/// Duplicate elimination on a set of key columns: the first tuple of each
/// distinct key survives. Run after hash-partitioning on those columns for
/// global dedup.
pub struct DistinctOp {
    pub keys: Vec<usize>,
}

impl OperatorDescriptor for DistinctOp {
    fn name(&self) -> String {
        format!("distinct {:?}", self.keys)
    }

    fn fusible(&self) -> bool {
        true
    }

    fn pipeline(
        &self,
        _ctx: PipelineCtx,
        next: Box<dyn PipelineOp>,
    ) -> Result<Box<dyn PipelineOp>> {
        Ok(Box::new(DistinctStage {
            keys: self.keys.clone(),
            seen: std::collections::HashSet::new(),
            next,
        }))
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { inputs, outputs, .. } = ctx;
        let out = &mut outputs[0];
        let keys = &self.keys;
        // Keyed by the canonical comparison-key encoding of the key
        // columns: byte equality there is exactly `total_cmp == Equal`
        // (numeric widths collapse), so no collision re-check is needed,
        // and survivors are forwarded as their original bytes.
        let mut seen: std::collections::HashSet<Vec<u8>> = std::collections::HashSet::new();
        inputs[0].for_each_raw(|bytes| {
            let r = asterix_adm::TupleRef::new(bytes)?;
            let mut key = Vec::new();
            for &i in keys {
                asterix_adm::ordkey::encode_value_into(&mut key, &r.field_value(i)?);
            }
            if seen.insert(key) {
                out.push_encoded(bytes)?;
            }
            Ok(true)
        })
    }
}

struct DistinctStage {
    keys: Vec<usize>,
    seen: std::collections::HashSet<Vec<u8>>,
    next: Box<dyn PipelineOp>,
}

impl PipelineOp for DistinctStage {
    fn push(&mut self, bytes: &[u8]) -> Result<()> {
        let r = asterix_adm::TupleRef::new(bytes)?;
        let mut key = Vec::new();
        for &i in &self.keys {
            asterix_adm::ordkey::encode_value_into(&mut key, &r.field_value(i)?);
        }
        if self.seen.insert(key) {
            self.next.push(bytes)?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.next.flush()
    }

    fn finish(&mut self) -> Result<()> {
        self.next.finish()
    }
}

/// General flat-map (used for compiled subplans that need bespoke tuple
/// shapes).
pub struct MapOp {
    label: String,
    f: Arc<dyn Fn(&Tuple) -> Result<Vec<Tuple>> + Send + Sync>,
}

impl MapOp {
    pub fn new(
        label: impl Into<String>,
        f: impl Fn(&Tuple) -> Result<Vec<Tuple>> + Send + Sync + 'static,
    ) -> MapOp {
        MapOp { label: label.into(), f: Arc::new(f) }
    }
}

impl OperatorDescriptor for MapOp {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn fusible(&self) -> bool {
        true
    }

    fn pipeline(
        &self,
        _ctx: PipelineCtx,
        next: Box<dyn PipelineOp>,
    ) -> Result<Box<dyn PipelineOp>> {
        Ok(Box::new(MapStage { f: Arc::clone(&self.f), scratch: Vec::new(), next }))
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { inputs, outputs, .. } = ctx;
        let out = &mut outputs[0];
        let f = &self.f;
        inputs[0].for_each(|t| {
            for row in f(&t)? {
                out.push(row)?;
            }
            Ok(true)
        })
    }
}

struct MapStage {
    f: Arc<dyn Fn(&Tuple) -> Result<Vec<Tuple>> + Send + Sync>,
    scratch: Vec<u8>,
    next: Box<dyn PipelineOp>,
}

impl PipelineOp for MapStage {
    fn push(&mut self, bytes: &[u8]) -> Result<()> {
        let t = asterix_adm::decode_tuple(bytes)?;
        for row in (self.f)(&t)? {
            self.scratch.clear();
            asterix_adm::encode_tuple_into(&mut self.scratch, &row);
            self.next.push(&self.scratch)?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.next.flush()
    }

    fn finish(&mut self) -> Result<()> {
        self.next.finish()
    }
}
