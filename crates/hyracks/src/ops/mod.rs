//! The operator library (§4.1).
//!
//! Operators are stateless descriptors; per-partition state lives inside
//! `run`, which the executor invokes once per partition on its own thread.
//! Expression evaluation is injected as closures so the runtime stays
//! data-language-neutral (the same property that lets Hyracks host
//! Hivesterix and VXQuery in the paper's software stack, Figure 5).

mod group;
mod join;
mod sort;

pub use group::{AggKind, AggSpec, GroupMode, HashGroupOp, PreclusteredGroupOp, ScalarAggOp};
pub use join::{HybridHashJoinOp, IndexNestedLoopJoinOp, JoinType, NestedLoopJoinOp};
pub use sort::{sort_comparator, SortKey, SortOp};

use std::sync::Arc;

use asterix_adm::Value;
use parking_lot::Mutex;

use crate::connector::{InputPort, OutputPort};
use crate::frame::Tuple;
use crate::pipeline::{PipelineCtx, PipelineOp};
use crate::Result;

/// Evaluate an expression over a tuple.
pub type EvalFn = Arc<dyn Fn(&Tuple) -> Result<Value> + Send + Sync>;

/// Evaluate a predicate over a tuple. `Ok(false)` for unknown (AQL's
/// 2.5-valued logic collapses to false at the select boundary).
pub type PredFn = Arc<dyn Fn(&Tuple) -> Result<bool> + Send + Sync>;

/// Produce source tuples for one partition: `(partition, nparts, emit)`.
pub type SourceFn =
    Arc<dyn Fn(usize, usize, &mut dyn FnMut(Tuple) -> Result<()>) -> Result<()> + Send + Sync>;

/// Produce *encoded* source tuples for one partition — the zero-copy scan
/// path: storage hands the offset-prefixed tuple encoding straight to the
/// exchange without materializing `Value`s.
pub type RawSourceFn =
    Arc<dyn Fn(usize, usize, &mut dyn FnMut(&[u8]) -> Result<()>) -> Result<()> + Send + Sync>;

/// Per-partition execution context handed to `run`.
pub struct OpCtx {
    pub partition: usize,
    pub nparts: usize,
    /// Simulated node hosting this partition.
    pub node: usize,
    pub inputs: Vec<InputPort>,
    pub outputs: Vec<OutputPort>,
}

/// An operator: named, with declared blocking inputs (activity structure)
/// and a per-partition run body.
pub trait OperatorDescriptor: Send + Sync {
    /// Display name (used by `JobSpec::describe`, Figure 6 style).
    fn name(&self) -> String;

    /// Input indexes that must be fully consumed before any output is
    /// produced — the activity split of §4.1 (e.g. hash-join input 0 is the
    /// Build activity).
    fn blocking_inputs(&self) -> Vec<usize> {
        Vec::new()
    }

    /// Whether this operator can run as a push stage inside a fused
    /// pipeline: streaming, single-input, non-blocking. Sources are chain
    /// *heads* (they keep their `run` body), never stages, so they stay
    /// `false`; so do multi-input and multi-output operators.
    fn fusible(&self) -> bool {
        false
    }

    /// Instantiate this operator as a push stage feeding `next`. The
    /// executor only calls this when [`OperatorDescriptor::fusible`] is
    /// true.
    fn pipeline(&self, ctx: PipelineCtx, next: Box<dyn PipelineOp>) -> Result<Box<dyn PipelineOp>> {
        let _ = (ctx, next);
        Err(crate::HyracksError::InvalidJob(format!(
            "operator {} cannot run as a fused pipeline stage",
            self.name()
        )))
    }

    /// Execute one partition.
    fn run(&self, ctx: &mut OpCtx) -> Result<()>;
}

/// Decode an encoded tuple for expression evaluation. With a referenced
/// field set, only those positions are decoded (through the O(1)
/// `TupleRef::field_value` accessor) into a sparse tuple whose other
/// positions hold `Missing` — callers passing a field set guarantee their
/// expressions read only these positions. Without one, the whole tuple is
/// decoded (the conservative fallback for open/variable-arity shapes).
fn decode_for_eval(bytes: &[u8], fields: Option<&[usize]>) -> Result<Tuple> {
    match fields {
        None => Ok(asterix_adm::decode_tuple(bytes)?),
        Some(fs) => {
            let r = asterix_adm::TupleRef::new(bytes)?;
            let width = fs.iter().copied().max().map_or(0, |m| m + 1);
            let mut t = vec![Value::Missing; width];
            for &f in fs {
                t[f] = r.field_value(f)?;
            }
            Ok(t)
        }
    }
}

// ---------------------------------------------------------------------------
// Sources and sinks
// ---------------------------------------------------------------------------

/// A data source driven by a closure (dataset scans, index searches, value
/// literals — the storage layer binds these). Sources either emit decoded
/// tuples ([`SourceFn`]) or already-encoded tuple bytes ([`RawSourceFn`]);
/// the raw form feeds the exchange without a decode/re-encode round trip.
pub struct SourceOp {
    label: String,
    source: SourceBody,
}

enum SourceBody {
    Decoded(SourceFn),
    Raw(RawSourceFn),
}

impl SourceOp {
    pub fn new(
        label: impl Into<String>,
        f: impl Fn(usize, usize, &mut dyn FnMut(Tuple) -> Result<()>) -> Result<()>
            + Send
            + Sync
            + 'static,
    ) -> SourceOp {
        SourceOp { label: label.into(), source: SourceBody::Decoded(Arc::new(f)) }
    }

    pub fn from_fn(label: impl Into<String>, f: SourceFn) -> SourceOp {
        SourceOp { label: label.into(), source: SourceBody::Decoded(f) }
    }

    /// A source that emits encoded tuples (the serialized scan path).
    pub fn from_raw_fn(label: impl Into<String>, f: RawSourceFn) -> SourceOp {
        SourceOp { label: label.into(), source: SourceBody::Raw(f) }
    }
}

impl OperatorDescriptor for SourceOp {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { partition, nparts, outputs, .. } = ctx;
        let out = &mut outputs[0];
        match &self.source {
            SourceBody::Decoded(f) => f(*partition, *nparts, &mut |t| out.push(t)),
            SourceBody::Raw(f) => f(*partition, *nparts, &mut |bytes| out.push_encoded(bytes)),
        }
    }
}

/// Collects every input tuple into a shared vector (job results).
pub struct SinkOp {
    collector: Arc<Mutex<Vec<Tuple>>>,
}

impl SinkOp {
    pub fn new(collector: Arc<Mutex<Vec<Tuple>>>) -> SinkOp {
        SinkOp { collector }
    }
}

impl OperatorDescriptor for SinkOp {
    fn name(&self) -> String {
        "result-sink".into()
    }

    fn fusible(&self) -> bool {
        true
    }

    fn pipeline(
        &self,
        _ctx: PipelineCtx,
        next: Box<dyn PipelineOp>,
    ) -> Result<Box<dyn PipelineOp>> {
        Ok(Box::new(SinkStage { collector: Arc::clone(&self.collector), local: Vec::new(), next }))
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let mut local = Vec::new();
        ctx.inputs[0].for_each(|t| {
            local.push(t);
            Ok(true)
        })?;
        self.collector.lock().extend(local);
        Ok(())
    }
}

struct SinkStage {
    collector: Arc<Mutex<Vec<Tuple>>>,
    local: Vec<Tuple>,
    next: Box<dyn PipelineOp>,
}

impl PipelineOp for SinkStage {
    fn push(&mut self, bytes: &[u8]) -> Result<()> {
        self.local.push(asterix_adm::decode_tuple(bytes)?);
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.next.flush()
    }

    fn finish(&mut self) -> Result<()> {
        // Match the pull body: results land in one batch at end of input
        // (partial results still land when an upstream error cut the run
        // short, exactly like the drop-flush path).
        self.collector.lock().extend(std::mem::take(&mut self.local));
        self.next.finish()
    }
}

/// Applies a side-effecting callback per tuple (index insert/delete — the
/// index lifecycle operators of §4.1), forwarding tuples downstream.
pub struct ApplyOp {
    label: String,
    apply: Arc<dyn Fn(usize, &Tuple) -> Result<()> + Send + Sync>,
}

impl ApplyOp {
    pub fn new(
        label: impl Into<String>,
        apply: impl Fn(usize, &Tuple) -> Result<()> + Send + Sync + 'static,
    ) -> ApplyOp {
        ApplyOp { label: label.into(), apply: Arc::new(apply) }
    }
}

impl OperatorDescriptor for ApplyOp {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn fusible(&self) -> bool {
        true
    }

    fn pipeline(&self, ctx: PipelineCtx, next: Box<dyn PipelineOp>) -> Result<Box<dyn PipelineOp>> {
        Ok(Box::new(ApplyStage { partition: ctx.partition, apply: Arc::clone(&self.apply), next }))
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { partition, inputs, outputs, .. } = ctx;
        let p = *partition;
        let out = &mut outputs[0];
        let apply = &self.apply;
        // Decode for the callback, but forward the original bytes verbatim.
        inputs[0].for_each_raw(|bytes| {
            let t = asterix_adm::decode_tuple(bytes)?;
            apply(p, &t)?;
            out.push_encoded(bytes)?;
            Ok(true)
        })
    }
}

struct ApplyStage {
    partition: usize,
    apply: Arc<dyn Fn(usize, &Tuple) -> Result<()> + Send + Sync>,
    next: Box<dyn PipelineOp>,
}

impl PipelineOp for ApplyStage {
    fn push(&mut self, bytes: &[u8]) -> Result<()> {
        let t = asterix_adm::decode_tuple(bytes)?;
        (self.apply)(self.partition, &t)?;
        self.next.push(bytes)
    }

    fn flush(&mut self) -> Result<()> {
        self.next.flush()
    }

    fn finish(&mut self) -> Result<()> {
        self.next.finish()
    }
}

// ---------------------------------------------------------------------------
// Tuple-at-a-time operators
// ---------------------------------------------------------------------------

/// Filter by predicate (the `select` operator of Figure 6).
pub struct SelectOp {
    label: String,
    pred: PredFn,
    /// Columns the predicate reads, when the compiler knows them: only
    /// these are decoded per tuple (`None` = full decode).
    fields: Option<Vec<usize>>,
}

impl SelectOp {
    pub fn new(label: impl Into<String>, pred: PredFn) -> SelectOp {
        SelectOp { label: label.into(), pred, fields: None }
    }

    /// A select whose predicate reads only the given columns: evaluation
    /// decodes just those positions through `TupleRef::field_value` and the
    /// predicate sees `Missing` everywhere else.
    pub fn with_fields(label: impl Into<String>, pred: PredFn, fields: Vec<usize>) -> SelectOp {
        SelectOp { label: label.into(), pred, fields: Some(fields) }
    }
}

impl OperatorDescriptor for SelectOp {
    fn name(&self) -> String {
        format!("select {}", self.label)
    }

    fn fusible(&self) -> bool {
        true
    }

    fn pipeline(
        &self,
        _ctx: PipelineCtx,
        next: Box<dyn PipelineOp>,
    ) -> Result<Box<dyn PipelineOp>> {
        Ok(Box::new(SelectStage {
            pred: Arc::clone(&self.pred),
            fields: self.fields.clone(),
            next,
        }))
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { inputs, outputs, .. } = ctx;
        let out = &mut outputs[0];
        let pred = &self.pred;
        let fields = self.fields.as_deref();
        // Evaluate on a (sparsely) decoded view; surviving tuples are
        // forwarded as their original bytes (no re-serialization).
        inputs[0].for_each_raw(|bytes| {
            let t = decode_for_eval(bytes, fields)?;
            if pred(&t)? {
                out.push_encoded(bytes)?;
            }
            Ok(true)
        })
    }
}

struct SelectStage {
    pred: PredFn,
    fields: Option<Vec<usize>>,
    next: Box<dyn PipelineOp>,
}

impl PipelineOp for SelectStage {
    fn push(&mut self, bytes: &[u8]) -> Result<()> {
        let t = decode_for_eval(bytes, self.fields.as_deref())?;
        if (self.pred)(&t)? {
            self.next.push(bytes)?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.next.flush()
    }

    fn finish(&mut self) -> Result<()> {
        self.next.finish()
    }
}

/// Append computed expression values to each tuple (Figure 6's `assign`).
pub struct AssignOp {
    label: String,
    exprs: Vec<EvalFn>,
    /// Columns the expressions read, when the compiler knows them. With a
    /// field set, evaluation decodes only those positions and the appended
    /// values are spliced on at the byte level (`append_values_into`) — the
    /// input tuple is never fully decoded or re-encoded. Callers guarantee
    /// the expressions read input columns only (no expression sees the
    /// values appended before it, unlike the full-decode path).
    fields: Option<Vec<usize>>,
}

impl AssignOp {
    pub fn new(label: impl Into<String>, exprs: Vec<EvalFn>) -> AssignOp {
        AssignOp { label: label.into(), exprs, fields: None }
    }

    /// An assign whose expressions read only the given input columns.
    pub fn with_fields(
        label: impl Into<String>,
        exprs: Vec<EvalFn>,
        fields: Vec<usize>,
    ) -> AssignOp {
        AssignOp { label: label.into(), exprs, fields: Some(fields) }
    }
}

impl OperatorDescriptor for AssignOp {
    fn name(&self) -> String {
        format!("assign {}", self.label)
    }

    fn fusible(&self) -> bool {
        true
    }

    fn pipeline(
        &self,
        _ctx: PipelineCtx,
        next: Box<dyn PipelineOp>,
    ) -> Result<Box<dyn PipelineOp>> {
        Ok(Box::new(AssignStage {
            exprs: self.exprs.clone(),
            fields: self.fields.clone(),
            scratch: Vec::new(),
            vals: Vec::new(),
            next,
        }))
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { inputs, outputs, .. } = ctx;
        let out = &mut outputs[0];
        let exprs = &self.exprs;
        match self.fields.as_deref() {
            // Full decode: each expression sees the values appended before
            // it (positions arity, arity+1, ...).
            None => inputs[0].for_each(|mut t| {
                for e in exprs {
                    let v = e(&t)?;
                    t.push(v);
                }
                out.push(t)?;
                Ok(true)
            }),
            // Sparse decode + byte-level append: only the referenced
            // columns are materialized, and the original tuple bytes are
            // copied verbatim into the output.
            Some(fs) => {
                let mut scratch = Vec::new();
                let mut vals = Vec::with_capacity(exprs.len());
                inputs[0].for_each_raw(|bytes| {
                    let t = decode_for_eval(bytes, Some(fs))?;
                    vals.clear();
                    for e in exprs {
                        vals.push(e(&t)?);
                    }
                    scratch.clear();
                    asterix_adm::tuple::append_values_into(
                        &mut scratch,
                        &asterix_adm::TupleRef::new(bytes)?,
                        &vals,
                    );
                    out.push_encoded(&scratch)?;
                    Ok(true)
                })
            }
        }
    }
}

struct AssignStage {
    exprs: Vec<EvalFn>,
    fields: Option<Vec<usize>>,
    scratch: Vec<u8>,
    vals: Vec<Value>,
    next: Box<dyn PipelineOp>,
}

impl PipelineOp for AssignStage {
    fn push(&mut self, bytes: &[u8]) -> Result<()> {
        self.scratch.clear();
        match self.fields.as_deref() {
            None => {
                let mut t = asterix_adm::decode_tuple(bytes)?;
                for e in &self.exprs {
                    let v = e(&t)?;
                    t.push(v);
                }
                asterix_adm::encode_tuple_into(&mut self.scratch, &t);
            }
            Some(fs) => {
                let t = decode_for_eval(bytes, Some(fs))?;
                self.vals.clear();
                for e in &self.exprs {
                    self.vals.push(e(&t)?);
                }
                asterix_adm::tuple::append_values_into(
                    &mut self.scratch,
                    &asterix_adm::TupleRef::new(bytes)?,
                    &self.vals,
                );
            }
        }
        self.next.push(&self.scratch)
    }

    fn flush(&mut self) -> Result<()> {
        self.next.flush()
    }

    fn finish(&mut self) -> Result<()> {
        self.next.finish()
    }
}

/// Keep only the given field positions, in order.
pub struct ProjectOp {
    pub fields: Vec<usize>,
}

impl OperatorDescriptor for ProjectOp {
    fn name(&self) -> String {
        format!("project {:?}", self.fields)
    }

    fn fusible(&self) -> bool {
        true
    }

    fn pipeline(
        &self,
        _ctx: PipelineCtx,
        next: Box<dyn PipelineOp>,
    ) -> Result<Box<dyn PipelineOp>> {
        Ok(Box::new(ProjectStage { fields: self.fields.clone(), scratch: Vec::new(), next }))
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { inputs, outputs, .. } = ctx;
        let out = &mut outputs[0];
        let fields = &self.fields;
        // Pure byte re-slicing: kept fields' encodings are copied into a
        // fresh tuple without ever decoding them (out-of-range fields
        // become MISSING, matching the decoded semantics).
        let mut scratch = Vec::new();
        inputs[0].for_each_raw(|bytes| {
            let r = asterix_adm::TupleRef::new(bytes)?;
            scratch.clear();
            asterix_adm::tuple::project_tuple_into(&mut scratch, &r, fields);
            out.push_encoded(&scratch)?;
            Ok(true)
        })
    }
}

struct ProjectStage {
    fields: Vec<usize>,
    scratch: Vec<u8>,
    next: Box<dyn PipelineOp>,
}

impl PipelineOp for ProjectStage {
    fn push(&mut self, bytes: &[u8]) -> Result<()> {
        let r = asterix_adm::TupleRef::new(bytes)?;
        self.scratch.clear();
        asterix_adm::tuple::project_tuple_into(&mut self.scratch, &r, &self.fields);
        self.next.push(&self.scratch)
    }

    fn flush(&mut self) -> Result<()> {
        self.next.flush()
    }

    fn finish(&mut self) -> Result<()> {
        self.next.finish()
    }
}

/// Pass through at most `limit` tuples after skipping `offset` (per
/// instance — a global limit runs this at parallelism 1).
pub struct LimitOp {
    pub limit: usize,
    pub offset: usize,
}

impl OperatorDescriptor for LimitOp {
    fn name(&self) -> String {
        if self.offset > 0 {
            format!("limit {} offset {}", self.limit, self.offset)
        } else {
            format!("limit {}", self.limit)
        }
    }

    fn fusible(&self) -> bool {
        true
    }

    fn pipeline(
        &self,
        _ctx: PipelineCtx,
        next: Box<dyn PipelineOp>,
    ) -> Result<Box<dyn PipelineOp>> {
        Ok(Box::new(LimitStage {
            limit: self.limit,
            offset: self.offset,
            seen: 0,
            emitted: 0,
            next,
        }))
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { inputs, outputs, .. } = ctx;
        let out = &mut outputs[0];
        let mut seen = 0usize;
        let mut emitted = 0usize;
        let (limit, offset) = (self.limit, self.offset);
        // Pure forwarding: never decodes a tuple.
        inputs[0].for_each_raw(|bytes| {
            if seen < offset {
                seen += 1;
                return Ok(true);
            }
            if emitted >= limit {
                return Ok(false);
            }
            out.push_encoded(bytes)?;
            emitted += 1;
            Ok(emitted < limit)
        })
    }
}

struct LimitStage {
    limit: usize,
    offset: usize,
    seen: usize,
    emitted: usize,
    next: Box<dyn PipelineOp>,
}

impl PipelineOp for LimitStage {
    fn push(&mut self, bytes: &[u8]) -> Result<()> {
        if self.seen < self.offset {
            self.seen += 1;
            return Ok(());
        }
        if self.emitted >= self.limit {
            return Err(crate::HyracksError::DownstreamClosed);
        }
        self.next.push(bytes)?;
        self.emitted += 1;
        if self.emitted >= self.limit {
            // The fused analogue of a closed channel: tell upstream to stop
            // as soon as the last allowed tuple is delivered.
            return Err(crate::HyracksError::DownstreamClosed);
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.next.flush()
    }

    fn finish(&mut self) -> Result<()> {
        self.next.finish()
    }
}

/// Unnest a collection-valued expression: one output tuple per element,
/// with the element (and optionally its 1-based position, for AQL's `at`
/// positional variables) appended.
pub struct UnnestOp {
    label: String,
    expr: EvalFn,
    pub with_position: bool,
    /// When false (inner unnest), tuples whose collection is empty or
    /// unknown vanish; when true (outer), one tuple with `missing` appended
    /// survives — the left-outer shape of Query 4.
    pub outer: bool,
}

impl UnnestOp {
    pub fn new(label: impl Into<String>, expr: EvalFn) -> UnnestOp {
        UnnestOp { label: label.into(), expr, with_position: false, outer: false }
    }

    pub fn outer(label: impl Into<String>, expr: EvalFn) -> UnnestOp {
        UnnestOp { label: label.into(), expr, with_position: false, outer: true }
    }

    pub fn with_position(mut self) -> Self {
        self.with_position = true;
        self
    }
}

impl OperatorDescriptor for UnnestOp {
    fn name(&self) -> String {
        format!("unnest {}", self.label)
    }

    fn fusible(&self) -> bool {
        true
    }

    fn pipeline(
        &self,
        _ctx: PipelineCtx,
        next: Box<dyn PipelineOp>,
    ) -> Result<Box<dyn PipelineOp>> {
        Ok(Box::new(UnnestStage {
            expr: Arc::clone(&self.expr),
            with_position: self.with_position,
            outer: self.outer,
            scratch: Vec::new(),
            next,
        }))
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { inputs, outputs, .. } = ctx;
        let out = &mut outputs[0];
        let expr = &self.expr;
        let (with_pos, outer) = (self.with_position, self.outer);
        inputs[0].for_each(|t| {
            let coll = expr(&t)?;
            match coll.as_list() {
                Some(items) if !items.is_empty() => {
                    for (i, item) in items.iter().enumerate() {
                        let mut row = t.clone();
                        row.push(item.clone());
                        if with_pos {
                            row.push(Value::Int64(i as i64 + 1));
                        }
                        out.push(row)?;
                    }
                }
                _ if outer => {
                    let mut row = t.clone();
                    row.push(Value::Missing);
                    if with_pos {
                        row.push(Value::Missing);
                    }
                    out.push(row)?;
                }
                _ => {}
            }
            Ok(true)
        })
    }
}

struct UnnestStage {
    expr: EvalFn,
    with_position: bool,
    outer: bool,
    scratch: Vec<u8>,
    next: Box<dyn PipelineOp>,
}

impl UnnestStage {
    /// Build one output row at the byte level: the input tuple's encoding
    /// plus the appended element (and position), never re-encoding the
    /// input fields.
    fn emit(&mut self, base: &asterix_adm::TupleRef<'_>, vals: &[Value]) -> Result<()> {
        self.scratch.clear();
        asterix_adm::tuple::append_values_into(&mut self.scratch, base, vals);
        self.next.push(&self.scratch)
    }
}

impl PipelineOp for UnnestStage {
    fn push(&mut self, bytes: &[u8]) -> Result<()> {
        let t = asterix_adm::decode_tuple(bytes)?;
        let coll = (self.expr)(&t)?;
        let base = asterix_adm::TupleRef::new(bytes)?;
        match coll.as_list() {
            Some(items) if !items.is_empty() => {
                for (i, item) in items.iter().enumerate() {
                    if self.with_position {
                        self.emit(&base, &[item.clone(), Value::Int64(i as i64 + 1)])?;
                    } else {
                        self.emit(&base, std::slice::from_ref(item))?;
                    }
                }
            }
            _ if self.outer => {
                if self.with_position {
                    self.emit(&base, &[Value::Missing, Value::Missing])?;
                } else {
                    self.emit(&base, &[Value::Missing])?;
                }
            }
            _ => {}
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.next.flush()
    }

    fn finish(&mut self) -> Result<()> {
        self.next.finish()
    }
}

/// Forward all inputs to the single output (bag union).
pub struct UnionAllOp;

impl OperatorDescriptor for UnionAllOp {
    fn name(&self) -> String {
        "union-all".into()
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { inputs, outputs, .. } = ctx;
        let out = &mut outputs[0];
        for input in inputs.iter_mut() {
            // Pure forwarding: never decodes a tuple.
            input.for_each_raw(|bytes| {
                out.push_encoded(bytes)?;
                Ok(true)
            })?;
        }
        Ok(())
    }
}

/// Forward the input to every output — a Feed Joint (§4.5): "like a
/// network tap [...] allows data to be routed simultaneously along
/// multiple paths".
pub struct ReplicateOp;

impl OperatorDescriptor for ReplicateOp {
    fn name(&self) -> String {
        "replicate (feed joint)".into()
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { inputs, outputs, .. } = ctx;
        let n = outputs.len();
        let mut closed = vec![false; n];
        // Byte forwarding: each tap gets the same encoding appended to its
        // frame — no per-tap tuple clone.
        inputs[0].for_each_raw(|bytes| {
            let mut all_closed = true;
            for (i, out) in outputs.iter_mut().enumerate() {
                if closed[i] {
                    continue;
                }
                // One tap hanging up must not starve the others; only stop
                // consuming once every downstream path is gone.
                match out.push_encoded(bytes) {
                    Ok(()) => all_closed = false,
                    Err(crate::HyracksError::DownstreamClosed) => closed[i] = true,
                    Err(e) => return Err(e),
                }
            }
            Ok(!all_closed)
        })
    }
}

/// Partition-aware flat-map: the closure receives the partition index —
/// used for partition-local storage access like the primary-index lookups
/// that follow a secondary-index search (Figure 6).
pub struct PartitionMapOp {
    label: String,
    f: Arc<dyn Fn(usize, &Tuple) -> Result<Vec<Tuple>> + Send + Sync>,
}

impl PartitionMapOp {
    pub fn new(
        label: impl Into<String>,
        f: impl Fn(usize, &Tuple) -> Result<Vec<Tuple>> + Send + Sync + 'static,
    ) -> PartitionMapOp {
        PartitionMapOp { label: label.into(), f: Arc::new(f) }
    }
}

impl OperatorDescriptor for PartitionMapOp {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn fusible(&self) -> bool {
        true
    }

    fn pipeline(&self, ctx: PipelineCtx, next: Box<dyn PipelineOp>) -> Result<Box<dyn PipelineOp>> {
        Ok(Box::new(PartitionMapStage {
            partition: ctx.partition,
            f: Arc::clone(&self.f),
            scratch: Vec::new(),
            next,
        }))
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { partition, inputs, outputs, .. } = ctx;
        let p = *partition;
        let out = &mut outputs[0];
        let f = &self.f;
        inputs[0].for_each(|t| {
            for row in f(p, &t)? {
                out.push(row)?;
            }
            Ok(true)
        })
    }
}

struct PartitionMapStage {
    partition: usize,
    f: Arc<dyn Fn(usize, &Tuple) -> Result<Vec<Tuple>> + Send + Sync>,
    scratch: Vec<u8>,
    next: Box<dyn PipelineOp>,
}

impl PipelineOp for PartitionMapStage {
    fn push(&mut self, bytes: &[u8]) -> Result<()> {
        let t = asterix_adm::decode_tuple(bytes)?;
        for row in (self.f)(self.partition, &t)? {
            self.scratch.clear();
            asterix_adm::encode_tuple_into(&mut self.scratch, &row);
            self.next.push(&self.scratch)?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.next.flush()
    }

    fn finish(&mut self) -> Result<()> {
        self.next.finish()
    }
}

/// Duplicate elimination on a set of key columns: the first tuple of each
/// distinct key survives. Run after hash-partitioning on those columns for
/// global dedup.
pub struct DistinctOp {
    pub keys: Vec<usize>,
}

impl OperatorDescriptor for DistinctOp {
    fn name(&self) -> String {
        format!("distinct {:?}", self.keys)
    }

    fn fusible(&self) -> bool {
        true
    }

    fn pipeline(
        &self,
        _ctx: PipelineCtx,
        next: Box<dyn PipelineOp>,
    ) -> Result<Box<dyn PipelineOp>> {
        Ok(Box::new(DistinctStage {
            keys: self.keys.clone(),
            seen: std::collections::HashSet::new(),
            next,
        }))
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { inputs, outputs, .. } = ctx;
        let out = &mut outputs[0];
        let keys = &self.keys;
        // Keyed by the canonical comparison-key encoding of the key
        // columns: byte equality there is exactly `total_cmp == Equal`
        // (numeric widths collapse), so no collision re-check is needed,
        // and survivors are forwarded as their original bytes.
        let mut seen: std::collections::HashSet<Vec<u8>> = std::collections::HashSet::new();
        inputs[0].for_each_raw(|bytes| {
            let r = asterix_adm::TupleRef::new(bytes)?;
            let mut key = Vec::new();
            for &i in keys {
                asterix_adm::ordkey::encode_value_into(&mut key, &r.field_value(i)?);
            }
            if seen.insert(key) {
                out.push_encoded(bytes)?;
            }
            Ok(true)
        })
    }
}

struct DistinctStage {
    keys: Vec<usize>,
    seen: std::collections::HashSet<Vec<u8>>,
    next: Box<dyn PipelineOp>,
}

impl PipelineOp for DistinctStage {
    fn push(&mut self, bytes: &[u8]) -> Result<()> {
        let r = asterix_adm::TupleRef::new(bytes)?;
        let mut key = Vec::new();
        for &i in &self.keys {
            asterix_adm::ordkey::encode_value_into(&mut key, &r.field_value(i)?);
        }
        if self.seen.insert(key) {
            self.next.push(bytes)?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.next.flush()
    }

    fn finish(&mut self) -> Result<()> {
        self.next.finish()
    }
}

/// General flat-map (used for compiled subplans that need bespoke tuple
/// shapes).
pub struct MapOp {
    label: String,
    f: Arc<dyn Fn(&Tuple) -> Result<Vec<Tuple>> + Send + Sync>,
}

impl MapOp {
    pub fn new(
        label: impl Into<String>,
        f: impl Fn(&Tuple) -> Result<Vec<Tuple>> + Send + Sync + 'static,
    ) -> MapOp {
        MapOp { label: label.into(), f: Arc::new(f) }
    }
}

impl OperatorDescriptor for MapOp {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn fusible(&self) -> bool {
        true
    }

    fn pipeline(
        &self,
        _ctx: PipelineCtx,
        next: Box<dyn PipelineOp>,
    ) -> Result<Box<dyn PipelineOp>> {
        Ok(Box::new(MapStage { f: Arc::clone(&self.f), scratch: Vec::new(), next }))
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { inputs, outputs, .. } = ctx;
        let out = &mut outputs[0];
        let f = &self.f;
        inputs[0].for_each(|t| {
            for row in f(&t)? {
                out.push(row)?;
            }
            Ok(true)
        })
    }
}

struct MapStage {
    f: Arc<dyn Fn(&Tuple) -> Result<Vec<Tuple>> + Send + Sync>,
    scratch: Vec<u8>,
    next: Box<dyn PipelineOp>,
}

impl PipelineOp for MapStage {
    fn push(&mut self, bytes: &[u8]) -> Result<()> {
        let t = asterix_adm::decode_tuple(bytes)?;
        for row in (self.f)(&t)? {
            self.scratch.clear();
            asterix_adm::encode_tuple_into(&mut self.scratch, &row);
            self.next.push(&self.scratch)?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.next.flush()
    }

    fn finish(&mut self) -> Result<()> {
        self.next.finish()
    }
}
