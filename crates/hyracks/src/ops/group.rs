//! Aggregation operators (§4.1): HashGroup, PreclusteredGroup, and the
//! scalar Local/Global aggregation pair that Figure 6 shows for Query 10
//! ("a Local Aggregation Operator that pre-aggregates the records for the
//! local node and a Global Aggregation Operator that aggregates the results
//! of the Local Aggregation Operators").

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use asterix_adm::{ordkey, AdmError, TupleRef, Value};

use super::{OpCtx, OperatorDescriptor};
use crate::frame::Tuple;
use crate::Result;

/// Aggregate function kinds. `sql` variants skip unknowns; AQL variants
/// return null when any input is null (Section 3's aggregate semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    Count,
    Sum,
    Min,
    Max,
    Avg,
    /// Collect the field values into an ordered list (materializes group
    /// variables — the `with $msg` of Query 11).
    Listify,
}

/// One aggregate: which kind over which input field position.
#[derive(Debug, Clone, Copy)]
pub struct AggSpec {
    pub kind: AggKind,
    pub field: usize,
    /// SQL null semantics (`sql-*` builtins) instead of AQL semantics.
    pub sql: bool,
}

impl AggSpec {
    pub fn new(kind: AggKind, field: usize) -> AggSpec {
        AggSpec { kind, field, sql: false }
    }

    pub fn sql(kind: AggKind, field: usize) -> AggSpec {
        AggSpec { kind, field, sql: true }
    }

    /// How many fields this aggregate's partial state occupies.
    pub fn partial_arity(&self) -> usize {
        match self.kind {
            AggKind::Avg => 2, // (sum, count)
            _ => 1,
        }
    }
}

/// Running state for one aggregate in one group.
#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    /// (sum as f64, all-int flag, int sum, poisoned-by-null)
    Sum {
        sum: f64,
        all_int: bool,
        isum: i64,
        poisoned: bool,
        seen: bool,
    },
    MinMax {
        best: Option<Value>,
        is_min: bool,
        poisoned: bool,
    },
    Avg {
        sum: f64,
        count: i64,
        poisoned: bool,
    },
    Listify(Vec<Value>),
}

impl AggState {
    fn init(spec: &AggSpec) -> AggState {
        match spec.kind {
            AggKind::Count => AggState::Count(0),
            AggKind::Sum => {
                AggState::Sum { sum: 0.0, all_int: true, isum: 0, poisoned: false, seen: false }
            }
            AggKind::Min => AggState::MinMax { best: None, is_min: true, poisoned: false },
            AggKind::Max => AggState::MinMax { best: None, is_min: false, poisoned: false },
            AggKind::Avg => AggState::Avg { sum: 0.0, count: 0, poisoned: false },
            AggKind::Listify => AggState::Listify(Vec::new()),
        }
    }

    fn accumulate(&mut self, spec: &AggSpec, v: &Value) -> Result<()> {
        match self {
            AggState::Count(n) => {
                let skip = if spec.sql { v.is_unknown() } else { v.is_missing() };
                if !skip {
                    *n += 1;
                }
            }
            AggState::Sum { sum, all_int, isum, poisoned, seen } => {
                if v.is_unknown() {
                    if !spec.sql {
                        *poisoned = true;
                    }
                    return Ok(());
                }
                *seen = true;
                let f = v.as_f64().ok_or_else(|| {
                    AdmError::InvalidArgument(format!("sum over {}", v.type_name()))
                })?;
                *sum += f;
                match v.as_i64() {
                    Some(i) => *isum = isum.wrapping_add(i),
                    None => *all_int = false,
                }
            }
            AggState::MinMax { best, is_min, poisoned } => {
                if v.is_unknown() {
                    if !spec.sql {
                        *poisoned = true;
                    }
                    return Ok(());
                }
                let better = match best {
                    None => true,
                    Some(b) => {
                        let c = v.total_cmp(b);
                        if *is_min {
                            c.is_lt()
                        } else {
                            c.is_gt()
                        }
                    }
                };
                if better {
                    *best = Some(v.clone());
                }
            }
            AggState::Avg { sum, count, poisoned } => {
                if v.is_unknown() {
                    if !spec.sql {
                        *poisoned = true;
                    }
                    return Ok(());
                }
                *sum += v.as_f64().ok_or_else(|| {
                    AdmError::InvalidArgument(format!("avg over {}", v.type_name()))
                })?;
                *count += 1;
            }
            AggState::Listify(items) => {
                if !v.is_missing() {
                    items.push(v.clone());
                }
            }
        }
        Ok(())
    }

    /// Emit partial-aggregate fields (local aggregation output).
    fn partial(&self) -> Vec<Value> {
        match self {
            AggState::Count(n) => vec![Value::Int64(*n)],
            AggState::Sum { sum, all_int, isum, poisoned, seen } => {
                if *poisoned {
                    vec![Value::Null]
                } else if !*seen {
                    vec![Value::Missing]
                } else if *all_int {
                    vec![Value::Int64(*isum)]
                } else {
                    vec![Value::Double(*sum)]
                }
            }
            AggState::MinMax { best, poisoned, .. } => {
                if *poisoned {
                    vec![Value::Null]
                } else {
                    vec![best.clone().unwrap_or(Value::Missing)]
                }
            }
            AggState::Avg { sum, count, poisoned } => {
                if *poisoned {
                    vec![Value::Null, Value::Null]
                } else {
                    vec![Value::Double(*sum), Value::Int64(*count)]
                }
            }
            AggState::Listify(items) => vec![Value::ordered_list(items.clone())],
        }
    }

    /// Fold partial fields (from a local aggregator) into this state.
    fn combine(&mut self, spec: &AggSpec, partial: &[Value]) -> Result<()> {
        match self {
            AggState::Count(n) => {
                if let Some(i) = partial[0].as_i64() {
                    *n += i;
                }
            }
            AggState::Sum { .. } | AggState::MinMax { .. } => {
                // A missing partial means that partition saw no values —
                // always skipped. A null partial poisons (AQL) or is
                // skipped (SQL); otherwise it folds in like a plain value.
                if partial[0].is_missing() {
                    return Ok(());
                }
                self.accumulate(spec, &partial[0])?;
            }
            AggState::Avg { sum, count, poisoned } => {
                if partial[0].is_null() {
                    if !spec.sql {
                        *poisoned = true;
                    }
                } else {
                    sum.add_assign_from(&partial[0]);
                    *count += partial[1].as_i64().unwrap_or(0);
                }
            }
            AggState::Listify(items) => {
                if let Some(list) = partial[0].as_list() {
                    items.extend(list.iter().cloned());
                }
            }
        }
        Ok(())
    }

    /// Emit the final aggregate value.
    fn finish(&self) -> Value {
        match self {
            AggState::Count(n) => Value::Int64(*n),
            AggState::Sum { sum, all_int, isum, poisoned, seen } => {
                if *poisoned || !*seen {
                    Value::Null
                } else if *all_int {
                    Value::Int64(*isum)
                } else {
                    Value::Double(*sum)
                }
            }
            AggState::MinMax { best, poisoned, .. } => {
                if *poisoned {
                    Value::Null
                } else {
                    best.clone().unwrap_or(Value::Null)
                }
            }
            AggState::Avg { sum, count, poisoned } => {
                if *poisoned || *count == 0 {
                    Value::Null
                } else {
                    Value::Double(*sum / *count as f64)
                }
            }
            AggState::Listify(items) => Value::ordered_list(items.clone()),
        }
    }
}

trait AddAssignFrom {
    fn add_assign_from(&mut self, v: &Value);
}

impl AddAssignFrom for f64 {
    fn add_assign_from(&mut self, v: &Value) {
        if let Some(f) = v.as_f64() {
            *self += f;
        }
    }
}

/// Whether a grouping operator computes partials, finals from partials, or
/// everything in one step — the local/global split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupMode {
    /// Consume raw tuples, emit `keys ++ partial fields`.
    Partial,
    /// Consume `keys ++ partial fields`, emit `keys ++ final values`.
    Final,
    /// Consume raw tuples, emit `keys ++ final values`.
    Complete,
}

fn run_grouping(
    label: &str,
    keys: &[usize],
    aggs: &[AggSpec],
    mode: GroupMode,
    ctx: &mut OpCtx,
    preclustered: bool,
    mem_budget: usize,
) -> Result<()> {
    let OpCtx { inputs, outputs, .. } = ctx;
    let out = &mut outputs[0];
    let _ = label;

    let mut emit_group = |key_vals: Tuple, states: Vec<AggState>| -> Result<()> {
        let mut row: Tuple = key_vals;
        for st in &states {
            match mode {
                GroupMode::Partial => row.extend(st.partial()),
                GroupMode::Final | GroupMode::Complete => row.push(st.finish()),
            }
        }
        out.push(row)
    };

    // Group keys are the canonical comparison-key encodings of the key
    // fields, read straight off the encoded tuple: byte equality is ADM
    // `total_cmp` equality, so no custom Eq/Hash wrapper is needed. The
    // first occurrence's decoded key values are kept for emission.
    let extract_key = |r: &TupleRef<'_>| -> Result<(Vec<u8>, Tuple)> {
        let mut kb = Vec::new();
        let mut kvals: Tuple = Vec::with_capacity(keys.len());
        for &i in keys {
            let v = r.field_value(i)?;
            ordkey::encode_value_into(&mut kb, &v);
            kvals.push(v);
        }
        Ok((kb, kvals))
    };

    let feed = |states: &mut Vec<AggState>, r: &TupleRef<'_>| -> Result<()> {
        for (spec, st) in aggs.iter().zip(states.iter_mut()) {
            match mode {
                GroupMode::Partial | GroupMode::Complete => {
                    // Only the aggregated field is decoded, not the tuple.
                    st.accumulate(spec, &r.field_value(spec.field)?)?;
                }
                GroupMode::Final => {
                    // Partial fields follow the key fields in declared
                    // order; compute this aggregate's slice.
                    let mut off = keys.len();
                    for prior in aggs.iter().take_while(|p| !std::ptr::eq(*p, spec)) {
                        off += prior.partial_arity();
                    }
                    let slice: Vec<Value> = (0..spec.partial_arity())
                        .map(|i| r.field_value(off + i))
                        .collect::<asterix_adm::Result<_>>()?;
                    st.combine(spec, &slice)?;
                }
            }
        }
        Ok(())
    };

    if preclustered {
        // Input arrives clustered by key: emit each group as it closes.
        let mut current: Option<(Vec<u8>, Tuple, Vec<AggState>)> = None;
        inputs[0].for_each_raw(|bytes| {
            let r = TupleRef::new(bytes)?;
            let (kb, kvals) = extract_key(&r)?;
            let close = matches!(&current, Some((k, _, _)) if *k != kb);
            if close {
                let (_, kv, states) = current.take().unwrap();
                emit_group(kv, states)?;
            }
            if current.is_none() {
                current = Some((kb, kvals, aggs.iter().map(AggState::init).collect()));
            }
            feed(&mut current.as_mut().unwrap().2, &r)?;
            Ok(true)
        })?;
        if let Some((_, kv, states)) = current.take() {
            emit_group(kv, states)?;
        }
    } else {
        // In Partial mode the hash table is bounded by the operator's memory
        // budget: when the (approximate) footprint overflows, the partial
        // groups so far are flushed downstream and the table restarts. The
        // Final aggregator recombines by key, so early partials stay
        // correct — this trades output volume for bounded memory.
        let spill_partials = mode == GroupMode::Partial && mem_budget > 0;
        let mut table: HashMap<Vec<u8>, (Tuple, Vec<AggState>)> = HashMap::new();
        let mut approx_bytes = 0usize;
        inputs[0].for_each_raw(|bytes| {
            let r = TupleRef::new(bytes)?;
            let (kb, kvals) = extract_key(&r)?;
            let entry_cost = kb.len() * 2 + aggs.len() * 48 + 64;
            let (_, states) = match table.entry(kb) {
                Entry::Occupied(e) => e.into_mut(),
                Entry::Vacant(e) => {
                    approx_bytes += entry_cost;
                    e.insert((kvals, aggs.iter().map(AggState::init).collect()))
                }
            };
            feed(states, &r)?;
            if spill_partials && approx_bytes > mem_budget {
                for (_, (kv, states)) in table.drain() {
                    emit_group(kv, states)?;
                }
                approx_bytes = 0;
            }
            Ok(true)
        })?;
        for (_, (kv, states)) in table {
            emit_group(kv, states)?;
        }
    }
    Ok(())
}

/// Default hash-group memory budget when the workload manager hands out
/// nothing more specific.
pub const DEFAULT_GROUP_MEM: usize = 32 << 20;

/// Hash-based group-by ("HashGroup" in §4.1's operator list).
pub struct HashGroupOp {
    label: String,
    pub keys: Vec<usize>,
    pub aggs: Vec<AggSpec>,
    pub mode: GroupMode,
    /// Approximate table budget in bytes. Partial-mode operators flush
    /// their groups downstream when they exceed it; Final/Complete tables
    /// must hold every group and ignore the budget.
    pub mem_budget: usize,
}

impl HashGroupOp {
    pub fn new(
        label: impl Into<String>,
        keys: Vec<usize>,
        aggs: Vec<AggSpec>,
        mode: GroupMode,
    ) -> HashGroupOp {
        HashGroupOp { label: label.into(), keys, aggs, mode, mem_budget: DEFAULT_GROUP_MEM }
    }

    pub fn with_budget(mut self, bytes: usize) -> HashGroupOp {
        self.mem_budget = bytes.max(1024);
        self
    }
}

impl OperatorDescriptor for HashGroupOp {
    fn name(&self) -> String {
        format!("hash-group {} ({:?})", self.label, self.mode)
    }

    fn blocking_inputs(&self) -> Vec<usize> {
        vec![0]
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        run_grouping(&self.label, &self.keys, &self.aggs, self.mode, ctx, false, self.mem_budget)
    }
}

/// Group-by over key-clustered input ("PreclusteredGroup"): streams, no
/// hash table, emits groups as they close.
pub struct PreclusteredGroupOp {
    label: String,
    pub keys: Vec<usize>,
    pub aggs: Vec<AggSpec>,
    pub mode: GroupMode,
}

impl PreclusteredGroupOp {
    pub fn new(
        label: impl Into<String>,
        keys: Vec<usize>,
        aggs: Vec<AggSpec>,
        mode: GroupMode,
    ) -> PreclusteredGroupOp {
        PreclusteredGroupOp { label: label.into(), keys, aggs, mode }
    }
}

impl OperatorDescriptor for PreclusteredGroupOp {
    fn name(&self) -> String {
        format!("preclustered-group {} ({:?})", self.label, self.mode)
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        // Preclustered grouping streams one group at a time; no table, no
        // budget to enforce.
        run_grouping(&self.label, &self.keys, &self.aggs, self.mode, ctx, true, 0)
    }
}

/// Scalar (ungrouped) aggregation — Figure 6's `aggregate local-avg` /
/// `aggregate global-avg` pair. With `GroupMode::Partial` this is the
/// Local Aggregation Operator; with `Final` the Global one (run at
/// parallelism 1 behind an n:1 replicating connector).
pub struct ScalarAggOp {
    label: String,
    pub aggs: Vec<AggSpec>,
    pub mode: GroupMode,
}

impl ScalarAggOp {
    pub fn new(label: impl Into<String>, aggs: Vec<AggSpec>, mode: GroupMode) -> ScalarAggOp {
        ScalarAggOp { label: label.into(), aggs, mode }
    }
}

impl OperatorDescriptor for ScalarAggOp {
    fn name(&self) -> String {
        let prefix = match self.mode {
            GroupMode::Partial => "aggregate local",
            GroupMode::Final => "aggregate global",
            GroupMode::Complete => "aggregate",
        };
        format!("{prefix} {}", self.label)
    }

    fn blocking_inputs(&self) -> Vec<usize> {
        vec![0]
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { inputs, outputs, .. } = ctx;
        let out = &mut outputs[0];
        let aggs = &self.aggs;
        let mode = self.mode;
        let mut states: Vec<AggState> = aggs.iter().map(AggState::init).collect();
        inputs[0].for_each_raw(|bytes| {
            let r = TupleRef::new(bytes)?;
            for (spec, st) in aggs.iter().zip(states.iter_mut()) {
                match mode {
                    GroupMode::Partial | GroupMode::Complete => {
                        st.accumulate(spec, &r.field_value(spec.field)?)?;
                    }
                    GroupMode::Final => {
                        let mut off = 0usize;
                        for prior in aggs.iter().take_while(|p| !std::ptr::eq(*p, spec)) {
                            off += prior.partial_arity();
                        }
                        let slice: Vec<Value> = (0..spec.partial_arity())
                            .map(|i| r.field_value(off + i))
                            .collect::<asterix_adm::Result<_>>()?;
                        st.combine(spec, &slice)?;
                    }
                }
            }
            Ok(true)
        })?;
        let mut row: Tuple = Vec::new();
        for st in &states {
            match mode {
                GroupMode::Partial => row.extend(st.partial()),
                GroupMode::Final | GroupMode::Complete => row.push(st.finish()),
            }
        }
        out.push(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connector::{wire, ConnectorKind, ExchangeConfig};

    fn run_op(op: &dyn OperatorDescriptor, input: Vec<Tuple>) -> Vec<Tuple> {
        let x = ExchangeConfig::default();
        let (mut in_outs, ins) = wire(&ConnectorKind::OneToOne, 1, 1, &|_| 0, &x).unwrap();
        let (outs, mut res_ins) = wire(&ConnectorKind::OneToOne, 1, 1, &|_| 0, &x).unwrap();
        for t in input {
            in_outs[0].push(t).unwrap();
        }
        drop(in_outs);
        let mut ctx = OpCtx {
            partition: 0,
            nparts: 1,
            node: 0,
            inputs: ins,
            outputs: outs,
            env: Default::default(),
        };
        op.run(&mut ctx).unwrap();
        drop(ctx);
        res_ins[0].collect().unwrap()
    }

    fn rows(pairs: &[(i64, i64)]) -> Vec<Tuple> {
        pairs.iter().map(|&(k, v)| vec![Value::Int64(k), Value::Int64(v)]).collect()
    }

    #[test]
    fn hash_group_count_sum() {
        let op = HashGroupOp::new(
            "g",
            vec![0],
            vec![AggSpec::new(AggKind::Count, 1), AggSpec::new(AggKind::Sum, 1)],
            GroupMode::Complete,
        );
        let mut out = run_op(&op, rows(&[(1, 10), (2, 20), (1, 30), (2, 2), (3, 5)]));
        out.sort_by(|a, b| a[0].total_cmp(&b[0]));
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], vec![Value::Int64(1), Value::Int64(2), Value::Int64(40)]);
        assert_eq!(out[1], vec![Value::Int64(2), Value::Int64(2), Value::Int64(22)]);
        assert_eq!(out[2], vec![Value::Int64(3), Value::Int64(1), Value::Int64(5)]);
    }

    #[test]
    fn partial_then_final_equals_complete() {
        let aggs = vec![
            AggSpec::new(AggKind::Avg, 1),
            AggSpec::new(AggKind::Min, 1),
            AggSpec::new(AggKind::Count, 1),
        ];
        let data = rows(&[(1, 10), (1, 20), (2, 5), (1, 30), (2, 15)]);
        // Split the data across two "partitions", aggregate partially, then
        // feed both partials into a final aggregator.
        let p1 = run_op(
            &HashGroupOp::new("l", vec![0], aggs.clone(), GroupMode::Partial),
            data[..3].to_vec(),
        );
        let p2 = run_op(
            &HashGroupOp::new("l", vec![0], aggs.clone(), GroupMode::Partial),
            data[3..].to_vec(),
        );
        let mut partials = p1;
        partials.extend(p2);
        let mut two_step =
            run_op(&HashGroupOp::new("g", vec![0], aggs.clone(), GroupMode::Final), partials);
        let mut one_step = run_op(&HashGroupOp::new("c", vec![0], aggs, GroupMode::Complete), data);
        two_step.sort_by(|a, b| a[0].total_cmp(&b[0]));
        one_step.sort_by(|a, b| a[0].total_cmp(&b[0]));
        assert_eq!(two_step, one_step);
        // avg of group 1 = 20.
        assert_eq!(one_step[0][1], Value::Double(20.0));
    }

    #[test]
    fn preclustered_group_streams_groups() {
        let op = PreclusteredGroupOp::new(
            "p",
            vec![0],
            vec![AggSpec::new(AggKind::Count, 1)],
            GroupMode::Complete,
        );
        // Input clustered by key.
        let out = run_op(&op, rows(&[(1, 0), (1, 0), (2, 0), (3, 0), (3, 0)]));
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], vec![Value::Int64(1), Value::Int64(2)]);
        assert_eq!(out[1], vec![Value::Int64(2), Value::Int64(1)]);
        assert_eq!(out[2], vec![Value::Int64(3), Value::Int64(2)]);
    }

    #[test]
    fn scalar_local_global_avg_like_figure6() {
        let aggs = vec![AggSpec::new(AggKind::Avg, 0)];
        let vals =
            |xs: &[i64]| -> Vec<Tuple> { xs.iter().map(|&v| vec![Value::Int64(v)]).collect() };
        let l1 =
            run_op(&ScalarAggOp::new("avg", aggs.clone(), GroupMode::Partial), vals(&[10, 20]));
        let l2 = run_op(&ScalarAggOp::new("avg", aggs.clone(), GroupMode::Partial), vals(&[60]));
        let mut partials = l1;
        partials.extend(l2);
        let fin = run_op(&ScalarAggOp::new("avg", aggs, GroupMode::Final), partials);
        assert_eq!(fin.len(), 1);
        assert_eq!(fin[0][0], Value::Double(30.0));
    }

    #[test]
    fn budgeted_partial_group_flushes_and_final_recombines() {
        let aggs = vec![AggSpec::new(AggKind::Count, 1), AggSpec::new(AggKind::Sum, 1)];
        let data: Vec<Tuple> =
            (0..300i64).map(|i| vec![Value::Int64(i % 7), Value::Int64(i)]).collect();
        let partials = run_op(
            &HashGroupOp::new("l", vec![0], aggs.clone(), GroupMode::Partial).with_budget(1024),
            data.clone(),
        );
        // Seven live groups overflow a 1 KiB budget, so the table must have
        // flushed at least once: more partial rows than distinct keys.
        assert!(partials.len() > 7, "expected repeated flushes, got {} rows", partials.len());
        let mut two_step =
            run_op(&HashGroupOp::new("g", vec![0], aggs.clone(), GroupMode::Final), partials);
        let mut one_step = run_op(&HashGroupOp::new("c", vec![0], aggs, GroupMode::Complete), data);
        two_step.sort_by(|a, b| a[0].total_cmp(&b[0]));
        one_step.sort_by(|a, b| a[0].total_cmp(&b[0]));
        assert_eq!(two_step, one_step);
    }

    #[test]
    fn null_semantics_aql_vs_sql() {
        let data: Vec<Tuple> = vec![
            vec![Value::Int64(1), Value::Int64(10)],
            vec![Value::Int64(1), Value::Null],
            vec![Value::Int64(1), Value::Int64(20)],
        ];
        let aql = run_op(
            &HashGroupOp::new(
                "a",
                vec![0],
                vec![AggSpec::new(AggKind::Avg, 1)],
                GroupMode::Complete,
            ),
            data.clone(),
        );
        assert_eq!(aql[0][1], Value::Null);
        let sql = run_op(
            &HashGroupOp::new(
                "s",
                vec![0],
                vec![AggSpec::sql(AggKind::Avg, 1)],
                GroupMode::Complete,
            ),
            data,
        );
        assert_eq!(sql[0][1], Value::Double(15.0));
    }

    #[test]
    fn listify_collects_group_members() {
        let op = HashGroupOp::new(
            "l",
            vec![0],
            vec![AggSpec::new(AggKind::Listify, 1)],
            GroupMode::Complete,
        );
        let mut out = run_op(&op, rows(&[(1, 10), (1, 20), (2, 5)]));
        out.sort_by(|a, b| a[0].total_cmp(&b[0]));
        let l = out[0][1].as_list().unwrap();
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn empty_input_scalar_agg() {
        let out = run_op(
            &ScalarAggOp::new(
                "e",
                vec![AggSpec::new(AggKind::Avg, 0), AggSpec::new(AggKind::Count, 0)],
                GroupMode::Complete,
            ),
            Vec::new(),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][0], Value::Null);
        assert_eq!(out[0][1], Value::Int64(0));
    }
}
