//! Join operators (§4.1): HybridHash (with Grace-style spilling),
//! NestedLoop, and the index nested-loop join selected by the
//! `/*+ indexnl */` hint (Query 14).
//!
//! The hash join works on *encoded* tuples throughout: hash-table keys are
//! the canonical `ordkey` encodings of the join-key values (byte equality
//! there is exactly ADM `total_cmp` equality, collapsing numeric widths),
//! buckets hold raw tuple encodings, output rows are built by byte-level
//! concatenation ([`concat_tuples_into`]), and Grace spill partitions are
//! files of raw tuple bytes hashed with the byte-level field hasher.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

use asterix_adm::{concat_tuples_into, encode_tuple, ordkey, TupleRef, Value};

use super::{OpCtx, OperatorDescriptor};
use crate::connector::OutputPort;
use crate::frame::{hash_encoded_fields, Tuple};
use crate::pipeline::{PipelineCtx, PipelineOp};
use crate::Result;

/// Join type: inner, or outer on the probe input (unmatched probe tuples
/// are emitted with nulls on the build side; the compiler arranges the
/// outer branch to be the probe).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    Inner,
    ProbeOuter,
}

/// The hash-table key of one encoded tuple: concatenated canonical
/// comparison-key encodings of the key fields. `None` when any key value
/// is NULL/MISSING (unknown keys never join) — detected from the leading
/// type tag without decoding.
fn join_key(r: &TupleRef<'_>, fields: &[usize]) -> Result<Option<Vec<u8>>> {
    let mut key = Vec::new();
    for &f in fields {
        let vr = r.field(f);
        if vr.is_unknown() {
            return Ok(None);
        }
        ordkey::encode_value_into(&mut key, &vr.to_value()?);
    }
    Ok(Some(key))
}

/// Encoded all-NULL padding row for ProbeOuter output.
fn null_pad(arity: usize) -> Vec<u8> {
    encode_tuple(&vec![Value::Null; arity])
}

/// Concatenate two encoded tuples and push the result.
fn push_concat(out: &mut OutputPort, scratch: &mut Vec<u8>, b: &[u8], p: &[u8]) -> Result<()> {
    scratch.clear();
    concat_tuples_into(scratch, &TupleRef::new(b)?, &TupleRef::new(p)?);
    out.push_encoded(scratch)
}

static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

fn spill_path(tag: &str) -> PathBuf {
    let n = SPILL_SEQ.fetch_add(1, AtomicOrdering::Relaxed);
    std::env::temp_dir().join(format!("asterix-join-{}-{tag}-{n}.part", std::process::id()))
}

/// Owns one spill file on disk and deletes it on drop, so every exit from
/// the join — clean merge, early `?`, panicking thread — removes its temp
/// files. Same RAII shape as the sort operator's RunReader.
struct SpillGuard {
    path: PathBuf,
}

impl Drop for SpillGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

struct SpillWriter {
    w: BufWriter<File>,
    guard: SpillGuard,
    count: usize,
}

impl SpillWriter {
    fn create(tag: &str) -> Result<SpillWriter> {
        let path = spill_path(tag);
        let w = BufWriter::new(File::create(&path)?);
        Ok(SpillWriter { w, guard: SpillGuard { path }, count: 0 })
    }

    /// Append one raw tuple encoding, length-prefixed.
    fn write(&mut self, bytes: &[u8]) -> Result<()> {
        self.w.write_all(&(bytes.len() as u32).to_le_bytes())?;
        self.w.write_all(bytes)?;
        self.count += 1;
        Ok(())
    }

    fn finish(mut self) -> Result<(SpillGuard, usize)> {
        self.w.flush()?;
        Ok((self.guard, self.count))
    }
}

fn read_spill(spill: &SpillGuard) -> Result<Vec<Vec<u8>>> {
    let mut r = BufReader::new(File::open(&spill.path)?);
    let mut out = Vec::new();
    loop {
        let mut len_buf = [0u8; 4];
        match r.read_exact(&mut len_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        let mut buf = vec![0u8; len];
        r.read_exact(&mut buf)?;
        out.push(buf);
    }
    Ok(out)
}

/// Hybrid hash join. Input 0 is the Build activity (blocking), input 1 the
/// Probe activity, mirroring the two-activity expansion described in §4.1.
/// When the build side exceeds the memory budget, both sides are
/// Grace-partitioned to disk by join-key hash and joined partition-wise.
pub struct HybridHashJoinOp {
    label: String,
    pub build_keys: Vec<usize>,
    pub probe_keys: Vec<usize>,
    pub join_type: JoinType,
    pub mem_budget: usize,
    /// Grace fan-out when spilling.
    pub fanout: usize,
    /// Runtime-filter hub slot this partition publishes to at end of
    /// build, when jobgen wired one (inner joins only — an outer probe
    /// must keep unmatched tuples, so pruning them upstream would be
    /// wrong).
    pub filter_id: Option<usize>,
}

impl HybridHashJoinOp {
    pub fn new(
        label: impl Into<String>,
        build_keys: Vec<usize>,
        probe_keys: Vec<usize>,
        join_type: JoinType,
    ) -> HybridHashJoinOp {
        HybridHashJoinOp {
            label: label.into(),
            build_keys,
            probe_keys,
            join_type,
            mem_budget: 64 << 20,
            fanout: 16,
            filter_id: None,
        }
    }

    pub fn with_budget(mut self, bytes: usize) -> Self {
        self.mem_budget = bytes.max(1024);
        self
    }

    /// Publish a runtime filter over the build-side key hashes through the
    /// executor's hub at end of build.
    pub fn with_runtime_filter(mut self, id: usize) -> Self {
        self.filter_id = Some(id);
        self
    }

    fn join_in_memory(
        &self,
        build: Vec<Vec<u8>>,
        probe: Vec<Vec<u8>>,
        build_arity: usize,
        out: &mut OutputPort,
    ) -> Result<()> {
        let mut table: HashMap<Vec<u8>, Vec<Vec<u8>>> = HashMap::new();
        for bytes in build {
            if let Some(k) = join_key(&TupleRef::new(&bytes)?, &self.build_keys)? {
                table.entry(k).or_default().push(bytes);
            }
        }
        let pad = null_pad(build_arity);
        let mut scratch = Vec::new();
        for p in probe {
            let matches =
                join_key(&TupleRef::new(&p)?, &self.probe_keys)?.and_then(|k| table.get(&k));
            match matches {
                Some(ms) => {
                    for b in ms {
                        push_concat(out, &mut scratch, b, &p)?;
                    }
                }
                None if self.join_type == JoinType::ProbeOuter => {
                    push_concat(out, &mut scratch, &pad, &p)?;
                }
                None => {}
            }
        }
        Ok(())
    }
}

impl OperatorDescriptor for HybridHashJoinOp {
    fn name(&self) -> String {
        format!("hybrid-hash-join {}", self.label)
    }

    fn blocking_inputs(&self) -> Vec<usize> {
        vec![0] // the Build activity
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let env = ctx.env.clone();
        let partition = ctx.partition;
        let OpCtx { inputs, outputs, .. } = ctx;
        // Build phase: buffer encoded tuples until budget, then switch to
        // Grace spilling.
        let mut build_mem: Vec<Vec<u8>> = Vec::new();
        let mut bytes = 0usize;
        let mut spilled = false;
        let mut build_writers: Vec<SpillWriter> = Vec::new();
        let budget = self.mem_budget;
        let fanout = self.fanout.max(2);
        let build_keys = self.build_keys.clone();
        let label = self.label.clone();
        let mut build_arity = 0usize;
        // Runtime filter: collect every build tuple's key hash (unknown
        // keys included — they can only make the filter pass more, never
        // less, and probe-side unknowns are dropped at the join anyway).
        let collect_filter = self.filter_id.is_some();
        let mut filter_hashes: Vec<u64> = Vec::new();
        {
            let input0 = &mut inputs[0];
            input0.for_each_raw(|enc| {
                let r = TupleRef::new(enc)?;
                build_arity = build_arity.max(r.field_count());
                if collect_filter {
                    filter_hashes.push(hash_encoded_fields(&r, &build_keys));
                }
                if !spilled {
                    bytes += enc.len() + 32;
                    build_mem.push(enc.to_vec());
                    if bytes >= budget {
                        spilled = true;
                        for i in 0..fanout {
                            build_writers.push(SpillWriter::create(&format!("{label}-b{i}"))?);
                        }
                        for enc in build_mem.drain(..) {
                            let h = hash_encoded_fields(&TupleRef::new(&enc)?, &build_keys)
                                as usize
                                % fanout;
                            build_writers[h].write(&enc)?;
                        }
                    }
                } else {
                    let h = hash_encoded_fields(&r, &build_keys) as usize % fanout;
                    build_writers[h].write(enc)?;
                }
                Ok(true)
            })?;
        }
        // End of build: publish this partition's filter before touching the
        // probe input, so probe-side producers start pruning as early as
        // possible. An empty build partition publishes too — its filter
        // rejects every key, which is exactly right for an inner join.
        if let Some(id) = self.filter_id {
            env.filters.publish(id, partition, &filter_hashes);
            drop(filter_hashes);
        }

        let out = &mut outputs[0];
        if !spilled {
            // Pure in-memory: stream the probe side.
            let mut table: HashMap<Vec<u8>, Vec<Vec<u8>>> = HashMap::new();
            for enc in build_mem {
                if let Some(k) = join_key(&TupleRef::new(&enc)?, &self.build_keys)? {
                    table.entry(k).or_default().push(enc);
                }
            }
            let probe_keys = &self.probe_keys;
            let join_type = self.join_type;
            let pad = null_pad(build_arity);
            let mut scratch = Vec::new();
            inputs[1].for_each_raw(|p| {
                let k = join_key(&TupleRef::new(p)?, probe_keys)?;
                match k.and_then(|k| table.get(&k)) {
                    Some(ms) => {
                        for b in ms {
                            push_concat(out, &mut scratch, b, p)?;
                        }
                    }
                    None if join_type == JoinType::ProbeOuter => {
                        push_concat(out, &mut scratch, &pad, p)?;
                    }
                    None => {}
                }
                Ok(true)
            })?;
            return Ok(());
        }

        // Grace: partition the probe side the same way, then join pairwise.
        // Each part's SpillGuard deletes its file when the pair goes out of
        // scope — after a clean merge, on an early `?`, or on panic alike.
        let build_parts: Vec<(SpillGuard, usize)> =
            build_writers.into_iter().map(|w| w.finish()).collect::<Result<_>>()?;
        let mut probe_writers: Vec<SpillWriter> = (0..fanout)
            .map(|i| SpillWriter::create(&format!("{label}-p{i}")))
            .collect::<Result<_>>()?;
        let probe_keys = self.probe_keys.clone();
        inputs[1].for_each_raw(|enc| {
            let h = hash_encoded_fields(&TupleRef::new(enc)?, &probe_keys) as usize % fanout;
            probe_writers[h].write(enc)?;
            Ok(true)
        })?;
        let probe_parts: Vec<(SpillGuard, usize)> =
            probe_writers.into_iter().map(|w| w.finish()).collect::<Result<_>>()?;
        for ((bspill, bcount), (pspill, pcount)) in build_parts.into_iter().zip(probe_parts) {
            if pcount == 0 && (bcount == 0 || self.join_type == JoinType::Inner) {
                continue;
            }
            let build = read_spill(&bspill)?;
            let probe = read_spill(&pspill)?;
            self.join_in_memory(build, probe, build_arity, out)?;
        }
        Ok(())
    }
}

/// Block nested-loop join with an arbitrary predicate over (build, probe)
/// tuple pairs — the fallback for non-equijoins (spatial joins without an
/// index, Query 5's inner pairing).
pub struct NestedLoopJoinOp {
    label: String,
    pred: Arc<dyn Fn(&Tuple, &Tuple) -> Result<bool> + Send + Sync>,
    pub join_type: JoinType,
}

impl NestedLoopJoinOp {
    pub fn new(
        label: impl Into<String>,
        pred: impl Fn(&Tuple, &Tuple) -> Result<bool> + Send + Sync + 'static,
        join_type: JoinType,
    ) -> NestedLoopJoinOp {
        NestedLoopJoinOp { label: label.into(), pred: Arc::new(pred), join_type }
    }
}

impl OperatorDescriptor for NestedLoopJoinOp {
    fn name(&self) -> String {
        format!("nested-loop-join {}", self.label)
    }

    fn blocking_inputs(&self) -> Vec<usize> {
        vec![0]
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { inputs, outputs, .. } = ctx;
        // The predicate needs decoded values; keep the encoding alongside
        // so matched rows are emitted by byte concatenation, not cloning.
        let mut build: Vec<(Tuple, Vec<u8>)> = Vec::new();
        inputs[0].for_each_raw(|enc| {
            build.push((asterix_adm::decode_tuple(enc)?, enc.to_vec()));
            Ok(true)
        })?;
        let build_arity = build.iter().map(|(t, _)| t.len()).max().unwrap_or(0);
        let pad = null_pad(build_arity);
        let out = &mut outputs[0];
        let pred = &self.pred;
        let join_type = self.join_type;
        let mut scratch = Vec::new();
        inputs[1].for_each_raw(|penc| {
            let p = asterix_adm::decode_tuple(penc)?;
            let mut matched = false;
            for (b, benc) in &build {
                if pred(b, &p)? {
                    matched = true;
                    push_concat(out, &mut scratch, benc, penc)?;
                }
            }
            if !matched && join_type == JoinType::ProbeOuter {
                push_concat(out, &mut scratch, &pad, penc)?;
            }
            Ok(true)
        })
    }
}

/// Index nested-loop join: for each input tuple, probe an index through a
/// callback and emit `input ++ match`. Selected by the `indexnl` hint
/// (Query 14) and used for all secondary-index access paths.
pub struct IndexNestedLoopJoinOp {
    label: String,
    probe: Arc<dyn Fn(&Tuple) -> Result<Vec<Tuple>> + Send + Sync>,
    pub join_type: JoinType,
    /// Arity of the index-side tuples (for ProbeOuter null padding).
    pub inner_arity: usize,
}

impl IndexNestedLoopJoinOp {
    pub fn new(
        label: impl Into<String>,
        probe: impl Fn(&Tuple) -> Result<Vec<Tuple>> + Send + Sync + 'static,
        join_type: JoinType,
        inner_arity: usize,
    ) -> IndexNestedLoopJoinOp {
        IndexNestedLoopJoinOp {
            label: label.into(),
            probe: Arc::new(probe),
            join_type,
            inner_arity,
        }
    }
}

impl OperatorDescriptor for IndexNestedLoopJoinOp {
    fn name(&self) -> String {
        format!("index-nested-loop-join {}", self.label)
    }

    fn fusible(&self) -> bool {
        true
    }

    fn pipeline(
        &self,
        _ctx: PipelineCtx,
        next: Box<dyn PipelineOp>,
    ) -> Result<Box<dyn PipelineOp>> {
        Ok(Box::new(IndexNlStage {
            probe: Arc::clone(&self.probe),
            join_type: self.join_type,
            pad: null_pad(self.inner_arity),
            scratch: Vec::new(),
            menc: Vec::new(),
            next,
        }))
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { inputs, outputs, .. } = ctx;
        let out = &mut outputs[0];
        let probe = &self.probe;
        let join_type = self.join_type;
        let pad = null_pad(self.inner_arity);
        let mut scratch = Vec::new();
        let mut menc = Vec::new();
        inputs[0].for_each_raw(|enc| {
            let t = asterix_adm::decode_tuple(enc)?;
            let matches = probe(&t)?;
            if matches.is_empty() && join_type == JoinType::ProbeOuter {
                push_concat(out, &mut scratch, enc, &pad)?;
            } else {
                // The outer tuple's bytes are reused per match; only the
                // index-side row needs encoding.
                for m in matches {
                    menc.clear();
                    asterix_adm::encode_tuple_into(&mut menc, &m);
                    push_concat(out, &mut scratch, enc, &menc)?;
                }
            }
            Ok(true)
        })
    }
}

struct IndexNlStage {
    probe: Arc<dyn Fn(&Tuple) -> Result<Vec<Tuple>> + Send + Sync>,
    join_type: JoinType,
    pad: Vec<u8>,
    scratch: Vec<u8>,
    menc: Vec<u8>,
    next: Box<dyn PipelineOp>,
}

impl PipelineOp for IndexNlStage {
    fn push(&mut self, bytes: &[u8]) -> Result<()> {
        let t = asterix_adm::decode_tuple(bytes)?;
        let matches = (self.probe)(&t)?;
        let outer = TupleRef::new(bytes)?;
        if matches.is_empty() && self.join_type == JoinType::ProbeOuter {
            self.scratch.clear();
            concat_tuples_into(&mut self.scratch, &outer, &TupleRef::new(&self.pad)?);
            self.next.push(&self.scratch)?;
            return Ok(());
        }
        for m in matches {
            self.menc.clear();
            asterix_adm::encode_tuple_into(&mut self.menc, &m);
            self.scratch.clear();
            concat_tuples_into(&mut self.scratch, &outer, &TupleRef::new(&self.menc)?);
            self.next.push(&self.scratch)?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.next.flush()
    }

    fn finish(&mut self) -> Result<()> {
        self.next.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connector::{wire, ConnectorKind, ExchangeConfig};
    use crate::ops::OpCtx;

    fn run_join(op: &dyn OperatorDescriptor, build: Vec<Tuple>, probe: Vec<Tuple>) -> Vec<Tuple> {
        let x = ExchangeConfig::default();
        let (mut b_out, b_in) = wire(&ConnectorKind::OneToOne, 1, 1, &|_| 0, &x).unwrap();
        let (mut p_out, p_in) = wire(&ConnectorKind::OneToOne, 1, 1, &|_| 0, &x).unwrap();
        let (r_out, mut r_in) = wire(&ConnectorKind::OneToOne, 1, 1, &|_| 0, &x).unwrap();
        for t in build {
            b_out[0].push(t).unwrap();
        }
        for t in probe {
            p_out[0].push(t).unwrap();
        }
        drop(b_out);
        drop(p_out);
        let mut inputs = b_in;
        inputs.extend(p_in);
        let mut ctx = OpCtx {
            partition: 0,
            nparts: 1,
            node: 0,
            inputs,
            outputs: r_out,
            env: Default::default(),
        };
        op.run(&mut ctx).unwrap();
        drop(ctx);
        r_in[0].collect().unwrap()
    }

    fn kv(k: i64, v: &str) -> Tuple {
        vec![Value::Int64(k), Value::string(v)]
    }

    #[test]
    fn hash_join_inner() {
        let op = HybridHashJoinOp::new("j", vec![0], vec![0], JoinType::Inner);
        let out = run_join(
            &op,
            vec![kv(1, "a"), kv(2, "b"), kv(2, "b2")],
            vec![kv(2, "x"), kv(3, "y"), kv(2, "z")],
        );
        assert_eq!(out.len(), 4); // 2 build rows × 2 probe rows for key 2
        for row in &out {
            assert_eq!(row.len(), 4);
            assert_eq!(row[0], row[2]);
        }
    }

    #[test]
    fn hash_join_probe_outer() {
        let op = HybridHashJoinOp::new("j", vec![0], vec![0], JoinType::ProbeOuter);
        let mut out = run_join(&op, vec![kv(1, "a")], vec![kv(1, "x"), kv(9, "y")]);
        out.sort_by(|a, b| a[2].total_cmp(&b[2]));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0][0], Value::Int64(1)); // matched
        assert_eq!(out[1][0], Value::Null); // unmatched probe padded
        assert_eq!(out[1][2], Value::Int64(9));
    }

    #[test]
    fn null_keys_never_join() {
        let op = HybridHashJoinOp::new("j", vec![0], vec![0], JoinType::Inner);
        let out = run_join(
            &op,
            vec![vec![Value::Null, Value::string("b")]],
            vec![vec![Value::Null, Value::string("p")]],
        );
        assert!(out.is_empty());
    }

    #[test]
    fn mixed_width_keys_join_by_value() {
        // Int32(7) on the build side joins Int64(7) / Double(7.0) probes:
        // the canonical key encoding collapses numeric widths just like
        // total_cmp equality did at the Value level.
        let op = HybridHashJoinOp::new("j", vec![0], vec![0], JoinType::Inner);
        let out = run_join(
            &op,
            vec![vec![Value::Int32(7), Value::string("b")]],
            vec![
                vec![Value::Int64(7), Value::string("p1")],
                vec![Value::Double(7.0), Value::string("p2")],
                vec![Value::Int64(8), Value::string("p3")],
            ],
        );
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn grace_spill_matches_in_memory() {
        let build: Vec<Tuple> = (0..2000i64).map(|i| kv(i % 500, "b")).collect();
        let probe: Vec<Tuple> = (0..1000i64).map(|i| kv(i % 500, "p")).collect();
        let big = HybridHashJoinOp::new("m", vec![0], vec![0], JoinType::Inner);
        let expected = run_join(&big, build.clone(), probe.clone()).len();
        let tiny = HybridHashJoinOp::new("s", vec![0], vec![0], JoinType::Inner).with_budget(2048);
        let got = run_join(&tiny, build, probe).len();
        assert_eq!(got, expected);
        assert_eq!(got, 2000 * 2); // each probe key matches 4 build rows; 1000 probes * 4
    }

    #[test]
    fn grace_spill_cleans_temp_files_on_error() {
        // Kill the downstream before running so the merge phase errors out
        // (DownstreamClosed) after the spill files exist, then check that
        // the SpillGuards removed every temp file for this label.
        let label = "guardtest";
        let build: Vec<Tuple> = (0..2000i64).map(|i| kv(i % 500, "b")).collect();
        let probe: Vec<Tuple> = (0..1000i64).map(|i| kv(i % 500, "p")).collect();
        let op = HybridHashJoinOp::new(label, vec![0], vec![0], JoinType::Inner).with_budget(2048);
        let x = ExchangeConfig::default();
        let (mut b_out, b_in) = wire(&ConnectorKind::OneToOne, 1, 1, &|_| 0, &x).unwrap();
        let (mut p_out, p_in) = wire(&ConnectorKind::OneToOne, 1, 1, &|_| 0, &x).unwrap();
        let (r_out, r_in) = wire(&ConnectorKind::OneToOne, 1, 1, &|_| 0, &x).unwrap();
        for t in build {
            b_out[0].push(t).unwrap();
        }
        for t in probe {
            p_out[0].push(t).unwrap();
        }
        drop(b_out);
        drop(p_out);
        drop(r_in); // downstream is gone
        let mut inputs = b_in;
        inputs.extend(p_in);
        let mut ctx = OpCtx {
            partition: 0,
            nparts: 1,
            node: 0,
            inputs,
            outputs: r_out,
            env: Default::default(),
        };
        let res = op.run(&mut ctx);
        assert!(res.is_err(), "merge into a closed downstream must error");
        drop(ctx);
        let marker = format!("asterix-join-{}-{label}", std::process::id());
        let leaked: Vec<String> = std::fs::read_dir(std::env::temp_dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(&marker))
            .collect();
        assert!(leaked.is_empty(), "leaked spill files: {leaked:?}");
    }

    #[test]
    fn cancelled_grace_join_cleans_temp_files() {
        use asterix_rm::CancellationToken;

        // Like grace_spill_cleans_temp_files_on_error, but the unwind comes
        // from a cancellation token instead of a dead downstream: both
        // sides Grace-partition to disk, then the pairwise merge hits the
        // cancelled output port, and every SpillGuard must delete its file.
        let label = "canceljoin";
        let build: Vec<Tuple> = (0..2000i64).map(|i| kv(i % 500, "b")).collect();
        let probe: Vec<Tuple> = (0..1000i64).map(|i| kv(i % 500, "p")).collect();
        let op = HybridHashJoinOp::new(label, vec![0], vec![0], JoinType::Inner).with_budget(2048);
        let x = ExchangeConfig::default();
        let (mut b_out, b_in) = wire(&ConnectorKind::OneToOne, 1, 1, &|_| 0, &x).unwrap();
        let (mut p_out, p_in) = wire(&ConnectorKind::OneToOne, 1, 1, &|_| 0, &x).unwrap();
        let token = CancellationToken::new();
        let out_cfg = ExchangeConfig { cancel: Some(token.clone()), ..Default::default() };
        let (r_out, r_in) = wire(&ConnectorKind::OneToOne, 1, 1, &|_| 0, &out_cfg).unwrap();
        for t in build {
            b_out[0].push(t).unwrap();
        }
        for t in probe {
            p_out[0].push(t).unwrap();
        }
        drop(b_out);
        drop(p_out);
        token.cancel();
        let mut inputs = b_in;
        inputs.extend(p_in);
        let mut ctx = OpCtx {
            partition: 0,
            nparts: 1,
            node: 0,
            inputs,
            outputs: r_out,
            env: Default::default(),
        };
        let res = op.run(&mut ctx);
        assert!(
            matches!(res, Err(crate::HyracksError::Cancelled)),
            "expected Cancelled, got {res:?}"
        );
        drop(ctx);
        drop(r_in);
        let marker = format!("asterix-join-{}-{label}", std::process::id());
        let leaked: Vec<String> = std::fs::read_dir(std::env::temp_dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(&marker))
            .collect();
        assert!(leaked.is_empty(), "leaked spill files after cancellation: {leaked:?}");
    }

    #[test]
    fn nested_loop_with_inequality() {
        let op =
            NestedLoopJoinOp::new("nl", |b, p| Ok(b[0].total_cmp(&p[0]).is_lt()), JoinType::Inner);
        let out = run_join(&op, vec![kv(1, "b1"), kv(5, "b5")], vec![kv(3, "p3"), kv(6, "p6")]);
        // b1<p3, b1<p6, b5<p6 → 3 rows.
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn index_nested_loop_probes_callback() {
        let op = IndexNestedLoopJoinOp::new(
            "ix",
            |t| {
                let k = t[0].as_i64().unwrap();
                if k % 2 == 0 {
                    Ok(vec![vec![Value::string(format!("even-{k}"))]])
                } else {
                    Ok(vec![])
                }
            },
            JoinType::ProbeOuter,
            1,
        );
        // Index NL join takes a single input (the outer); probe is a
        // callback. Feed outer tuples through input 0.
        let x = ExchangeConfig::default();
        let (mut b_out, b_in) = wire(&ConnectorKind::OneToOne, 1, 1, &|_| 0, &x).unwrap();
        let (r_out, mut r_in) = wire(&ConnectorKind::OneToOne, 1, 1, &|_| 0, &x).unwrap();
        for i in 0..4i64 {
            b_out[0].push(vec![Value::Int64(i)]).unwrap();
        }
        drop(b_out);
        let mut ctx = OpCtx {
            partition: 0,
            nparts: 1,
            node: 0,
            inputs: b_in,
            outputs: r_out,
            env: Default::default(),
        };
        op.run(&mut ctx).unwrap();
        drop(ctx);
        let out = r_in[0].collect().unwrap();
        assert_eq!(out.len(), 4);
        assert_eq!(out[0][1], Value::string("even-0"));
        assert_eq!(out[1][1], Value::Null); // odd, padded
    }
}
