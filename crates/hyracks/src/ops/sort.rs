//! External sort (§4.1's sort operator; Figure 6 sorts primary keys
//! between the secondary- and primary-index searches).
//!
//! Run generation + k-way merge over *encoded* tuples: each arriving tuple
//! keeps its wire encoding and gets a cached **normalized key** — the
//! concatenated, length-prefixed `asterix_adm::ordkey` encodings of its
//! sort-key values. All comparisons during sorting, spilling, and merging
//! are segmented `memcmp`s over those key bytes (with per-key descending
//! reversal); tuple values are never re-decoded to compare. Spill runs
//! store the raw `(key, tuple)` byte pairs, so merging reads compare and
//! forward without any deserialization. The run-generation side is a
//! blocking activity, so a sort splits its job into stages exactly as §4.1
//! describes.

use std::cmp::Ordering;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

use asterix_adm::{ordkey, TupleRef, Value};

use super::{EvalFn, OpCtx, OperatorDescriptor};
use crate::connector::Comparator;
use crate::frame::Tuple;
use crate::Result;

/// One sort key: an expression and a direction. Keys built with
/// [`SortKey::field`] carry the field position, letting the sort read the
/// key straight out of the encoded tuple instead of decoding every field.
#[derive(Clone)]
pub struct SortKey {
    pub expr: EvalFn,
    pub descending: bool,
    /// Fast path: the key is plain field access at this position.
    field: Option<usize>,
}

impl SortKey {
    pub fn asc(expr: EvalFn) -> SortKey {
        SortKey { expr, descending: false, field: None }
    }

    pub fn desc(expr: EvalFn) -> SortKey {
        SortKey { expr, descending: true, field: None }
    }

    /// Sort by field position helper.
    pub fn field(idx: usize, descending: bool) -> SortKey {
        SortKey {
            expr: Arc::new(move |t: &Tuple| Ok(t.get(idx).cloned().unwrap_or(Value::Missing))),
            descending,
            field: Some(idx),
        }
    }
}

/// Append the normalized key of one encoded tuple: per sort key, a `u32`
/// length prefix followed by the order-preserving `ordkey` encoding of the
/// key value. Field-position keys read the single field from the encoding;
/// expression keys decode the tuple once, lazily.
fn norm_key_into(out: &mut Vec<u8>, keys: &[SortKey], bytes: &[u8]) -> Result<()> {
    let r = TupleRef::new(bytes)?;
    let mut decoded: Option<Tuple> = None;
    for k in keys {
        let v = match k.field {
            Some(i) => r.field_value(i)?,
            None => {
                if decoded.is_none() {
                    decoded = Some(r.decode()?);
                }
                // Expression failure sorts as MISSING, matching the
                // historical comparator's behavior.
                (k.expr)(decoded.as_ref().unwrap()).unwrap_or(Value::Missing)
            }
        };
        let pos = out.len();
        out.extend_from_slice(&[0u8; 4]);
        ordkey::encode_value_into(out, &v);
        let seg = (out.len() - pos - 4) as u32;
        out[pos..pos + 4].copy_from_slice(&seg.to_le_bytes());
    }
    Ok(())
}

/// Segmented memcmp of two normalized keys, reversing per-key descending
/// segments. `ordkey` encodings order exactly as `Value::total_cmp`, so
/// this is the byte-level equivalent of comparing the decoded key values.
fn cmp_norm(keys: &[SortKey], a: &[u8], b: &[u8]) -> Ordering {
    let (mut pa, mut pb) = (0usize, 0usize);
    for k in keys {
        let la = u32::from_le_bytes(a[pa..pa + 4].try_into().unwrap()) as usize;
        let lb = u32::from_le_bytes(b[pb..pb + 4].try_into().unwrap()) as usize;
        let sa = &a[pa + 4..pa + 4 + la];
        let sb = &b[pb + 4..pb + 4 + lb];
        pa += 4 + la;
        pb += 4 + lb;
        let ord = sa.cmp(sb);
        let ord = if k.descending { ord.reverse() } else { ord };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Build a comparator over *encoded* tuples from sort keys (shared with
/// the merging connector so repartitioned sorted streams stay sorted).
/// Each call derives both tuples' normalized keys and compares the bytes —
/// the same ordering the sort itself uses.
pub fn sort_comparator(keys: &[SortKey]) -> Comparator {
    let keys: Vec<SortKey> = keys.to_vec();
    Arc::new(move |a: &[u8], b: &[u8]| {
        let mut ka = Vec::new();
        let mut kb = Vec::new();
        if norm_key_into(&mut ka, &keys, a).is_err() || norm_key_into(&mut kb, &keys, b).is_err() {
            return Ordering::Equal;
        }
        cmp_norm(&keys, &ka, &kb)
    })
}

/// One buffered row: cached normalized key plus the tuple's wire encoding.
struct Row {
    key: Vec<u8>,
    bytes: Vec<u8>,
}

static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

fn spill_path(label: &str) -> PathBuf {
    let n = SPILL_SEQ.fetch_add(1, AtomicOrdering::Relaxed);
    std::env::temp_dir().join(format!("asterix-sort-{}-{}-{}.run", std::process::id(), label, n))
}

/// Owns one spill run on disk and deletes it on drop — the same RAII shape
/// as the grace join's guards, so *every* exit from the sort (clean merge,
/// error `?`, cancellation unwind, panic) removes its temp files.
struct SpillGuard {
    path: PathBuf,
}

impl Drop for SpillGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Spill a sorted batch: `[u32 key_len][key][u32 tuple_len][tuple]` per
/// row — raw bytes in, raw bytes out, nothing re-encoded. The returned
/// guard owns the file from the moment it exists on disk.
fn write_run(label: &str, rows: &[Row]) -> Result<SpillGuard> {
    let guard = SpillGuard { path: spill_path(label) };
    let mut w = BufWriter::new(File::create(&guard.path)?);
    for row in rows {
        w.write_all(&(row.key.len() as u32).to_le_bytes())?;
        w.write_all(&row.key)?;
        w.write_all(&(row.bytes.len() as u32).to_le_bytes())?;
        w.write_all(&row.bytes)?;
    }
    w.flush()?;
    Ok(guard)
}

struct RunReader {
    reader: BufReader<File>,
    /// Keeps the run file alive while reading; deletes it when the reader
    /// goes away.
    _guard: SpillGuard,
    head: Option<Row>,
}

impl RunReader {
    fn open(guard: SpillGuard) -> Result<RunReader> {
        let reader = BufReader::new(File::open(&guard.path)?);
        let mut r = RunReader { reader, _guard: guard, head: None };
        r.advance()?;
        Ok(r)
    }

    fn read_chunk(&mut self) -> Result<Option<Vec<u8>>> {
        let mut len_buf = [0u8; 4];
        match self.reader.read_exact(&mut len_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        let mut buf = vec![0u8; len];
        self.reader.read_exact(&mut buf)?;
        Ok(Some(buf))
    }

    fn advance(&mut self) -> Result<()> {
        self.head = match self.read_chunk()? {
            None => None,
            Some(key) => {
                let bytes = self
                    .read_chunk()?
                    .ok_or_else(|| crate::HyracksError::Operator("truncated sort run".into()))?;
                Some(Row { key, bytes })
            }
        };
        Ok(())
    }
}

/// External sort operator.
pub struct SortOp {
    label: String,
    keys: Vec<SortKey>,
    /// In-memory budget (approximate bytes) before a run is spilled.
    pub mem_budget: usize,
}

impl SortOp {
    pub fn new(label: impl Into<String>, keys: Vec<SortKey>) -> SortOp {
        SortOp { label: label.into(), keys, mem_budget: 32 << 20 }
    }

    pub fn with_budget(mut self, bytes: usize) -> SortOp {
        self.mem_budget = bytes.max(1024);
        self
    }
}

impl OperatorDescriptor for SortOp {
    fn name(&self) -> String {
        format!("sort {}", self.label)
    }

    fn blocking_inputs(&self) -> Vec<usize> {
        vec![0] // run generation consumes everything before merge emits
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { inputs, outputs, env, .. } = ctx;
        let trace = env.trace.clone();
        let keys = &self.keys;
        let mut mem: Vec<Row> = Vec::new();
        let mut mem_bytes = 0usize;
        let mut runs: Vec<SpillGuard> = Vec::new();
        let budget = self.mem_budget;
        let label = self.label.clone();
        inputs[0].for_each_raw(|bytes| {
            let mut key = Vec::new();
            norm_key_into(&mut key, keys, bytes)?;
            mem_bytes += key.len() + bytes.len() + 64;
            mem.push(Row { key, bytes: bytes.to_vec() });
            if mem_bytes >= budget {
                let spill = trace.span("sort.spill_run");
                mem.sort_by(|a, b| cmp_norm(keys, &a.key, &b.key));
                runs.push(write_run(&label, &mem)?);
                spill.finish();
                mem.clear();
                mem_bytes = 0;
            }
            Ok(true)
        })?;
        mem.sort_by(|a, b| cmp_norm(keys, &a.key, &b.key));
        let out = &mut outputs[0];
        if runs.is_empty() {
            for row in &mem {
                out.push_encoded(&row.bytes)?;
            }
            return Ok(());
        }
        // K-way merge of spilled runs plus the in-memory tail; all head
        // comparisons are normalized-key memcmps.
        let mut readers: Vec<RunReader> = Vec::with_capacity(runs.len());
        for guard in runs {
            readers.push(RunReader::open(guard)?);
        }
        let mut mem_iter = mem.into_iter().peekable();
        loop {
            // Choose the smallest head among runs and the memory iterator.
            let mut best: Option<usize> = None; // index into readers
            for (i, r) in readers.iter().enumerate() {
                if let Some(h) = &r.head {
                    match best {
                        None => best = Some(i),
                        Some(b) => {
                            let bh = readers[b].head.as_ref().unwrap();
                            if cmp_norm(keys, &h.key, &bh.key) == Ordering::Less {
                                best = Some(i);
                            }
                        }
                    }
                }
            }
            let take_mem = match (best, mem_iter.peek()) {
                (None, Some(_)) => true,
                (Some(b), Some(m)) => {
                    cmp_norm(keys, &m.key, &readers[b].head.as_ref().unwrap().key) == Ordering::Less
                }
                (_, None) => false,
            };
            if take_mem {
                out.push_encoded(&mem_iter.next().unwrap().bytes)?;
            } else if let Some(b) = best {
                let row = readers[b].head.take().unwrap();
                readers[b].advance()?;
                out.push_encoded(&row.bytes)?;
            } else {
                break;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connector::{wire, ConnectorKind, ExchangeConfig};
    use asterix_adm::Value;

    fn run_sort(op: SortOp, input: Vec<Tuple>) -> Vec<Tuple> {
        let x = ExchangeConfig::default();
        let (mut in_outs, ins) = wire(&ConnectorKind::OneToOne, 1, 1, &|_| 0, &x).unwrap();
        let (outs, mut res_ins) = wire(&ConnectorKind::OneToOne, 1, 1, &|_| 0, &x).unwrap();
        for t in input {
            in_outs[0].push(t).unwrap();
        }
        drop(in_outs);
        let mut ctx = OpCtx {
            partition: 0,
            nparts: 1,
            node: 0,
            inputs: ins,
            outputs: outs,
            env: Default::default(),
        };
        op.run(&mut ctx).unwrap();
        drop(ctx);
        res_ins[0].collect().unwrap()
    }

    #[test]
    fn in_memory_sort() {
        let input: Vec<Tuple> =
            [3i64, 1, 4, 1, 5, 9, 2, 6].iter().map(|&i| vec![Value::Int64(i)]).collect();
        let out = run_sort(SortOp::new("k", vec![SortKey::field(0, false)]), input);
        let got: Vec<i64> = out.iter().map(|t| t[0].as_i64().unwrap()).collect();
        assert_eq!(got, vec![1, 1, 2, 3, 4, 5, 6, 9]);
    }

    #[test]
    fn descending_and_secondary_keys() {
        let input: Vec<Tuple> = vec![
            vec![Value::Int64(1), Value::string("b")],
            vec![Value::Int64(2), Value::string("a")],
            vec![Value::Int64(1), Value::string("a")],
        ];
        let out = run_sort(
            SortOp::new("k", vec![SortKey::field(0, true), SortKey::field(1, false)]),
            input,
        );
        let got: Vec<(i64, String)> = out
            .iter()
            .map(|t| (t[0].as_i64().unwrap(), t[1].as_str().unwrap().to_string()))
            .collect();
        assert_eq!(got, vec![(2, "a".into()), (1, "a".into()), (1, "b".into())]);
    }

    #[test]
    fn expression_keys_fall_back_to_decoded_eval() {
        // Non-field keys can't use the single-field fast path; they decode
        // the tuple and evaluate — sorting by -x ascending is x descending.
        let input: Vec<Tuple> = [3i64, 1, 4, 1, 5].iter().map(|&i| vec![Value::Int64(i)]).collect();
        let neg: EvalFn = Arc::new(|t: &Tuple| Ok(Value::Int64(-t[0].as_i64().unwrap_or(0))));
        let out = run_sort(SortOp::new("k", vec![SortKey::asc(neg)]), input);
        let got: Vec<i64> = out.iter().map(|t| t[0].as_i64().unwrap()).collect();
        assert_eq!(got, vec![5, 4, 3, 1, 1]);
    }

    #[test]
    fn mixed_numeric_widths_sort_by_value() {
        // The normalized key is canonical across numeric widths: Int32,
        // Int64 and Double interleave by numeric value, not by type tag.
        let input: Vec<Tuple> = vec![
            vec![Value::Double(2.5)],
            vec![Value::Int32(3)],
            vec![Value::Int64(1)],
            vec![Value::Double(1.5)],
        ];
        let out = run_sort(SortOp::new("k", vec![SortKey::field(0, false)]), input);
        let got: Vec<f64> = out.iter().map(|t| t[0].as_f64().unwrap()).collect();
        assert_eq!(got, vec![1.0, 1.5, 2.5, 3.0]);
    }

    #[test]
    fn spilling_sort_matches_in_memory() {
        let input: Vec<Tuple> = (0..5000i64)
            .map(|i| vec![Value::Int64((i * 7919) % 5000), Value::string("pad-pad-pad")])
            .collect();
        let tiny = SortOp::new("spill", vec![SortKey::field(0, false)]).with_budget(4096);
        let out = run_sort(tiny, input.clone());
        assert_eq!(out.len(), 5000);
        let got: Vec<i64> = out.iter().map(|t| t[0].as_i64().unwrap()).collect();
        let mut expect: Vec<i64> = input.iter().map(|t| t[0].as_i64().unwrap()).collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn sort_is_blocking_activity() {
        let op = SortOp::new("x", vec![SortKey::field(0, false)]);
        assert_eq!(op.blocking_inputs(), vec![0]);
    }

    #[test]
    fn cancelled_spilling_sort_cleans_temp_files() {
        use asterix_rm::CancellationToken;

        // Cancellation fires after run generation has spilled to disk but
        // before the merge can emit: the sort must surface `Cancelled` (the
        // merge's first push is a cancellation point) and its SpillGuards
        // must remove every run file on the unwind.
        let label = "cancelsort";
        let input: Vec<Tuple> = (0..5000i64)
            .map(|i| vec![Value::Int64((i * 7919) % 5000), Value::string("pad-pad-pad")])
            .collect();
        // Feed side carries no token so the accumulate phase runs (and
        // spills); only the output side observes the cancellation.
        let feed = ExchangeConfig::default();
        let (mut in_outs, ins) = wire(&ConnectorKind::OneToOne, 1, 1, &|_| 0, &feed).unwrap();
        let token = CancellationToken::new();
        let out_cfg = ExchangeConfig { cancel: Some(token.clone()), ..Default::default() };
        let (outs, res_ins) = wire(&ConnectorKind::OneToOne, 1, 1, &|_| 0, &out_cfg).unwrap();
        for t in input {
            in_outs[0].push(t).unwrap();
        }
        drop(in_outs);
        token.cancel();
        let op = SortOp::new(label, vec![SortKey::field(0, false)]).with_budget(4096);
        let mut ctx = OpCtx {
            partition: 0,
            nparts: 1,
            node: 0,
            inputs: ins,
            outputs: outs,
            env: Default::default(),
        };
        let res = op.run(&mut ctx);
        assert!(
            matches!(res, Err(crate::HyracksError::Cancelled)),
            "expected Cancelled, got {res:?}"
        );
        drop(ctx);
        drop(res_ins);
        let marker = format!("asterix-sort-{}-{label}", std::process::id());
        let leaked: Vec<String> = std::fs::read_dir(std::env::temp_dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(&marker))
            .collect();
        assert!(leaked.is_empty(), "leaked sort runs after cancellation: {leaked:?}");
    }
}
