//! External sort (§4.1's sort operator; Figure 6 sorts primary keys
//! between the secondary- and primary-index searches).
//!
//! Run generation + k-way merge: tuples accumulate in memory until the
//! budget is exceeded, each full batch is sorted and spilled to a run file,
//! and the final pass merges the in-memory batch with all runs. The
//! run-generation side is a blocking activity, so a sort splits its job
//! into stages exactly as §4.1 describes.

use std::cmp::Ordering;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

use asterix_adm::{serde as adm_serde, Value};

use super::{EvalFn, OpCtx, OperatorDescriptor};
use crate::connector::Comparator;
use crate::frame::Tuple;
use crate::Result;

/// One sort key: an expression and a direction.
#[derive(Clone)]
pub struct SortKey {
    pub expr: EvalFn,
    pub descending: bool,
}

impl SortKey {
    pub fn asc(expr: EvalFn) -> SortKey {
        SortKey { expr, descending: false }
    }

    pub fn desc(expr: EvalFn) -> SortKey {
        SortKey { expr, descending: true }
    }

    /// Sort by field position helper.
    pub fn field(idx: usize, descending: bool) -> SortKey {
        SortKey {
            expr: Arc::new(move |t: &Tuple| {
                Ok(t.get(idx).cloned().unwrap_or(Value::Missing))
            }),
            descending,
        }
    }
}

/// Build a tuple comparator from sort keys (shared with the merging
/// connector so repartitioned sorted streams stay sorted).
pub fn sort_comparator(keys: &[SortKey]) -> Comparator {
    let keys = keys.to_vec();
    Arc::new(move |a: &Tuple, b: &Tuple| {
        for k in &keys {
            let va = (k.expr)(a).unwrap_or(Value::Missing);
            let vb = (k.expr)(b).unwrap_or(Value::Missing);
            let ord = va.total_cmp(&vb);
            let ord = if k.descending { ord.reverse() } else { ord };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    })
}

static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

fn spill_path(label: &str) -> PathBuf {
    let n = SPILL_SEQ.fetch_add(1, AtomicOrdering::Relaxed);
    std::env::temp_dir().join(format!(
        "asterix-sort-{}-{}-{}.run",
        std::process::id(),
        label,
        n
    ))
}

fn write_run(path: &PathBuf, tuples: &[Tuple]) -> Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for t in tuples {
        let v = Value::ordered_list(t.clone());
        let bytes = adm_serde::encode(&v);
        w.write_all(&(bytes.len() as u32).to_le_bytes())?;
        w.write_all(&bytes)?;
    }
    w.flush()?;
    Ok(())
}

struct RunReader {
    reader: BufReader<File>,
    path: PathBuf,
    head: Option<Tuple>,
}

impl RunReader {
    fn open(path: PathBuf) -> Result<RunReader> {
        let reader = BufReader::new(File::open(&path)?);
        let mut r = RunReader { reader, path, head: None };
        r.advance()?;
        Ok(r)
    }

    fn advance(&mut self) -> Result<()> {
        let mut len_buf = [0u8; 4];
        match self.reader.read_exact(&mut len_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                self.head = None;
                return Ok(());
            }
            Err(e) => return Err(e.into()),
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        let mut buf = vec![0u8; len];
        self.reader.read_exact(&mut buf)?;
        let v = adm_serde::decode(&buf)
            .map_err(|e| crate::HyracksError::Operator(format!("corrupt sort run: {e}")))?;
        self.head = v.as_list().map(|items| items.to_vec());
        Ok(())
    }
}

impl Drop for RunReader {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// External sort operator.
pub struct SortOp {
    label: String,
    keys: Vec<SortKey>,
    /// In-memory budget (approximate bytes) before a run is spilled.
    pub mem_budget: usize,
}

impl SortOp {
    pub fn new(label: impl Into<String>, keys: Vec<SortKey>) -> SortOp {
        SortOp { label: label.into(), keys, mem_budget: 32 << 20 }
    }

    pub fn with_budget(mut self, bytes: usize) -> SortOp {
        self.mem_budget = bytes.max(1024);
        self
    }
}

impl OperatorDescriptor for SortOp {
    fn name(&self) -> String {
        format!("sort {}", self.label)
    }

    fn blocking_inputs(&self) -> Vec<usize> {
        vec![0] // run generation consumes everything before merge emits
    }

    fn run(&self, ctx: &mut OpCtx) -> Result<()> {
        let OpCtx { inputs, outputs, .. } = ctx;
        let cmp = sort_comparator(&self.keys);
        let mut mem: Vec<Tuple> = Vec::new();
        let mut mem_bytes = 0usize;
        let mut runs: Vec<PathBuf> = Vec::new();
        let budget = self.mem_budget;
        let label = self.label.clone();
        inputs[0].for_each(|t| {
            mem_bytes += t.iter().map(|v| v.approx_size()).sum::<usize>() + 24;
            mem.push(t);
            if mem_bytes >= budget {
                mem.sort_by(|a, b| cmp(a, b));
                let path = spill_path(&label);
                write_run(&path, &mem)?;
                runs.push(path);
                mem.clear();
                mem_bytes = 0;
            }
            Ok(true)
        })?;
        mem.sort_by(|a, b| cmp(a, b));
        let out = &mut outputs[0];
        if runs.is_empty() {
            for t in mem {
                out.push(t)?;
            }
            return Ok(());
        }
        // K-way merge of spilled runs plus the in-memory tail.
        let mut readers: Vec<RunReader> = Vec::with_capacity(runs.len());
        for path in runs {
            readers.push(RunReader::open(path)?);
        }
        let mut mem_iter = mem.into_iter().peekable();
        loop {
            // Choose the smallest head among runs and the memory iterator.
            let mut best: Option<usize> = None; // index into readers
            for (i, r) in readers.iter().enumerate() {
                if let Some(h) = &r.head {
                    match best {
                        None => best = Some(i),
                        Some(b) => {
                            if cmp(h, readers[b].head.as_ref().unwrap()) == Ordering::Less {
                                best = Some(i);
                            }
                        }
                    }
                }
            }
            let take_mem = match (best, mem_iter.peek()) {
                (None, Some(_)) => true,
                (Some(b), Some(m)) => cmp(m, readers[b].head.as_ref().unwrap()) == Ordering::Less,
                (_, None) => false,
            };
            if take_mem {
                out.push(mem_iter.next().unwrap())?;
            } else if let Some(b) = best {
                let t = readers[b].head.take().unwrap();
                readers[b].advance()?;
                out.push(t)?;
            } else {
                break;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connector::{wire, ConnectorKind, ExchangeConfig};
    use asterix_adm::Value;

    fn run_sort(op: SortOp, input: Vec<Tuple>) -> Vec<Tuple> {
        let x = ExchangeConfig::default();
        let (mut in_outs, ins) = wire(&ConnectorKind::OneToOne, 1, 1, &|_| 0, &x).unwrap();
        let (outs, mut res_ins) = wire(&ConnectorKind::OneToOne, 1, 1, &|_| 0, &x).unwrap();
        for t in input {
            in_outs[0].push(t).unwrap();
        }
        drop(in_outs);
        let mut ctx = OpCtx { partition: 0, nparts: 1, node: 0, inputs: ins, outputs: outs };
        op.run(&mut ctx).unwrap();
        drop(ctx);
        res_ins[0].collect().unwrap()
    }

    #[test]
    fn in_memory_sort() {
        let input: Vec<Tuple> =
            [3i64, 1, 4, 1, 5, 9, 2, 6].iter().map(|&i| vec![Value::Int64(i)]).collect();
        let out = run_sort(SortOp::new("k", vec![SortKey::field(0, false)]), input);
        let got: Vec<i64> = out.iter().map(|t| t[0].as_i64().unwrap()).collect();
        assert_eq!(got, vec![1, 1, 2, 3, 4, 5, 6, 9]);
    }

    #[test]
    fn descending_and_secondary_keys() {
        let input: Vec<Tuple> = vec![
            vec![Value::Int64(1), Value::string("b")],
            vec![Value::Int64(2), Value::string("a")],
            vec![Value::Int64(1), Value::string("a")],
        ];
        let out = run_sort(
            SortOp::new("k", vec![SortKey::field(0, true), SortKey::field(1, false)]),
            input,
        );
        let got: Vec<(i64, String)> = out
            .iter()
            .map(|t| (t[0].as_i64().unwrap(), t[1].as_str().unwrap().to_string()))
            .collect();
        assert_eq!(
            got,
            vec![(2, "a".into()), (1, "a".into()), (1, "b".into())]
        );
    }

    #[test]
    fn spilling_sort_matches_in_memory() {
        let input: Vec<Tuple> = (0..5000i64)
            .map(|i| vec![Value::Int64((i * 7919) % 5000), Value::string("pad-pad-pad")])
            .collect();
        let tiny = SortOp::new("spill", vec![SortKey::field(0, false)]).with_budget(4096);
        let out = run_sort(tiny, input.clone());
        assert_eq!(out.len(), 5000);
        let got: Vec<i64> = out.iter().map(|t| t[0].as_i64().unwrap()).collect();
        let mut expect: Vec<i64> = input.iter().map(|t| t[0].as_i64().unwrap()).collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn sort_is_blocking_activity() {
        let op = SortOp::new("x", vec![SortKey::field(0, false)]);
        assert_eq!(op.blocking_inputs(), vec![0]);
    }
}
