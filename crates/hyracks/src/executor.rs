//! The job executor: wires connectors, spawns one thread per operator
//! partition, and propagates failures.
//!
//! This is the Node Controller side of §4.1 collapsed into one process:
//! every partition of every operator runs concurrently; blocking operators
//! (declared via `blocking_inputs`, the activity split) impose the stage
//! ordering implicitly by consuming their blocking inputs to completion
//! before emitting.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use asterix_obs::{Counter, TraceContext};

use crate::connector::{wire, ExchangeConfig, ExchangeStats, InputPort, OutputPort};
use crate::filter::{FilterFactory, FilterStats, RuntimeFilterHub};
use crate::frame::FramePool;
use crate::job::JobSpec;
use crate::ops::{OpCtx, OperatorDescriptor};
use crate::pipeline::{ExecEnv, FusedEdge, PipelineCtx, PipelineOp, PortSink};
use crate::profile::{JobProfile, PortMeter, ProfileBuilder};
use crate::{HyracksError, Result};

/// Execution settings for the simulated cluster.
#[derive(Clone)]
pub struct ExecutorConfig {
    /// Partitions hosted per simulated node (for locality-aware routing).
    pub partitions_per_node: usize,
    /// Per-channel bound on exchange frames in flight (§4.1's bounded frame
    /// buffers). Lower = tighter memory and earlier backpressure; higher =
    /// more pipeline slack. Minimum 1.
    pub frames_in_flight: usize,
    /// Flush an exchange frame once it holds this many tuples.
    pub tuples_per_frame: usize,
    /// Flush an exchange frame once its occupancy reaches this many bytes.
    pub frame_bytes: usize,
    /// Upper bound on the threads a single job may spawn. Jobs exceeding it
    /// are rejected up front with a clear error instead of exhausting the
    /// OS thread table mid-run. Under fusion a whole pipeline counts as one
    /// thread.
    pub max_threads: usize,
    /// Escape hatch: run every operator partition on its own thread with
    /// channels on every edge, as if no chain were fusible. For A/B
    /// comparisons and debugging; results must be identical either way.
    pub disable_fusion: bool,
    /// A/B switch mirroring `disable_fusion`: evaluate strictly per tuple,
    /// never batch-at-a-time (no frame-granular push, no ordkey predicate
    /// fast path, no batched source emission). Results must be identical
    /// either way.
    pub disable_vectorization: bool,
    /// A/B switch: runtime join filters are neither published nor
    /// consulted. Probe-side filter stages become pass-throughs; results
    /// must be identical either way (filters only drop tuples the join
    /// would discard anyway).
    pub disable_runtime_filters: bool,
    /// Builds the per-join key-membership test published at end-of-build.
    /// Hyracks carries no filter implementation of its own (the embedding
    /// system injects one — AsterixDB wires a bloom filter from its storage
    /// layer); `None` leaves runtime filters inert pass-throughs.
    pub filter_factory: Option<FilterFactory>,
    /// Shared counters for runtime-filter activity (filters published,
    /// tuples checked, tuples pruned) the embedder can register into its
    /// metrics registry.
    pub filter_stats: FilterStats,
    /// Cooperative cancellation token for the job. When set, every port
    /// push and frame receive is a cancellation point: once the token fires
    /// (explicit cancel or deadline), operator threads unwind with
    /// [`HyracksError::Cancelled`] through the same drain/cleanup paths as
    /// `DownstreamClosed`, and the job reports `Cancelled`.
    pub cancel: Option<asterix_rm::CancellationToken>,
    /// Tracing handle for the job. When enabled, every operator-partition
    /// thread records a span (children of this context's parent), with
    /// per-chain-member operator spans and exchange send-block spans
    /// nested beneath. Disabled by default — the untraced path costs one
    /// `Option` check per thread.
    pub trace: TraceContext,
    /// Live tuple-progress counter (the RM jobs table's view), bumped per
    /// delivered frame by every output port.
    pub progress: Option<Counter>,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            partitions_per_node: 1,
            frames_in_flight: 8,
            tuples_per_frame: crate::frame::FRAME_CAPACITY,
            frame_bytes: crate::frame::DEFAULT_FRAME_BYTES,
            max_threads: 512,
            disable_fusion: false,
            disable_vectorization: false,
            disable_runtime_filters: false,
            filter_factory: None,
            filter_stats: FilterStats::default(),
            cancel: None,
            trace: TraceContext::disabled(),
            progress: None,
        }
    }
}

impl std::fmt::Debug for ExecutorConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutorConfig")
            .field("partitions_per_node", &self.partitions_per_node)
            .field("frames_in_flight", &self.frames_in_flight)
            .field("tuples_per_frame", &self.tuples_per_frame)
            .field("frame_bytes", &self.frame_bytes)
            .field("max_threads", &self.max_threads)
            .field("disable_fusion", &self.disable_fusion)
            .field("disable_vectorization", &self.disable_vectorization)
            .field("disable_runtime_filters", &self.disable_runtime_filters)
            .field("filter_factory", &self.filter_factory.as_ref().map(|_| "<factory>"))
            .field("trace_enabled", &self.trace.is_enabled())
            .finish_non_exhaustive()
    }
}

/// Run a job to completion, returning the first operator error if any.
pub fn run_job(job: &JobSpec) -> Result<()> {
    run_job_with(job, &ExecutorConfig::default())
}

/// Run a job with explicit cluster configuration.
pub fn run_job_with(job: &JobSpec, cfg: &ExecutorConfig) -> Result<()> {
    run_job_with_stats(job, cfg, &Arc::new(ExchangeStats::new()))
}

/// Run a job, accumulating exchange counters (frames/tuples sent,
/// backpressure stalls, peak in-flight frames) into `stats` — the handle an
/// embedding system (or bench harness) keeps to report on the run.
pub fn run_job_with_stats(
    job: &JobSpec,
    cfg: &ExecutorConfig,
    stats: &Arc<ExchangeStats>,
) -> Result<()> {
    run_job_inner(job, cfg, stats, None).map(|_| ())
}

/// Run a job while collecting a per-operator [`JobProfile`]: every port of
/// every operator partition gets a tuple/frame/byte meter and every
/// partition's `run` is timed. Metering costs a little per tuple, so it is
/// opt-in — the unprofiled paths carry `None` meters and skip it entirely.
pub fn run_job_profiled(
    job: &JobSpec,
    cfg: &ExecutorConfig,
    stats: &Arc<ExchangeStats>,
) -> Result<JobProfile> {
    run_job_inner(job, cfg, stats, Some(ProfileBuilder::for_job(job)))
        .map(|p| p.expect("profiled run yields a profile"))
}

fn run_job_inner(
    job: &JobSpec,
    cfg: &ExecutorConfig,
    stats: &Arc<ExchangeStats>,
    mut profile: Option<ProfileBuilder>,
) -> Result<Option<JobProfile>> {
    // Fusion pass: collapse maximal same-partition OneToOne chains into
    // single push-driven pipelines (or run the identity plan when fusion is
    // disabled). Validates acyclicity as a side effect.
    let plan = if cfg.disable_fusion { job.unfused_plan()? } else { job.fusion_plan()? };
    let started = Instant::now();

    // Every pipeline partition gets its own thread, and ALL of them must
    // coexist for the duration of the job: stage ordering here is
    // implicit — a blocking operator (hash-join build, sort run generation)
    // simply consumes its blocking input to completion before emitting, so
    // its thread must be alive and consuming while every transitive
    // upstream thread is alive and producing. Running partitions through a
    // smaller worker pool would deadlock (a queued-but-unscheduled consumer
    // leaves its producers blocked on full channels forever). Hence a
    // *guard*, not a pool: jobs that would need more threads than
    // `max_threads` are rejected before anything is spawned. Fusion lowers
    // the count — a fused chain is one thread per partition.
    let total_threads = plan.total_threads();
    if total_threads > cfg.max_threads.max(1) {
        return Err(HyracksError::InvalidJob(format!(
            "job needs {total_threads} operator-partition threads, exceeding \
             ExecutorConfig::max_threads = {}; reduce partition counts or raise the cap",
            cfg.max_threads
        )));
    }
    stats.on_job_fusion(plan.fused_pipelines() as i64, plan.saved_threads() as i64);

    let ppn = cfg.partitions_per_node.max(1);
    let node_of = move |p: usize| p / ppn;
    let xcfg = ExchangeConfig {
        frames_in_flight: cfg.frames_in_flight.max(1),
        tuples_per_frame: cfg.tuples_per_frame.max(1),
        frame_bytes: cfg.frame_bytes.max(1),
        stats: Arc::clone(stats),
        pool: Arc::new(FramePool::new()),
        cancel: cfg.cancel.clone(),
        trace: cfg.trace.clone(),
        progress: cfg.progress.clone(),
    };

    // Job-wide execution environment: the vectorization switch plus a
    // runtime-filter hub with one slot per filter the job allocated.
    // Disabling runtime filters simply withholds the factory — publish
    // becomes a no-op and every consult passes tuples through.
    let factory = if cfg.disable_runtime_filters { None } else { cfg.filter_factory.clone() };
    let env = ExecEnv {
        vectorized: !cfg.disable_vectorization,
        tuples_per_frame: cfg.tuples_per_frame.max(1),
        filters: RuntimeFilterHub::new(job.nfilters(), factory, cfg.filter_stats.clone()),
        // Each thread swaps in its own labelled child context below.
        trace: TraceContext::disabled(),
    };

    // Wire every surviving connector: per source partition output ports,
    // per destination partition input ports. Fused edges get no channel at
    // all (empty port lists keep connector indexes aligned).
    let mut conn_outs: Vec<Vec<Option<OutputPort>>> = Vec::with_capacity(job.conns.len());
    let mut conn_ins: Vec<Vec<Option<InputPort>>> = Vec::with_capacity(job.conns.len());
    for (ci, c) in job.conns.iter().enumerate() {
        if plan.fused_conns[ci] {
            conn_outs.push(Vec::new());
            conn_ins.push(Vec::new());
            continue;
        }
        let n_src = job.ops[c.src.0].nparts;
        let n_dst = job.ops[c.dst.0].nparts;
        let (outs, ins) = wire(&c.kind, n_src, n_dst, &node_of, &xcfg)?;
        conn_outs.push(outs.into_iter().map(Some).collect());
        conn_ins.push(ins.into_iter().map(Some).collect());
    }

    // One thread per (chain, partition): the head operator runs its `run`
    // body; chain members after it run as push stages stacked onto the
    // head's output port. Build every pending thread before spawning any,
    // so an instantiation error cannot leave already-spawned threads
    // running against half-wired channels.
    struct PendingThread {
        name: String,
        desc: Arc<dyn OperatorDescriptor>,
        partition: usize,
        nparts: usize,
        node: usize,
        inputs: Vec<InputPort>,
        outputs: Vec<OutputPort>,
        /// Busy-time slots for every chain member (all get the pipeline's
        /// elapsed run time — they shared the thread).
        busy: Vec<Arc<parking_lot::Mutex<Duration>>>,
        /// Chain-member operator names, for per-operator trace spans
        /// (same sharing semantics as `busy`).
        op_names: Vec<String>,
        fused: bool,
    }

    let mut pending: Vec<PendingThread> = Vec::with_capacity(total_threads);
    for chain in &plan.chains {
        let head = chain.ops[0];
        let tail = *chain.ops.last().expect("chains are non-empty");
        let in_conns = job.inputs_of(head);
        let out_conns = job.outputs_of(tail);
        for p in 0..chain.nparts {
            let node = node_of(p);
            let mut inputs: Vec<InputPort> = in_conns
                .iter()
                .map(|&ci| conn_ins[ci][p].take().expect("input port taken twice"))
                .collect();
            let mut outputs: Vec<OutputPort> = out_conns
                .iter()
                .map(|&ci| conn_outs[ci][p].take().expect("output port taken twice"))
                .collect();
            // When profiling, meter every real port (in connector order)
            // and keep busy-time handles for every chain member.
            let mut busy: Vec<Arc<parking_lot::Mutex<Duration>>> = Vec::new();
            if let Some(pb) = profile.as_mut() {
                for port in inputs.iter_mut() {
                    let m = Arc::new(PortMeter::default());
                    port.set_meter(Arc::clone(&m));
                    pb.meters[head.0][p].inputs.push(m);
                }
                for port in outputs.iter_mut() {
                    let m = Arc::new(PortMeter::default());
                    port.set_meter(Arc::clone(&m));
                    pb.meters[tail.0][p].outputs.push(m);
                }
                for op in &chain.ops {
                    busy.push(Arc::clone(&pb.meters[op.0][p].busy));
                }
            }
            if chain.ops.len() > 1 {
                // Stack the push stages tail-first onto the tail's real
                // output port (or a discard sink when the chain ends the
                // job). Each interior edge gets a FusedEdge adapter that
                // meters tuples for the adjacent operators' profiles.
                let tail_port = outputs.pop().unwrap_or_else(OutputPort::sink);
                let mut next: Box<dyn PipelineOp> = Box::new(PortSink::new(tail_port));
                for idx in (1..chain.ops.len()).rev() {
                    let opid = chain.ops[idx];
                    let ctx =
                        PipelineCtx { partition: p, nparts: chain.nparts, node, env: env.clone() };
                    let stage = job.ops[opid.0].desc.pipeline(ctx, next)?;
                    let meters = match profile.as_mut() {
                        Some(pb) => {
                            let m_out = Arc::new(PortMeter::default());
                            let m_in = Arc::new(PortMeter::default());
                            pb.meters[chain.ops[idx - 1].0][p].outputs.push(Arc::clone(&m_out));
                            pb.meters[opid.0][p].inputs.push(Arc::clone(&m_in));
                            vec![m_out, m_in]
                        }
                        None => Vec::new(),
                    };
                    next = Box::new(FusedEdge::new(meters, stage));
                }
                outputs = vec![OutputPort::fused(next, xcfg.cancel.clone())];
            }
            if outputs.is_empty() {
                outputs.push(OutputPort::sink());
            }
            let desc = Arc::clone(&job.ops[head.0].desc);
            let op_names = if cfg.trace.is_enabled() {
                chain.ops.iter().map(|id| job.ops[id.0].desc.name().to_string()).collect()
            } else {
                Vec::new()
            };
            pending.push(PendingThread {
                name: format!("{}[{p}]", desc.name()),
                desc,
                partition: p,
                nparts: chain.nparts,
                node,
                inputs,
                outputs,
                busy,
                op_names,
                fused: chain.ops.len() > 1,
            });
        }
    }

    let mut handles = Vec::new();
    for pt in pending {
        let PendingThread {
            name,
            desc,
            partition,
            nparts,
            node,
            inputs,
            mut outputs,
            busy,
            op_names,
            fused,
        } = pt;
        let stats = Arc::clone(stats);
        let mut env = env.clone();
        let profiling = profile.is_some();
        // Per-thread trace context: a pipeline span labelled with the
        // partition, under which operator spans, send-block spans, and
        // spill spans nest. One clone + no-op span when tracing is off.
        let tctx = cfg.trace.with_label(&format!("p{partition}"));
        let span_name = name.clone();
        handles.push(
            thread::Builder::new()
                .name(name)
                .spawn(move || {
                    let run_started = Instant::now();
                    let tspan = tctx.span(&span_name);
                    let child = tspan.context();
                    if child.is_enabled() {
                        for out in outputs.iter_mut() {
                            out.set_trace(child.clone());
                        }
                        env.trace = child.clone();
                    }
                    let mut ctx = OpCtx { partition, nparts, node, inputs, outputs, env };
                    let result = desc.run(&mut ctx);
                    // Drain remaining input so upstream memory is freed
                    // even on early exit/error, then finish the fused
                    // stages (delivering their buffered output) before the
                    // ports drop and close.
                    for input in ctx.inputs.iter_mut() {
                        input.drain();
                    }
                    let mut fin: Result<()> = Ok(());
                    for out in ctx.outputs.iter_mut() {
                        if let Err(e) = out.finish_fused() {
                            if fin.is_ok() {
                                fin = Err(e);
                            }
                        }
                    }
                    let elapsed = run_started.elapsed();
                    if fused {
                        stats.on_pipeline_done(elapsed);
                    }
                    if profiling {
                        for b in &busy {
                            *b.lock() = elapsed;
                        }
                    }
                    if child.is_enabled() {
                        // One span per chain member, mirroring the busy
                        // meters: all share the thread, so all get the
                        // pipeline's elapsed time.
                        let elapsed_us = elapsed.as_micros() as u64;
                        for op in &op_names {
                            child.record(&format!("op:{op}"), tspan.start_us(), elapsed_us);
                        }
                    }
                    tspan.finish();
                    match (result, fin) {
                        (Ok(()), fin) => fin,
                        // A head stopped by a fused LIMIT is clean, but a
                        // real failure while finishing still surfaces.
                        (Err(HyracksError::DownstreamClosed), Err(e))
                            if !e.is_downstream_closed() =>
                        {
                            Err(e)
                        }
                        (result, _) => result,
                    }
                })
                .expect("spawn operator thread"),
        );
    }

    let mut first_err: Option<HyracksError> = None;
    for h in handles {
        match h.join() {
            Ok(Ok(())) => {}
            // A producer cut short because every consumer hung up (LIMIT
            // satisfied, etc.) is a clean early exit, not a job failure.
            Ok(Err(HyracksError::DownstreamClosed)) => {}
            Ok(Err(e)) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
            Err(_) => {
                if first_err.is_none() {
                    first_err = Some(HyracksError::Operator("operator thread panicked".into()));
                }
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(profile.map(|pb| pb.finish(job, started.elapsed()))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connector::ConnectorKind;
    use crate::ops::{
        AggKind, AggSpec, AssignOp, GroupMode, HashGroupOp, HybridHashJoinOp, JoinType, LimitOp,
        ScalarAggOp, SelectOp, SinkOp, SortKey, SortOp, SourceOp, UnionAllOp,
    };
    use asterix_adm::Value;
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn int_source(label: &str, per_partition: i64) -> Arc<SourceOp> {
        Arc::new(SourceOp::new(label.to_string(), move |p, _n, emit| {
            for i in 0..per_partition {
                emit(vec![Value::Int64(p as i64 * per_partition + i)])?;
            }
            Ok(())
        }))
    }

    fn collect_sink(job: &mut JobSpec) -> (crate::job::OperatorId, Arc<Mutex<Vec<Vec<Value>>>>) {
        let collector = Arc::new(Mutex::new(Vec::new()));
        let id = job.add(1, Arc::new(SinkOp::new(Arc::clone(&collector))));
        (id, collector)
    }

    #[test]
    fn scan_select_sink_pipeline() {
        let mut job = JobSpec::new();
        let src = job.add(4, int_source("scan", 100));
        let sel = job.add(
            4,
            Arc::new(SelectOp::new(
                "even",
                Arc::new(|t: &Vec<Value>| Ok(t[0].as_i64().unwrap() % 2 == 0)),
            )),
        );
        let (sink, collector) = collect_sink(&mut job);
        job.connect(ConnectorKind::OneToOne, src, sel);
        job.connect(ConnectorKind::MToNReplicating, sel, sink);
        run_job(&job).unwrap();
        let out = collector.lock();
        assert_eq!(out.len(), 200);
        assert!(out.iter().all(|t| t[0].as_i64().unwrap() % 2 == 0));
    }

    #[test]
    fn traced_run_emits_thread_and_operator_spans() {
        let trace = asterix_obs::TraceContext::new_trace(1024);
        let root = trace.span("execute");
        let mut job = JobSpec::new();
        let src = job.add(2, int_source("scan", 50));
        let sel = job.add(2, Arc::new(SelectOp::new("keep", Arc::new(|_t: &Vec<Value>| Ok(true)))));
        let (sink, collector) = collect_sink(&mut job);
        job.connect(ConnectorKind::OneToOne, src, sel);
        job.connect(ConnectorKind::MToNReplicating, sel, sink);
        let cfg = ExecutorConfig { trace: root.context(), ..Default::default() };
        run_job_with(&job, &cfg).unwrap();
        let root_id = root.span_id();
        root.finish();
        assert_eq!(collector.lock().len(), 100);
        let events = trace.sink().unwrap().events();
        // Every executor thread records a pipeline span under `execute`,
        // labelled with its partition.
        let threads: Vec<&asterix_obs::TraceEvent> = events
            .iter()
            .filter(|e| e.parent_id == root_id && !e.name.starts_with("op:"))
            .collect();
        assert_eq!(threads.len(), 3, "2 fused scan/select chains + 1 sink: {events:#?}");
        assert!(threads.iter().any(|e| e.label == "p0"));
        assert!(threads.iter().any(|e| e.label == "p1"));
        // Per-operator spans nest under their thread's span and cover every
        // chain member.
        let ops: Vec<&asterix_obs::TraceEvent> =
            events.iter().filter(|e| e.name.starts_with("op:")).collect();
        assert_eq!(ops.len(), 5, "2x(scan+select) + sink: {events:#?}");
        for op in &ops {
            assert!(threads.iter().any(|t| t.span_id == op.parent_id), "orphan op span {op:?}");
        }
        assert!(ops.iter().any(|e| e.name.contains("scan")));

        // The disabled default records nothing and changes nothing.
        let mut job2 = JobSpec::new();
        let s2 = job2.add(2, int_source("scan", 10));
        let (k2, c2) = collect_sink(&mut job2);
        job2.connect(ConnectorKind::MToNReplicating, s2, k2);
        run_job(&job2).unwrap();
        assert_eq!(c2.lock().len(), 20);
    }

    #[test]
    fn figure6_shape_local_global_agg() {
        // scan → assign(double it) → local avg → n:1 replicating → global avg
        let mut job = JobSpec::new();
        let src = job.add(3, int_source("scan", 10)); // values 0..30
        let assign = job.add(
            3,
            Arc::new(AssignOp::new(
                "x2",
                vec![Arc::new(|t: &Vec<Value>| {
                    asterix_adm::functions::arith('*', &t[0], &Value::Int64(2)).map_err(Into::into)
                })],
            )),
        );
        let local = job.add(
            3,
            Arc::new(ScalarAggOp::new(
                "avg",
                vec![AggSpec::new(AggKind::Avg, 1)],
                GroupMode::Partial,
            )),
        );
        let global = job.add(
            1,
            Arc::new(ScalarAggOp::new(
                "avg",
                vec![AggSpec::new(AggKind::Avg, 0)],
                GroupMode::Final,
            )),
        );
        let (sink, collector) = collect_sink(&mut job);
        job.connect(ConnectorKind::OneToOne, src, assign);
        job.connect(ConnectorKind::OneToOne, assign, local);
        job.connect(ConnectorKind::MToNReplicating, local, global);
        job.connect(ConnectorKind::OneToOne, global, sink);
        run_job(&job).unwrap();
        let out = collector.lock();
        assert_eq!(out.len(), 1);
        // avg of 2*(0..29) = 29.
        assert_eq!(out[0][0], Value::Double(29.0));
        // Stage analysis: global agg runs a stage after local agg.
        let stages = job.stages().unwrap();
        assert!(stages[global.0] > stages[assign.0]);
    }

    #[test]
    fn partitioned_group_by() {
        let mut job = JobSpec::new();
        let src = job.add(4, int_source("scan", 100)); // 0..400
                                                       // Local partial group by (i mod 10), then repartition by key, final.
        let keyed = job.add(
            4,
            Arc::new(AssignOp::new(
                "key",
                vec![Arc::new(|t: &Vec<Value>| Ok(Value::Int64(t[0].as_i64().unwrap() % 10)))],
            )),
        );
        let local = job.add(
            4,
            Arc::new(HashGroupOp::new(
                "local",
                vec![1],
                vec![AggSpec::new(AggKind::Count, 0), AggSpec::new(AggKind::Sum, 0)],
                GroupMode::Partial,
            )),
        );
        let global = job.add(
            2,
            Arc::new(HashGroupOp::new(
                "global",
                vec![0],
                vec![AggSpec::new(AggKind::Count, 1), AggSpec::new(AggKind::Sum, 2)],
                GroupMode::Final,
            )),
        );
        let (sink, collector) = collect_sink(&mut job);
        job.connect(ConnectorKind::OneToOne, src, keyed);
        job.connect(ConnectorKind::OneToOne, keyed, local);
        job.connect(ConnectorKind::MToNPartitioning { fields: vec![0] }, local, global);
        job.connect(ConnectorKind::MToNReplicating, global, sink);
        run_job(&job).unwrap();
        let mut out = collector.lock().clone();
        out.sort_by(|a, b| a[0].total_cmp(&b[0]));
        assert_eq!(out.len(), 10);
        for (k, row) in out.iter().enumerate() {
            assert_eq!(row[1], Value::Int64(40), "count of group {k}");
            // sum of {k, k+10, ..., k+390} = 40k + 10*(0+..+39)
            let expect = 40 * k as i64 + 10 * (39 * 40 / 2);
            assert_eq!(row[2], Value::Int64(expect), "sum of group {k}");
        }
    }

    #[test]
    fn distributed_hash_join() {
        let mut job = JobSpec::new();
        // Build: keys 0..50 twice; probe: keys 0..100 once.
        let build = job.add(
            2,
            Arc::new(SourceOp::new("build", |p, _n, emit| {
                for i in 0..50i64 {
                    emit(vec![Value::Int64(i), Value::string(format!("b{p}"))])?;
                }
                Ok(())
            })),
        );
        let probe = job.add(
            2,
            Arc::new(SourceOp::new("probe", |p, _n, emit| {
                for i in 0..50i64 {
                    emit(vec![Value::Int64(p as i64 * 50 + i), Value::string("p")])?;
                }
                Ok(())
            })),
        );
        let join =
            job.add(3, Arc::new(HybridHashJoinOp::new("j", vec![0], vec![0], JoinType::Inner)));
        let (sink, collector) = collect_sink(&mut job);
        job.connect(ConnectorKind::MToNPartitioning { fields: vec![0] }, build, join);
        job.connect(ConnectorKind::MToNPartitioning { fields: vec![0] }, probe, join);
        job.connect(ConnectorKind::MToNReplicating, join, sink);
        run_job(&job).unwrap();
        // Keys 0..50 exist on probe side once (from partition 0's range)
        // and build side twice (both partitions) → 100 result rows.
        assert_eq!(collector.lock().len(), 100);
    }

    #[test]
    fn sort_merge_connector_gives_global_order() {
        let mut job = JobSpec::new();
        let src = job.add(4, int_source("scan", 250)); // 0..1000 across parts
        let sort = job.add(4, Arc::new(SortOp::new("k", vec![SortKey::field(0, true)])));
        let merge = job.add(1, Arc::new(LimitOp { limit: 5, offset: 0 }));
        let (sink, collector) = collect_sink(&mut job);
        job.connect(ConnectorKind::OneToOne, src, sort);
        job.connect(
            ConnectorKind::MToNPartitioningMerging {
                fields: vec![],
                comparator: crate::ops::sort_comparator(&[SortKey::field(0, true)]),
            },
            sort,
            merge,
        );
        job.connect(ConnectorKind::OneToOne, merge, sink);
        run_job(&job).unwrap();
        let got: Vec<i64> = collector.lock().iter().map(|t| t[0].as_i64().unwrap()).collect();
        assert_eq!(got, vec![999, 998, 997, 996, 995]);
    }

    #[test]
    fn union_all_merges_branches() {
        let mut job = JobSpec::new();
        let a = job.add(2, int_source("a", 10));
        let b = job.add(2, int_source("b", 10));
        let u = job.add(2, Arc::new(UnionAllOp));
        let (sink, collector) = collect_sink(&mut job);
        job.connect(ConnectorKind::OneToOne, a, u);
        job.connect(ConnectorKind::OneToOne, b, u);
        job.connect(ConnectorKind::MToNReplicating, u, sink);
        run_job(&job).unwrap();
        assert_eq!(collector.lock().len(), 40);
    }

    #[test]
    fn operator_errors_propagate() {
        let mut job = JobSpec::new();
        let src = job.add(1, int_source("scan", 10));
        let bad = job.add(
            1,
            Arc::new(SelectOp::new(
                "boom",
                Arc::new(|_t: &Vec<Value>| Err(HyracksError::Operator("intentional".into()))),
            )),
        );
        let (sink, _collector) = collect_sink(&mut job);
        job.connect(ConnectorKind::OneToOne, src, bad);
        job.connect(ConnectorKind::OneToOne, bad, sink);
        let err = run_job(&job).unwrap_err();
        assert!(matches!(err, HyracksError::Operator(m) if m.contains("intentional")));
    }

    #[test]
    fn limit_stops_early_without_hanging() {
        let mut job = JobSpec::new();
        let src = job.add(1, int_source("scan", 100_000));
        let limit = job.add(1, Arc::new(LimitOp { limit: 3, offset: 1 }));
        let (sink, collector) = collect_sink(&mut job);
        job.connect(ConnectorKind::OneToOne, src, limit);
        job.connect(ConnectorKind::OneToOne, limit, sink);
        run_job(&job).unwrap();
        let got: Vec<i64> = collector.lock().iter().map(|t| t[0].as_i64().unwrap()).collect();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn runtime_filter_prunes_probe_tuples_before_exchange() {
        use crate::filter::FilterStats;
        use crate::ops::RuntimeFilterProbeOp;
        use std::collections::HashSet;

        let mut job = JobSpec::new();
        // Build side: keys 0..20 across 2 partitions.
        let build = job.add(2, int_source("build", 10));
        // Probe side: keys 0..40 — half have no build partner. The source
        // waits until every build partition has published its filter, so
        // the probe-side consult deterministically sees a cached filter
        // (in production it is best-effort and passes through until then).
        let stats = FilterStats::default();
        let gate = stats.clone();
        let probe = job.add(
            2,
            Arc::new(SourceOp::new("probe".to_string(), move |p, _n, emit| {
                while gate.published.get() < 2 {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                for i in 0..20i64 {
                    emit(vec![Value::Int64(p as i64 * 20 + i)])?;
                }
                Ok(())
            })),
        );
        let fid = job.alloc_runtime_filter();
        let consult = job.add(
            2,
            Arc::new(RuntimeFilterProbeOp { filter_id: fid, key_cols: vec![0], join_nparts: 2 }),
        );
        let join = job.add(
            2,
            Arc::new(
                HybridHashJoinOp::new("equi", vec![0], vec![0], JoinType::Inner)
                    .with_runtime_filter(fid),
            ),
        );
        let (sink, collector) = collect_sink(&mut job);
        job.connect(ConnectorKind::MToNPartitioning { fields: vec![0] }, build, join);
        job.connect(ConnectorKind::OneToOne, probe, consult);
        job.connect(ConnectorKind::MToNPartitioning { fields: vec![0] }, consult, join);
        job.connect(ConnectorKind::MToNReplicating, join, sink);

        // Exact-set factory: no false positives, so every partner-less
        // probe tuple is pruned before the exchange.
        let cfg = ExecutorConfig {
            filter_factory: Some(Arc::new(|hashes: &[u64]| {
                let set: HashSet<u64> = hashes.iter().copied().collect();
                Arc::new(move |h| set.contains(&h)) as crate::filter::KeyTest
            })),
            filter_stats: stats.clone(),
            ..Default::default()
        };
        run_job_with(&job, &cfg).unwrap();

        let mut got: Vec<i64> = collector.lock().iter().map(|t| t[0].as_i64().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..20).collect::<Vec<i64>>(), "join results unchanged by pruning");
        assert_eq!(stats.published.get(), 2, "one filter per build partition");
        assert_eq!(stats.checked.get(), 40, "every probe tuple consulted");
        assert_eq!(stats.pruned_tuples.get(), 20, "all partner-less probe tuples pruned");

        // Disabling runtime filters turns the consult into a pass-through:
        // same results, nothing checked or pruned.
        let stats_off = FilterStats::default();
        let off = ExecutorConfig {
            disable_runtime_filters: true,
            filter_factory: Some(Arc::new(|hashes: &[u64]| {
                let set: HashSet<u64> = hashes.iter().copied().collect();
                Arc::new(move |h| set.contains(&h)) as crate::filter::KeyTest
            })),
            filter_stats: stats_off.clone(),
            ..Default::default()
        };
        collector.lock().clear();
        run_job_with(&job, &off).unwrap();
        let mut got: Vec<i64> = collector.lock().iter().map(|t| t[0].as_i64().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..20).collect::<Vec<i64>>());
        assert_eq!(stats_off.published.get(), 0);
        assert_eq!(stats_off.pruned_tuples.get(), 0);
    }

    #[test]
    fn backpressure_bounds_buffered_frames() {
        use crate::connector::ExchangeStats;

        // A fast producer feeding a slow consumer: with unbounded channels
        // the whole 100k-tuple dataset would sit in exchange memory; with
        // bounded channels the in-flight frame count must stay within
        // frames_in_flight × channels.
        let mut job = JobSpec::new();
        let src = job.add(1, int_source("scan", 100_000));
        let slow = job.add(
            1,
            Arc::new(SelectOp::new(
                "slow",
                Arc::new(|t: &Vec<Value>| {
                    if t[0].as_i64().unwrap() % 4096 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    Ok(true)
                }),
            )),
        );
        let (sink, collector) = collect_sink(&mut job);
        job.connect(ConnectorKind::OneToOne, src, slow);
        job.connect(ConnectorKind::OneToOne, slow, sink);

        // Fusion would collapse this chain into one thread with no channel
        // at all; disable it — this test is about the channels.
        let cfg =
            ExecutorConfig { frames_in_flight: 2, disable_fusion: true, ..Default::default() };
        let stats = Arc::new(ExchangeStats::new());
        run_job_with_stats(&job, &cfg, &stats).unwrap();

        assert_eq!(collector.lock().len(), 100_000);
        // Two OneToOne connectors with one sender each. The gauge counts a
        // frame from the moment its sender enqueues it (over-counting
        // in-flight memory, never under-counting), so each sender blocked
        // in a full channel contributes one frame beyond the channel's
        // frames_in_flight budget.
        let bound = ((cfg.frames_in_flight + 1) * 2) as i64;
        assert!(
            stats.peak_buffered_frames() <= bound,
            "peak {} exceeds frames_in_flight bound {}",
            stats.peak_buffered_frames(),
            bound
        );
        assert!(stats.backpressure_stalls() > 0, "producer never felt backpressure");
        assert!(stats.frames_sent() >= (100_000 / crate::FRAME_CAPACITY as u64));
        assert_eq!(stats.tuples_sent(), 200_000); // both hops counted
    }

    #[test]
    fn producer_stops_early_when_downstream_closes() {
        use std::sync::atomic::{AtomicU64, Ordering};

        // Regression for the silent-discard bug: a producer feeding a
        // closed LIMIT must terminate early, not grind through all 100k
        // tuples into a void.
        let emitted = Arc::new(AtomicU64::new(0));
        let emitted2 = Arc::clone(&emitted);
        let mut job = JobSpec::new();
        let src = job.add(
            1,
            Arc::new(SourceOp::new("scan", move |_p, _n, emit| {
                for i in 0..100_000i64 {
                    emitted2.fetch_add(1, Ordering::Relaxed);
                    emit(vec![Value::Int64(i)])?;
                }
                Ok(())
            })),
        );
        let limit = job.add(1, Arc::new(LimitOp { limit: 3, offset: 0 }));
        let (sink, collector) = collect_sink(&mut job);
        job.connect(ConnectorKind::OneToOne, src, limit);
        job.connect(ConnectorKind::OneToOne, limit, sink);

        let cfg = ExecutorConfig { frames_in_flight: 2, ..Default::default() };
        run_job_with(&job, &cfg).unwrap();

        let got: Vec<i64> = collector.lock().iter().map(|t| t[0].as_i64().unwrap()).collect();
        assert_eq!(got, vec![0, 1, 2]);
        let n = emitted.load(Ordering::Relaxed);
        assert!(n < 20_000, "producer emitted {n} tuples after the consumer hung up");
    }

    #[test]
    fn thread_fanout_over_cap_is_rejected() {
        let mut job = JobSpec::new();
        let src = job.add(8, int_source("scan", 1));
        let (sink, _collector) = collect_sink(&mut job);
        job.connect(ConnectorKind::MToNReplicating, src, sink);
        let cfg = ExecutorConfig { max_threads: 4, ..Default::default() };
        let err = run_job_with(&job, &cfg).unwrap_err();
        assert!(
            matches!(&err, HyracksError::InvalidJob(m) if m.contains("max_threads")),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn fusion_collapses_chain_to_one_thread_per_partition() {
        // scan(4) → select(4) → assign(4) → MToNReplicating → sink(1):
        // the OneToOne chain fuses to one pipeline per partition, so the
        // whole job runs on 4 + 1 threads instead of 12 + 1.
        let build_job = || {
            let mut job = JobSpec::new();
            let src = job.add(4, int_source("scan", 100));
            let sel = job.add(
                4,
                Arc::new(SelectOp::new(
                    "even",
                    Arc::new(|t: &Vec<Value>| Ok(t[0].as_i64().unwrap() % 2 == 0)),
                )),
            );
            let asg = job.add(
                4,
                Arc::new(AssignOp::new(
                    "x2",
                    vec![Arc::new(|t: &Vec<Value>| Ok(Value::Int64(t[0].as_i64().unwrap() * 2)))],
                )),
            );
            let (sink, collector) = collect_sink(&mut job);
            job.connect(ConnectorKind::OneToOne, src, sel);
            job.connect(ConnectorKind::OneToOne, sel, asg);
            job.connect(ConnectorKind::MToNReplicating, asg, sink);
            (job, collector)
        };

        let (job, collector) = build_job();
        let plan = job.fusion_plan().unwrap();
        assert_eq!(plan.total_threads(), 5, "4 fused pipelines plus the sink");
        assert_eq!(plan.fused_pipelines(), 4);
        assert_eq!(plan.saved_threads(), 8);

        // The max_threads guard counts pipelines, so 5 suffices fused...
        let cfg = ExecutorConfig { max_threads: 5, ..Default::default() };
        let stats = Arc::new(ExchangeStats::new());
        run_job_with_stats(&job, &cfg, &stats).unwrap();
        assert_eq!(stats.pipelines_fused(), 4);
        assert_eq!(stats.fusion_saved_threads(), 8);
        let mut fused_rows = collector.lock().clone();

        // ...but the same job unfused needs 13 threads and is rejected.
        let (job2, collector2) = build_job();
        let tight = ExecutorConfig { max_threads: 5, disable_fusion: true, ..Default::default() };
        let err = run_job_with(&job2, &tight).unwrap_err();
        assert!(
            matches!(&err, HyracksError::InvalidJob(m) if m.contains("max_threads")),
            "unexpected error: {err}"
        );

        // Unfused with room to run: results must be bit-identical.
        let loose = ExecutorConfig { disable_fusion: true, ..Default::default() };
        run_job_with(&job2, &loose).unwrap();
        let mut unfused_rows = collector2.lock().clone();
        fused_rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
        unfused_rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
        assert_eq!(fused_rows.len(), 200);
        assert_eq!(fused_rows, unfused_rows);
    }

    #[test]
    fn fused_limit_stops_the_whole_chain_early() {
        use std::sync::atomic::{AtomicU64, Ordering};

        // LIMIT inside a fully fused chain: DownstreamClosed must unwind
        // through the push stack to the head and stop the scan early.
        let emitted = Arc::new(AtomicU64::new(0));
        let emitted2 = Arc::clone(&emitted);
        let mut job = JobSpec::new();
        let src = job.add(
            1,
            Arc::new(SourceOp::new("scan", move |_p, _n, emit| {
                for i in 0..100_000i64 {
                    emitted2.fetch_add(1, Ordering::Relaxed);
                    emit(vec![Value::Int64(i)])?;
                }
                Ok(())
            })),
        );
        let limit = job.add(1, Arc::new(LimitOp { limit: 3, offset: 1 }));
        let (sink, collector) = collect_sink(&mut job);
        job.connect(ConnectorKind::OneToOne, src, limit);
        job.connect(ConnectorKind::OneToOne, limit, sink);

        let plan = job.fusion_plan().unwrap();
        assert_eq!(plan.total_threads(), 1, "scan→limit→sink fuses to a single thread");
        run_job(&job).unwrap();
        let got: Vec<i64> = collector.lock().iter().map(|t| t[0].as_i64().unwrap()).collect();
        assert_eq!(got, vec![1, 2, 3]);
        let n = emitted.load(Ordering::Relaxed);
        assert_eq!(n, 4, "fused LIMIT stops the scan on the very next push");
    }

    #[test]
    fn profiled_run_reconciles_tuple_counts() {
        let mut job = JobSpec::new();
        let src = job.add(2, int_source("scan", 100));
        let sel = job.add(
            2,
            Arc::new(SelectOp::new(
                "even",
                Arc::new(|t: &Vec<Value>| Ok(t[0].as_i64().unwrap() % 2 == 0)),
            )),
        );
        let (sink, collector) = collect_sink(&mut job);
        job.connect(ConnectorKind::OneToOne, src, sel);
        job.connect(ConnectorKind::MToNReplicating, sel, sink);

        let stats = Arc::new(ExchangeStats::new());
        let profile = run_job_profiled(&job, &ExecutorConfig::default(), &stats).unwrap();

        assert_eq!(collector.lock().len(), 100);
        let scan = profile.operator(src).unwrap();
        assert_eq!(scan.tuples_out(), 200, "scan emits every source tuple");
        // scan→select fuses: the interior edge moves tuples, not frames.
        assert_eq!(scan.frames_out(), 0, "no frames cross a fused edge");
        assert_eq!(scan.bytes_out(), 0);
        let select = profile.operator(sel).unwrap();
        assert_eq!(select.tuples_in(), 200);
        assert_eq!(select.tuples_out(), 100, "selectivity 0.5");
        assert!(select.frames_out() > 0 && select.bytes_out() > 0, "real exchange after the chain");
        let sink_prof = profile.operator(sink).unwrap();
        assert_eq!(sink_prof.tuples_in(), 100, "sink input equals result cardinality");
        assert_eq!(sink_prof.partitions.len(), 1);
        assert!(profile.elapsed > std::time::Duration::ZERO);
        assert!(profile.describe().contains("result-sink"));
    }

    #[test]
    fn profiled_join_distinguishes_build_and_probe_ports() {
        let mut job = JobSpec::new();
        let build = job.add(
            2,
            Arc::new(SourceOp::new("build", |p, _n, emit| {
                for i in 0..50i64 {
                    emit(vec![Value::Int64(i), Value::string(format!("b{p}"))])?;
                }
                Ok(())
            })),
        );
        let probe = job.add(
            2,
            Arc::new(SourceOp::new("probe", |p, _n, emit| {
                for i in 0..50i64 {
                    emit(vec![Value::Int64(p as i64 * 50 + i), Value::string("p")])?;
                }
                Ok(())
            })),
        );
        let join =
            job.add(3, Arc::new(HybridHashJoinOp::new("j", vec![0], vec![0], JoinType::Inner)));
        let (sink, collector) = collect_sink(&mut job);
        job.connect(ConnectorKind::MToNPartitioning { fields: vec![0] }, build, join);
        job.connect(ConnectorKind::MToNPartitioning { fields: vec![0] }, probe, join);
        job.connect(ConnectorKind::MToNReplicating, join, sink);

        let stats = Arc::new(ExchangeStats::new());
        let profile = run_job_profiled(&job, &ExecutorConfig::default(), &stats).unwrap();

        assert_eq!(collector.lock().len(), 100);
        let jp = profile.operator(join).unwrap();
        assert_eq!(jp.tuples_in_port(0), 100, "build side sees both build partitions");
        assert_eq!(jp.tuples_in_port(1), 100, "probe side sees both probe partitions");
        assert_eq!(jp.tuples_out(), 100);
    }

    #[test]
    fn locality_aware_routing_respects_node_groups() {
        use crate::ops::PartitionMapOp;

        // 4 partitions over 2 nodes (partitions_per_node = 2). Each source
        // partition tags tuples with its own index; the receiving op tags
        // them with its index; every tuple must stay within the sender's
        // node group.
        let mut job = JobSpec::new();
        let src = job.add(
            4,
            Arc::new(SourceOp::new("scan", |p, _n, emit| {
                for i in 0..500i64 {
                    emit(vec![Value::Int64(i), Value::Int64(p as i64)])?;
                }
                Ok(())
            })),
        );
        let tag = job.add(
            4,
            Arc::new(PartitionMapOp::new("tag-dst", |p, t: &Vec<Value>| {
                let mut row = t.clone();
                row.push(Value::Int64(p as i64));
                Ok(vec![row])
            })),
        );
        let (sink, collector) = collect_sink(&mut job);
        job.connect(ConnectorKind::LocalityAwareMToNPartitioning { fields: vec![0] }, src, tag);
        job.connect(ConnectorKind::MToNReplicating, tag, sink);
        let cfg = ExecutorConfig { partitions_per_node: 2, ..Default::default() };
        run_job_with(&job, &cfg).unwrap();

        let out = collector.lock();
        assert_eq!(out.len(), 2000);
        for row in out.iter() {
            let src_p = row[1].as_i64().unwrap();
            let dst_p = row[2].as_i64().unwrap();
            assert_eq!(src_p / 2, dst_p / 2, "tuple crossed node groups: {row:?}");
        }
    }

    #[test]
    fn cancellation_token_stops_a_running_job() {
        use asterix_rm::CancellationToken;

        // An endless source can only stop when its output port observes the
        // token; the whole job must unwind with Cancelled instead of hanging.
        let mut job = JobSpec::new();
        let src = job.add(
            2,
            Arc::new(SourceOp::new("endless", |p, _n, emit| {
                let mut i = 0i64;
                loop {
                    emit(vec![Value::Int64(p as i64), Value::Int64(i)])?;
                    i += 1;
                }
            })),
        );
        let (sink, _collector) = collect_sink(&mut job);
        job.connect(ConnectorKind::MToNReplicating, src, sink);

        let token = CancellationToken::new();
        let cfg = ExecutorConfig { cancel: Some(token.clone()), ..Default::default() };
        let canceller = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(50));
                token.cancel();
            })
        };
        let res = run_job_with(&job, &cfg);
        canceller.join().unwrap();
        assert!(
            matches!(res, Err(crate::HyracksError::Cancelled)),
            "expected Cancelled, got {res:?}"
        );
    }

    #[test]
    fn deadline_expiry_cancels_a_running_job() {
        use asterix_rm::CancellationToken;

        // Same endless job, but nobody calls cancel(): the deadline baked
        // into the token fires on its own.
        let mut job = JobSpec::new();
        let src = job.add(
            1,
            Arc::new(SourceOp::new("endless", |_p, _n, emit| {
                let mut i = 0i64;
                loop {
                    emit(vec![Value::Int64(i)])?;
                    i += 1;
                }
            })),
        );
        let (sink, _collector) = collect_sink(&mut job);
        job.connect(ConnectorKind::OneToOne, src, sink);

        let token = CancellationToken::deadline_in(std::time::Duration::from_millis(50));
        let cfg = ExecutorConfig { cancel: Some(token), ..Default::default() };
        let res = run_job_with(&job, &cfg);
        assert!(
            matches!(res, Err(crate::HyracksError::Cancelled)),
            "expected Cancelled, got {res:?}"
        );
    }
}
