//! Push-style fused pipelines (§4.1's pipelined activity clusters).
//!
//! The executor's fusion pass ([`crate::job::JobSpec::fusion_plan`])
//! collapses maximal chains of operators linked by same-partition OneToOne
//! connectors into a single thread per partition. Inside such a chain the
//! head operator runs its normal `run` body, but its output port is backed
//! by a [`PipelineOp`] stack instead of a channel: every encoded tuple is
//! handed *synchronously* to the next operator's push stage — no frame
//! copy, no channel, no thread hand-off. The stack bottoms out in a
//! [`PortSink`] wrapping the tail operator's real output port, so channels
//! and backpressure are untouched at every surviving (repartition,
//! broadcast, merge, blocking) edge.
//!
//! Early-stop composes: a fused LIMIT returns
//! [`crate::HyracksError::DownstreamClosed`] from `push` once satisfied,
//! which unwinds through the chain to the head exactly like a closed
//! channel does in the unfused runtime.

use std::sync::Arc;

use asterix_obs::TraceContext;

use crate::connector::OutputPort;
use crate::filter::RuntimeFilterHub;
use crate::frame::{FrameBuf, FRAME_CAPACITY};
use crate::profile::PortMeter;
use crate::Result;

/// Job-wide execution environment threaded into every operator and push
/// stage: the vectorization A/B switch, the frame batching target, the
/// runtime-filter hub, and the per-thread trace context. Cheap to clone
/// (a few words plus `Arc` bumps).
#[derive(Clone)]
pub struct ExecEnv {
    /// Batch-at-a-time evaluation enabled (`disable_vectorization` off).
    pub vectorized: bool,
    /// Tuples a producer batches into one frame before pushing it.
    pub tuples_per_frame: usize,
    /// Runtime join filters published by build phases, consulted by
    /// probe-side producers.
    pub filters: Arc<RuntimeFilterHub>,
    /// Tracing handle for this executor thread; operators record coarse
    /// events (spill runs, send blocks) under it. Disabled (no-op) unless
    /// the job runs under a profiled/traced query.
    pub trace: TraceContext,
}

impl Default for ExecEnv {
    fn default() -> ExecEnv {
        ExecEnv {
            vectorized: true,
            tuples_per_frame: FRAME_CAPACITY,
            filters: RuntimeFilterHub::disabled(),
            trace: TraceContext::disabled(),
        }
    }
}

/// Per-partition context handed to an operator when it is instantiated as
/// a fused push stage (mirrors the fields of [`crate::ops::OpCtx`] that a
/// streaming operator may consult).
#[derive(Clone)]
pub struct PipelineCtx {
    pub partition: usize,
    pub nparts: usize,
    /// Simulated node hosting this partition.
    pub node: usize,
    /// Job-wide execution environment.
    pub env: ExecEnv,
}

/// One operator instantiated as a push stage inside a fused chain.
///
/// `push` receives one *encoded* tuple (the offset-prefixed
/// `asterix_adm::tuple` wire format) and forwards zero or more tuples to
/// the next stage. Returning [`crate::HyracksError::DownstreamClosed`]
/// tells the upstream producer to stop — the fused analogue of a closed
/// channel.
pub trait PipelineOp: Send {
    /// Process one encoded tuple.
    fn push(&mut self, bytes: &[u8]) -> Result<()>;

    /// Process a whole frame of encoded tuples at once — the vectorized
    /// hook. Stages that can evaluate batch-at-a-time (select via bitmap +
    /// compaction, project into a scratch frame) override this; the
    /// default degrades to per-tuple `push`, so correctness never depends
    /// on a stage being batch-aware.
    fn push_frame(&mut self, frame: &FrameBuf) -> Result<()> {
        for bytes in frame.iter() {
            self.push(bytes)?;
        }
        Ok(())
    }

    /// Propagate an early flush downstream (operators that flush to bound
    /// latency — feeds — reach the real tail port through this).
    fn flush(&mut self) -> Result<()>;

    /// End of input: emit any buffered state, then finish downstream.
    /// Called exactly once by the executor after the head's `run` returns
    /// (on success *and* on error, matching the unfused drop-flush path).
    fn finish(&mut self) -> Result<()>;
}

/// The metering adapter between two fused operators: counts tuples crossing
/// the fused edge on behalf of the upstream op's output port and the
/// downstream op's input port, then forwards. Frames and bytes stay zero —
/// no frame exists on a fused edge, which keeps "summed port-meter bytes ==
/// exchange bytes_sent" exact over the surviving channel edges.
pub(crate) struct FusedEdge {
    meters: Vec<Arc<PortMeter>>,
    next: Box<dyn PipelineOp>,
}

impl FusedEdge {
    pub(crate) fn new(meters: Vec<Arc<PortMeter>>, next: Box<dyn PipelineOp>) -> FusedEdge {
        FusedEdge { meters, next }
    }
}

impl PipelineOp for FusedEdge {
    fn push(&mut self, bytes: &[u8]) -> Result<()> {
        for m in &self.meters {
            m.tuples.inc();
        }
        self.next.push(bytes)
    }

    fn push_frame(&mut self, frame: &FrameBuf) -> Result<()> {
        let n = frame.tuple_count() as u64;
        for m in &self.meters {
            m.tuples.add(n);
        }
        self.next.push_frame(frame)
    }

    fn flush(&mut self) -> Result<()> {
        self.next.flush()
    }

    fn finish(&mut self) -> Result<()> {
        self.next.finish()
    }
}

/// Terminal stage: hands tuples to the tail operator's *real* output port
/// (a channel-backed exchange port, or a discard sink when the chain ends
/// the job). This is where fused data re-enters the frame/backpressure
/// world.
pub(crate) struct PortSink {
    port: OutputPort,
}

impl PortSink {
    pub(crate) fn new(port: OutputPort) -> PortSink {
        PortSink { port }
    }
}

impl PipelineOp for PortSink {
    fn push(&mut self, bytes: &[u8]) -> Result<()> {
        self.port.push_encoded(bytes)
    }

    fn push_frame(&mut self, frame: &FrameBuf) -> Result<()> {
        self.port.push_frame(frame)
    }

    fn flush(&mut self) -> Result<()> {
        self.port.flush()
    }

    fn finish(&mut self) -> Result<()> {
        self.port.flush()
    }
}

#[cfg(test)]
pub(crate) mod testing {
    use super::*;

    /// Records every pushed tuple; used by unit tests across the crate.
    #[derive(Default)]
    pub(crate) struct Recorder {
        pub rows: Vec<Vec<u8>>,
        pub finished: bool,
    }

    pub(crate) struct RecorderStage(pub std::sync::Arc<parking_lot::Mutex<Recorder>>);

    impl PipelineOp for RecorderStage {
        fn push(&mut self, bytes: &[u8]) -> Result<()> {
            self.0.lock().rows.push(bytes.to_vec());
            Ok(())
        }

        fn flush(&mut self) -> Result<()> {
            Ok(())
        }

        fn finish(&mut self) -> Result<()> {
            self.0.lock().finished = true;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testing::{Recorder, RecorderStage};
    use super::*;
    use asterix_adm::{encode_tuple, Value};
    use parking_lot::Mutex;

    #[test]
    fn fused_edge_meters_tuples_only() {
        let rec = Arc::new(Mutex::new(Recorder::default()));
        let m_out = Arc::new(PortMeter::default());
        let m_in = Arc::new(PortMeter::default());
        let mut edge = FusedEdge::new(
            vec![Arc::clone(&m_out), Arc::clone(&m_in)],
            Box::new(RecorderStage(Arc::clone(&rec))),
        );
        for i in 0..5i64 {
            edge.push(&encode_tuple(&[Value::Int64(i)])).unwrap();
        }
        edge.finish().unwrap();
        assert_eq!(rec.lock().rows.len(), 5);
        assert!(rec.lock().finished);
        for m in [&m_out, &m_in] {
            assert_eq!(m.tuples.get(), 5);
            assert_eq!(m.frames.get(), 0, "no frames exist on a fused edge");
            assert_eq!(m.bytes.get(), 0, "fused edges move no wire bytes");
        }
    }
}
