//! Minimal JSON string escaping (this crate hand-rolls its JSON output —
//! the container is offline, so no serde).

/// Escape a string for embedding inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }
}
