//! Minimal JSON support (this crate hand-rolls its JSON output — the
//! container is offline, so no serde): string escaping for the writers and
//! a small validating parser for tests and tooling that need to read the
//! hand-rolled output back (log capture assertions, the bench regression
//! gate, Chrome-trace validation).

/// Escape a string for embedding inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value. Object keys keep their document order (duplicates
/// are kept too — [`JsonValue::get`] returns the first match).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object (None for other variants/missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn json_parse(s: &str) -> Result<JsonValue, String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        members.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = parse_hex4(b, *pos + 1)?;
                        *pos += 4;
                        // Surrogate pairs: a high surrogate must be
                        // followed by \uXXXX with a low surrogate.
                        if (0xD800..0xDC00).contains(&hi) {
                            if b.get(*pos + 1) == Some(&b'\\') && b.get(*pos + 2) == Some(&b'u') {
                                let lo = parse_hex4(b, *pos + 3)?;
                                *pos += 6;
                                let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                out.push(char::from_u32(c).unwrap_or('\u{fffd}'));
                            } else {
                                out.push('\u{fffd}');
                            }
                        } else {
                            out.push(char::from_u32(hi).unwrap_or('\u{fffd}'));
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (b is valid UTF-8: it came from
                // &str).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(b: &[u8], at: usize) -> Result<u32, String> {
    let chunk = b.get(at..at + 4).ok_or("truncated \\u escape")?;
    let text = std::str::from_utf8(chunk).map_err(|e| e.to_string())?;
    u32::from_str_radix(text, 16).map_err(|_| format!("bad \\u escape at byte {at}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn parser_round_trips_escaped_output() {
        let nasty = "a\"b\\c\nd\t\u{1}é";
        let doc = format!("{{\"k\":\"{}\"}}", json_escape(nasty));
        let v = json_parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn parser_handles_nesting_numbers_and_literals() {
        let v = json_parse(
            "{\"a\":[1,-2.5,1e3,true,false,null],\"b\":{\"c\":[]},\"s\":\"\\u00e9\\ud83d\\ude00\"}",
        )
        .unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_f64(), Some(1000.0));
        assert_eq!(a[3], JsonValue::Bool(true));
        assert_eq!(a[5], JsonValue::Null);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_arr().unwrap().len(), 0);
        assert_eq!(v.get("s").unwrap().as_str(), Some("é😀"));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\"1}", "\"unterminated", "1 2", "{\"a\":}", "nul"] {
            assert!(json_parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
