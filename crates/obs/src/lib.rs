//! Dependency-free observability: an atomics-based metrics registry
//! (counters, gauges, fixed-bucket histograms), lightweight span tracing
//! over the monotonic clock, and a JSON-lines event log gated by the
//! `ASTERIX_LOG` environment filter.
//!
//! The paper's evaluation (Tables 3–4, Figure 6) is about *explaining*
//! where time goes — index vs. scan, build vs. probe, flush vs. merge.
//! Every layer of the reproduction hangs its counters off this crate so a
//! single registry snapshot (and the bench binaries' schema-versioned
//! JSON) can tell that story without external dependencies.

pub mod json;
pub mod log;
pub mod registry;
pub mod span;

pub use json::json_escape;
pub use log::{log_enabled, log_event, FieldValue};
pub use registry::{Counter, Gauge, Histogram, Metric, MetricValue, MetricsRegistry};
pub use span::{now_us, timed, Span, SpanRecord};
