//! Dependency-free observability: an atomics-based metrics registry
//! (counters, gauges, fixed-bucket histograms with quantiles), lightweight
//! span tracing over the monotonic clock, hierarchical ID-keyed query
//! traces, a continuous metrics sampler, and a JSON-lines event log gated
//! by the `ASTERIX_LOG` environment filter (overridable for tests).
//!
//! The paper's evaluation (Tables 3–4, Figure 6) is about *explaining*
//! where time goes — index vs. scan, build vs. probe, flush vs. merge.
//! Every layer of the reproduction hangs its counters off this crate so a
//! single registry snapshot (and the bench binaries' schema-versioned
//! JSON) can tell that story without external dependencies; [`trace`]
//! extends that to per-query span trees exportable as Chrome trace JSON.

pub mod json;
pub mod log;
pub mod registry;
pub mod sampler;
pub mod span;
pub mod trace;

pub use json::{json_escape, json_parse, JsonValue};
pub use log::{capture_logs, install_log_override, log_enabled, log_event, FieldValue, LogSink};
pub use registry::{Counter, Gauge, Histogram, Metric, MetricValue, MetricsRegistry};
pub use sampler::{SampleFrame, Sampler};
pub use span::{now_us, timed, Span, SpanRecord};
pub use trace::{TraceContext, TraceEvent, TraceSink, TraceSpan, DEFAULT_TRACE_CAPACITY};
