//! Atomics-based metric handles and the name-keyed registry.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`-backed
//! clones that subsystems create and update locally with relaxed atomics;
//! a [`MetricsRegistry`] *adopts* existing handles under stable names so a
//! single snapshot sees every layer's counters without those layers ever
//! touching a lock on the hot path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::json_escape;

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct GaugeInner {
    value: AtomicI64,
    peak: AtomicI64,
}

/// A signed up/down gauge that also tracks its high-water mark.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<GaugeInner>);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    pub fn set(&self, v: i64) {
        self.0.value.store(v, Ordering::Relaxed);
        self.0.peak.fetch_max(v, Ordering::Relaxed);
    }

    /// Add a delta and return the new value (peak is updated when the new
    /// value is a high-water mark).
    pub fn add(&self, delta: i64) -> i64 {
        let v = self.0.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.0.peak.fetch_max(v, Ordering::Relaxed);
        v
    }

    pub fn sub(&self, delta: i64) -> i64 {
        self.add(-delta)
    }

    pub fn get(&self) -> i64 {
        self.0.value.load(Ordering::Relaxed)
    }

    pub fn peak(&self) -> i64 {
        self.0.peak.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct HistogramInner {
    /// Inclusive upper bounds, ascending; an implicit +inf bucket follows.
    bounds: Vec<u64>,
    /// `bounds.len() + 1` buckets.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A fixed-bucket histogram (values are `u64`, typically microseconds).
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Build a histogram with the given inclusive upper bounds (sorted and
    /// deduplicated); values above the last bound land in an overflow
    /// bucket.
    pub fn with_bounds(bounds: &[u64]) -> Histogram {
        let mut bounds: Vec<u64> = bounds.to_vec();
        bounds.sort_unstable();
        bounds.dedup();
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }

    /// Default bounds for microsecond durations: 100µs … 10s, one decade
    /// per bucket.
    pub fn duration_us() -> Histogram {
        Histogram::with_bounds(&[100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000])
    }

    pub fn record(&self, v: u64) {
        let i = self.0.bounds.partition_point(|&b| b < v);
        self.0.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros() as u64);
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// `(upper_bound, count)` per bucket; `None` is the overflow bucket.
    pub fn buckets(&self) -> Vec<(Option<u64>, u64)> {
        let mut out = Vec::with_capacity(self.0.buckets.len());
        for (i, b) in self.0.buckets.iter().enumerate() {
            out.push((self.0.bounds.get(i).copied(), b.load(Ordering::Relaxed)));
        }
        out
    }

    /// Bucket-interpolated quantile estimate for `p` in `[0, 1]`: the
    /// winning bucket is found by cumulative count, then the value is
    /// linearly interpolated between its bounds (the first bucket's lower
    /// bound is 0). Ranks landing in the unbounded overflow bucket report
    /// the observed max. Returns 0 for an empty histogram.
    pub fn quantile(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((p.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut acc = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 && acc + c >= target {
                let Some(&upper) = self.0.bounds.get(i) else {
                    return self.max();
                };
                let lower = if i == 0 { 0 } else { self.0.bounds[i - 1] };
                let within = (target - acc) as f64 / c as f64;
                return lower + ((upper - lower) as f64 * within).round() as u64;
            }
            acc += c;
        }
        self.max()
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::duration_us()
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A metric handle held by the registry.
#[derive(Clone, Debug)]
pub enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A point-in-time reading of one metric.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge {
        value: i64,
        peak: i64,
    },
    Histogram {
        count: u64,
        sum: u64,
        max: u64,
        p50: u64,
        p95: u64,
        p99: u64,
        buckets: Vec<(Option<u64>, u64)>,
    },
}

/// A name-keyed registry of metric handles.
///
/// Registration either *creates* a handle (`counter`/`gauge`/`histogram`)
/// or *adopts* one a subsystem already owns (`register_*`) — the latter is
/// how `ExchangeStats`, the buffer cache, the WAL, and LSM trees keep
/// their intrinsic stats while an instance-level snapshot sees them all.
/// Re-registering a name replaces the previous handle (last wins).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Get or create a counter under `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics.lock().unwrap();
        if let Some(Metric::Counter(c)) = m.get(name) {
            return c.clone();
        }
        let c = Counter::new();
        m.insert(name.to_string(), Metric::Counter(c.clone()));
        c
    }

    /// Get or create a gauge under `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics.lock().unwrap();
        if let Some(Metric::Gauge(g)) = m.get(name) {
            return g.clone();
        }
        let g = Gauge::new();
        m.insert(name.to_string(), Metric::Gauge(g.clone()));
        g
    }

    /// Get or create a histogram under `name` (bounds apply on creation).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut m = self.metrics.lock().unwrap();
        if let Some(Metric::Histogram(h)) = m.get(name) {
            return h.clone();
        }
        let h = Histogram::with_bounds(bounds);
        m.insert(name.to_string(), Metric::Histogram(h.clone()));
        h
    }

    /// Adopt an existing counter handle under `name`.
    pub fn register_counter(&self, name: &str, c: &Counter) {
        self.metrics.lock().unwrap().insert(name.to_string(), Metric::Counter(c.clone()));
    }

    /// Adopt an existing gauge handle under `name`.
    pub fn register_gauge(&self, name: &str, g: &Gauge) {
        self.metrics.lock().unwrap().insert(name.to_string(), Metric::Gauge(g.clone()));
    }

    /// Adopt an existing histogram handle under `name`.
    pub fn register_histogram(&self, name: &str, h: &Histogram) {
        self.metrics.lock().unwrap().insert(name.to_string(), Metric::Histogram(h.clone()));
    }

    pub fn get(&self, name: &str) -> Option<Metric> {
        self.metrics.lock().unwrap().get(name).cloned()
    }

    pub fn names(&self) -> Vec<String> {
        self.metrics.lock().unwrap().keys().cloned().collect()
    }

    /// Read every metric, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let m = self.metrics.lock().unwrap();
        m.iter()
            .map(|(name, metric)| {
                let v = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge { value: g.get(), peak: g.peak() },
                    Metric::Histogram(h) => MetricValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        max: h.max(),
                        p50: h.quantile(0.50),
                        p95: h.quantile(0.95),
                        p99: h.quantile(0.99),
                        buckets: h.buckets(),
                    },
                };
                (name.clone(), v)
            })
            .collect()
    }

    /// One JSON object mapping metric names to values: counters are
    /// numbers, gauges `{"value":..,"peak":..}`, histograms
    /// `{"count":..,"sum":..,"max":..,"p50":..,"p95":..,"p99":..,
    /// "buckets":[[bound,count],..]}` with a `null` bound for the overflow
    /// bucket (quantiles are bucket-interpolated estimates).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&json_escape(name));
            out.push_str("\":");
            match value {
                MetricValue::Counter(n) => out.push_str(&n.to_string()),
                MetricValue::Gauge { value, peak } => {
                    out.push_str(&format!("{{\"value\":{value},\"peak\":{peak}}}"));
                }
                MetricValue::Histogram { count, sum, max, p50, p95, p99, buckets } => {
                    out.push_str(&format!(
                        "{{\"count\":{count},\"sum\":{sum},\"max\":{max},\
                         \"p50\":{p50},\"p95\":{p95},\"p99\":{p99},\"buckets\":["
                    ));
                    for (j, (bound, n)) in buckets.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        match bound {
                            Some(b) => out.push_str(&format!("[{b},{n}]")),
                            None => out.push_str(&format!("[null,{n}]")),
                        }
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push('}');
        out
    }

    /// Prometheus text exposition (format 0.0.4) of the current snapshot.
    /// Metric names are sanitized (`.` and other non-identifier characters
    /// become `_`); gauges additionally expose their high-water mark as
    /// `<name>_peak`, histograms use cumulative `_bucket{le="…"}` series
    /// plus `_sum`/`_count`.
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
                .collect()
        }
        let mut out = String::new();
        for (name, value) in self.snapshot() {
            let n = sanitize(&name);
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
                }
                MetricValue::Gauge { value, peak } => {
                    out.push_str(&format!(
                        "# TYPE {n} gauge\n{n} {value}\n# TYPE {n}_peak gauge\n{n}_peak {peak}\n"
                    ));
                }
                MetricValue::Histogram { count, sum, buckets, .. } => {
                    out.push_str(&format!("# TYPE {n} histogram\n"));
                    let mut cum = 0u64;
                    for (bound, c) in &buckets {
                        cum += c;
                        match bound {
                            Some(b) => {
                                out.push_str(&format!("{n}_bucket{{le=\"{b}\"}} {cum}\n"));
                            }
                            None => {
                                out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {cum}\n"));
                            }
                        }
                    }
                    out.push_str(&format!("{n}_sum {sum}\n{n}_count {count}\n"));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_across_clones() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_tracks_value_and_peak() {
        let g = Gauge::new();
        g.add(3);
        g.add(4);
        g.sub(5);
        assert_eq!(g.get(), 2);
        assert_eq!(g.peak(), 7);
        g.set(1);
        assert_eq!(g.peak(), 7);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = Histogram::with_bounds(&[10, 100]);
        for v in [5, 10, 11, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1026);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.buckets(), vec![(Some(10), 2), (Some(100), 1), (None, 1)]);
        assert!((h.mean() - 256.5).abs() < 1e-9);
    }

    #[test]
    fn registry_adopts_existing_handles() {
        let reg = MetricsRegistry::new();
        let c = Counter::new();
        c.add(7);
        reg.register_counter("exchange.frames_sent", &c);
        c.inc();
        match reg.get("exchange.frames_sent") {
            Some(Metric::Counter(rc)) => assert_eq!(rc.get(), 8),
            other => panic!("wrong metric: {other:?}"),
        }
    }

    #[test]
    fn registry_get_or_create_is_stable() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        assert_eq!(b.get(), 1);
        assert_eq!(reg.names(), vec!["x".to_string()]);
    }

    #[test]
    fn json_snapshot_is_sorted_and_typed() {
        let reg = MetricsRegistry::new();
        reg.counter("b.count").add(2);
        reg.gauge("a.depth").add(3);
        let h = reg.histogram("c.lat", &[10]);
        h.record(4);
        h.record(40);
        let json = reg.to_json();
        assert_eq!(
            json,
            "{\"a.depth\":{\"value\":3,\"peak\":3},\"b.count\":2,\
             \"c.lat\":{\"count\":2,\"sum\":44,\"max\":40,\"p50\":10,\"p95\":40,\"p99\":40,\
             \"buckets\":[[10,1],[null,1]]}}"
        );
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::with_bounds(&[100, 200, 400]);
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        // 10 values in (100, 200]: ranks spread linearly across the bucket.
        for _ in 0..10 {
            h.record(150);
        }
        assert_eq!(h.quantile(0.5), 150, "median of a full middle bucket");
        assert_eq!(h.quantile(0.1), 110);
        assert_eq!(h.quantile(1.0), 200, "p100 = bucket upper bound");
        // Overflow values report the observed max.
        h.record(5000);
        assert_eq!(h.quantile(0.99), 5000);
        assert_eq!(h.max(), 5000);
        // All-in-first-bucket interpolates from zero.
        let h2 = Histogram::with_bounds(&[1000]);
        for _ in 0..4 {
            h2.record(10);
        }
        assert_eq!(h2.quantile(0.5), 500);
    }

    #[test]
    fn prometheus_exposition_covers_every_kind() {
        let reg = MetricsRegistry::new();
        reg.counter("rm.admitted").add(3);
        reg.gauge("rm.queue depth").set(2);
        let h = reg.histogram("rm.wait_us", &[10, 100]);
        h.record(5);
        h.record(50);
        h.record(5000);
        let text = reg.to_prometheus();
        assert!(text.contains("# TYPE rm_admitted counter\nrm_admitted 3\n"));
        assert!(text.contains("rm_queue_depth 2\n"), "spaces sanitized: {text}");
        assert!(text.contains("rm_queue_depth_peak 2\n"));
        assert!(text.contains("rm_wait_us_bucket{le=\"10\"} 1\n"));
        assert!(text.contains("rm_wait_us_bucket{le=\"100\"} 2\n"), "buckets cumulative");
        assert!(text.contains("rm_wait_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("rm_wait_us_sum 5055\n"));
        assert!(text.contains("rm_wait_us_count 3\n"));
    }
}
