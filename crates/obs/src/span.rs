//! Lightweight span tracing over the process-monotonic clock.
//!
//! Timestamps are microseconds since a lazily pinned process epoch
//! (`Instant`-based, so they never go backwards); a [`Span`] is a started
//! timer that yields a [`SpanRecord`] when finished.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process observability epoch (monotonic).
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// A finished span: name, start offset, and wall duration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    pub name: String,
    /// Microseconds since the process epoch when the span started.
    pub start_us: u64,
    pub duration: Duration,
}

impl SpanRecord {
    pub fn end_us(&self) -> u64 {
        self.start_us + self.duration.as_micros() as u64
    }
}

/// An in-flight span.
#[derive(Debug)]
pub struct Span {
    name: String,
    start_us: u64,
    started: Instant,
}

impl Span {
    pub fn start(name: impl Into<String>) -> Span {
        Span { name: name.into(), start_us: now_us(), started: Instant::now() }
    }

    pub fn finish(self) -> SpanRecord {
        SpanRecord { name: self.name, start_us: self.start_us, duration: self.started.elapsed() }
    }
}

/// Run `f` inside a span, returning its result and the finished record.
pub fn timed<R>(name: &str, f: impl FnOnce() -> R) -> (R, SpanRecord) {
    let span = Span::start(name);
    let out = f();
    (out, span.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_are_monotonic_and_nonzero() {
        let a = now_us();
        let (sum, rec) = timed("work", || {
            std::thread::sleep(Duration::from_millis(2));
            1 + 1
        });
        let b = now_us();
        assert_eq!(sum, 2);
        assert_eq!(rec.name, "work");
        assert!(rec.duration >= Duration::from_millis(2));
        assert!(rec.start_us >= a);
        assert!(rec.end_us() <= b + 1);
    }

    #[test]
    fn span_guard_records_duration() {
        let s = Span::start("s");
        std::thread::sleep(Duration::from_millis(1));
        let r = s.finish();
        assert!(r.duration >= Duration::from_millis(1));
    }
}
