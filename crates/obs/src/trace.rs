//! Hierarchical, ID-keyed tracing: a per-trace ring buffer of finished
//! spans with parent links and thread/partition labels.
//!
//! A [`TraceContext`] is a cheap cloneable handle carrying a trace ID, the
//! current parent span ID, and a label; spans started from it record into
//! the trace's [`TraceSink`] when they finish. A disabled context
//! ([`TraceContext::disabled`], the default) costs one `Option` check per
//! call site, so tracing can be threaded through hot paths unconditionally
//! and switched on only for profiled queries.
//!
//! The sink is a bounded ring under a single mutex taken once per
//! *finished* span (never per tuple); when the ring is full the oldest
//! span is evicted and counted in [`TraceSink::dropped`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::span::{now_us, SpanRecord};

/// Default per-trace ring capacity (finished spans retained).
pub const DEFAULT_TRACE_CAPACITY: usize = 8192;

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// A finished span within one trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Unique within the trace, allocated when the span starts.
    pub span_id: u64,
    /// Span this one nests under; `0` for a root span.
    pub parent_id: u64,
    pub name: String,
    /// Thread/partition attribution (`"cc"`, `"p3"`, `"lsm-maint"`, …).
    pub label: String,
    /// Microseconds since the process observability epoch.
    pub start_us: u64,
    pub duration_us: u64,
}

impl TraceEvent {
    pub fn end_us(&self) -> u64 {
        self.start_us + self.duration_us
    }
}

/// Bounded ring of finished spans for one trace.
#[derive(Debug)]
pub struct TraceSink {
    trace_id: u64,
    next_span_id: AtomicU64,
    capacity: usize,
    events: Mutex<VecDeque<TraceEvent>>,
    dropped: AtomicU64,
}

impl TraceSink {
    /// New sink with a fresh process-unique trace ID.
    pub fn new(capacity: usize) -> Arc<TraceSink> {
        Arc::new(TraceSink {
            trace_id: NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed),
            next_span_id: AtomicU64::new(1),
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        })
    }

    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    fn alloc_span_id(&self) -> u64 {
        self.next_span_id.fetch_add(1, Ordering::Relaxed)
    }

    fn push(&self, ev: TraceEvent) {
        let mut q = self.events.lock().unwrap();
        if q.len() >= self.capacity {
            q.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        q.push_back(ev);
    }

    /// Spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Finished spans currently retained.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the retained spans, ordered by start time (ties by
    /// span ID, which follows allocation order).
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out: Vec<TraceEvent> = self.events.lock().unwrap().iter().cloned().collect();
        out.sort_by_key(|e| (e.start_us, e.span_id));
        out
    }
}

#[derive(Debug)]
struct TraceCtxInner {
    sink: Arc<TraceSink>,
    /// Span ID new spans are parented under (`0` = root).
    parent: u64,
    label: String,
}

/// A handle into one trace: sink + current parent span + label. Cloning is
/// an `Arc` bump; the default/disabled context makes every operation a
/// no-op.
#[derive(Clone, Debug, Default)]
pub struct TraceContext {
    inner: Option<Arc<TraceCtxInner>>,
}

impl TraceContext {
    /// The no-op context: spans started from it record nothing.
    pub fn disabled() -> TraceContext {
        TraceContext { inner: None }
    }

    /// Start a new trace with its own sink; spans started from the
    /// returned context are roots (parent 0).
    pub fn new_trace(capacity: usize) -> TraceContext {
        TraceContext {
            inner: Some(Arc::new(TraceCtxInner {
                sink: TraceSink::new(capacity),
                parent: 0,
                label: String::new(),
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Trace ID, or 0 when disabled.
    pub fn trace_id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.sink.trace_id())
    }

    /// The underlying sink (None when disabled).
    pub fn sink(&self) -> Option<Arc<TraceSink>> {
        self.inner.as_ref().map(|i| Arc::clone(&i.sink))
    }

    /// Derive a context recording under a different thread/partition
    /// label; parentage is unchanged.
    pub fn with_label(&self, label: &str) -> TraceContext {
        match &self.inner {
            None => TraceContext::disabled(),
            Some(i) => TraceContext {
                inner: Some(Arc::new(TraceCtxInner {
                    sink: Arc::clone(&i.sink),
                    parent: i.parent,
                    label: label.to_string(),
                })),
            },
        }
    }

    /// Start a span as a child of this context's parent. Finish it with
    /// [`TraceSpan::finish`] (or let it drop — unwinds still record).
    pub fn span(&self, name: &str) -> TraceSpan {
        match &self.inner {
            None => TraceSpan { state: None },
            Some(i) => TraceSpan {
                state: Some(SpanState {
                    ctx: Arc::clone(i),
                    span_id: i.sink.alloc_span_id(),
                    name: name.to_string(),
                    start_us: now_us(),
                    started: Instant::now(),
                }),
            },
        }
    }

    /// Record a pre-measured interval as a finished child span. Returns
    /// the span's ID (0 when disabled).
    pub fn record(&self, name: &str, start_us: u64, duration_us: u64) -> u64 {
        match &self.inner {
            None => 0,
            Some(i) => {
                let span_id = i.sink.alloc_span_id();
                i.sink.push(TraceEvent {
                    span_id,
                    parent_id: i.parent,
                    name: name.to_string(),
                    label: i.label.clone(),
                    start_us,
                    duration_us,
                });
                span_id
            }
        }
    }

    /// Record an already-finished flat [`SpanRecord`] as a child span.
    pub fn record_span(&self, rec: &SpanRecord) -> u64 {
        self.record(&rec.name, rec.start_us, rec.duration.as_micros() as u64)
    }
}

#[derive(Debug)]
struct SpanState {
    ctx: Arc<TraceCtxInner>,
    span_id: u64,
    name: String,
    start_us: u64,
    started: Instant,
}

/// An in-flight traced span. Records into the sink exactly once, on
/// `finish` or drop, whichever comes first.
#[derive(Debug, Default)]
pub struct TraceSpan {
    state: Option<SpanState>,
}

impl TraceSpan {
    /// A context whose spans become children of this span.
    pub fn context(&self) -> TraceContext {
        match &self.state {
            None => TraceContext::disabled(),
            Some(s) => TraceContext {
                inner: Some(Arc::new(TraceCtxInner {
                    sink: Arc::clone(&s.ctx.sink),
                    parent: s.span_id,
                    label: s.ctx.label.clone(),
                })),
            },
        }
    }

    /// This span's ID (0 when tracing is disabled).
    pub fn span_id(&self) -> u64 {
        self.state.as_ref().map_or(0, |s| s.span_id)
    }

    /// Start timestamp (µs since the process epoch; 0 when disabled).
    pub fn start_us(&self) -> u64 {
        self.state.as_ref().map_or(0, |s| s.start_us)
    }

    fn finish_inner(&mut self) {
        if let Some(s) = self.state.take() {
            let duration_us = s.started.elapsed().as_micros() as u64;
            s.ctx.sink.push(TraceEvent {
                span_id: s.span_id,
                parent_id: s.ctx.parent,
                name: s.name,
                label: s.ctx.label.clone(),
                start_us: s.start_us,
                duration_us,
            });
        }
    }

    pub fn finish(mut self) {
        self.finish_inner();
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_context_records_nothing() {
        let t = TraceContext::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.trace_id(), 0);
        let s = t.span("x");
        assert_eq!(s.span_id(), 0);
        s.finish();
        assert_eq!(t.record("y", 0, 1), 0);
        assert!(t.sink().is_none());
    }

    #[test]
    fn spans_nest_via_parent_links() {
        let t = TraceContext::new_trace(64);
        let root = t.span("query");
        let root_id = root.span_id();
        let child_ctx = root.context().with_label("p0");
        let c = child_ctx.span("execute");
        let c_id = c.span_id();
        let gc = c.context().record("op:scan", now_us(), 5);
        c.finish();
        root.finish();
        let sink = t.sink().unwrap();
        let evs = sink.events();
        assert_eq!(evs.len(), 3);
        let by_name = |n: &str| evs.iter().find(|e| e.name == n).unwrap();
        assert_eq!(by_name("query").parent_id, 0);
        assert_eq!(by_name("execute").parent_id, root_id);
        assert_eq!(by_name("execute").label, "p0");
        assert_eq!(by_name("op:scan").parent_id, c_id);
        assert_eq!(by_name("op:scan").span_id, gc);
        assert!(root_id != c_id && c_id != gc);
    }

    #[test]
    fn trace_ids_are_process_unique() {
        let a = TraceContext::new_trace(4);
        let b = TraceContext::new_trace(4);
        assert_ne!(a.trace_id(), b.trace_id());
        assert!(a.trace_id() > 0);
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let t = TraceContext::new_trace(2);
        for i in 0..5 {
            t.record(&format!("s{i}"), i, 1);
        }
        let sink = t.sink().unwrap();
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 3);
        let names: Vec<String> = sink.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["s3", "s4"], "oldest evicted first");
    }

    #[test]
    fn dropped_span_still_records() {
        let t = TraceContext::new_trace(8);
        {
            let _s = t.span("unwound");
        }
        assert_eq!(t.sink().unwrap().events()[0].name, "unwound");
    }
}
