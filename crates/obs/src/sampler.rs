//! Continuous metrics sampler: a background thread periodically reads a
//! [`MetricsRegistry`] and stores per-interval *deltas* in a bounded ring,
//! giving every instance an in-memory time series (exported as the
//! `timeseries` block of the bench JSON) without any external collector.
//!
//! Counters and histogram counts are recorded as deltas against the
//! previous sample; gauges as raw values. Metrics that did not change are
//! omitted from a frame, so idle periods cost one timestamped empty frame
//! per tick.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::json::json_escape;
use crate::registry::{MetricValue, MetricsRegistry};
use crate::span::now_us;

/// One sampler tick: a timestamp plus the metrics that moved since the
/// previous tick.
#[derive(Clone, Debug)]
pub struct SampleFrame {
    /// Microseconds since the process observability epoch.
    pub ts_us: u64,
    /// `(name, value)`: counter/histogram-count deltas, or the raw gauge
    /// value when it changed. Sorted by name (registry snapshot order).
    pub values: Vec<(String, i64)>,
}

struct SamplerShared {
    ring: Mutex<VecDeque<SampleFrame>>,
    state: Mutex<bool>,
    cv: Condvar,
}

/// Handle to the sampling thread; dropping it stops the thread.
pub struct Sampler {
    shared: Arc<SamplerShared>,
    worker: Option<JoinHandle<()>>,
    interval: Duration,
    capacity: usize,
}

/// Scalar reading used for delta computation.
fn scalar_of(v: &MetricValue) -> i64 {
    match v {
        MetricValue::Counter(n) => *n as i64,
        MetricValue::Gauge { value, .. } => *value,
        MetricValue::Histogram { count, .. } => *count as i64,
    }
}

fn sample_once(
    registry: &MetricsRegistry,
    prev: &mut BTreeMap<String, i64>,
    gauges: bool,
) -> Vec<(String, i64)> {
    let mut values = Vec::new();
    for (name, value) in registry.snapshot() {
        let is_gauge = matches!(value, MetricValue::Gauge { .. });
        let now = scalar_of(&value);
        let before = prev.insert(name.clone(), now);
        let _ = gauges;
        if is_gauge {
            // Raw value, recorded when it changed (or first appeared).
            if before != Some(now) {
                values.push((name, now));
            }
        } else {
            let delta = now - before.unwrap_or(0);
            if delta != 0 {
                values.push((name, delta));
            }
        }
    }
    values
}

impl Sampler {
    /// Start sampling `registry` every `interval`, retaining the most
    /// recent `capacity` frames. The first tick's deltas are measured
    /// against a baseline taken here, not against zero.
    pub fn start(registry: Arc<MetricsRegistry>, interval: Duration, capacity: usize) -> Sampler {
        let shared = Arc::new(SamplerShared {
            ring: Mutex::new(VecDeque::new()),
            state: Mutex::new(false),
            cv: Condvar::new(),
        });
        let capacity = capacity.max(1);
        let interval = interval.max(Duration::from_millis(1));
        let shared2 = Arc::clone(&shared);
        let mut prev: BTreeMap<String, i64> = BTreeMap::new();
        // Baseline: start deltas from "now", so a long-lived registry does
        // not dump its whole history into the first frame.
        sample_once(&registry, &mut prev, true);
        let worker = std::thread::Builder::new()
            .name("obs-sampler".into())
            .spawn(move || loop {
                {
                    let stop = shared2.state.lock().unwrap();
                    let (stop, _) = shared2.cv.wait_timeout(stop, interval).unwrap();
                    if *stop {
                        break;
                    }
                }
                let values = sample_once(&registry, &mut prev, true);
                let frame = SampleFrame { ts_us: now_us(), values };
                let mut ring = shared2.ring.lock().unwrap();
                if ring.len() >= capacity {
                    ring.pop_front();
                }
                ring.push_back(frame);
            })
            .expect("spawn sampler thread");
        Sampler { shared, worker: Some(worker), interval, capacity }
    }

    pub fn interval(&self) -> Duration {
        self.interval
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshot of the retained frames, oldest first.
    pub fn frames(&self) -> Vec<SampleFrame> {
        self.shared.ring.lock().unwrap().iter().cloned().collect()
    }

    /// JSON array of frames: `[{"ts_us":…,"values":{"name":delta,…}},…]`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, frame) in self.frames().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"ts_us\":{},\"values\":{{", frame.ts_us));
            for (j, (name, v)) in frame.values.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{v}", json_escape(name)));
            }
            out.push_str("}}");
        }
        out.push(']');
        out
    }

    /// Stop the sampling thread and wait for it to exit (also runs on
    /// drop).
    pub fn stop(&mut self) {
        if let Some(worker) = self.worker.take() {
            *self.shared.state.lock().unwrap() = true;
            self.shared.cv.notify_all();
            let _ = worker.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for Sampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sampler")
            .field("interval", &self.interval)
            .field("capacity", &self.capacity)
            .field("frames", &self.shared.ring.lock().unwrap().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::json_parse;

    #[test]
    fn sampler_records_deltas_not_absolutes() {
        let reg = Arc::new(MetricsRegistry::new());
        let c = reg.counter("work.done");
        c.add(1000); // pre-sampler history must not appear in any frame
        let g = reg.gauge("work.depth");
        let mut s = Sampler::start(Arc::clone(&reg), Duration::from_millis(5), 64);
        c.add(7);
        g.set(3);
        std::thread::sleep(Duration::from_millis(40));
        s.stop();
        let frames = s.frames();
        assert!(!frames.is_empty(), "sampler produced frames");
        let total: i64 = frames
            .iter()
            .flat_map(|f| f.values.iter())
            .filter(|(n, _)| n == "work.done")
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(total, 7, "summed counter deltas equal post-baseline increments");
        let depth: Vec<i64> = frames
            .iter()
            .flat_map(|f| f.values.iter())
            .filter(|(n, _)| n == "work.depth")
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(depth, vec![3], "gauge recorded once, when it changed");
    }

    #[test]
    fn sampler_ring_is_bounded_and_json_parses() {
        let reg = Arc::new(MetricsRegistry::new());
        let c = reg.counter("tick");
        let mut s = Sampler::start(Arc::clone(&reg), Duration::from_millis(2), 3);
        for _ in 0..10 {
            c.inc();
            std::thread::sleep(Duration::from_millis(4));
        }
        s.stop();
        assert!(s.frames().len() <= 3, "ring bounded at capacity");
        let v = json_parse(&s.to_json()).expect("timeseries JSON parses");
        assert!(v.as_arr().is_some());
    }
}
