//! Structured JSON-lines event log, gated by the `ASTERIX_LOG`
//! environment variable.
//!
//! `ASTERIX_LOG` is a comma-separated list of target prefixes
//! (`ASTERIX_LOG=asterix.query,storage.lsm`); `*` or `all` enables
//! everything; unset or empty disables logging entirely. Events are one
//! JSON object per line on stderr:
//!
//! ```text
//! {"ts_us":1234,"target":"storage.lsm","event":"flush","seq":3,"duration_us":812}
//! ```
//!
//! Tests (and embedders) can bypass the process-pinned environment filter
//! with [`install_log_override`] / [`capture_logs`], which swap in an
//! explicit filter and sink for the duration of a guard. The hot path
//! stays one relaxed atomic load when no override is installed.

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json::json_escape;
use crate::span::now_us;

/// A typed field value for [`log_event`].
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> FieldValue {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

/// A sink receiving fully formatted JSON lines.
pub type LogSink = Arc<dyn Fn(&str) + Send + Sync>;

struct LogOverride {
    filters: Vec<String>,
    sink: LogSink,
}

/// Fast-path flag: true only while an override is installed, so the
/// default path costs one relaxed load.
static OVERRIDE_ACTIVE: AtomicBool = AtomicBool::new(false);

fn override_slot() -> &'static Mutex<Option<LogOverride>> {
    static SLOT: OnceLock<Mutex<Option<LogOverride>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Restores the previously installed override (if any) on drop.
pub struct LogOverrideGuard {
    prev: Option<LogOverride>,
}

impl Drop for LogOverrideGuard {
    fn drop(&mut self) {
        let mut slot = override_slot().lock().unwrap();
        *slot = self.prev.take();
        OVERRIDE_ACTIVE.store(slot.is_some(), Ordering::Relaxed);
    }
}

/// Install a process-wide filter + sink override, bypassing the
/// `ASTERIX_LOG` environment filter until the returned guard drops.
/// Overrides nest (the guard restores the previous one), but they are
/// global — concurrent tests installing different overrides will observe
/// each other's.
pub fn install_log_override(filter: &str, sink: LogSink) -> LogOverrideGuard {
    let mut slot = override_slot().lock().unwrap();
    let prev = slot.replace(LogOverride { filters: parse_filter(filter), sink });
    OVERRIDE_ACTIVE.store(true, Ordering::Relaxed);
    LogOverrideGuard { prev }
}

/// Run `f` with events matching `filter` captured into the returned
/// vector instead of stderr.
pub fn capture_logs(filter: &str, f: impl FnOnce()) -> Vec<String> {
    let lines: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let into = Arc::clone(&lines);
    let guard =
        install_log_override(filter, Arc::new(move |line| into.lock().unwrap().push(line.into())));
    f();
    drop(guard);
    let out = lines.lock().unwrap().clone();
    out
}

fn filters() -> &'static [String] {
    static FILTERS: OnceLock<Vec<String>> = OnceLock::new();
    FILTERS.get_or_init(|| parse_filter(&std::env::var("ASTERIX_LOG").unwrap_or_default()))
}

fn parse_filter(spec: &str) -> Vec<String> {
    spec.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect()
}

fn enabled_for(filters: &[String], target: &str) -> bool {
    filters.iter().any(|f| f == "*" || f == "all" || target.starts_with(f.as_str()))
}

/// Whether events for `target` pass the active filter (an installed
/// override, otherwise `ASTERIX_LOG`, which is read once per process).
pub fn log_enabled(target: &str) -> bool {
    if OVERRIDE_ACTIVE.load(Ordering::Relaxed) {
        if let Some(ov) = override_slot().lock().unwrap().as_ref() {
            return enabled_for(&ov.filters, target);
        }
    }
    enabled_for(filters(), target)
}

fn format_line(target: &str, event: &str, fields: &[(&str, FieldValue)]) -> String {
    let mut line = format!(
        "{{\"ts_us\":{},\"target\":\"{}\",\"event\":\"{}\"",
        now_us(),
        json_escape(target),
        json_escape(event)
    );
    for (k, v) in fields {
        line.push_str(&format!(",\"{}\":", json_escape(k)));
        match v {
            FieldValue::U64(n) => line.push_str(&n.to_string()),
            FieldValue::I64(n) => line.push_str(&n.to_string()),
            FieldValue::F64(n) if n.is_finite() => line.push_str(&format!("{n}")),
            FieldValue::F64(_) => line.push_str("null"),
            FieldValue::Str(s) => line.push_str(&format!("\"{}\"", json_escape(s))),
        }
    }
    line.push('}');
    line
}

/// Emit one JSON-lines event (to stderr, or the installed override sink)
/// if `target` passes the active filter.
pub fn log_event(target: &str, event: &str, fields: &[(&str, FieldValue)]) {
    if OVERRIDE_ACTIVE.load(Ordering::Relaxed) {
        let slot = override_slot().lock().unwrap();
        if let Some(ov) = slot.as_ref() {
            if enabled_for(&ov.filters, target) {
                (ov.sink)(&format_line(target, event, fields));
            }
            return;
        }
    }
    if !enabled_for(filters(), target) {
        return;
    }
    let line = format_line(target, event, fields);
    let stderr = std::io::stderr();
    let mut lock = stderr.lock();
    let _ = writeln!(lock, "{line}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{json_parse, JsonValue};

    /// The override slot is process-global; serialize the tests that use it.
    fn capture_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap()
    }

    #[test]
    fn filter_parsing_and_prefix_match() {
        let f = parse_filter("asterix.query, storage.lsm");
        assert!(enabled_for(&f, "asterix.query"));
        assert!(enabled_for(&f, "storage.lsm.flush"));
        assert!(!enabled_for(&f, "hyracks.exchange"));

        let all = parse_filter("*");
        assert!(enabled_for(&all, "anything"));
        let all2 = parse_filter("all");
        assert!(enabled_for(&all2, "anything"));

        let none = parse_filter("");
        assert!(!enabled_for(&none, "anything"));
    }

    #[test]
    fn disabled_log_event_is_a_noop() {
        // No ASTERIX_LOG in the test environment: must not panic or print.
        log_event("test.target", "noop", &[("k", 1u64.into())]);
    }

    #[test]
    fn captured_line_is_valid_json_with_escaped_fields() {
        let _serial = capture_lock();
        let lines = capture_logs("test.capture", || {
            log_event(
                "test.capture.sub",
                "ev\"ent\nwith\\escapes",
                &[
                    ("plain", 7u64.into()),
                    ("neg", (-3i64).into()),
                    ("ratio", 0.5f64.into()),
                    ("nan", f64::NAN.into()),
                    ("na\"me\twith\u{1}ctl", FieldValue::Str("va\\lue\n\"quoted\" é".into())),
                ],
            );
            // Filtered out: different prefix.
            log_event("other.target", "skipped", &[]);
        });
        assert_eq!(lines.len(), 1, "only the matching target is captured");
        let v = json_parse(&lines[0]).expect("emitted line parses as JSON");
        assert_eq!(v.get("target").unwrap().as_str(), Some("test.capture.sub"));
        assert_eq!(v.get("event").unwrap().as_str(), Some("ev\"ent\nwith\\escapes"));
        assert_eq!(v.get("plain").unwrap().as_f64(), Some(7.0));
        assert_eq!(v.get("neg").unwrap().as_f64(), Some(-3.0));
        assert_eq!(v.get("ratio").unwrap().as_f64(), Some(0.5));
        assert_eq!(v.get("nan").unwrap(), &JsonValue::Null);
        assert_eq!(v.get("na\"me\twith\u{1}ctl").unwrap().as_str(), Some("va\\lue\n\"quoted\" é"));
        assert!(v.get("ts_us").unwrap().as_f64().unwrap() >= 0.0);
    }

    #[test]
    fn override_guard_restores_previous_sink() {
        let _serial = capture_lock();
        let outer = capture_logs("outer", || {
            log_event("outer.a", "one", &[]);
            let inner = capture_logs("inner", || {
                log_event("inner.b", "two", &[]);
                log_event("outer.a", "hidden-from-outer", &[]);
            });
            assert_eq!(inner.len(), 1);
            log_event("outer.a", "three", &[]);
        });
        let events: Vec<String> = outer
            .iter()
            .map(|l| json_parse(l).unwrap().get("event").unwrap().as_str().unwrap().to_string())
            .collect();
        assert_eq!(events, vec!["one", "three"]);
    }
}
