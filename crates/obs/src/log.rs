//! Structured JSON-lines event log, gated by the `ASTERIX_LOG`
//! environment variable.
//!
//! `ASTERIX_LOG` is a comma-separated list of target prefixes
//! (`ASTERIX_LOG=asterix.query,storage.lsm`); `*` or `all` enables
//! everything; unset or empty disables logging entirely. Events are one
//! JSON object per line on stderr:
//!
//! ```text
//! {"ts_us":1234,"target":"storage.lsm","event":"flush","seq":3,"duration_us":812}
//! ```

use std::io::Write;
use std::sync::OnceLock;

use crate::json::json_escape;
use crate::span::now_us;

/// A typed field value for [`log_event`].
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> FieldValue {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

fn filters() -> &'static [String] {
    static FILTERS: OnceLock<Vec<String>> = OnceLock::new();
    FILTERS.get_or_init(|| parse_filter(&std::env::var("ASTERIX_LOG").unwrap_or_default()))
}

fn parse_filter(spec: &str) -> Vec<String> {
    spec.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect()
}

fn enabled_for(filters: &[String], target: &str) -> bool {
    filters.iter().any(|f| f == "*" || f == "all" || target.starts_with(f.as_str()))
}

/// Whether events for `target` pass the `ASTERIX_LOG` filter (the filter
/// is read once per process).
pub fn log_enabled(target: &str) -> bool {
    enabled_for(filters(), target)
}

/// Emit one JSON-lines event to stderr if `target` passes the filter.
pub fn log_event(target: &str, event: &str, fields: &[(&str, FieldValue)]) {
    if !log_enabled(target) {
        return;
    }
    let mut line = format!(
        "{{\"ts_us\":{},\"target\":\"{}\",\"event\":\"{}\"",
        now_us(),
        json_escape(target),
        json_escape(event)
    );
    for (k, v) in fields {
        line.push_str(&format!(",\"{}\":", json_escape(k)));
        match v {
            FieldValue::U64(n) => line.push_str(&n.to_string()),
            FieldValue::I64(n) => line.push_str(&n.to_string()),
            FieldValue::F64(n) if n.is_finite() => line.push_str(&format!("{n}")),
            FieldValue::F64(_) => line.push_str("null"),
            FieldValue::Str(s) => line.push_str(&format!("\"{}\"", json_escape(s))),
        }
    }
    line.push('}');
    let stderr = std::io::stderr();
    let mut lock = stderr.lock();
    let _ = writeln!(lock, "{line}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_parsing_and_prefix_match() {
        let f = parse_filter("asterix.query, storage.lsm");
        assert!(enabled_for(&f, "asterix.query"));
        assert!(enabled_for(&f, "storage.lsm.flush"));
        assert!(!enabled_for(&f, "hyracks.exchange"));

        let all = parse_filter("*");
        assert!(enabled_for(&all, "anything"));
        let all2 = parse_filter("all");
        assert!(enabled_for(&all2, "anything"));

        let none = parse_filter("");
        assert!(!enabled_for(&none, "anything"));
    }

    #[test]
    fn disabled_log_event_is_a_noop() {
        // No ASTERIX_LOG in the test environment: must not panic or print.
        log_event("test.target", "noop", &[("k", 1u64.into())]);
    }
}
