//! Quickstart: stand up an AsterixDB instance, define a dataverse, type,
//! and dataset, insert data, and query it — the 60-second tour.
//!
//! Run with: `cargo run --example quickstart`

use asterixdb::{ClusterConfig, Instance};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A simulated 2-node cluster with 2 storage partitions per node,
    // rooted in a temp directory.
    let dir = tempfile::TempDir::new()?;
    let instance = Instance::open(ClusterConfig::small(dir.path()))?;

    // DDL: a dataverse, an open Datatype, a Dataset keyed on `id`, and a
    // secondary index (everything is AQL, §2 of the paper).
    instance.execute(
        r#"
        create dataverse Quickstart;
        use dataverse Quickstart;

        create type PersonType as open {
            id: int64,
            name: string,
            age: int64
        };

        create dataset People(PersonType) primary key id;
        create index ageIdx on People(age);
    "#,
    )?;

    // DML: insert a few records. Open types admit undeclared fields —
    // note `hobby` below is not part of PersonType.
    instance.execute(
        r#"
        insert into dataset People ({ "id": 1, "name": "Ada",   "age": 36, "hobby": "proofs" });
        insert into dataset People ({ "id": 2, "name": "Alan",  "age": 41 });
        insert into dataset People ({ "id": 3, "name": "Grace", "age": 85 });
        insert into dataset People ({ "id": 4, "name": "Edsger","age": 72 });
    "#,
    )?;

    // Query: a FLWOR expression with a range predicate — the optimizer
    // routes this through the ageIdx B-tree automatically (§5.1 rule (a)).
    let rows = instance.query(
        r#"
        for $p in dataset People
        where $p.age >= 40 and $p.age <= 80
        order by $p.age desc
        return { "name": $p.name, "age": $p.age }
    "#,
    )?;
    println!("people between 40 and 80, oldest first:");
    for r in &rows {
        println!("  {r}");
    }
    assert_eq!(rows.len(), 2);

    // EXPLAIN shows the compiled Hyracks job (Figure 6-style).
    let (_plan, job) = instance.explain("for $p in dataset People where $p.age = 36 return $p;")?;
    println!("\ncompiled job for an indexed lookup:\n{job}");

    // The catalog is itself queryable data (Query 1 of the paper).
    let datasets = instance.query("for $ds in dataset Metadata.Dataset return $ds;")?;
    println!("datasets in the system: {}", datasets.len());

    Ok(())
}
