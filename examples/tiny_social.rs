//! The paper's running example, end to end: the TinySocial dataverse for
//! Mugshot.com (Data definitions 1-2, Updates 1-2, and a tour of the
//! paper's queries — equijoins, nested FLWORs, quantifiers, fuzzy
//! matching, grouped aggregation with limits).
//!
//! Run with: `cargo run --example tiny_social`

use asterixdb::{ClusterConfig, Instance};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = tempfile::TempDir::new()?;
    let instance = Instance::open(ClusterConfig::small(dir.path()))?;

    // Data definition 1 + 2 (verbatim from the paper, modulo whitespace).
    instance.execute(
        r#"
        drop dataverse TinySocial if exists;
        create dataverse TinySocial;
        use dataverse TinySocial;

        create type EmploymentType as open {
            organization-name: string,
            start-date: date,
            end-date: date?
        };

        create type MugshotUserType as {
            id: int32,
            alias: string,
            name: string,
            user-since: datetime,
            address: {
                street: string, city: string, state: string,
                zip: string, country: string
            },
            friend-ids: {{ int32 }},
            employment: [EmploymentType]
        };

        create type MugshotMessageType as closed {
            message-id: int32,
            author-id: int32,
            timestamp: datetime,
            in-response-to: int32?,
            sender-location: point?,
            tags: {{ string }},
            message: string
        };

        create dataset MugshotUsers(MugshotUserType) primary key id;
        create dataset MugshotMessages(MugshotMessageType) primary key message-id;

        create index msUserSinceIdx on MugshotUsers(user-since);
        create index msTimestampIdx on MugshotMessages(timestamp);
        create index msAuthorIdx on MugshotMessages(author-id) type btree;
        create index msSenderLocIndex on MugshotMessages(sender-location) type rtree;
        create index msMessageIdx on MugshotMessages(message) type keyword;
    "#,
    )?;

    // A few users (including Update 1's John Doe record, verbatim).
    instance.execute(
        r#"
        insert into dataset MugshotUsers ([
            { "id": 1, "alias": "Margarita", "name": "Margarita Stoddard",
              "user-since": datetime("2012-08-20T10:10:00"),
              "address": { "street": "234 Thomas Ave", "city": "San Hugo",
                           "state": "CA", "zip": "98765", "country": "USA" },
              "friend-ids": {{ 2, 3 }},
              "employment": [ { "organization-name": "Codetechno",
                                "start-date": date("2006-08-06") } ] },
            { "id": 2, "alias": "Isbel", "name": "Isbel Dull",
              "user-since": datetime("2011-01-22T10:10:00"),
              "address": { "street": "345 James Ave", "city": "San Jose",
                           "state": "CA", "zip": "95014", "country": "USA" },
              "friend-ids": {{ 1, 4 }},
              "employment": [ { "organization-name": "Hexviane",
                                "start-date": date("2010-04-27"),
                                "end-date": date("2012-09-18") } ] },
            { "id": 3, "alias": "Emory", "name": "Emory Unk",
              "user-since": datetime("2012-07-10T10:10:00"),
              "address": { "street": "456 Jose Ave", "city": "Irvine",
                           "state": "CA", "zip": "92617", "country": "USA" },
              "friend-ids": {{ 1, 5 }},
              "employment": [ { "organization-name": "geomedia",
                                "start-date": date("2010-06-17"),
                                "job-kind": "part-time" } ] }
        ]);
        insert into dataset MugshotUsers (
            { "id": 11, "alias": "John", "name": "JohnDoe",
              "address": { "street": "789 Jane St", "city": "San Harry",
                           "zip": "98767", "state": "CA", "country": "USA" },
              "user-since": datetime("2010-08-15T08:10:00"),
              "friend-ids": {{ 5, 9, 11 }},
              "employment": [ { "organization-name": "Kongreen",
                                "start-date": date("2012-06-05") } ] }
        );
    "#,
    )?;

    // Some messages.
    instance.execute(
        r#"
        insert into dataset MugshotMessages ([
            { "message-id": 1, "author-id": 1,
              "timestamp": datetime("2012-09-01T12:00:00"),
              "sender-location": point("47.4,80.9"),
              "tags": {{ "tweet", "phone" }},
              "message": "cant stand att the network is horrible" },
            { "message-id": 2, "author-id": 1,
              "timestamp": datetime("2014-02-20T10:00:00"),
              "sender-location": point("40.3,70.1"),
              "tags": {{ "phone", "plan" }},
              "message": "see you tonite at the concert" },
            { "message-id": 3, "author-id": 2,
              "timestamp": datetime("2014-02-20T18:30:00"),
              "sender-location": point("40.5,70.2"),
              "tags": {{ "concert", "music" }},
              "message": "going out tonight for some music" },
            { "message-id": 4, "author-id": 3,
              "timestamp": datetime("2014-02-21T09:00:00"),
              "in-response-to": 3,
              "sender-location": point("44.0,75.0"),
              "tags": {{ "music" }},
              "message": "what a great concert that was" }
        ]);
    "#,
    )?;

    // Query 2: datetime range scan (routes through msUserSinceIdx).
    let q2 = instance.query(
        r#"for $user in dataset MugshotUsers
           where $user.user-since >= datetime("2010-07-22T00:00:00")
             and $user.user-since <= datetime("2012-07-29T23:59:59")
           return $user;"#,
    )?;
    println!("Query 2 (range scan): {} users", q2.len());

    // Query 3: equijoin (compiles to a hybrid hash join).
    let q3 = instance.query(
        r#"for $user in dataset MugshotUsers
           for $message in dataset MugshotMessages
           where $message.author-id = $user.id
           return { "uname": $user.name, "message": $message.message };"#,
    )?;
    println!("Query 3 (equijoin): {} pairs", q3.len());

    // Query 4: nested left outer join — users keep empty message lists.
    let q4 = instance.query(
        r#"for $user in dataset MugshotUsers
           return { "uname": $user.name,
                    "messages": for $message in dataset MugshotMessages
                                where $message.author-id = $user.id
                                return $message.message };"#,
    )?;
    println!("Query 4 (nested):");
    for r in &q4 {
        println!("  {r}");
    }

    // Query 6: fuzzy selection with edit distance ("tonite" ~ "tonight").
    instance.execute(r#"set simfunction "edit-distance"; set simthreshold "3";"#)?;
    let q6 = instance.query(
        r#"for $msu in dataset MugshotUsers
           for $msm in dataset MugshotMessages
           where $msu.id = $msm.author-id
             and (some $word in word-tokens($msm.message)
                  satisfies $word ~= "tonight")
           return { "name": $msu.name, "message": $msm.message };"#,
    )?;
    println!("Query 6 (fuzzy): {} matches", q6.len());
    assert!(q6.len() >= 2, "tonite + tonight should both match");

    // Query 7: existential quantifier over an open field.
    let q7 = instance.query(
        r#"for $msu in dataset MugshotUsers
           where (some $e in $msu.employment
                  satisfies is-null($e.end-date) and $e.job-kind = "part-time")
           return $msu;"#,
    )?;
    println!("Query 7 (quantified, open field): {} users", q7.len());
    assert_eq!(q7.len(), 1, "Emory's part-time job has no end-date");

    // Queries 8+9: a UDF (view with parameters) and its use.
    instance.execute(
        r#"create function unemployed() {
               for $msu in dataset MugshotUsers
               where (every $e in $msu.employment
                      satisfies not(is-null($e.end-date)))
               return { "name": $msu.name, "address": $msu.address }
           };"#,
    )?;
    let q9 = instance.query(
        r#"for $un in unemployed()
           where $un.address.zip = "95014"
           return $un;"#,
    )?;
    println!("Query 9 (UDF): {} unemployed in 95014", q9.len());

    // Query 11: grouped aggregation with sorting and limit.
    let q11 = instance.query(
        r#"for $msg in dataset MugshotMessages
           where $msg.timestamp >= datetime("2014-02-20T00:00:00")
             and $msg.timestamp < datetime("2014-02-21T00:00:00")
           group by $aid := $msg.author-id with $msg
           let $cnt := count($msg)
           order by $cnt desc
           limit 3
           return { "author": $aid, "no messages": $cnt };"#,
    )?;
    println!("Query 11 (top chatty users): {q11:?}");

    // Update 2: delete.
    let del = instance.execute("delete $user from dataset MugshotUsers where $user.id = 11;")?;
    println!("Update 2 deleted {} record(s)", del[0].count());

    Ok(())
}
