//! External datasets (§2.3): query a pipe-delimited web-server log
//! (Figures 2-3) in place — no loading — and join it with stored data
//! (Query 12's active-users analysis).
//!
//! Run with: `cargo run --example external_logs`

use asterixdb::{ClusterConfig, Instance};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = tempfile::TempDir::new()?;

    // Figure 3's CSV log format, with a few more lines.
    let log_path = dir.path().join("access.log");
    std::fs::write(
        &log_path,
        "12.34.56.78|2013-12-22T12:13:32-0800|Nicholas|GET|/|200|2279\n\
         12.34.56.78|2013-12-22T12:13:33-0800|Nicholas|GET|/list|200|5299\n\
         77.22.33.44|2013-12-23T09:00:00-0800|Ada|GET|/profile|200|1500\n\
         77.22.33.44|2013-12-23T09:01:10-0800|Ada|POST|/message|201|320\n\
         99.88.77.66|2013-12-24T01:00:00-0800|Ghost|GET|/404|404|100\n",
    )?;

    let instance = Instance::open(ClusterConfig::small(dir.path().join("db")))?;

    // Data definition 3, with the real path substituted for {path}.
    instance.execute(&format!(
        r#"
        create dataverse WebAnalytics;
        use dataverse WebAnalytics;

        create type AccessLogType as closed {{
            ip: string,
            time: string,
            user: string,
            verb: string,
            path: string,
            stat: int32,
            size: int32
        }};

        create external dataset AccessLog(AccessLogType)
            using localfs
            (("path"="localhost://{}"),
             ("format"="delimited-text"),
             ("delimiter"="|"));

        create type UserType as open {{ alias: string, country: string }};
        create dataset Users(UserType) primary key alias;

        insert into dataset Users ([
            {{ "alias": "Nicholas", "country": "USA" }},
            {{ "alias": "Ada", "country": "UK" }},
            {{ "alias": "Edsger", "country": "NL" }}
        ]);
    "#,
        log_path.display()
    ))?;

    // External data is queryable like any dataset (but read-only).
    let ok = instance.query("for $l in dataset AccessLog where $l.stat = 200 return $l.path;")?;
    println!("successful requests: {ok:?}");
    assert_eq!(ok.len(), 3);

    // Query 12's shape: which stored users were active in the log window,
    // grouped by country. (Datetime arithmetic + external/internal join.)
    let active = instance.query(
        r#"
        for $user in dataset Users
        where some $logrecord in dataset AccessLog
              satisfies $user.alias = $logrecord.user
                and datetime($logrecord.time) >= datetime("2013-12-22T00:00:00")
        group by $country := $user.country with $user
        return { "country": $country, "active users": count($user) };
    "#,
    )?;
    println!("active users by country: {active:?}");
    assert_eq!(active.len(), 2); // USA (Nicholas) and UK (Ada); Ghost unknown

    // Aggregate over the external dataset directly.
    let bytes =
        instance.query("sum( for $l in dataset AccessLog where $l.stat = 200 return $l.size );")?;
    println!("bytes served (2xx): {bytes:?}");
    assert_eq!(bytes[0].as_i64(), Some(2279 + 5299 + 1500));

    Ok(())
}
