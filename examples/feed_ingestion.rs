//! Data feeds (§2.4 / §4.5): continuous ingestion through a socket-style
//! adaptor with an intake → compute → store pipeline, feed joints, and a
//! cascading secondary feed.
//!
//! Run with: `cargo run --example feed_ingestion`

use std::time::Duration;

use asterixdb::{ClusterConfig, Instance};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = tempfile::TempDir::new()?;
    let instance = Instance::open(ClusterConfig::small(dir.path()))?;

    // Data definition 4's shape: a feed with a socket adaptor connected to
    // a dataset, plus a pre-processing function applied on the way in.
    instance.execute(
        r#"
        create dataverse FeedDemo;
        use dataverse FeedDemo;

        create type MsgType as open {
            message-id: int64,
            author-id: int64,
            message: string
        };
        create dataset Messages(MsgType) primary key message-id;
        create index authorIdx on Messages(author-id);

        create function scrub($m) {
            { "message-id": $m.message-id,
              "author-id": $m.author-id,
              "message": lowercase($m.message) }
        };

        create feed socket_feed using socket_adaptor
            (("sockets"="127.0.0.1:10001"),
             ("addressType"="IP"),
             ("type-name"="MsgType"),
             ("format"="adm"));

        connect feed socket_feed apply function scrub to dataset Messages;
    "#,
    )?;

    // The "TCP client": push ADM text at the feed endpoint. (The paper's
    // adaptor listens on a real socket; this reproduction's endpoint is an
    // in-process channel with the same push semantics and back-pressure.)
    let endpoint = instance.feed_endpoint("socket_feed").expect("feed endpoint");
    for i in 0..500i64 {
        endpoint.send_text(format!(
            "{{ \"message-id\": {i}, \"author-id\": {}, \"message\": \"HELLO Number {i}\" }}",
            i % 25
        ))?;
    }

    // Wait for the pipeline to drain.
    assert!(
        instance.feed_wait_stored("socket_feed", 500, Duration::from_secs(10)),
        "feed did not ingest in time"
    );
    instance.execute("disconnect feed socket_feed from dataset Messages;")?;

    // The data is immediately queryable — and was scrubbed on the way in.
    let rows = instance.query(
        r#"for $m in dataset Messages
           where $m.author-id = 7
           return $m.message;"#,
    )?;
    println!("messages by author 7: {}", rows.len());
    assert_eq!(rows.len(), 20);
    assert!(rows.iter().all(|m| m.as_str().unwrap().starts_with("hello")));

    // Grouped aggregation over the ingested stream (the cell-phone
    // analytics pilot of §5.2 in miniature).
    let top = instance.query(
        r#"for $m in dataset Messages
           group by $a := $m.author-id with $m
           let $cnt := count($m)
           order by $cnt desc, $a asc
           limit 3
           return { "author": $a, "messages": $cnt };"#,
    )?;
    println!("top authors: {top:?}");
    assert_eq!(top.len(), 3);

    println!("feed ingestion demo complete: 500 records via socket feed");
    Ok(())
}
