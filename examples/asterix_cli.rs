//! asterix-cli: a line-oriented AQL REPL over the wire protocol.
//!
//! Run against an existing server:
//! `cargo run --example asterix_cli -- 127.0.0.1:7031 --secret s3cret`
//!
//! Or with no address, it stands up a demo instance + server in a temp
//! directory and connects over loopback — a self-contained tour of the
//! network front end:
//! `cargo run --example asterix_cli`
//!
//! Statements end with `;` (and may span lines). REPL commands:
//! `:metrics` prints the server's metrics JSON, `:quit` leaves.
//! Non-interactive use: pipe AQL on stdin
//! (`echo 'for $x in [1,2] return $x;' | cargo run --example asterix_cli`).

use std::io::{BufRead, Write};
use std::sync::Arc;

use asterix_net::{Client, Server, ServerConfig, WireResult};
use asterixdb::{ClusterConfig, Instance};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr: Option<String> = None;
    let mut secret: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--secret" => {
                i += 1;
                secret = args.get(i).cloned();
            }
            a => addr = Some(a.to_string()),
        }
        i += 1;
    }

    // No address: run a self-contained demo server to talk to.
    let _embedded: Option<(Server, tempfile::TempDir)> = if addr.is_none() {
        let dir = tempfile::TempDir::new()?;
        let instance = Instance::open(ClusterConfig::small(dir.path().join("db")))?;
        instance.execute(
            r#"
            create dataverse Demo;
            use dataverse Demo;
            create type PersonType as open { id: int64, name: string, age: int64 };
            create dataset People(PersonType) primary key id;
            insert into dataset People ({ "id": 1, "name": "Ada",   "age": 36 });
            insert into dataset People ({ "id": 2, "name": "Alan",  "age": 41 });
            insert into dataset People ({ "id": 3, "name": "Grace", "age": 85 });
        "#,
        )?;
        let server = Server::start(Arc::clone(&instance), ServerConfig::default())?;
        let local = server.local_addr().to_string();
        eprintln!("demo server on {local} (dataverse Demo, dataset People)");
        addr = Some(local);
        Some((server, dir))
    } else {
        None
    };

    let mut client = Client::connect(addr.unwrap().as_str(), secret.as_deref())?;
    eprintln!("connected; statements end with ';', :metrics and :quit are commands");
    if _embedded.is_some() {
        // Sessions are per-connection: the demo data lives in Demo, so
        // point this connection's session there.
        client.execute("use dataverse Demo")?;
    }

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            eprint!("aql> ");
        } else {
            eprint!("   > ");
        }
        std::io::stderr().flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        let trimmed = line.trim();
        if buffer.is_empty() {
            match trimmed {
                ":quit" | ":q" => break,
                ":metrics" => {
                    match client.metrics_json() {
                        Ok(json) => println!("{json}"),
                        Err(e) => eprintln!("error: {e}"),
                    }
                    continue;
                }
                "" => continue,
                _ => {}
            }
        }
        buffer.push_str(&line);
        if !trimmed.ends_with(';') {
            continue; // statement continues on the next line
        }
        let stmt = std::mem::take(&mut buffer);
        match client.execute(&stmt) {
            Ok(results) => {
                for r in results {
                    match r {
                        WireResult::Ok => println!("ok"),
                        WireResult::Count(n) => println!("{n} record(s)"),
                        WireResult::Rows(rows) => {
                            for row in &rows {
                                println!("{row}");
                            }
                            println!("-- {} row(s)", rows.len());
                        }
                    }
                }
            }
            Err(e) => eprintln!("error: {e}"),
        }
    }
    client.close()?;
    Ok(())
}
