//! Fuzzy and spatial querying (§2.1's advanced types, Queries 5/6/13):
//! edit-distance selection through an n-gram index, Jaccard tag joins,
//! and R-tree-accelerated spatial search.
//!
//! Run with: `cargo run --example fuzzy_search`

use asterixdb::{ClusterConfig, Instance};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = tempfile::TempDir::new()?;
    let instance = Instance::open(ClusterConfig::small(dir.path()))?;

    instance.execute(
        r#"
        create dataverse Fuzzy;
        use dataverse Fuzzy;

        create type NoteType as open {
            id: int64,
            title: string,
            tags: {{ string }},
            loc: point?
        };
        create dataset Notes(NoteType) primary key id;
        create index titleNgram on Notes(title) type ngram(2);
        create index locIdx on Notes(loc) type rtree;

        insert into dataset Notes ([
            { "id": 1, "title": "tonight we celebrate",
              "tags": {{ "party", "music", "friends" }}, "loc": point("1.0,1.0") },
            { "id": 2, "title": "tonite we celebrate",
              "tags": {{ "party", "music" }}, "loc": point("1.2,0.8") },
            { "id": 3, "title": "tomorrow we work",
              "tags": {{ "work", "deadline" }}, "loc": point("10.0,10.0") },
            { "id": 4, "title": "tonight is quiet",
              "tags": {{ "home", "music", "friends" }}, "loc": point("1.1,1.3") },
            { "id": 5, "title": "vacation planning",
              "tags": {{ "travel", "friends" }}, "loc": point("30.0,5.0") }
        ]);
    "#,
    )?;

    // --- Edit-distance fuzzy selection (Query 6 style) ----------------------
    instance.execute(r#"set simfunction "edit-distance"; set simthreshold "3";"#)?;
    let fuzzy = instance.query(
        r#"for $n in dataset Notes
           where $n.title ~= "tonight we celebrate"
           return $n.id;"#,
    )?;
    println!("titles within edit distance 3 of 'tonight we celebrate': {fuzzy:?}");
    assert_eq!(fuzzy.len(), 2); // ids 1 and 2 ("tonite" is 3 edits away)

    // The n-gram index accelerates this; the plan shows it.
    let (plan, _) = instance.explain(
        r#"for $n in dataset Notes where $n.title ~= "tonight we celebrate" return $n;"#,
    )?;
    assert!(plan.contains("ngram-fuzzy-search"), "plan should use the ngram index:\n{plan}");
    println!("fuzzy plan uses: ngram-fuzzy-search ✓");

    // --- Jaccard similarity join on tag bags (Query 13 style) --------------
    instance.execute(r#"set simfunction "jaccard"; set simthreshold "0.5";"#)?;
    let similar = instance.query(
        r#"for $n in dataset Notes
           let $sim := (
               for $m in dataset Notes
               where $m.tags ~= $n.tags and $m.id != $n.id
               return $m.id
           )
           where count($sim) > 0
           return { "note": $n.id, "similarly tagged": $sim };"#,
    )?;
    println!("jaccard-similar notes: {similar:?}");
    assert!(!similar.is_empty());

    // --- Spatial search (Query 5 style) -------------------------------------
    let nearby = instance.query(
        r#"for $n in dataset Notes
           where spatial-distance($n.loc, point("1.0,1.0")) <= 0.5
           return $n.id;"#,
    )?;
    println!("notes within 0.5 of (1,1): {nearby:?}");
    assert_eq!(nearby.len(), 3); // ids 1, 2 (d=0.28), and 4 (d=0.32)

    let (plan, _) = instance.explain(
        r#"for $n in dataset Notes
           where spatial-distance($n.loc, point("1.0,1.0")) <= 0.5
           return $n;"#,
    )?;
    assert!(plan.contains("rtree-search"), "plan should use the R-tree:\n{plan}");
    println!("spatial plan uses: rtree-search ✓");

    // Spatial join: for each note, nearby notes (nested FLWOR, Query 5).
    let pairs = instance.query(
        r#"for $n in dataset Notes
           return { "note": $n.id,
                    "nearby": for $m in dataset Notes
                              where spatial-distance($n.loc, $m.loc) <= 1
                                and $m.id != $n.id
                              return $m.id };"#,
    )?;
    println!("spatial join: {pairs:?}");

    Ok(())
}
